"""Unit tests for datanode replica storage."""

import pytest

from repro.dfs.datanode import DataNode
from repro.errors import BlockCorruptionError, DataNodeDownError
from repro.sim.machine import Machine


@pytest.fixture
def node():
    return DataNode(Machine("m0"), checksum_replicas=True)


def test_create_append_read(node):
    node.create_replica(1)
    node.append_replica(1, b"hello")
    payload, cost = node.read_replica(1, 0, 5)
    assert payload == b"hello"
    assert cost > 0


def test_read_range(node):
    node.create_replica(1)
    node.append_replica(1, b"abcdefgh")
    payload, _ = node.read_replica(1, 2, 3)
    assert payload == b"cde"


def test_read_past_end_raises(node):
    node.create_replica(1)
    node.append_replica(1, b"abc")
    with pytest.raises(BlockCorruptionError):
        node.read_replica(1, 2, 5)


def test_down_node_rejects_ops(node):
    node.create_replica(1)
    node.fail()
    with pytest.raises(DataNodeDownError):
        node.append_replica(1, b"x")
    with pytest.raises(DataNodeDownError):
        node.read_replica(1, 0, 0)


def test_checksum_verification(node):
    node.create_replica(7)
    node.append_replica(7, b"block data")
    node.append_replica(7, b" more")
    assert node.verify_replica(7)


def test_verify_detects_corruption(node):
    node.create_replica(7)
    node.append_replica(7, b"block data")
    node._blocks[7][0] ^= 0xFF  # simulate bit rot
    assert not node.verify_replica(7)


def test_verify_missing_block(node):
    assert not node.verify_replica(99)


def test_drop_replica(node):
    node.create_replica(1)
    node.append_replica(1, b"x")
    node.drop_replica(1)
    assert not node.has_block(1)


def test_appends_charge_disk_time(node):
    node.create_replica(1)
    before = node.machine.clock.now
    node.append_replica(1, b"x" * 10_000)
    assert node.machine.clock.now > before
