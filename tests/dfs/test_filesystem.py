"""Unit tests for the DFS facade: files, appends, reads, blocks."""

import pytest

from repro.dfs.filesystem import DFS
from repro.errors import FileAlreadyExists, FileClosedError, FileNotFoundInDFS
from repro.sim.machine import Machine


@pytest.fixture
def machines():
    return [Machine(f"node-{i}", rack=f"rack-{i % 2}") for i in range(3)]


@pytest.fixture
def dfs(machines):
    return DFS(machines, replication=3, block_size=100)


def test_create_write_read(dfs, machines):
    writer = dfs.create("/f", machines[0])
    offset = writer.append(b"hello world")
    assert offset == 0
    reader = dfs.open("/f", machines[0])
    assert reader.read(0, 11) == b"hello world"
    assert reader.read(6, 5) == b"world"


def test_append_returns_running_offset(dfs, machines):
    writer = dfs.create("/f", machines[0])
    assert writer.append(b"aaa") == 0
    assert writer.append(b"bbbb") == 3
    assert writer.length == 7


def test_appends_span_blocks(dfs, machines):
    writer = dfs.create("/f", machines[0])
    writer.append(b"x" * 250)  # block size 100 -> 3 blocks
    meta = dfs.namenode.get_file("/f")
    assert len(meta.blocks) == 3
    reader = dfs.open("/f", machines[1])
    assert reader.read_all() == b"x" * 250


def test_read_across_block_boundary(dfs, machines):
    writer = dfs.create("/f", machines[0])
    writer.append(bytes(range(200)) + bytes(range(50)))
    reader = dfs.open("/f", machines[0])
    assert reader.read(95, 10) == bytes(range(95, 105))


def test_every_replica_holds_data(dfs, machines):
    writer = dfs.create("/f", machines[0])
    writer.append(b"replicated")
    block = dfs.namenode.get_file("/f").blocks[0]
    assert len(block.locations) == 3
    for location in block.locations:
        node = dfs.datanode(location)
        assert node.has_block(block.block_id)
        assert node.block_length(block.block_id) == 10


def test_closed_writer_rejects_appends(dfs, machines):
    writer = dfs.create("/f", machines[0])
    writer.close()
    with pytest.raises(FileClosedError):
        writer.append(b"late")


def test_reopen_for_append(dfs, machines):
    writer = dfs.create("/f", machines[0])
    writer.append(b"first")
    writer.close()
    writer2 = dfs.open_for_append("/f", machines[1])
    writer2.append(b"second")
    assert dfs.open("/f", machines[0]).read_all() == b"firstsecond"


def test_duplicate_create_rejected(dfs, machines):
    dfs.create("/f", machines[0])
    with pytest.raises(FileAlreadyExists):
        dfs.create("/f", machines[1])


def test_read_past_eof_raises(dfs, machines):
    writer = dfs.create("/f", machines[0])
    writer.append(b"short")
    with pytest.raises(FileNotFoundInDFS):
        dfs.open("/f", machines[0]).read(3, 10)


def test_delete_drops_replicas(dfs, machines):
    writer = dfs.create("/f", machines[0])
    writer.append(b"data")
    block = dfs.namenode.get_file("/f").blocks[0]
    dfs.delete("/f")
    assert not dfs.exists("/f")
    for location in block.locations:
        assert not dfs.datanode(location).has_block(block.block_id)


def test_rename(dfs, machines):
    writer = dfs.create("/a", machines[0])
    writer.append(b"x")
    dfs.rename("/a", "/b")
    assert dfs.open("/b", machines[0]).read_all() == b"x"


def test_write_charges_writer_and_replicas(dfs, machines):
    writer_machine = machines[0]
    dfs.create("/f", writer_machine).append(b"y" * 50)
    assert writer_machine.clock.now > 0
    block = dfs.namenode.get_file("/f").blocks[0]
    for location in block.locations[1:]:
        assert dfs.datanode(location).machine.clock.now > 0


def test_replication_capped_by_cluster_size():
    machines = [Machine(f"n{i}") for i in range(2)]
    dfs = DFS(machines, replication=3)
    assert dfs.namenode.replication == 2
