"""Replica-placement distribution tests (the Figure 11 hotspot fix)."""

from collections import Counter

from repro.dfs.namenode import NameNode


def build(n=8, racks=2):
    nn = NameNode(replication=3)
    for i in range(n):
        nn.register_datanode(f"node-{i}", f"rack-{i % racks}")
    return nn, {f"node-{i}" for i in range(n)}


def test_remote_replicas_spread_over_nodes():
    """Second replicas must not all land on one remote node (real HDFS
    randomizes; a fixed choice creates a replication hotspot)."""
    nn, alive = build()
    nn.create_file("/f")
    seconds = Counter()
    for _ in range(200):
        block = nn.allocate_block("/f", "node-0", alive)
        seconds[block.locations[1]] += 1
    # node-0 is on rack-0; remote candidates are the 4 rack-1 nodes.
    assert len(seconds) >= 3
    assert max(seconds.values()) < 150  # no single hotspot


def test_rack_constraint_still_holds_under_rotation():
    nn, alive = build()
    nn.create_file("/f")
    for _ in range(50):
        block = nn.allocate_block("/f", "node-2", alive)
        racks = ["rack-0" if int(n[-1]) % 2 == 0 else "rack-1" for n in block.locations]
        assert block.locations[0] == "node-2"
        assert racks[1] != racks[0]
        assert racks[2] == racks[1]
        assert len(set(block.locations)) == 3


def test_single_rack_cluster_degrades_gracefully():
    nn = NameNode(replication=3)
    for i in range(4):
        nn.register_datanode(f"node-{i}", "rack-0")
    nn.create_file("/f")
    block = nn.allocate_block("/f", "node-1", {f"node-{i}" for i in range(4)})
    assert len(block.locations) == 3
    assert len(set(block.locations)) == 3
