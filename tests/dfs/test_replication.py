"""Failure behaviour of the replicated DFS — Guarantee 1's substrate:
data stays readable as long as one replica survives."""

import pytest

from repro.dfs.filesystem import DFS
from repro.errors import DataNodeDownError
from repro.sim.machine import Machine


@pytest.fixture
def machines():
    return [Machine(f"node-{i}", rack=f"rack-{i % 2}") for i in range(4)]


@pytest.fixture
def dfs(machines):
    return DFS(machines, replication=3, block_size=1 << 16)


def test_read_survives_one_replica_failure(dfs, machines):
    dfs.create("/f", machines[0]).append(b"precious")
    block = dfs.namenode.get_file("/f").blocks[0]
    dfs.datanode(block.locations[0]).fail()
    reader = dfs.open("/f", machines[1] if machines[1].alive else machines[2])
    assert reader.read_all() == b"precious"


def test_read_survives_two_replica_failures(dfs, machines):
    dfs.create("/f", machines[0]).append(b"precious")
    block = dfs.namenode.get_file("/f").blocks[0]
    for location in block.locations[:2]:
        dfs.datanode(location).fail()
    survivor = block.locations[2]
    reader = dfs.open("/f", dfs.datanode(survivor).machine)
    assert reader.read_all() == b"precious"


def test_all_replicas_down_is_data_loss(dfs, machines):
    dfs.create("/f", machines[0]).append(b"gone")
    block = dfs.namenode.get_file("/f").blocks[0]
    for location in block.locations:
        dfs.datanode(location).fail()
    alive = next(m for m in machines if m.alive)
    with pytest.raises(DataNodeDownError):
        dfs.open("/f", alive).read_all()


def test_append_pipeline_skips_dead_replica(dfs, machines):
    writer = dfs.create("/f", machines[0])
    writer.append(b"a")
    block = dfs.namenode.get_file("/f").blocks[0]
    dead = block.locations[-1]
    dfs.datanode(dead).fail()
    writer.append(b"b")  # pipeline continues with live replicas
    live = [loc for loc in block.locations if loc != dead]
    for location in live:
        assert dfs.datanode(location).block_length(block.block_id) == 2


def test_new_blocks_avoid_dead_nodes(dfs, machines):
    dfs.datanode("node-3").fail()
    writer = dfs.create("/f", machines[0])
    writer.append(b"z" * 10)
    block = dfs.namenode.get_file("/f").blocks[0]
    assert "node-3" not in block.locations


def test_reader_prefers_local_then_rack(dfs, machines):
    dfs.create("/f", machines[0]).append(b"payload")
    block = dfs.namenode.get_file("/f").blocks[0]
    local = dfs.datanode(block.locations[0]).machine
    before_remote = [
        m.counters.get("net.bytes_received") for m in machines
    ]
    dfs.open("/f", local).read_all()
    # A local read moves no bytes over the network.
    assert local.counters.get("net.bytes_received") == before_remote[machines.index(local)]


def test_rereplication_restores_replica_count(dfs, machines):
    dfs.create("/f", machines[0]).append(b"replicate-me")
    block = dfs.namenode.get_file("/f").blocks[0]
    dfs.datanode(block.locations[0]).fail()
    created = dfs.rereplicate()
    assert created >= 1
    alive_replicas = [
        loc for loc in block.locations if dfs.datanodes[loc].alive
    ]
    assert len(alive_replicas) >= 3


def test_rereplication_then_second_failure_still_readable(dfs, machines):
    dfs.create("/f", machines[0]).append(b"precious")
    block = dfs.namenode.get_file("/f").blocks[0]
    original = list(block.locations)
    dfs.datanode(original[0]).fail()
    dfs.rereplicate()
    dfs.datanode(original[1]).fail()  # second original dies
    survivor_machine = next(m for m in machines if m.alive)
    assert dfs.open("/f", survivor_machine).read_all() == b"precious"


def test_rereplication_raises_on_total_loss(dfs, machines):
    from repro.errors import DFSError
    import pytest as _pytest

    dfs.create("/f", machines[0]).append(b"gone")
    block = dfs.namenode.get_file("/f").blocks[0]
    for loc in block.locations:
        dfs.datanode(loc).fail()
    with _pytest.raises(DFSError):
        dfs.rereplicate()


def test_rereplication_noop_when_healthy(dfs, machines):
    dfs.create("/f", machines[0]).append(b"healthy")
    assert dfs.rereplicate() == 0
