"""Unit tests for the namenode: namespace and rack-aware placement."""

import pytest

from repro.dfs.namenode import NameNode
from repro.errors import FileAlreadyExists, FileNotFoundInDFS, ReplicationError


@pytest.fixture
def namenode():
    nn = NameNode(replication=3)
    for i in range(6):
        nn.register_datanode(f"node-{i}", f"rack-{i % 2}")
    return nn


ALIVE = {f"node-{i}" for i in range(6)}


def test_create_and_get(namenode):
    meta = namenode.create_file("/a/b")
    assert meta.path == "/a/b"
    assert namenode.get_file("/a/b") is meta


def test_duplicate_create_rejected(namenode):
    namenode.create_file("/a")
    with pytest.raises(FileAlreadyExists):
        namenode.create_file("/a")


def test_missing_file(namenode):
    with pytest.raises(FileNotFoundInDFS):
        namenode.get_file("/missing")


def test_delete_removes(namenode):
    namenode.create_file("/x")
    namenode.delete_file("/x")
    assert not namenode.exists("/x")


def test_rename(namenode):
    namenode.create_file("/old")
    namenode.rename("/old", "/new")
    assert namenode.exists("/new")
    assert not namenode.exists("/old")


def test_rename_to_existing_rejected(namenode):
    namenode.create_file("/a")
    namenode.create_file("/b")
    with pytest.raises(FileAlreadyExists):
        namenode.rename("/a", "/b")


def test_list_files_prefix(namenode):
    for path in ("/logs/1", "/logs/2", "/data/1"):
        namenode.create_file(path)
    assert namenode.list_files("/logs/") == ["/logs/1", "/logs/2"]


def test_first_replica_local(namenode):
    namenode.create_file("/f")
    block = namenode.allocate_block("/f", "node-3", ALIVE)
    assert block.locations[0] == "node-3"
    assert len(block.locations) == 3
    assert len(set(block.locations)) == 3


def test_second_replica_on_other_rack(namenode):
    namenode.create_file("/f")
    block = namenode.allocate_block("/f", "node-0", ALIVE)
    racks = ["rack-0" if int(n[-1]) % 2 == 0 else "rack-1" for n in block.locations]
    assert racks[0] != racks[1]
    # third replica shares the second replica's rack (HDFS policy)
    assert racks[1] == racks[2]


def test_dead_writer_falls_back(namenode):
    namenode.create_file("/f")
    alive = ALIVE - {"node-0"}
    block = namenode.allocate_block("/f", "node-0", alive)
    assert "node-0" not in block.locations


def test_replication_error_when_too_few_nodes(namenode):
    namenode.create_file("/f")
    with pytest.raises(ReplicationError):
        namenode.allocate_block("/f", "node-0", {"node-0", "node-1"})


def test_file_length_sums_blocks(namenode):
    meta = namenode.create_file("/f")
    b1 = namenode.allocate_block("/f", "node-0", ALIVE)
    b1.length = 100
    b2 = namenode.allocate_block("/f", "node-0", ALIVE)
    b2.length = 50
    assert meta.length == 150
