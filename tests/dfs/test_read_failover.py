"""Read-path failover: corrupt or dead replicas are pruned and the read
retries on the next candidate instead of returning bad bytes."""

import pytest

from repro.dfs.filesystem import DFS
from repro.errors import DataNodeDownError, ReplicaCorruptError
from repro.sim.failure import FailureInjector
from repro.sim.machine import Machine
from repro.sim.metrics import (
    DFS_CORRUPT_REPLICAS,
    DFS_READ_FAILOVERS,
    DFS_UNDER_REPLICATED,
)
from repro.sim.network import NetworkModel


@pytest.fixture
def network():
    return NetworkModel()


@pytest.fixture
def machines(network):
    return [
        Machine(f"node-{i}", rack=f"rack-{i % 2}", network=network)
        for i in range(4)
    ]


@pytest.fixture
def dfs(machines):
    return DFS(
        machines,
        replication=3,
        block_size=1 << 16,
        checksum_replicas=True,
        verify_reads=True,
    )


PAYLOAD = b"verified-bytes"


def _block(dfs, path):
    return dfs.namenode.get_file(path).blocks[0]


def test_corrupt_replica_fails_over_and_is_pruned(dfs, machines):
    dfs.create("/f", machines[0]).append(PAYLOAD)
    block = _block(dfs, "/f")
    first = block.locations[0]
    dfs.datanode(first).corrupt_replica(block.block_id)
    reader = dfs.open("/f", machines[0])
    assert reader.read_all() == PAYLOAD  # served by a clean replica
    assert first not in block.locations
    assert block.block_id in dfs.namenode.under_replicated
    counters = machines[0].counters
    assert counters.get(DFS_READ_FAILOVERS) == 1
    assert counters.get(DFS_CORRUPT_REPLICAS) == 1
    assert counters.get(DFS_UNDER_REPLICATED) == 1


def test_all_replicas_corrupt_raises(dfs, machines):
    dfs.create("/f", machines[0]).append(PAYLOAD)
    block = _block(dfs, "/f")
    for name in block.locations:
        dfs.datanode(name).corrupt_replica(block.block_id)
    with pytest.raises(ReplicaCorruptError):
        dfs.open("/f", machines[0]).read_all()


def test_corruption_not_detected_without_verify(machines):
    # The seed read path: checksums may exist but reads do not verify, so
    # a corrupt local replica is served as-is.
    dfs = DFS(machines, replication=3, block_size=1 << 16, checksum_replicas=True)
    dfs.create("/f", machines[0]).append(PAYLOAD)
    block = _block(dfs, "/f")
    dfs.datanode(block.locations[0]).corrupt_replica(block.block_id)
    reader = dfs.open("/f", dfs.datanode(block.locations[0]).machine)
    assert reader.read_all() != PAYLOAD
    assert block.locations  # nothing pruned


def test_dead_replica_skipped_without_failover_penalty(dfs, machines):
    # A replica known dead never enters the candidate list, so the read
    # serves from a survivor without a failover event (liveness is the
    # heartbeat's job, not the read path's).
    dfs.create("/f", machines[0]).append(PAYLOAD)
    block = _block(dfs, "/f")
    first = block.locations[0]
    dfs.datanode(first).fail()
    reader_machine = next(
        m for m in machines if m.alive and m.name != first
    )
    assert dfs.open("/f", reader_machine).read_all() == PAYLOAD
    assert reader_machine.counters.get(DFS_READ_FAILOVERS) == 0


def test_failover_then_heartbeat_restores_replication(dfs, machines):
    dfs.create("/f", machines[0]).append(PAYLOAD)
    block = _block(dfs, "/f")
    dfs.datanode(block.locations[0]).corrupt_replica(block.block_id)
    dfs.open("/f", machines[0]).read_all()  # prunes the corrupt copy
    assert dfs.heartbeat() == 1
    live = [n for n in block.locations if dfs.datanodes[n].alive]
    assert len(live) == 3
    # The repaired replica serves clean bytes everywhere.
    for name in block.locations:
        reader = dfs.open("/f", dfs.datanode(name).machine)
        assert reader.read_all() == PAYLOAD
    assert block.block_id not in dfs.namenode.under_replicated


def test_partitioned_replicas_are_skipped(dfs, machines, network):
    dfs.create("/f", machines[0]).append(PAYLOAD)
    block = _block(dfs, "/f")
    reader_name = next(
        m.name for m in machines if m.name not in block.locations
    )
    reader = next(m for m in machines if m.name == reader_name)
    # Cut the reader off from every replica holder: nothing is reachable.
    network.partitions.isolate(reader_name)
    with pytest.raises(DataNodeDownError):
        dfs.open("/f", reader).read_all()
    network.partitions.heal()
    assert dfs.open("/f", reader).read_all() == PAYLOAD


def test_injector_killed_datanode_detected_by_read(dfs, machines):
    # End-to-end with the failure injector used by the chaos harness.
    injector = FailureInjector()
    for machine in machines:
        injector.register(machine.name, machine)
    dfs.create("/f", machines[0]).append(PAYLOAD)
    block = _block(dfs, "/f")
    victim = block.locations[0]
    injector.kill(victim)
    reader = next(m for m in machines if m.alive)
    assert dfs.open("/f", reader).read_all() == PAYLOAD
    injector.revive(victim)
    assert injector.is_alive(victim)
    reader_local = dfs.datanode(victim).machine
    assert dfs.open("/f", reader_local).read_all() == PAYLOAD
