"""Gray-resilient DFS reads: hedging around limping replicas, breaker
demotion, and deadline-aware failover (all gated on a GrayPolicy)."""

import pytest

from repro.dfs.filesystem import DFS
from repro.errors import DeadlineExceededError
from repro.sim.deadline import Deadline, deadline_scope
from repro.sim.health import CircuitBreaker, GrayPolicy
from repro.sim.machine import Machine
from repro.sim.metrics import (
    BREAKER_SKIPS,
    BREAKER_TRIPS,
    DEADLINES_EXCEEDED,
    DFS_HEDGE_FIRED,
    DFS_HEDGE_LOSSES,
    DFS_HEDGE_WINS,
)
from repro.sim.network import NetworkModel

PAYLOAD = b"hedge-me" * 100
LIMP = 40.0


def _machines(n=4):
    network = NetworkModel()
    return [
        Machine(f"node-{i}", rack=f"rack-{i % 2}", network=network)
        for i in range(n)
    ]


def _dfs(machines, gray=None):
    return DFS(
        machines,
        replication=3,
        block_size=1 << 16,
        checksum_replicas=True,
        verify_reads=True,
        gray=gray,
    )


def _written(dfs, machines):
    dfs.create("/f", machines[0]).append(PAYLOAD)
    return dfs.open("/f", machines[0])


def test_hedge_beats_limping_local_replica():
    machines = _machines()
    gray = GrayPolicy(breaker_enabled=False)  # isolate the hedge
    dfs = _dfs(machines, gray=gray)
    reader = _written(dfs, machines)
    machines[0].disk.set_slowdown(LIMP)
    before = machines[0].clock.now
    assert reader.read_all() == PAYLOAD
    cost = machines[0].clock.now - before
    limped = machines[0].disk.peek_cost(len(PAYLOAD))
    assert cost < limped / 4  # hedge escaped the limped read
    counters = machines[0].counters
    assert counters.get(DFS_HEDGE_FIRED) == 1
    assert counters.get(DFS_HEDGE_WINS) == 1


def test_healthy_reads_do_not_hedge_and_cost_the_same():
    gray_machines = _machines()
    gray_dfs = _dfs(gray_machines, gray=GrayPolicy())
    gray_reader = _written(gray_dfs, gray_machines)
    plain_machines = _machines()
    plain_dfs = _dfs(plain_machines)
    plain_reader = _written(plain_dfs, plain_machines)
    assert gray_reader.read_all() == plain_reader.read_all() == PAYLOAD
    # Gating intact: with every replica healthy the gray layer changes
    # neither behaviour nor a single simulated nanosecond.
    assert gray_machines[0].clock.now == plain_machines[0].clock.now
    assert gray_machines[0].counters.get(DFS_HEDGE_FIRED) == 0


def test_hedge_loss_charges_loser_only_up_to_winner_completion():
    machines = _machines()
    # A tiny floor makes even a healthy local read look hedge-worthy;
    # the local primary still wins (no transfer cost), so this is the
    # hedge-loss path.
    gray = GrayPolicy(breaker_enabled=False, hedge_min_delay=1e-6)
    dfs = _dfs(machines, gray=gray)
    reader = _written(dfs, machines)
    loser_clocks = {m.name: m.clock.now for m in machines[1:]}
    assert reader.read_all() == PAYLOAD
    counters = machines[0].counters
    assert counters.get(DFS_HEDGE_FIRED) == 1
    assert counters.get(DFS_HEDGE_LOSSES) == 1
    assert counters.get(DFS_HEDGE_WINS) == 0
    # The cancelled backup burned at most the winner's completion window.
    primary_cost = machines[0].disk.peek_cost(len(PAYLOAD))
    for machine in machines[1:]:
        busy = machine.clock.now - loser_clocks[machine.name]
        assert busy <= primary_cost + 1e-12


def test_breaker_trips_on_hedged_around_replica_and_demotes_it():
    machines = _machines()
    gray = GrayPolicy(
        breaker_trip_seconds=0.1,
        breaker_cooldown=100.0,
        breaker_min_samples=1,
    )
    dfs = _dfs(machines, gray=gray)
    reader = _written(dfs, machines)
    machines[0].disk.set_slowdown(LIMP)
    assert reader.read_all() == PAYLOAD  # hedge wins, loser observed
    counters = machines[0].counters
    assert counters.get(BREAKER_TRIPS) == 1
    assert dfs.health.state("node-0") == CircuitBreaker.OPEN
    # The next read never considers the limping local replica first: it
    # is demoted behind the allowed ones and the read serves remotely at
    # healthy cost, without needing a hedge.
    before = machines[0].clock.now
    assert reader.read_all() == PAYLOAD
    cost = machines[0].clock.now - before
    assert cost < machines[0].disk.peek_cost(len(PAYLOAD)) / 4
    assert counters.get(BREAKER_SKIPS) == 1
    assert counters.get(DFS_HEDGE_FIRED) == 1  # no second hedge needed


def test_expired_deadline_fails_bounded_not_limped():
    machines = _machines()
    dfs = _dfs(machines)  # deadline enforcement needs no gray policy
    reader = _written(dfs, machines)
    machines[0].disk.set_slowdown(LIMP)
    budget = 0.001  # below even a healthy replica's estimate
    deadline = Deadline.after(machines[0].clock, budget)
    before = machines[0].clock.now
    with deadline_scope(deadline):
        with pytest.raises(DeadlineExceededError):
            reader.read(0, len(PAYLOAD))
    charged = machines[0].clock.now - before
    # The reader burned exactly its remaining budget — never the
    # unbounded simulated time of waiting out the limping replica.
    assert charged == pytest.approx(budget)
    assert machines[0].counters.get(DEADLINES_EXCEEDED) == 1


def test_deadline_skips_limping_replica_for_a_feasible_one():
    machines = _machines()
    dfs = _dfs(machines)
    reader = _written(dfs, machines)
    machines[0].disk.set_slowdown(LIMP)
    limped = machines[0].disk.peek_cost(len(PAYLOAD))
    deadline = Deadline.after(machines[0].clock, 0.1)  # feasible remotely only
    before = machines[0].clock.now
    with deadline_scope(deadline):
        assert reader.read(0, len(PAYLOAD)) == PAYLOAD
    cost = machines[0].clock.now - before
    assert cost < 0.1  # served within budget by a healthy replica
    assert cost < limped / 4
    assert machines[0].counters.get(DEADLINES_EXCEEDED) == 0
