"""Unit tests for the per-machine DFS block cache."""

import pytest

from repro.dfs.block_cache import BlockCache
from repro.dfs.filesystem import DFS
from repro.sim.machine import Machine
from repro.sim.metrics import (
    BLOCK_CACHE_EVICTIONS,
    BLOCK_CACHE_HITS,
    BLOCK_CACHE_MISSES,
)


@pytest.fixture
def cached_dfs(machines):
    """A 3-node DFS with small blocks and a per-machine block cache."""
    return DFS(
        machines,
        replication=3,
        block_size=1 << 20,
        block_cache_bytes=1 << 20,
        block_cache_chunk=1024,
    )


def first_block_id(dfs: DFS, path: str) -> int:
    return dfs.namenode.get_file(path).blocks[0].block_id


def write_file(dfs: DFS, machine: Machine, path: str, data: bytes) -> None:
    writer = dfs.create(path, machine)
    writer.append(data)
    writer.close()


# -- BlockCache in isolation ------------------------------------------------------


def test_hit_miss_eviction_counters():
    cache = BlockCache(capacity_bytes=2048, chunk_size=1024)
    assert cache.get(1, 0) is None
    assert cache.misses == 1 and cache.hits == 0
    cache.put(1, 0, b"a" * 1024)
    assert cache.get(1, 0) == b"a" * 1024
    assert cache.hits == 1
    assert cache.counters.get(BLOCK_CACHE_HITS) == 1
    assert cache.counters.get(BLOCK_CACHE_MISSES) == 1


def test_byte_capacity_eviction():
    cache = BlockCache(capacity_bytes=2048, chunk_size=1024)
    for chunk_no in range(3):
        cache.put(1, chunk_no, b"x" * 1024)
    assert cache.bytes_used <= 2048
    assert cache.evictions == 1
    assert cache.counters.get(BLOCK_CACHE_EVICTIONS) == 1
    # LRU: chunk 0 went first.
    assert not cache.contains(1, 0)
    assert cache.contains(1, 2)


def test_invalidate_tail_drops_only_partial_chunk():
    cache = BlockCache(capacity_bytes=1 << 20, chunk_size=1024)
    cache.put(7, 0, b"a" * 1024)  # full, immutable
    cache.put(7, 1, b"b" * 500)  # partial tail
    cache.invalidate_tail(7, block_length=1524)
    assert cache.contains(7, 0)
    assert not cache.contains(7, 1)


def test_invalidate_block_drops_every_chunk():
    cache = BlockCache(capacity_bytes=1 << 20, chunk_size=1024)
    cache.put(7, 0, b"a" * 1024)
    cache.put(7, 1, b"b" * 1024)
    cache.put(8, 0, b"c" * 1024)
    cache.invalidate_block(7)
    assert cache.cached_chunks(7) == []
    assert cache.cached_chunks(8) == [0]


# -- DFS integration ---------------------------------------------------------------


def test_block_cache_for_disabled_returns_none(dfs, machines):
    assert dfs.block_cache_for(machines[0]) is None


def test_block_cache_for_is_per_machine(cached_dfs, machines):
    a = cached_dfs.block_cache_for(machines[0])
    b = cached_dfs.block_cache_for(machines[1])
    assert a is not None and b is not None and a is not b
    assert cached_dfs.block_cache_for(machines[0]) is a


def test_repeat_read_hits_cache_and_is_cheaper(cached_dfs, machines):
    machine = machines[0]
    write_file(cached_dfs, machine, "/f", b"p" * 5000)
    reader = cached_dfs.open("/f", machine)

    before = machine.clock.now
    assert reader.read(0, 5000) == b"p" * 5000
    cold_cost = machine.clock.now - before

    before = machine.clock.now
    assert reader.read(0, 5000) == b"p" * 5000
    warm_cost = machine.clock.now - before

    # A warm read pays one local-latency hop, no disk access at all.
    assert warm_cost < cold_cost
    assert warm_cost == pytest.approx(machine.network.local_latency)
    assert machine.counters.get(BLOCK_CACHE_HITS) > 0


def test_append_invalidates_cached_tail_chunk(cached_dfs, machines):
    machine = machines[0]
    writer = cached_dfs.create("/g", machine)
    writer.append(b"a" * 1500)  # chunk 0 full, chunk 1 partial
    reader = cached_dfs.open("/g", machine)
    reader.read(0, 1500)  # warm chunks 0 and 1
    cache = cached_dfs.block_cache_for(machine)
    block_id = first_block_id(cached_dfs, "/g")
    assert cache.cached_chunks(block_id) == [0, 1]

    writer.append(b"b" * 300)
    # Only the stale partial tail chunk is dropped; chunk 0 stays warm.
    assert cache.cached_chunks(block_id) == [0]
    reader.refresh()
    assert reader.read(0, 1800) == b"a" * 1500 + b"b" * 300
    writer.close()


def test_delete_invalidates_whole_block(cached_dfs, machines):
    machine = machines[0]
    write_file(cached_dfs, machine, "/h", b"z" * 3000)
    block_id = first_block_id(cached_dfs, "/h")
    cached_dfs.open("/h", machine).read(0, 3000)
    cache = cached_dfs.block_cache_for(machine)
    assert cache.cached_chunks(block_id)
    cached_dfs.delete("/h")
    assert cache.cached_chunks(block_id) == []


def test_drop_block_caches_empties_every_machine(cached_dfs, machines):
    write_file(cached_dfs, machines[0], "/i", b"q" * 2000)
    for machine in machines[:2]:
        cached_dfs.open("/i", machine).read(0, 2000)
        assert len(cached_dfs.block_cache_for(machine)) > 0
    cached_dfs.drop_block_caches()
    for machine in machines[:2]:
        assert len(cached_dfs.block_cache_for(machine)) == 0


def test_cached_reads_return_same_bytes_as_uncached(machines, dfs, cached_dfs):
    payload = bytes(range(256)) * 40  # 10240 bytes, not chunk-aligned
    for fs in (dfs, cached_dfs):
        write_file(fs, machines[0], "/same", payload)
    plain = dfs.open("/same", machines[0])
    cached = cached_dfs.open("/same", machines[0])
    for offset, length in [(0, 10240), (1000, 24), (1023, 2), (10239, 1), (0, 1)]:
        assert cached.read(offset, length) == plain.read(offset, length)
        # Twice: the second time is served from cache.
        assert cached.read(offset, length) == plain.read(offset, length)
