"""Edge cases of the re-replication sweep: rack-aware target choice,
degraded clusters, sources dying mid-pass, stale copies on revived nodes,
partitions, and the heartbeat-driven repair queue."""

import pytest

from repro.dfs.filesystem import DFS
from repro.errors import DFSError
from repro.sim.failure import CP_DFS_REREPLICATE, FaultPlan, fault_plan
from repro.sim.machine import Machine
from repro.sim.network import NetworkModel


@pytest.fixture
def network():
    return NetworkModel()


@pytest.fixture
def machines(network):
    return [
        Machine(f"node-{i}", rack=f"rack-{i % 2}", network=network)
        for i in range(4)
    ]


@pytest.fixture
def dfs(machines):
    return DFS(machines, replication=3, block_size=1 << 16)


def _block(dfs, path):
    return dfs.namenode.get_file(path).blocks[0]


def test_target_prefers_rack_without_replica(machines, network):
    # Replication 2 on 4 nodes leaves two candidate targets in different
    # racks; the one whose rack holds no replica must win.
    dfs = DFS(machines, replication=2, block_size=1 << 16)
    dfs.create("/f", machines[0]).append(b"rack-aware")
    block = _block(dfs, "/f")
    # Placement: node-0 (rack-0) + one node in rack-1.
    rack1_holder = next(n for n in block.locations if n != "node-0")
    dfs.datanode(rack1_holder).fail()
    assert dfs.rereplicate() == 1
    # Candidates were the rack-0 spare and the rack-1 spare; rack-1 has no
    # live replica so its spare must have been chosen.
    added = block.locations[-1]
    assert dfs.namenode.rack_of(added) == "rack-1"


def test_degraded_cluster_caps_replica_want(dfs, machines):
    # Only 2 datanodes survive on a replication-3 DFS: the sweep restores
    # as many replicas as there are live nodes and stops calling the
    # block under-replicated.
    dfs.create("/f", machines[0]).append(b"degraded")
    block = _block(dfs, "/f")
    non_holder = next(m.name for m in machines if m.name not in block.locations)
    dead = [n for n in block.locations if n != "node-0"][:2]
    for name in dead:
        dfs.datanode(name).fail()
    created = dfs.rereplicate()
    assert created == 1  # want = min(replication=3, live nodes=2)
    live = [n for n in block.locations if dfs.datanodes[n].alive]
    assert sorted(live) == sorted(["node-0", non_holder])
    assert block.block_id not in dfs.namenode.under_replicated


def test_source_death_mid_pass_fails_over_to_survivor(dfs, machines):
    dfs.create("/f", machines[0]).append(b"survivor-sourced")
    block = _block(dfs, "/f")
    first, second, third = block.locations
    dfs.datanode(first).fail()
    plan = FaultPlan()
    # The moment the sweep reaches this block, its first live source dies.
    plan.add(
        CP_DFS_REREPLICATE,
        lambda ctx: dfs.datanode(second).fail(),
        block=block.block_id,
    )
    with fault_plan(plan):
        created = dfs.rereplicate()
    assert created == 1  # copied from the remaining survivor
    target = block.locations[-1]
    assert target not in (first, second, third)
    assert dfs.datanode(target).block_length(block.block_id) == len(
        b"survivor-sourced"
    )


def test_all_sources_dead_mid_pass_raises_in_strict_mode(dfs, machines):
    dfs.create("/f", machines[0]).append(b"doomed")
    block = _block(dfs, "/f")
    survivors = list(block.locations[1:])
    dfs.datanode(block.locations[0]).fail()

    def kill_survivors(_ctx):
        for name in survivors:
            dfs.datanode(name).fail()

    plan = FaultPlan()
    plan.add(CP_DFS_REREPLICATE, kill_survivors, block=block.block_id)
    with fault_plan(plan):
        with pytest.raises(DFSError):
            dfs.rereplicate()


def test_no_live_replica_skipped_in_background_mode(dfs, machines):
    dfs.create("/f", machines[0]).append(b"lost")
    block = _block(dfs, "/f")
    dfs.namenode.report_under_replicated(block.block_id)
    for name in block.locations:
        dfs.datanode(name).fail()
    # The background heartbeat pass must not raise; the block stays
    # queued in case a replica holder comes back.
    assert dfs.heartbeat() == 0
    assert block.block_id in dfs.namenode.under_replicated


def test_stale_copy_on_revived_node_is_replaced(dfs, machines):
    writer = dfs.create("/f", machines[0])
    writer.append(b"old")
    block = _block(dfs, "/f")
    stale = block.locations[-1]
    non_holder = next(m.name for m in machines if m.name not in block.locations)
    dfs.datanode(stale).fail()
    writer.append(b"+new")  # pipeline prunes the dead replica
    assert stale not in block.locations
    assert block.block_id in dfs.namenode.under_replicated
    # The node comes back with its short pre-crash replica on disk; the
    # spare node stays down so the revived node is the only target.
    dfs.datanode(non_holder).fail()
    dfs.datanode(stale).machine.restart()
    assert dfs.datanode(stale).block_length(block.block_id) == len(b"old")
    assert dfs.heartbeat() == 1
    assert stale in block.locations
    assert dfs.datanode(stale).block_length(block.block_id) == len(b"old+new")


def test_partitioned_target_left_queued_until_heal(dfs, machines, network):
    dfs.create("/f", machines[0]).append(b"partitioned")
    block = _block(dfs, "/f")
    non_holder = next(m.name for m in machines if m.name not in block.locations)
    dfs.datanode(block.locations[-1]).fail()
    network.partitions.isolate(non_holder)
    # The only candidate target is unreachable: nothing is copied, the
    # block stays queued rather than erroring out of the sweep.
    assert dfs.rereplicate() == 0
    assert block.block_id in dfs.namenode.under_replicated
    network.partitions.heal()
    assert dfs.rereplicate() == 1
    assert non_holder in block.locations
    assert block.block_id not in dfs.namenode.under_replicated


def test_heartbeat_noop_when_queue_empty(dfs, machines):
    dfs.create("/f", machines[0]).append(b"healthy")
    assert dfs.heartbeat() == 0


def test_degraded_allocation_places_on_survivors(machines):
    dfs = DFS(
        machines, replication=3, block_size=1 << 16, degraded_allocation=True
    )
    for name in ("node-2", "node-3"):
        dfs.datanode(name).fail()
    writer = dfs.create("/f", machines[0])
    writer.append(b"short-handed")
    block = _block(dfs, "/f")
    assert sorted(block.locations) == ["node-0", "node-1"]
    # The short placement is queued for repair, and once a node returns
    # the heartbeat completes the replica set.
    assert block.block_id in dfs.namenode.under_replicated
    dfs.datanode("node-2").machine.restart()
    assert dfs.heartbeat() == 1
    assert sorted(block.locations) == ["node-0", "node-1", "node-2"]


def test_strict_allocation_still_refuses_when_degraded_off(machines):
    from repro.errors import ReplicationError

    dfs = DFS(machines, replication=3, block_size=1 << 16)
    for name in ("node-2", "node-3"):
        dfs.datanode(name).fail()
    with pytest.raises(ReplicationError):
        dfs.create("/f", machines[0]).append(b"refused")
