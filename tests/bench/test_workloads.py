"""YCSB and TPC-W workload definition tests."""

import pytest

from repro.bench.tpcw import TPCW_MIXES, TPCWWorkload
from repro.bench.ycsb import YCSBWorkload, make_key


class TestYCSB:
    def test_keys_are_sortable_fixed_width(self):
        assert make_key(5) == b"000000000005"
        assert make_key(1_999_999_999) == b"001999999999"

    def test_load_keys_unique_and_sorted(self):
        w = YCSBWorkload(records_per_node=100)
        keys = w.load_keys(3)
        assert len(keys) == 300
        assert keys == sorted(keys)
        assert len(set(keys)) == 300

    def test_keys_property_requires_load(self):
        with pytest.raises(RuntimeError):
            YCSBWorkload().keys

    def test_value_size(self):
        assert len(YCSBWorkload(record_size=1000).value()) == 1000

    def test_operation_mix_ratio(self):
        w = YCSBWorkload(records_per_node=100, update_fraction=0.75)
        w.load_keys(1)
        ops = list(w.operations(4000))
        updates = sum(1 for kind, _ in ops if kind == "update")
        assert 0.70 < updates / 4000 < 0.80

    def test_operations_use_loaded_keys(self):
        w = YCSBWorkload(records_per_node=50)
        keys = set(w.load_keys(1))
        assert all(key in keys for _, key in w.operations(500))

    def test_streams_deterministic_per_offset(self):
        w = YCSBWorkload(records_per_node=50)
        w.load_keys(1)
        a = list(w.operations(100, seed_offset=1))
        b = list(w.operations(100, seed_offset=1))
        c = list(w.operations(100, seed_offset=2))
        assert a == b
        assert a != c


class TestTPCW:
    def test_mix_fractions(self):
        assert TPCW_MIXES == {"browsing": 0.05, "shopping": 0.20, "ordering": 0.50}

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError):
            TPCWWorkload(mix="buying")

    def test_entities_sorted_unique(self):
        w = TPCWWorkload(products_per_node=50, customers_per_node=50)
        products, customers = w.generate_entities(2)
        assert len(products) == 100 and len(set(products)) == 100
        assert products == sorted(products)
        assert len(customers) == 100

    def test_order_key_shares_customer_prefix(self):
        key = TPCWWorkload.order_key(b"000000000123", 7)
        assert key.startswith(b"000000000123")
        assert key != b"000000000123"

    def test_transaction_mix_ratio(self):
        w = TPCWWorkload(mix="ordering", products_per_node=100, customers_per_node=100)
        products, customers = w.generate_entities(1)
        txns = list(w.transactions(2000, products, customers))
        orders = sum(1 for kind, *_ in txns if kind == "order")
        assert 0.45 < orders / 2000 < 0.55

    def test_order_sequence_numbers_unique(self):
        w = TPCWWorkload(mix="ordering", products_per_node=10, customers_per_node=10)
        products, customers = w.generate_entities(1)
        seqs = [seq for kind, _, seq in w.transactions(500, products, customers) if kind == "order"]
        assert len(seqs) == len(set(seqs))
