"""Report formatting edge cases."""

from repro.bench.report import format_series, format_table


def test_empty_rows():
    out = format_table("T", ["a"], [])
    assert out.splitlines() == ["T", "-", "a"]


def test_float_formatting_four_sig_figs():
    out = format_table("T", ["x"], [[0.123456]])
    assert "0.1235" in out


def test_large_numbers_scientific():
    out = format_table("T", ["x"], [[123456789.0]])
    assert "e+08" in out


def test_mixed_cell_types():
    out = format_table("T", ["a", "b", "c"], [[1, "text", 2.5]])
    assert "text" in out and "2.5" in out


def test_columns_aligned():
    out = format_table("T", ["name", "v"], [["short", 1], ["a-much-longer-name", 2]])
    lines = out.splitlines()
    # All data rows have the value column starting at the same offset.
    positions = {line.rstrip().rfind(" ") for line in lines[3:]}
    assert len(positions) == 1


def test_series_missing_points_blank():
    out = format_series("S", "x", {"a": {1: 10.0}, "b": {2: 20.0}})
    lines = out.splitlines()
    assert any("1" in line and "10" in line for line in lines)
    assert any("2" in line and "20" in line for line in lines)


def test_series_x_values_sorted():
    out = format_series("S", "x", {"a": {3: 1.0, 1: 2.0, 2: 3.0}})
    body = out.splitlines()[3:]
    xs = [int(line.split()[0]) for line in body]
    assert xs == [1, 2, 3]
