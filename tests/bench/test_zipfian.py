"""Distribution generator tests."""

from collections import Counter

import pytest

from repro.bench.zipfian import UniformGenerator, ZipfianGenerator


def test_uniform_stays_in_domain():
    gen = UniformGenerator(10, seed=1)
    samples = [gen.next() for _ in range(1000)]
    assert all(0 <= s < 10 for s in samples)
    assert len(set(samples)) == 10


def test_uniform_rejects_empty_domain():
    with pytest.raises(ValueError):
        UniformGenerator(0)


def test_zipfian_stays_in_domain():
    gen = ZipfianGenerator(100, seed=2)
    assert all(0 <= gen.next() < 100 for _ in range(2000))


def test_zipfian_is_skewed():
    gen = ZipfianGenerator(1000, theta=1.0, seed=3, scrambled=False)
    counts = Counter(gen.next() for _ in range(20_000))
    top = counts.most_common(10)
    top_share = sum(c for _, c in top) / 20_000
    assert top_share > 0.3  # heavy head
    assert counts[0] == counts.most_common(1)[0][1]  # rank 0 is hottest


def test_unscrambled_ranks_monotone_popularity():
    gen = ZipfianGenerator(100, theta=1.0, seed=4, scrambled=False)
    counts = Counter(gen.next() for _ in range(50_000))
    assert counts[0] > counts[50] > counts.get(99, 0)


def test_scrambled_spreads_hot_keys():
    plain = ZipfianGenerator(1000, seed=5, scrambled=False)
    scrambled = ZipfianGenerator(1000, seed=5, scrambled=True)
    hot_plain = Counter(plain.next() for _ in range(10_000)).most_common(1)[0][0]
    hot_scrambled = Counter(scrambled.next() for _ in range(10_000)).most_common(1)[0][0]
    assert hot_plain == 0
    assert hot_scrambled != 0  # hashed away from rank order


def test_deterministic_given_seed():
    a = ZipfianGenerator(500, seed=9)
    b = ZipfianGenerator(500, seed=9)
    assert [a.next() for _ in range(100)] == [b.next() for _ in range(100)]


def test_theta_one_is_clamped_not_crashing():
    gen = ZipfianGenerator(100, theta=1.0)
    assert 0 <= gen.next() < 100
