"""CLI smoke tests (the `python -m repro.bench.cli` entry point)."""

import pytest

from repro.bench.cli import build_parser, main


def run_cli(capsys, *argv) -> str:
    main(list(argv))
    return capsys.readouterr().out


def test_load_command(capsys):
    out = run_cli(capsys, "--records", "60", "--systems", "logbase,hbase", "load")
    assert "Parallel load" in out
    assert "logbase" in out and "hbase" in out


def test_mixed_command(capsys):
    out = run_cli(
        capsys, "--records", "60", "--ops", "20", "--systems", "logbase", "mixed"
    )
    assert "Mixed workload" in out
    assert "update ms" in out


def test_reads_command(capsys):
    out = run_cli(
        capsys, "--records", "60", "--ops", "10", "--systems", "logbase", "reads"
    )
    assert "Cold random reads" in out


def test_tpcw_command(capsys):
    out = run_cli(capsys, "--records", "15", "--ops", "5", "tpcw")
    assert "TPC-W latency" in out and "TPC-W throughput" in out


def test_stats_command(capsys):
    out = run_cli(capsys, "--records", "40", "--ops", "10", "stats")
    assert "cluster: 3 servers" in out


def test_unknown_system_rejected():
    with pytest.raises(SystemExit):
        main(["--systems", "oracle", "load"])


def test_parser_defaults():
    args = build_parser().parse_args(["load"])
    assert args.nodes == 3
    assert args.systems == "logbase,hbase,lrs"
