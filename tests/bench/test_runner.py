"""Harness tests: adapters and the load/mixed/read runners."""

import pytest

from repro.bench.adapters import make_hbase, make_logbase, make_lrs
from repro.bench.report import format_series, format_table
from repro.bench.runner import (
    run_load,
    run_mixed,
    run_random_reads,
    run_range_scans,
    run_sequential_scan,
)
from repro.bench.ycsb import YCSBWorkload

RECORDS = 120


@pytest.fixture
def workload():
    return YCSBWorkload(records_per_node=RECORDS, record_size=200, update_fraction=0.95)


def test_load_inserts_everything(workload):
    adapter = make_logbase(3, records_per_node=RECORDS, record_size=200)
    result = run_load(adapter, workload)
    assert result.records == 3 * RECORDS
    assert result.seconds > 0
    rows, _ = run_sequential_scan(adapter)
    assert rows == 3 * RECORDS


def test_hbase_load_slower_than_logbase(workload):
    lb = run_load(make_logbase(3, records_per_node=RECORDS, record_size=200), workload)
    w2 = YCSBWorkload(records_per_node=RECORDS, record_size=200, update_fraction=0.95)
    hb = run_load(make_hbase(3, records_per_node=RECORDS, record_size=200), w2)
    assert hb.seconds > 1.3 * lb.seconds  # paper: ~2x


def test_lrs_load_close_to_logbase(workload):
    lb = run_load(make_logbase(3, records_per_node=RECORDS, record_size=200), workload)
    w2 = YCSBWorkload(records_per_node=RECORDS, record_size=200, update_fraction=0.95)
    lrs = run_load(make_lrs(3, records_per_node=RECORDS, record_size=200), w2)
    assert lrs.seconds < 2.0 * lb.seconds  # paper: "slightly lower"


def test_mixed_phase_collects_latencies(workload):
    adapter = make_logbase(3, records_per_node=RECORDS, record_size=200)
    run_load(adapter, workload)
    result = run_mixed(adapter, workload, ops_per_node=60)
    assert result.ops == 180
    assert result.update_latencies and result.read_latencies
    assert result.throughput > 0
    assert result.mean_update_ms > 0


def test_cold_reads_slower_than_warm(workload):
    adapter = make_logbase(3, records_per_node=RECORDS, record_size=200)
    run_load(adapter, workload)
    cold = run_random_reads(adapter, workload.keys, 40, cold=True)
    warm = run_random_reads(adapter, workload.keys, 40, cold=False)
    assert cold > warm


def test_range_scan_latency_grows_with_size(workload):
    adapter = make_logbase(3, records_per_node=RECORDS, record_size=200)
    run_load(adapter, workload)
    latencies = run_range_scans(adapter, workload.keys, [5, 40], repeats=3)
    assert latencies[40] > latencies[5]


def test_format_table_alignment():
    out = format_table("T", ["a", "bb"], [[1, 2.5], ["xx", 3]])
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[2] and "bb" in lines[2]
    assert len(lines) == 5


def test_format_series_merges_x_axis():
    out = format_series("S", "n", {"sys1": {3: 1.0}, "sys2": {3: 2.0, 6: 4.0}})
    assert "sys1" in out and "sys2" in out
    assert "6" in out
