"""TPC-W runner tests (the §4.4 experiment driver)."""

import pytest

from repro import LogBase, LogBaseConfig
from repro.bench.tpcw import TPCWWorkload
from repro.bench.tpcw_runner import run_tpcw, setup_tpcw


@pytest.fixture
def db():
    return LogBase(3, LogBaseConfig(segment_size=256 * 1024))


def test_setup_loads_entities(db):
    workload = TPCWWorkload(products_per_node=20, customers_per_node=20)
    products, customers = setup_tpcw(db, workload)
    assert len(products) == 60 and len(customers) == 60
    assert db.get("item", products[0], "detail") is not None
    assert db.get("cart", customers[0], "cart") is not None


def test_run_produces_metrics(db):
    workload = TPCWWorkload(
        products_per_node=20, customers_per_node=20, mix="shopping"
    )
    result = run_tpcw(db, workload, txns_per_node=10)
    assert result.txns == 30
    assert result.aborts == 0  # no concurrent conflicts in a serial run
    assert result.seconds > 0
    assert result.throughput > 0
    assert len(result.latencies) == 30
    assert result.mean_latency_ms > 0


def test_orders_written_by_update_transactions(db):
    workload = TPCWWorkload(
        products_per_node=20, customers_per_node=20, mix="ordering"
    )
    result = run_tpcw(db, workload, txns_per_node=15)
    orders = sum(
        1 for server in db.cluster.servers for _ in server.full_scan("orders", "order")
    )
    # ~50 % of 45 transactions place orders.
    assert orders > 10
    assert result.txns == 45


def test_order_transactions_avoid_2pc(db):
    """Entity-group key design keeps cart + order on one tablet (§3.2)."""
    workload = TPCWWorkload(products_per_node=10, customers_per_node=10, mix="ordering")
    products, customers = setup_tpcw(db, workload)
    customer = customers[0]
    master = db.cluster.master
    cart_owner, _ = master.locate("cart", customer)
    order_owner, _ = master.locate("orders", TPCWWorkload.order_key(customer, 1))
    assert cart_owner == order_owner


def test_browsing_faster_than_ordering(db):
    browsing = run_tpcw(
        LogBase(3, LogBaseConfig(segment_size=256 * 1024)),
        TPCWWorkload(products_per_node=20, customers_per_node=20, mix="browsing"),
        txns_per_node=15,
    )
    ordering = run_tpcw(
        LogBase(3, LogBaseConfig(segment_size=256 * 1024)),
        TPCWWorkload(products_per_node=20, customers_per_node=20, mix="ordering"),
        txns_per_node=15,
    )
    assert browsing.mean_latency_ms < ordering.mean_latency_ms
    assert browsing.throughput > ordering.throughput
