"""Property tests over random two-transaction interleavings.

Generates arbitrary interleavings of two read/write transactions over a
small key set and checks the snapshot-isolation invariants hold on every
schedule: reads are stable per transaction, first committer wins on
write-write overlap, and committed state equals one of the permitted
serializations.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ColumnGroup, LogBase, LogBaseConfig, TableSchema
from repro.errors import TransactionAborted

SCHEMA = TableSchema("t", "k", (ColumnGroup("g", ("v",)),))
KEYS = [b"000000000100", b"000000000200", b"000000000300"]

# Each step: (txn index, op, key index). Commits are appended afterwards
# in a generated order.
steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),
        st.sampled_from(["read", "write"]),
        st.integers(min_value=0, max_value=len(KEYS) - 1),
    ),
    min_size=1,
    max_size=10,
)
commit_order = st.permutations([0, 1])


def fresh_db() -> LogBase:
    db = LogBase(3, LogBaseConfig(segment_size=256 * 1024))
    db.create_table(SCHEMA)
    for key in KEYS:
        db.put("t", key, {"g": {"v": b"init"}})
    return db


@given(steps, commit_order)
@settings(max_examples=50, deadline=None)
def test_reads_stable_within_transaction(ops, order):
    """No fuzzy reads on any interleaving: a transaction that reads the
    same key twice sees the same value, regardless of the other
    transaction's activity in between."""
    db = fresh_db()
    txns = [db.begin(), db.begin()]
    first_read: dict[tuple[int, int], bytes | None] = {}
    for txn_idx, op, key_idx in ops:
        txn = txns[txn_idx]
        key = KEYS[key_idx]
        if op == "read":
            row = txn.read("t", key, "g")
            value = None if row is None else row["v"]
            slot = (txn_idx, key_idx)
            if slot in first_read:
                # Own writes may change the view; only check if this txn
                # never wrote the key.
                if ("t", key, "g") not in txn.writes:
                    assert value == first_read[slot]
            else:
                if ("t", key, "g") not in txn.writes:
                    first_read[slot] = value
        else:
            txn.write("t", key, "g", {"v": f"t{txn_idx}".encode()})
    for idx in order:
        try:
            txns[idx].commit()
        except TransactionAborted:
            pass


@given(steps, commit_order)
@settings(max_examples=50, deadline=None)
def test_first_committer_wins_on_overlap(ops, order):
    """If both transactions write a common key, at most one commits."""
    db = fresh_db()
    txns = [db.begin(), db.begin()]
    writes: list[set[int]] = [set(), set()]
    for txn_idx, op, key_idx in ops:
        txn = txns[txn_idx]
        key = KEYS[key_idx]
        if op == "read":
            txn.read("t", key, "g")
        else:
            txn.write("t", key, "g", {"v": f"t{txn_idx}".encode()})
            writes[txn_idx].add(key_idx)
    outcomes = []
    for idx in order:
        try:
            txns[idx].commit()
            outcomes.append(idx)
        except TransactionAborted:
            pass
    overlap = writes[0] & writes[1]
    if overlap and all(writes):
        assert len(outcomes) <= 1 or not overlap, (
            f"both committed with overlapping writes {overlap}"
        )
    # The first committer always succeeds (no prior conflicting commit).
    if writes[order[0]]:
        assert order[0] in outcomes


@given(steps, commit_order)
@settings(max_examples=50, deadline=None)
def test_final_state_from_committed_transactions_only(ops, order):
    """Every key's final value was written by a committed transaction (or
    is the initial value) — aborted writes never leak."""
    db = fresh_db()
    txns = [db.begin(), db.begin()]
    for txn_idx, op, key_idx in ops:
        txn = txns[txn_idx]
        key = KEYS[key_idx]
        if op == "read":
            txn.read("t", key, "g")
        else:
            txn.write("t", key, "g", {"v": f"t{txn_idx}".encode()})
    committed: set[int] = set()
    for idx in order:
        try:
            txns[idx].commit()
            committed.add(idx)
        except TransactionAborted:
            pass
    allowed = {b"init"} | {f"t{idx}".encode() for idx in committed}
    for key in KEYS:
        value = db.get("t", key, "g")["v"]
        assert value in allowed
