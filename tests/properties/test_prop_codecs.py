"""Property tests for the wire codecs: varint, CRC, records, group values."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schema import decode_group_value, encode_group_value
from repro.util.crc import crc32c
from repro.util.varint import decode_uvarint, encode_uvarint
from repro.wal.record import LogRecord, RecordType


@given(st.integers(min_value=0, max_value=2**63 - 1))
def test_varint_roundtrip(value):
    decoded, offset = decode_uvarint(encode_uvarint(value))
    assert decoded == value
    assert offset == len(encode_uvarint(value))


@given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=20))
def test_varint_sequence_roundtrip(values):
    buf = b"".join(encode_uvarint(v) for v in values)
    pos = 0
    out = []
    while pos < len(buf):
        value, pos = decode_uvarint(buf, pos)
        out.append(value)
    assert out == values


@given(st.binary(max_size=512), st.integers(min_value=0, max_value=511))
def test_crc_incremental_equals_whole(data, split):
    split = min(split, len(data))
    assert crc32c(data) == crc32c(data[split:], crc32c(data[:split]))


record_strategy = st.builds(
    LogRecord,
    record_type=st.sampled_from(list(RecordType)),
    lsn=st.integers(min_value=0, max_value=2**40),
    txn_id=st.integers(min_value=0, max_value=2**30),
    table=st.text(max_size=20),
    tablet=st.text(max_size=20),
    key=st.binary(max_size=64),
    group=st.text(max_size=20),
    timestamp=st.integers(min_value=0, max_value=2**50),
    value=st.one_of(st.none(), st.binary(max_size=256)),
)


@given(record_strategy)
@settings(max_examples=200)
def test_log_record_roundtrip(record):
    decoded, offset = LogRecord.decode(record.encode())
    assert decoded == record
    assert offset == record.encoded_size()


@given(record_strategy)
def test_slim_record_preserves_data_fields(record):
    decoded, _ = LogRecord.decode(record.encode(slim=True))
    assert decoded.key == record.key
    assert decoded.value == record.value
    assert decoded.timestamp == record.timestamp
    assert decoded.lsn == record.lsn
    assert decoded.txn_id == record.txn_id


@given(st.lists(record_strategy, max_size=10))
def test_concatenated_records_parse_back(records):
    buf = b"".join(r.encode() for r in records)
    pos = 0
    out = []
    while pos < len(buf):
        record, pos = LogRecord.decode(buf, pos)
        out.append(record)
    assert out == records


group_values = st.dictionaries(
    st.text(min_size=1, max_size=16), st.binary(max_size=64), max_size=8
)


@given(group_values)
def test_group_value_roundtrip(values):
    assert decode_group_value(encode_group_value(values)) == values
