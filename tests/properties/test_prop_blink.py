"""Model-based property tests: the B-link tree against a dict oracle."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.blink import BLinkTreeIndex
from repro.wal.record import LogPointer

keys = st.binary(min_size=1, max_size=8)
timestamps = st.integers(min_value=1, max_value=1000)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), keys, timestamps),
        st.tuples(st.just("delete"), keys),
    ),
    max_size=120,
)


def apply_ops(ops):
    tree = BLinkTreeIndex(order=4)
    model: dict[tuple[bytes, int], LogPointer] = {}
    counter = 0
    for op in ops:
        if op[0] == "insert":
            _, key, ts = op
            counter += 1
            pointer = LogPointer(1, counter, 1)
            tree.insert(key, ts, pointer)
            model[(key, ts)] = pointer
        else:
            _, key = op
            tree.delete_key(key)
            for composite in [c for c in model if c[0] == key]:
                del model[composite]
    return tree, model


@given(operations)
@settings(max_examples=150, deadline=None)
def test_tree_matches_model(ops):
    tree, model = apply_ops(ops)
    assert len(tree) == len(model)
    entries = {(e.key, e.timestamp): e.pointer for e in tree.entries()}
    assert entries == model


@given(operations)
@settings(max_examples=100, deadline=None)
def test_structural_invariants_always_hold(ops):
    tree, _ = apply_ops(ops)
    tree.check_invariants()


@given(operations, keys)
@settings(max_examples=100, deadline=None)
def test_lookup_latest_matches_model(ops, probe):
    tree, model = apply_ops(ops)
    expected = max(
        (ts for (key, ts) in model if key == probe), default=None
    )
    got = tree.lookup_latest(probe)
    if expected is None:
        assert got is None
    else:
        assert got.timestamp == expected


@given(operations, keys, timestamps)
@settings(max_examples=100, deadline=None)
def test_lookup_asof_matches_model(ops, probe, asof):
    tree, model = apply_ops(ops)
    expected = max(
        (ts for (key, ts) in model if key == probe and ts <= asof), default=None
    )
    got = tree.lookup_asof(probe, asof)
    if expected is None:
        assert got is None
    else:
        assert got.timestamp == expected


@given(operations, keys, keys)
@settings(max_examples=100, deadline=None)
def test_range_scan_matches_model(ops, lo, hi):
    if lo > hi:
        lo, hi = hi, lo
    tree, model = apply_ops(ops)
    expected = sorted((key, ts) for (key, ts) in model if lo <= key < hi)
    got = [(e.key, e.timestamp) for e in tree.range_scan(lo, hi)]
    assert got == expected
