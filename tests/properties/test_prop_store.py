"""Model-based property tests of the full tablet server against a dict
oracle, including crash/recover and compaction at arbitrary points —
the strongest durability statement in the suite."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import LogBaseConfig
from repro.coordination.tso import TimestampOracle
from repro.coordination.znodes import CoordinationService
from repro.core.checkpoint import CheckpointManager
from repro.core.partition import KeyRange
from repro.core.recovery import recover_server
from repro.core.schema import ColumnGroup, TableSchema
from repro.core.tablet import Tablet, TabletId
from repro.core.tablet_server import TabletServer
from repro.dfs.filesystem import DFS
from repro.sim.machine import Machine

SCHEMA = TableSchema("t", "id", (ColumnGroup("g", ("v",)),))

keys = st.sampled_from([f"k{i}".encode() for i in range(8)])
values = st.binary(min_size=1, max_size=32)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, values),
        st.tuples(st.just("delete"), keys),
        st.tuples(st.just("compact")),
        st.tuples(st.just("checkpoint")),
        st.tuples(st.just("crash_recover")),
    ),
    max_size=40,
)


def fresh_server():
    machines = [Machine(f"n{i}") for i in range(3)]
    dfs = DFS(machines, replication=3, block_size=1 << 20)
    tso = TimestampOracle(CoordinationService())
    server = TabletServer(
        "ts-p", machines[0], dfs, tso, LogBaseConfig(segment_size=4096)
    )
    server.assign_tablet(Tablet(TabletId("t", 0), KeyRange(b"", None), SCHEMA))
    return server, CheckpointManager(dfs, server)


@given(operations)
@settings(max_examples=60, deadline=None)
def test_server_matches_model_through_failures(ops):
    server, checkpoints = fresh_server()
    model: dict[bytes, bytes] = {}
    for op in ops:
        if op[0] == "put":
            _, key, value = op
            server.write("t", key, {"g": value})
            model[key] = value
        elif op[0] == "delete":
            _, key = op
            server.delete("t", key, "g")
            model.pop(key, None)
        elif op[0] == "compact":
            server.compact()
        elif op[0] == "checkpoint":
            checkpoints.write_checkpoint()
        else:  # crash_recover
            server.crash()
            server.restart()
            server.assign_tablet(Tablet(TabletId("t", 0), KeyRange(b"", None), SCHEMA))
            recover_server(server, checkpoints)
    # Final state must equal the model exactly.
    for key in [f"k{i}".encode() for i in range(8)]:
        result = server.read("t", key, "g")
        if key in model:
            assert result is not None and result[1] == model[key]
        else:
            assert result is None
    scanned = {key: value for key, _, value in server.range_scan("t", "g", b"", b"z")}
    assert scanned == model


@given(operations)
@settings(max_examples=40, deadline=None)
def test_version_history_is_append_only(ops):
    """Historical reads never change once written (multiversion access)."""
    server, checkpoints = fresh_server()
    history: list[tuple[bytes, int, bytes]] = []
    deleted_at: dict[bytes, int] = {}
    for op in ops:
        if op[0] == "put":
            _, key, value = op
            ts = server.write("t", key, {"g": value})
            history.append((key, ts, value))
        elif op[0] == "delete":
            _, key = op
            server.delete("t", key, "g")
            deleted_at[key] = max(
                (ts for k, ts, _ in history if k == key), default=0
            )
        elif op[0] == "checkpoint":
            checkpoints.write_checkpoint()
        elif op[0] == "crash_recover":
            server.crash()
            server.restart()
            server.assign_tablet(Tablet(TabletId("t", 0), KeyRange(b"", None), SCHEMA))
            recover_server(server, checkpoints)
        # NOTE: no compact here — compaction with max_versions=None keeps
        # versions but deletes purge history, handled via deleted_at.
    for key, ts, value in history:
        if ts <= deleted_at.get(key, 0):
            continue  # purged by a later delete
        result = server.read("t", key, "g", as_of=ts)
        assert result == (ts, value)
