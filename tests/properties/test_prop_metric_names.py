"""Property: every metric name the monitoring plane emits is registered.

The frozen :class:`~repro.sim.metrics.MetricNameRegistry` is the single
vocabulary for counters, gauges, histograms, and scraped series.  Two
angles here:

* an exhaustive check over a real monitored run — every name that lands
  in the scraper's store, the stats report, the alert rules, and the
  flight-recorder bundles validates against the registry;
* hypothesis properties of the registry itself — registered prefixes
  are closed over suffixes, exact names round-trip, and everything else
  is rejected.
"""

import string

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.chaos.runner import GROUP, KEY_WIDTH, SCHEMA, TABLE
from repro.config import LogBaseConfig
from repro.core.database import LogBase
from repro.core.stats import collect_cluster_stats
from repro.obs.alerts import SloRule
from repro.obs.monitor import default_rules
from repro.sim.metrics import REGISTRY, validate_metric_name


def _emitted_names() -> set[str]:
    """Every metric name a monitored run (workload + fault) emits."""
    config = LogBaseConfig.with_monitoring(
        segment_size=64 * 1024,
        monitor_scrape_interval=0.0,
        tracing=True,
        slo_op_p99={"op.put": 0.05},
    )
    db = LogBase(n_nodes=4, config=config)
    db.create_table(SCHEMA, tablets_per_server=2)
    monitor = db.cluster.monitor
    client = db.client(db.cluster.machines[-1])
    keys = [str(i).zfill(KEY_WIDTH).encode() for i in range(30)]
    for key in keys:
        client.put_raw(TABLE, key, GROUP, b"v" * 32)
    for key in keys[:10]:
        client.get_raw(TABLE, key, GROUP)
    db.cluster.heartbeat()
    db.cluster.kill_node(db.cluster.servers[0].name)
    db.cluster.heartbeat()

    names: set[str] = set(monitor.store.metric_names())
    stats = collect_cluster_stats(db.cluster)
    names.update(stats.counters)
    for gauges in stats.health.values():
        names.update(gauges)
    for rule in default_rules(config):
        if isinstance(rule, SloRule):
            names.update((rule.count_series, rule.bad_series))
        else:
            names.add(rule.metric)
    for pm in monitor.postmortem_dicts():
        for per_entity in pm.get("series", {}).values():
            names.update(per_entity)
    monitor.close()
    return names


def test_monitored_run_emits_only_registered_names():
    names = _emitted_names()
    assert names  # the run actually produced series
    for name in sorted(names):
        assert validate_metric_name(name) == name


suffixes = st.text(
    alphabet=string.ascii_lowercase + string.digits + "._", min_size=1, max_size=24
)


@given(suffixes)
def test_registered_prefixes_are_closed_over_suffixes(suffix):
    # "slo." and "latency." are registered prefixes: any suffix is legal.
    assert validate_metric_name(f"slo.{suffix}") == f"slo.{suffix}"
    assert validate_metric_name(f"latency.{suffix}") == f"latency.{suffix}"


@given(st.sampled_from(sorted(REGISTRY.names())))
def test_exact_names_round_trip(name):
    assert validate_metric_name(name) == name


@given(suffixes)
def test_unregistered_names_are_rejected(name):
    assume(not REGISTRY.known(name))
    with pytest.raises(ValueError):
        validate_metric_name(name)
