"""Model-based property tests: the LSM-tree index against a dict oracle,
with flushes and merges interleaved at arbitrary points."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfs.filesystem import DFS
from repro.index.lsm import LSMTreeIndex
from repro.sim.machine import Machine
from repro.wal.record import LogPointer

keys = st.sampled_from([f"k{i}".encode() for i in range(10)])
timestamps = st.integers(min_value=1, max_value=500)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), keys, timestamps),
        st.tuples(st.just("delete"), keys),
        st.tuples(st.just("flush")),
    ),
    max_size=80,
)


def apply_ops(ops):
    machines = [Machine(f"n{i}") for i in range(3)]
    dfs = DFS(machines, replication=3)
    index = LSMTreeIndex(
        dfs, machines[0], "/lsm/prop", memtable_bytes=24 * 6, level0_limit=3
    )
    model: dict[tuple[bytes, int], LogPointer] = {}
    counter = 0
    for op in ops:
        if op[0] == "insert":
            _, key, ts = op
            counter += 1
            pointer = LogPointer(1, counter, 1)
            index.insert(key, ts, pointer)
            model[(key, ts)] = pointer
        elif op[0] == "delete":
            _, key = op
            index.delete_key(key)
            for composite in [c for c in model if c[0] == key]:
                del model[composite]
        else:
            index.flush()
    return index, model


@given(operations)
@settings(max_examples=60, deadline=None)
def test_lsm_matches_model(ops):
    index, model = apply_ops(ops)
    entries = {(e.key, e.timestamp): e.pointer for e in index.entries()}
    assert entries == model
    # len() is an upper bound between a redo re-insert and the next merge
    # (duplicate composites shadow run copies until merged away).
    assert len(index) >= len(model)


@given(operations, keys)
@settings(max_examples=60, deadline=None)
def test_lsm_lookup_latest_matches_model(ops, probe):
    index, model = apply_ops(ops)
    expected = max((ts for (key, ts) in model if key == probe), default=None)
    got = index.lookup_latest(probe)
    if expected is None:
        assert got is None
    else:
        assert got.timestamp == expected
        assert got.pointer == model[(probe, expected)]


@given(operations, keys, timestamps)
@settings(max_examples=60, deadline=None)
def test_lsm_lookup_asof_matches_model(ops, probe, asof):
    index, model = apply_ops(ops)
    expected = max(
        (ts for (key, ts) in model if key == probe and ts <= asof), default=None
    )
    got = index.lookup_asof(probe, asof)
    if expected is None:
        assert got is None
    else:
        assert got.timestamp == expected


@given(operations)
@settings(max_examples=40, deadline=None)
def test_lsm_range_scan_matches_model(ops):
    index, model = apply_ops(ops)
    expected = sorted((key, ts) for (key, ts) in model if b"k2" <= key < b"k7")
    got = [(e.key, e.timestamp) for e in index.range_scan(b"k2", b"k7")]
    assert got == expected
