"""Model-based property tests: the HBase baseline against a dict oracle.

Random interleavings of writes, deletes, flushes, compactions and
crash/recover cycles must leave the store exactly equal to the model —
the WAL+Data machinery (memstores, SSTables, tombstones, WAL replay) has
many moving parts and this exercises their interactions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.hbase.store import HBaseConfig, HBaseRegionServer
from repro.coordination.tso import TimestampOracle
from repro.coordination.znodes import CoordinationService
from repro.core.partition import KeyRange
from repro.core.schema import ColumnGroup, TableSchema
from repro.core.tablet import Tablet, TabletId
from repro.dfs.filesystem import DFS
from repro.sim.machine import Machine

SCHEMA = TableSchema("t", "id", (ColumnGroup("g", ("v",)),))
TABLET = Tablet(TabletId("t", 0), KeyRange(b"", None), SCHEMA)

keys = st.sampled_from([f"k{i}".encode() for i in range(6)])
values = st.binary(min_size=1, max_size=24)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, values),
        st.tuples(st.just("delete"), keys),
        st.tuples(st.just("flush")),
        st.tuples(st.just("compact")),
        st.tuples(st.just("crash_recover")),
    ),
    max_size=30,
)


def fresh_server() -> HBaseRegionServer:
    machines = [Machine(f"n{i}") for i in range(3)]
    dfs = DFS(machines, replication=3)
    tso = TimestampOracle(CoordinationService())
    config = HBaseConfig(memstore_flush_size=512, sstable_block_size=256)
    server = HBaseRegionServer("rs-p", machines[0], dfs, tso, config)
    server.assign_tablet(TABLET)
    return server


def apply_ops(ops):
    server = fresh_server()
    model: dict[bytes, bytes] = {}
    for op in ops:
        if op[0] == "put":
            _, key, value = op
            server.write("t", key, {"g": value})
            model[key] = value
        elif op[0] == "delete":
            _, key = op
            server.delete("t", key, "g")
            model.pop(key, None)
        elif op[0] == "flush":
            server.flush_all()
        elif op[0] == "compact":
            for store in list(server._sstables):
                server.minor_compact(store)
        else:
            server.crash()
            server.restart()
            server.assign_tablet(TABLET)
            server.recover()
    return server, model


@given(operations)
@settings(max_examples=60, deadline=None)
def test_hbase_reads_match_model(ops):
    server, model = apply_ops(ops)
    for key in [f"k{i}".encode() for i in range(6)]:
        result = server.read("t", key, "g")
        if key in model:
            assert result is not None and result[1] == model[key]
        else:
            assert result is None


@given(operations)
@settings(max_examples=40, deadline=None)
def test_hbase_scans_match_model(ops):
    server, model = apply_ops(ops)
    scanned = {key: value for key, _, value in server.full_scan("t", "g")}
    assert scanned == model


@given(operations)
@settings(max_examples=40, deadline=None)
def test_hbase_range_scan_sorted_and_bounded(ops):
    server, model = apply_ops(ops)
    rows = list(server.range_scan("t", "g", b"k1", b"k4"))
    row_keys = [key for key, _, _ in rows]
    assert row_keys == sorted(row_keys)
    assert all(b"k1" <= key < b"k4" for key in row_keys)
    expected = {key for key in model if b"k1" <= key < b"k4"}
    assert set(row_keys) == expected
