"""Unit tests for index file persistence (checkpoint substrate)."""

import pytest

from repro.errors import CorruptLogRecord
from repro.index.blink import BLinkTreeIndex
from repro.index.interface import IndexEntry
from repro.index.persist import (
    decode_entries,
    encode_entries,
    load_index_file,
    write_index_file,
)
from repro.wal.record import LogPointer


def entries(n: int) -> list[IndexEntry]:
    return [
        IndexEntry(f"k{i:04d}".encode(), i + 1, LogPointer(2, i * 64, 64))
        for i in range(n)
    ]


def test_encode_decode_roundtrip():
    original = entries(50)
    assert decode_entries(encode_entries(original)) == original


def test_empty_index_roundtrip():
    assert decode_entries(encode_entries([])) == []


def test_corruption_detected():
    payload = bytearray(encode_entries(entries(5)))
    payload[10] ^= 0xFF
    with pytest.raises(CorruptLogRecord):
        decode_entries(bytes(payload))


def test_bad_magic_detected():
    payload = b"XXXX" + encode_entries(entries(2))[4:]
    with pytest.raises(CorruptLogRecord):
        decode_entries(payload)


def test_write_and_load_via_dfs(dfs, machines):
    index = BLinkTreeIndex()
    for entry in entries(40):
        index.insert(entry.key, entry.timestamp, entry.pointer)
    written = write_index_file(dfs, "/ckpt/idx", machines[0], index)
    assert written > 0

    restored = BLinkTreeIndex()
    loaded = load_index_file(dfs, "/ckpt/idx", machines[1], restored)
    assert loaded == 40
    assert list(restored.entries()) == list(index.entries())


def test_write_overwrites_previous_checkpoint(dfs, machines):
    index = BLinkTreeIndex()
    index.insert(b"a", 1, LogPointer(1, 0, 10))
    write_index_file(dfs, "/ckpt/idx", machines[0], index)
    index.insert(b"b", 2, LogPointer(1, 10, 10))
    write_index_file(dfs, "/ckpt/idx", machines[0], index)

    restored = BLinkTreeIndex()
    assert load_index_file(dfs, "/ckpt/idx", machines[0], restored) == 2


def test_load_charges_io(dfs, machines):
    index = BLinkTreeIndex()
    for entry in entries(100):
        index.insert(entry.key, entry.timestamp, entry.pointer)
    write_index_file(dfs, "/ckpt/idx", machines[0], index)
    before = machines[1].clock.now
    load_index_file(dfs, "/ckpt/idx", machines[1], BLinkTreeIndex())
    assert machines[1].clock.now > before
