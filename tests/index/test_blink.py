"""B-link-tree-specific tests: splits, structure, link invariants."""

import pytest

from repro.index.blink import BLinkTreeIndex
from repro.wal.record import LogPointer


def ptr(n: int) -> LogPointer:
    return LogPointer(1, n, 1)


def test_rejects_tiny_order():
    with pytest.raises(ValueError):
        BLinkTreeIndex(order=2)


def test_height_grows_with_splits():
    tree = BLinkTreeIndex(order=4)
    assert tree.height == 1
    for i in range(50):
        tree.insert(f"{i:04d}".encode(), 1, ptr(i))
    assert tree.height >= 3


def test_invariants_after_ascending_inserts():
    tree = BLinkTreeIndex(order=4)
    for i in range(200):
        tree.insert(f"{i:05d}".encode(), 1, ptr(i))
    tree.check_invariants()


def test_invariants_after_descending_inserts():
    tree = BLinkTreeIndex(order=4)
    for i in reversed(range(200)):
        tree.insert(f"{i:05d}".encode(), 1, ptr(i))
    tree.check_invariants()


def test_invariants_after_interleaved_inserts():
    tree = BLinkTreeIndex(order=4)
    import random

    rng = random.Random(11)
    keys = [f"{i:05d}".encode() for i in range(300)]
    rng.shuffle(keys)
    for i, key in enumerate(keys):
        tree.insert(key, i + 1, ptr(i))
    tree.check_invariants()
    assert len(tree) == 300


def test_leaf_chain_complete_after_splits():
    tree = BLinkTreeIndex(order=4)
    for i in range(100):
        tree.insert(f"{i:03d}".encode(), 1, ptr(i))
    keys = [entry.key for entry in tree.entries()]
    assert keys == [f"{i:03d}".encode() for i in range(100)]


def test_right_links_present_after_split():
    tree = BLinkTreeIndex(order=4)
    for i in range(10):
        tree.insert(f"{i}".encode(), 1, ptr(i))
    # Walk the leaf chain explicitly via right pointers.
    node = tree._root
    while not node.leaf:
        node = node.children[0]
    count = 0
    while node is not None:
        count += len(node.keys)
        if node.right is not None:
            assert node.high_key is not None
        node = node.right
    assert count == 10


def test_delete_then_invariants_hold():
    tree = BLinkTreeIndex(order=4)
    for i in range(100):
        tree.insert(f"{i:03d}".encode(), i % 3 + 1, ptr(i))
    for i in range(0, 100, 2):
        tree.delete_key(f"{i:03d}".encode())
    tree.check_invariants()
    assert tree.lookup_latest(b"001") is not None
    assert tree.lookup_latest(b"002") is None


def test_versions_spanning_multiple_leaves():
    tree = BLinkTreeIndex(order=4)
    for ts in range(1, 30):
        tree.insert(b"hot-key", ts, ptr(ts))
    assert [v.timestamp for v in tree.versions(b"hot-key")] == list(range(1, 30))
    assert tree.delete_key(b"hot-key") == 29
    assert tree.versions(b"hot-key") == []
