"""LSM manifest tests: run metadata surviving restarts (LevelDB MANIFEST)."""

import pytest

from repro.index.lsm import LSMTreeIndex
from repro.wal.record import LogPointer


def ptr(n: int) -> LogPointer:
    return LogPointer(1, n, 1)


@pytest.fixture
def lsm(dfs, machines):
    return LSMTreeIndex(
        dfs, machines[0], "/lsm/mf", memtable_bytes=24 * 8, level0_limit=3
    )


def fill(index, n: int, start: int = 0) -> None:
    for i in range(start, start + n):
        index.insert(f"k{i:03d}".encode(), i + 1, ptr(i))


def test_manifest_written_at_merge(lsm, dfs):
    fill(lsm, 40)  # enough for flushes + at least one merge
    assert lsm.merges >= 1
    assert dfs.exists("/lsm/mf/MANIFEST")


def test_reopen_restores_merged_runs(lsm, dfs, machines):
    fill(lsm, 40)
    assert lsm.merges >= 1
    lsm.flush()  # push the memtable out so runs hold everything pre-merge
    merged_keys = {e.key for e in lsm.entries()}

    reopened = LSMTreeIndex(
        dfs, machines[0], "/lsm/mf", memtable_bytes=24 * 8, level0_limit=3
    )
    runs = reopened.reopen()
    assert runs >= 1
    # Everything covered by the manifest is back without touching the log.
    manifest_keys = {e.key for e in reopened.entries()}
    assert manifest_keys <= merged_keys
    assert len(manifest_keys) > 0
    # A manifest-covered key resolves with the original pointer.
    sample = sorted(manifest_keys)[0]
    assert reopened.lookup_latest(sample) is not None


def test_reopen_without_manifest_is_noop(dfs, machines):
    index = LSMTreeIndex(dfs, machines[1], "/lsm/none")
    assert index.reopen() == 0
    assert len(index) == 0


def test_reopen_then_redo_reinserts_shadow_cleanly(lsm, dfs, machines):
    fill(lsm, 40)
    total = len({(e.key, e.timestamp) for e in lsm.entries()})
    reopened = LSMTreeIndex(
        dfs, machines[0], "/lsm/mf", memtable_bytes=24 * 64, level0_limit=3
    )
    reopened.reopen()
    # Redo replays everything (manifest runs + tail); duplicates shadow.
    fill(reopened, 40)
    entries = {(e.key, e.timestamp) for e in reopened.entries()}
    assert len(entries) == total


def test_run_ids_continue_after_reopen(lsm, dfs, machines):
    fill(lsm, 40)
    reopened = LSMTreeIndex(
        dfs, machines[0], "/lsm/mf", memtable_bytes=24 * 8, level0_limit=3
    )
    reopened.reopen()
    existing = {run.run_id for run in reopened._runs}
    fill(reopened, 16, start=100)  # forces new flushes
    new_ids = {run.run_id for run in reopened._runs} - existing
    assert new_ids and min(new_ids) > max(existing)


def test_destroy_removes_runs_and_manifest(lsm, dfs):
    fill(lsm, 40)
    run_paths = [run.path for run in lsm._runs]
    assert run_paths
    lsm.destroy()
    for path in run_paths:
        assert not dfs.exists(path)
    assert not dfs.exists("/lsm/mf/MANIFEST")


def test_blooms_work_after_reopen(lsm, dfs, machines):
    fill(lsm, 40)
    reopened = LSMTreeIndex(
        dfs, machines[0], "/lsm/mf", memtable_bytes=24 * 8, level0_limit=3
    )
    reopened.reopen()
    machines[0].counters.reset()
    assert reopened.lookup_latest(b"totally-absent") is None
    # Restored bloom filters still short-circuit absent keys.
    assert machines[0].counters.get("disk.reads") <= 1


def test_lrs_server_recovery_reopens_runs(schema, small_config):
    """End to end: a restarted LRS server reopens its LSM runs from the
    manifest; recovery redo fills in the tail; all data readable."""
    from repro import LogBase
    from repro.baselines.lrs.store import make_lrs_config
    from repro.core.recovery import recover_server

    db = LogBase(3, make_lrs_config(small_config))
    db.create_table(schema)
    for server in db.cluster.servers:
        for index in server.indexes().values():
            index._memtable_limit = 24 * 8
    keys = [str(k).zfill(12).encode() for k in range(0, 2_000_000_000, 23_000_009)]
    client = db.client(db.cluster.machines[0])
    for i, key in enumerate(keys):
        client.put("events", key, {"payload": {"body": f"v{i}".encode()}})
    victim = db.cluster.servers[0]
    tablets = list(victim.tablets.values())
    victim.crash()
    victim.restart()
    for tablet in tablets:
        victim.assign_tablet(tablet)
    for index in victim.indexes().values():
        index._memtable_limit = 24 * 8
    recover_server(victim, db.cluster.checkpoints[victim.name])
    client.invalidate_cache()
    for i, key in enumerate(keys):
        assert client.get("events", key, "payload") == {"body": f"v{i}".encode()}
