"""Contract tests run against BOTH index implementations (B-link and LSM).

Every behaviour the tablet server relies on must hold regardless of which
index backs it — that is what makes the LRS comparison an index-design
comparison only.
"""

import pytest

from repro.index.blink import BLinkTreeIndex
from repro.index.lsm import LSMTreeIndex
from repro.wal.record import LogPointer


def ptr(n: int) -> LogPointer:
    return LogPointer(1, n * 100, 100)


@pytest.fixture(params=["blink", "lsm"])
def index(request, dfs, machines):
    if request.param == "blink":
        return BLinkTreeIndex(order=4)
    return LSMTreeIndex(
        dfs, machines[0], "/lsm/test", memtable_bytes=24 * 8, level0_limit=3
    )


def test_empty_lookup(index):
    assert index.lookup_latest(b"nope") is None
    assert index.lookup_asof(b"nope", 100) is None
    assert index.versions(b"nope") == []
    assert len(index) == 0


def test_insert_and_lookup_latest(index):
    index.insert(b"k", 1, ptr(1))
    index.insert(b"k", 5, ptr(5))
    index.insert(b"k", 3, ptr(3))
    latest = index.lookup_latest(b"k")
    assert latest.timestamp == 5
    assert latest.pointer == ptr(5)


def test_lookup_asof_selects_floor_version(index):
    for ts in (2, 4, 6):
        index.insert(b"k", ts, ptr(ts))
    assert index.lookup_asof(b"k", 5).timestamp == 4
    assert index.lookup_asof(b"k", 4).timestamp == 4
    assert index.lookup_asof(b"k", 1) is None
    assert index.lookup_asof(b"k", 100).timestamp == 6


def test_versions_ascending(index):
    for ts in (9, 1, 5):
        index.insert(b"k", ts, ptr(ts))
    assert [v.timestamp for v in index.versions(b"k")] == [1, 5, 9]


def test_reinsert_same_version_replaces_pointer(index):
    index.insert(b"k", 1, ptr(1))
    index.insert(b"k", 1, ptr(99))
    assert index.lookup_latest(b"k").pointer == ptr(99)
    assert len(index) == 1


def test_delete_key_removes_all_versions(index):
    for ts in (1, 2, 3):
        index.insert(b"k", ts, ptr(ts))
    index.insert(b"other", 1, ptr(50))
    removed = index.delete_key(b"k")
    assert removed == 3
    assert index.lookup_latest(b"k") is None
    assert index.lookup_asof(b"k", 10) is None
    assert index.lookup_latest(b"other") is not None


def test_delete_then_reinsert(index):
    index.insert(b"k", 1, ptr(1))
    index.delete_key(b"k")
    index.insert(b"k", 9, ptr(9))
    assert index.lookup_latest(b"k").timestamp == 9
    # The old version must not resurface for historical reads either.
    assert index.lookup_asof(b"k", 5) is None


def test_range_scan_bounds(index):
    for i in range(10):
        index.insert(f"k{i}".encode(), 1, ptr(i))
    found = [e.key for e in index.range_scan(b"k3", b"k7")]
    assert found == [b"k3", b"k4", b"k5", b"k6"]


def test_range_scan_includes_all_versions(index):
    index.insert(b"k5", 1, ptr(1))
    index.insert(b"k5", 2, ptr(2))
    found = [(e.key, e.timestamp) for e in index.range_scan(b"k", b"l")]
    assert found == [(b"k5", 1), (b"k5", 2)]


def test_latest_in_range_picks_newest_per_key(index):
    index.insert(b"a", 1, ptr(1))
    index.insert(b"a", 3, ptr(3))
    index.insert(b"b", 2, ptr(2))
    latest = list(index.latest_in_range(b"", b"z"))
    assert [(e.key, e.timestamp) for e in latest] == [(b"a", 3), (b"b", 2)]


def test_latest_in_range_as_of_snapshot(index):
    index.insert(b"a", 1, ptr(1))
    index.insert(b"a", 9, ptr(9))
    latest = list(index.latest_in_range(b"", b"z", as_of=5))
    assert [(e.key, e.timestamp) for e in latest] == [(b"a", 1)]


def test_entries_sorted_by_key_then_ts(index):
    data = [(b"b", 2), (b"a", 5), (b"b", 1), (b"a", 3), (b"c", 1)]
    for key, ts in data:
        index.insert(key, ts, ptr(ts))
    entries = [(e.key, e.timestamp) for e in index.entries()]
    assert entries == sorted(data)


def test_len_counts_every_version(index):
    for i in range(20):
        index.insert(f"k{i % 5}".encode(), i + 1, ptr(i))
    assert len(index) == 20


def test_memory_bytes_positive_after_inserts(index):
    for i in range(10):
        index.insert(f"k{i}".encode(), 1, ptr(i))
    assert index.memory_bytes() > 0


def test_many_entries_survive_internal_reorganization(index):
    # Enough volume to force B-link splits / LSM flushes and merges.
    n = 500
    for i in range(n):
        index.insert(f"key-{i:05d}".encode(), i + 1, ptr(i))
    assert len(index) == n
    for i in (0, 123, 256, n - 1):
        entry = index.lookup_latest(f"key-{i:05d}".encode())
        assert entry is not None
        assert entry.pointer == ptr(i)
