"""LSM-tree-specific tests: flushes, merges, bloom filters, block cache."""

import pytest

from repro.index.lsm import LSMTreeIndex
from repro.wal.record import LogPointer


def ptr(n: int) -> LogPointer:
    return LogPointer(1, n, 1)


@pytest.fixture
def lsm(dfs, machines):
    # Tiny memtable: flush every 8 entries; merge at 3 runs.
    return LSMTreeIndex(
        dfs, machines[0], "/lsm/idx", memtable_bytes=24 * 8, level0_limit=3
    )


def test_flush_creates_run(lsm):
    for i in range(8):
        lsm.insert(f"k{i}".encode(), i + 1, ptr(i))
    assert lsm.flushes >= 1
    assert lsm.run_count >= 1


def test_merge_caps_run_count(lsm):
    for i in range(100):
        lsm.insert(f"k{i:03d}".encode(), i + 1, ptr(i))
    assert lsm.merges >= 1
    assert lsm.run_count <= 4


def test_lookup_spans_memtable_and_runs(lsm):
    for i in range(20):
        lsm.insert(f"k{i:02d}".encode(), i + 1, ptr(i))
    # k00 flushed long ago; the newest insert is still in the memtable.
    assert lsm.lookup_latest(b"k00").timestamp == 1
    assert lsm.lookup_latest(b"k19").timestamp == 20


def test_versions_split_across_runs(lsm):
    # Write versions of one key interleaved with filler so flushes split them.
    ts = 0
    for round_no in range(4):
        ts += 1
        lsm.insert(b"hot", ts, ptr(ts))
        for i in range(7):
            ts += 1
            lsm.insert(f"fill-{round_no}-{i}".encode(), ts, ptr(ts))
    versions = [v.timestamp for v in lsm.versions(b"hot")]
    assert versions == sorted(versions)
    assert len(versions) == 4


def test_asof_falls_through_to_older_run(lsm):
    lsm.insert(b"k", 1, ptr(1))
    lsm.flush()
    lsm.insert(b"k", 10, ptr(10))
    lsm.flush()
    assert lsm.lookup_asof(b"k", 5).timestamp == 1


def test_probes_charge_disk_reads(lsm, machines):
    for i in range(24):
        lsm.insert(f"k{i:02d}".encode(), i + 1, ptr(i))
    lsm._block_cache.clear()
    before = machines[0].counters.get("disk.reads")
    lsm.lookup_latest(b"k00")
    assert machines[0].counters.get("disk.reads") > before


def test_block_cache_absorbs_repeat_probes(lsm, machines):
    for i in range(24):
        lsm.insert(f"k{i:02d}".encode(), i + 1, ptr(i))
    lsm.lookup_latest(b"k00")
    before = machines[0].counters.get("disk.reads")
    lsm.lookup_latest(b"k00")  # cached block, no new disk read
    assert machines[0].counters.get("disk.reads") == before


def test_bloom_filter_skips_absent_keys(lsm, machines):
    for i in range(8):
        lsm.insert(f"k{i}".encode(), i + 1, ptr(i))
    lsm._block_cache.clear()
    before = machines[0].counters.get("disk.reads")
    assert lsm.lookup_latest(b"definitely-absent-key") is None
    # With high probability the bloom filter avoided every block read.
    assert machines[0].counters.get("disk.reads") - before <= 1


def test_memory_stays_bounded_relative_to_entries(lsm):
    for i in range(200):
        lsm.insert(f"k{i:04d}".encode(), i + 1, ptr(i))
    # Resident memory is far below what a fully in-memory index would use.
    from repro.index.interface import ENTRY_BYTES

    assert lsm._memtable_entries * ENTRY_BYTES < 200 * ENTRY_BYTES


def test_snapshot_restore_roundtrip(lsm, dfs, machines):
    for i in range(30):
        lsm.insert(f"k{i:02d}".encode(), i + 1, ptr(i))
    payload = lsm.snapshot_payload()
    restored = LSMTreeIndex.restore(
        payload, dfs, machines[1], "/lsm/restored", memtable_bytes=24 * 8
    )
    assert len(restored) == len(lsm)
    assert restored.lookup_latest(b"k07").timestamp == 8


def test_merge_drops_deleted_keys_permanently(lsm, dfs):
    for i in range(8):
        lsm.insert(f"k{i}".encode(), i + 1, ptr(i))
    lsm.flush()
    lsm.delete_key(b"k3")
    # Force merges; the tombstoned key must not come back.
    for i in range(40):
        lsm.insert(f"fill{i:02d}".encode(), 100 + i, ptr(i))
    assert lsm.lookup_latest(b"k3") is None
