"""Tests for secondary indexes (the paper's §5 future-work extension)."""

import pytest

from repro.core.schema import encode_group_value
from repro.query.secondary import SecondaryIndex, SecondaryIndexManager


class TestSecondaryIndex:
    def test_write_then_equal_lookup(self):
        index = SecondaryIndex("t", "g", "color")
        index.apply_write(b"k1", 1, b"red")
        index.apply_write(b"k2", 2, b"red")
        index.apply_write(b"k3", 3, b"blue")
        assert index.lookup_equal(b"red") == [b"k1", b"k2"]
        assert index.lookup_equal(b"blue") == [b"k3"]
        assert index.lookup_equal(b"green") == []

    def test_update_moves_key_between_values(self):
        index = SecondaryIndex("t", "g", "color")
        index.apply_write(b"k", 1, b"red")
        index.apply_write(b"k", 2, b"blue")
        assert index.lookup_equal(b"red") == []
        assert index.lookup_equal(b"blue") == [b"k"]
        assert len(index) == 1

    def test_stale_apply_ignored(self):
        """Redo replays may arrive out of order; older versions must not
        clobber the indexed current value."""
        index = SecondaryIndex("t", "g", "color")
        index.apply_write(b"k", 5, b"new")
        index.apply_write(b"k", 2, b"old")
        assert index.lookup_equal(b"new") == [b"k"]
        assert index.lookup_equal(b"old") == []

    def test_delete_removes_key(self):
        index = SecondaryIndex("t", "g", "color")
        index.apply_write(b"k", 1, b"red")
        index.apply_delete(b"k")
        assert index.lookup_equal(b"red") == []
        assert len(index) == 0
        assert index.distinct_values == 0

    def test_range_lookup_value_ordered(self):
        index = SecondaryIndex("t", "g", "age")
        for i, key in enumerate((b"k1", b"k2", b"k3", b"k4")):
            index.apply_write(key, i + 1, str(20 + i * 10).zfill(3).encode())
        found = list(index.lookup_range(b"025", b"045"))
        assert found == [(b"030", b"k2"), (b"040", b"k3")]

    def test_memory_accounting(self):
        index = SecondaryIndex("t", "g", "c")
        assert index.memory_bytes() == 0
        index.apply_write(b"k", 1, b"v")
        assert index.memory_bytes() > 0


class TestSecondaryIndexManager:
    def test_create_is_idempotent(self):
        manager = SecondaryIndexManager()
        a = manager.create("t", "g", "c")
        b = manager.create("t", "g", "c")
        assert a is b
        assert len(manager.indexes()) == 1

    def test_on_write_decodes_columns(self):
        manager = SecondaryIndexManager()
        manager.create("t", "g", "color")
        payload = encode_group_value({"color": b"red", "size": b"XL"})
        manager.on_write("t", "g", b"k", 1, payload)
        assert manager.get("t", "color").lookup_equal(b"red") == [b"k"]

    def test_opaque_payloads_skipped(self):
        manager = SecondaryIndexManager()
        manager.create("t", "g", "color")
        manager.on_write("t", "g", b"k", 1, b"\xff\xfenot-column-encoded")
        assert manager.get("t", "color").lookup_equal(b"red") == []

    def test_unrelated_groups_ignored(self):
        manager = SecondaryIndexManager()
        manager.create("t", "g1", "c")
        payload = encode_group_value({"c": b"v"})
        manager.on_write("t", "g2", b"k", 1, payload)
        assert manager.get("t", "c").lookup_equal(b"v") == []

    def test_has_any_guard(self):
        manager = SecondaryIndexManager()
        assert not manager.has_any()
        manager.create("t", "g", "c")
        assert manager.has_any()


class TestServerIntegration:
    @pytest.fixture
    def db(self, db):
        return db  # reuse conftest: events(payload{body}, meta{source,kind})

    def test_index_maintained_on_put(self, db):
        engine_server = db.cluster.servers
        for server in engine_server:
            server.create_secondary_index("events", "meta", "source")
        db.put("events", b"000000000001",
               {"meta": {"source": b"web", "kind": b"click"}})
        db.put("events", b"000000000002",
               {"meta": {"source": b"app", "kind": b"view"}})
        hits = [
            key
            for server in engine_server
            for key in server.secondary.get("events", "source").lookup_equal(b"web")
        ]
        assert hits == [b"000000000001"]

    def test_backfill_on_create(self, db):
        db.put("events", b"000000000003",
               {"meta": {"source": b"web", "kind": b"click"}})
        for server in db.cluster.servers:
            server.create_secondary_index("events", "meta", "source")
        hits = [
            key
            for server in db.cluster.servers
            for key in server.secondary.get("events", "source").lookup_equal(b"web")
        ]
        assert hits == [b"000000000003"]

    def test_delete_clears_secondary(self, db):
        for server in db.cluster.servers:
            server.create_secondary_index("events", "meta", "source")
        db.put("events", b"000000000004",
               {"meta": {"source": b"web", "kind": b"click"}})
        db.delete("events", b"000000000004", "meta")
        hits = [
            key
            for server in db.cluster.servers
            for key in server.secondary.get("events", "source").lookup_equal(b"web")
        ]
        assert hits == []

    def test_rebuild_after_recovery(self, db):
        from repro.core.recovery import recover_server

        for server in db.cluster.servers:
            server.create_secondary_index("events", "meta", "source")
        db.put("events", b"000000000005",
               {"meta": {"source": b"api", "kind": b"poll"}})
        owner_name, _ = db.cluster.master.locate("events", b"000000000005")
        server = db.cluster.master.server(owner_name)
        tablets = list(server.tablets.values())
        server.crash()
        server.restart()
        for tablet in tablets:
            server.assign_tablet(tablet)
        recover_server(server, db.cluster.checkpoints[server.name])
        server.create_secondary_index("events", "meta", "source")
        assert server.secondary.get("events", "source").lookup_equal(b"api") == [
            b"000000000005"
        ]
