"""Query engine tests: planning, execution, projection, aggregation."""

import pytest

from repro import ColumnGroup, LogBase, TableSchema
from repro.errors import TableNotFound
from repro.query import And, Eq, Query, QueryEngine, Range


@pytest.fixture
def populated():
    db = LogBase(3)
    db.create_table(
        TableSchema(
            "users",
            "uid",
            (
                ColumnGroup("profile", ("name", "country")),
                ColumnGroup("stats", ("age",)),
            ),
        )
    )
    rows = []
    for i in range(30):
        key = str(i * 66_000_000).zfill(12).encode()
        country = [b"SG", b"US", b"DE"][i % 3]
        age = str(20 + i).encode()
        db.put(
            "users",
            key,
            {"profile": {"name": f"u{i}".encode(), "country": country},
             "stats": {"age": age}},
        )
        rows.append((key, country, age))
    return db, QueryEngine(db), rows


def test_unknown_table_rejected(populated):
    _, engine, _ = populated
    with pytest.raises(TableNotFound):
        engine.query("ghost")


def test_full_scan_plan_and_result(populated):
    _, engine, rows = populated
    query = engine.query("users").where(Eq("country", b"SG"))
    assert query.explain().access_path == "full-scan"
    result = query.run()
    expected = sorted(key for key, country, _ in rows if country == b"SG")
    assert [key for key, _ in result] == expected


def test_primary_lookup_plan(populated):
    _, engine, rows = populated
    key = rows[7][0]
    query = engine.query("users").where(Eq("uid", key))
    plan = query.explain()
    assert plan.access_path == "primary-lookup"
    result = query.run()
    assert len(result) == 1 and result[0][0] == key


def test_primary_lookup_missing_key(populated):
    _, engine, _ = populated
    assert engine.query("users").where(Eq("uid", b"000000000009")).run() == []


def test_primary_range_plan(populated):
    _, engine, rows = populated
    lo, hi = rows[5][0], rows[12][0]
    query = engine.query("users").where(Range("uid", lo, hi))
    assert query.explain().access_path == "primary-range"
    result = query.run()
    assert [key for key, _ in result] == [k for k, _, _ in rows[5:12]]


def test_secondary_lookup_used_when_available(populated):
    _, engine, rows = populated
    engine.create_secondary_index("users", "country")
    query = engine.query("users").where(Eq("country", b"US"))
    assert query.explain().access_path == "secondary-lookup"
    expected = sorted(key for key, country, _ in rows if country == b"US")
    assert [key for key, _ in query.run()] == expected


def test_secondary_range_lookup(populated):
    _, engine, rows = populated
    engine.create_secondary_index("users", "age")
    query = engine.query("users").where(Range("age", b"25", b"30"))
    assert query.explain().access_path == "secondary-lookup"
    assert query.count() == 5


def test_residual_predicates_applied(populated):
    _, engine, rows = populated
    engine.create_secondary_index("users", "country")
    query = engine.query("users").where(
        And(Eq("country", b"DE"), Range("age", b"30", b"99"))
    )
    result = query.run()
    expected = [
        key for key, country, age in rows if country == b"DE" and b"30" <= age < b"99"
    ]
    assert [key for key, _ in result] == sorted(expected)


def test_projection_limits_columns(populated):
    _, engine, _ = populated
    result = engine.query("users").select("name").run()
    assert all(set(row) == {"name"} for _, row in result)


def test_projection_reads_only_needed_groups(populated):
    _, engine, _ = populated
    plan = engine.query("users").select("age").explain()
    assert plan.groups_read == ("stats",)


def test_snapshot_query_skips_secondary_index(populated):
    db, engine, rows = populated
    engine.create_secondary_index("users", "country")
    snapshot = db.cluster.tso.current()
    query = engine.query("users").where(Eq("country", b"SG")).as_of(snapshot)
    assert query.explain().access_path == "full-scan"


def test_snapshot_query_sees_old_values(populated):
    db, engine, rows = populated
    key = rows[0][0]
    snapshot = db.cluster.tso.current() - 1
    db.put("users", key, {"profile": {"name": b"renamed", "country": b"SG"}})
    old = engine.query("users").where(Eq("uid", key)).as_of(snapshot).run()
    assert old[0][1]["name"] == b"u0"
    new = engine.query("users").where(Eq("uid", key)).run()
    assert new[0][1]["name"] == b"renamed"


def test_count_and_unfiltered_scan(populated):
    _, engine, rows = populated
    assert engine.query("users").count() == len(rows)


def test_aggregate_overall(populated):
    _, engine, rows = populated
    stats = engine.query("users").aggregate("age")
    assert stats["count"] == 30
    assert stats["min"] == 20.0
    assert stats["max"] == 49.0
    assert stats["sum"] == float(sum(range(20, 50)))


def test_aggregate_group_by(populated):
    _, engine, _ = populated
    stats = engine.query("users").aggregate("age", group_by="country")
    assert stats["count"] == {b"SG": 10.0, b"US": 10.0, b"DE": 10.0}


def test_aggregate_with_filter(populated):
    _, engine, _ = populated
    stats = engine.query("users").where(Eq("country", b"SG")).aggregate("age")
    assert stats["count"] == 10


def test_deleted_rows_excluded(populated):
    db, engine, rows = populated
    engine.create_secondary_index("users", "country")
    victim = next(key for key, country, _ in rows if country == b"SG")
    db.delete("users", victim)
    result = engine.query("users").where(Eq("country", b"SG")).run()
    assert victim not in [key for key, _ in result]


def test_multi_tablet_servers_no_duplicates():
    """Regression: servers hosting several tablets must be scanned once."""
    db = LogBase(3)
    db.create_table(
        TableSchema("t", "id", (ColumnGroup("g", ("v",)),)), tablets_per_server=3
    )
    engine = QueryEngine(db)
    keys = [str(k).zfill(12).encode() for k in range(0, 2_000_000_000, 97_000_019)]
    for key in keys:
        db.put("t", key, {"g": {"v": b"x"}})
    result = engine.query("t").run()
    assert len(result) == len(keys)
    assert len({key for key, _ in result}) == len(keys)


def test_order_by_and_limit(populated):
    _, engine, rows = populated
    result = (
        engine.query("users")
        .select("age")
        .order_by("age", descending=True)
        .limit(3)
        .run()
    )
    assert [row["age"] for _, row in result] == [b"49", b"48", b"47"]


def test_limit_without_order_streams_key_order(populated):
    _, engine, rows = populated
    result = engine.query("users").limit(5).run()
    assert [key for key, _ in result] == [k for k, _, _ in rows[:5]]


def test_limit_rejects_negative(populated):
    _, engine, _ = populated
    import pytest as _pytest

    with _pytest.raises(ValueError):
        engine.query("users").limit(-1)


def test_order_by_column_outside_projection(populated):
    """Ordering may use a column the projection drops."""
    _, engine, _ = populated
    result = (
        engine.query("users").select("name").order_by("age").limit(2).run()
    )
    assert [row["name"] for _, row in result] == [b"u0", b"u1"]


def test_aggregate_empty_result_set(populated):
    _, engine, _ = populated
    stats = engine.query("users").where(Eq("country", b"XX")).aggregate("age")
    assert stats == {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0}


def test_group_by_empty_result_set(populated):
    _, engine, _ = populated
    stats = engine.query("users").where(Eq("country", b"XX")).aggregate(
        "age", group_by="country"
    )
    assert stats == {"count": {}, "sum": {}}


def test_limit_zero(populated):
    _, engine, _ = populated
    assert engine.query("users").limit(0).run() == []
