"""Predicate expression tests."""

from repro.query.expressions import And, Eq, Range, conjuncts


def test_eq_matches():
    pred = Eq("color", b"red")
    assert pred.matches({"color": b"red"})
    assert not pred.matches({"color": b"blue"})
    assert not pred.matches({})
    assert pred.columns() == {"color"}


def test_range_half_open():
    pred = Range("age", b"020", b"030")
    assert pred.matches({"age": b"020"})
    assert pred.matches({"age": b"029"})
    assert not pred.matches({"age": b"030"})
    assert not pred.matches({"age": b"019"})
    assert not pred.matches({})


def test_and_combines():
    pred = And(Eq("a", b"1"), Range("b", b"0", b"5"))
    assert pred.matches({"a": b"1", "b": b"3"})
    assert not pred.matches({"a": b"1", "b": b"7"})
    assert not pred.matches({"a": b"2", "b": b"3"})
    assert pred.columns() == {"a", "b"}


def test_nested_and_flattens():
    inner = And(Eq("a", b"1"), Eq("b", b"2"))
    outer = And(inner, Eq("c", b"3"))
    assert len(outer.flattened()) == 3


def test_conjuncts_normalization():
    assert conjuncts(None) == []
    single = Eq("a", b"1")
    assert conjuncts(single) == [single]
    assert len(conjuncts(And(single, And(single, single)))) == 3
