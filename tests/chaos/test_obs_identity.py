"""Control arm for the histogram-backed chaos percentiles: the report's
p50/p99/max must be identical to the list-based nearest-rank computation
the histogram replaced (``repro.chaos.runner._percentile``)."""

import repro.chaos.runner as runner
from repro.chaos.gray import run_gray
from repro.chaos.runner import _percentile
from repro.obs.hist import Histogram


def test_control_arm_percentiles_match_list_computation(monkeypatch):
    captured = []

    class RecordingHistogram(Histogram):
        """The real histogram, additionally keeping the raw samples so
        the old list-based computation can run beside it."""

        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            self.samples = []
            captured.append(self)

        def record(self, value):
            self.samples.append(value)
            super().record(value)

    monkeypatch.setattr(runner, "Histogram", RecordingHistogram)
    report = run_gray("limp-datanode-mid-scan", seed=1, ops=60, resilience=False)
    assert report.passed, report.violations

    (hist,) = captured
    samples = hist.samples
    assert report.reads == len(samples) > 0
    assert report.read_p50 == _percentile(samples, 0.50)
    assert report.read_p99 == _percentile(samples, 0.99)
    assert report.read_max == max(samples)
