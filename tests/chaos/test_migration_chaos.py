"""Seeded interrupted-migration chaos schedules against the durability
oracle and the single-owner invariant: crashes, master failovers, and
partitions mid-handoff must all converge with every acked write readable
and never two servers willing to serve one tablet."""

import pytest

from repro.chaos import MIGRATION_SCENARIOS, run_migration_chaos


@pytest.mark.parametrize("scenario", sorted(MIGRATION_SCENARIOS))
@pytest.mark.parametrize("seed", [1, 2])
def test_migration_scenario_upholds_the_contract(scenario, seed):
    report = run_migration_chaos(scenario, seed=seed)
    assert report.passed, report.violations
    assert report.faults_fired >= 1  # the schedule actually struck
    assert report.acked >= report.ops
    assert report.keys_checked >= report.ops


def test_crash_scenarios_fail_the_first_attempt():
    for scenario in ("crash-source-mid-catchup", "crash-target-mid-flip"):
        report = run_migration_chaos(scenario)
        assert report.first_attempt_failed
        # Nothing flipped before the crash, so resume converged back to
        # (or forward past) exactly one owner.
        assert report.resume_outcomes
        assert report.final_owner


def test_partitioned_owner_is_lease_fenced():
    report = run_migration_chaos("partition-old-owner")
    assert report.passed, report.violations
    # The old owner could not be told about the move; only its lapsed
    # lease stopped it from double-serving.
    assert report.stale_owner_rejected
    assert report.final_owner == "ts-node-1"


def test_master_failover_promotes_and_converges():
    report = run_migration_chaos("master-failover-mid-migration")
    assert report.passed, report.violations
    assert report.first_attempt_failed
    assert report.resume_outcomes
