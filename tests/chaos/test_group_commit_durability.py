"""Crash-mid-group-flush durability: seeded concurrent chaos schedules.

Each schedule parks N clients on the victim's commit coordinator and
kills the victim inside a flush at a chosen crash point.  The durability
oracle then reads back every key — an acked member whose group never
replicated would be a Guarantee-1 violation.
"""

import pytest

from repro.chaos.concurrent import run_group_commit_chaos
from repro.sim.failure import CP_DFS_APPEND, CP_LOG_APPEND

SCHEDULES = [
    pytest.param(1, CP_LOG_APPEND, 5, id="seed1-log-append"),
    pytest.param(2, CP_LOG_APPEND, 9, id="seed2-log-append"),
    pytest.param(3, CP_DFS_APPEND, 7, id="seed3-dfs-append"),
]


@pytest.mark.parametrize("seed, crash_point, hits", SCHEDULES)
def test_no_unreplicated_member_is_acked(seed, crash_point, hits):
    report = run_group_commit_chaos(
        seed=seed, crash_point_name=crash_point, crash_after_hits=hits
    )
    assert report.passed, report.violations
    # The schedule must actually have exercised the hazard.
    assert report.faults_fired >= 1
    assert report.restarted_servers  # the victim died and was recovered
    # The crash interrupted a real multi-member group...
    assert report.indeterminate >= 1
    assert report.mean_fanin > 1.0
    # ...and the surviving commits all verified durable.
    assert report.acked > 0
    assert report.keys_checked == report.ops
