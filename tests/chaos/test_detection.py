"""The detection oracle as a test: every seeded fault schedule must fire
its matching alert within the family budget, and every clean twin must
stay silent."""

import pytest

from repro.chaos.detection import (
    DETECTION_BUDGETS,
    EXPECTED_ALERTS,
    detection_latency_from_report,
    run_clean_twin,
    run_detection,
)
from repro.chaos.gray import GRAY_SCHEDULES
from repro.chaos.migration import MIGRATION_SCENARIOS
from repro.chaos.recovery import RECOVERY_SCENARIOS
from repro.chaos.replica import REPLICA_SCENARIOS

_FAMILY_SCENARIOS = {
    "gray": GRAY_SCHEDULES,
    "migration": MIGRATION_SCENARIOS,
    "recovery": RECOVERY_SCENARIOS,
    "replica": REPLICA_SCENARIOS,
}


def test_matrix_covers_every_fault_schedule():
    """Every scenario that injects a fault has an expected alert; the one
    deliberate exception (fencing-on-migration injects no fault) is the
    only scenario absent."""
    all_scenarios = {
        (family, scenario)
        for family, scenarios in _FAMILY_SCENARIOS.items()
        for scenario in scenarios
    }
    missing = all_scenarios - set(EXPECTED_ALERTS)
    assert missing == {("replica", "fencing-on-migration")}
    # And the matrix never names a scenario that doesn't exist.
    assert set(EXPECTED_ALERTS) <= all_scenarios
    assert set(DETECTION_BUDGETS) == set(_FAMILY_SCENARIOS)


@pytest.mark.parametrize(
    ("family", "scenario"), sorted(EXPECTED_ALERTS), ids="/".join
)
def test_fault_detected_within_budget(family, scenario):
    result = run_detection(family, scenario, seed=1, clean_twin=False)
    assert result.run_passed, f"underlying chaos contract failed: {scenario}"
    assert result.fault_times, "monitor observed no fault"
    assert result.detection_latency is not None, (
        f"expected {result.expected_alert!r} never fired "
        f"(fired: {result.fired})"
    )
    assert result.detection_latency <= result.budget


@pytest.mark.parametrize("family", sorted(_FAMILY_SCENARIOS), ids=str)
def test_clean_twin_raises_no_alerts(family):
    # One control per family keeps the suite fast; the full cross product
    # runs in bench_monitoring.
    scenario = sorted(
        s for f, s in EXPECTED_ALERTS if f == family
    )[0]
    alerts = run_clean_twin(family, scenario, seed=1)
    assert alerts == [], f"clean {family} run raised {alerts}"


def test_detection_latency_helper_edge_cases():
    class FakeReport:
        fault_times = [2.0, 5.0]
        alerts = [
            {"state": "firing", "alert": "server-down", "time": 1.0},  # pre-fault
            {"state": "resolved", "alert": "server-down", "time": 2.5},
            {"state": "firing", "alert": "server-down", "time": 3.0},
        ]

    assert detection_latency_from_report(FakeReport(), "server-down") == 1.0
    assert detection_latency_from_report(FakeReport(), "no-such-alert") is None

    class NoFaults:
        fault_times = []
        alerts = FakeReport.alerts

    assert detection_latency_from_report(NoFaults(), "server-down") is None
