"""Gray chaos end-to-end: every limp/overload schedule must uphold the
durability contract, the mitigations must demonstrably fire, and the
mitigated arm must beat the unmitigated control on tail latency."""

import pytest

from repro.chaos import GRAY_SCHEDULES, run_gray
from repro.config import LogBaseConfig
from repro.core.database import LogBase
from repro.core.schema import ColumnGroup, TableSchema
from repro.errors import DeadlineExceededError

LIMP_SCENARIO = "limp-datanode-mid-scan"


def test_covers_required_gray_failure_modes():
    assert len(GRAY_SCHEDULES) >= 5
    for name in (
        "limp-datanode-mid-scan",
        "slow-link-replication",
        "overload-burst",
        "limp-trip-recover",
        "hedge-under-limp",
    ):
        assert name in GRAY_SCHEDULES


@pytest.mark.parametrize("scenario", sorted(GRAY_SCHEDULES))
def test_gray_schedule_upholds_durability_contract(scenario):
    report = run_gray(scenario, seed=1, ops=60)
    assert report.passed, report.violations
    assert report.acked > 0
    assert report.keys_checked > 0
    assert report.events_run > 0, f"{scenario} ran none of its events"


def test_mitigations_actually_fire():
    # Each scenario exists to exercise a specific mechanism; a green run
    # where the mechanism stayed idle would prove nothing.
    hedge = run_gray("hedge-under-limp", seed=1, ops=60)
    assert hedge.hedge_wins > 0
    trip = run_gray("limp-trip-recover", seed=1, ops=60)
    assert trip.breaker_trips > 0
    burst = run_gray("overload-burst", seed=1, ops=60)
    assert burst.admission_sheds > 0


def test_limping_replica_p99_beats_unmitigated_control():
    # The acceptance bar: with a home replica limping, the mitigated
    # arm's p99 read latency is at least 30 % better than the same run
    # without the gray-resilience layer.
    mitigated = run_gray(LIMP_SCENARIO, seed=1, ops=60)
    control = run_gray(LIMP_SCENARIO, seed=1, ops=60, resilience=False)
    assert mitigated.passed and control.passed
    assert mitigated.reads > 0 and control.reads > 0
    assert control.read_p99 > 0
    improvement = 1.0 - mitigated.read_p99 / control.read_p99
    assert improvement >= 0.30, (
        f"p99 {mitigated.read_p99:.4f}s mitigated vs "
        f"{control.read_p99:.4f}s control: only {improvement:.0%} better"
    )


def test_deadline_propagates_to_the_limping_replica():
    # Acceptance: with every replica limping and a budget smaller than
    # any replica's estimated read, the operation fails with
    # DeadlineExceededError after charging at most the remaining budget —
    # never the unbounded simulated time of waiting the limp out.
    schema = TableSchema("t", "id", (ColumnGroup("g", ("v",)),))
    config = LogBaseConfig.with_gray_resilience(
        segment_size=64 * 1024,
        read_cache_enabled=False,
        op_deadline=0.1,
    )
    db = LogBase(n_nodes=3, config=config)
    db.create_table(schema, only_servers=["ts-node-0"])
    client = db.client(db.cluster.machines[2])
    key = b"000000000001"
    client.put_raw("t", key, "g", b"x")
    for node in ("ts-node-0", "ts-node-1", "ts-node-2"):
        db.cluster.failures.degrade(node, 40.0)
    with pytest.raises(DeadlineExceededError):
        client.get_raw("t", key, "g")
    # Bounded: roughly the budget, nowhere near one limped read (~0.49 s).
    assert 0.0 < client.last_op_seconds < 0.25
