"""Seeded replica chaos schedules against the durability oracle and the
staleness invariant: lagging followers, follower crashes, and ownership
migrations must never let a replica serve data newer than its watermark,
silently stale beyond its bound, or fed from a deposed owner's log."""

import pytest

from repro.chaos import REPLICA_SCENARIOS, run_replica_chaos


@pytest.mark.parametrize("scenario", sorted(REPLICA_SCENARIOS))
@pytest.mark.parametrize("seed", [1, 2])
def test_replica_scenario_upholds_the_contract(scenario, seed):
    report = run_replica_chaos(scenario, seed=seed)
    assert report.passed, report.violations + report.staleness_violations
    assert report.staleness_violations == []
    assert report.acked >= report.ops
    assert report.keys_checked >= report.ops
    assert report.followers_placed >= 1
    # After the settle heartbeats every follower serves again.
    assert report.follower_reads_ok >= report.ops


def test_stale_follower_is_rejected_not_served():
    report = run_replica_chaos("stale-follower-reads")
    assert report.passed, report.violations + report.staleness_violations
    # The schedule provoked at least one bounded-staleness rejection.
    assert report.lag_rejections >= 1


def test_follower_crash_replaces_and_catches_up():
    report = run_replica_chaos("follower-crash-catchup")
    assert report.passed, report.violations + report.staleness_violations
    assert report.followers_placed >= 1


def test_migration_fences_replicas():
    report = run_replica_chaos("fencing-on-migration")
    assert report.passed, report.violations + report.staleness_violations
