"""Unit tests for the durability oracle's contract checks."""

from repro.chaos.oracle import (
    DurabilityOracle,
    WriteStatus,
    decode_value,
    encode_value,
)


def test_value_roundtrip():
    assert decode_value(encode_value(42)) == 42
    assert decode_value(b"garbage") is None
    assert decode_value(b"s1234567x") is None
    assert decode_value(b"") is None


def test_sequence_numbers_are_unique_and_monotone():
    oracle = DurabilityOracle()
    seqs = [oracle.next_value()[0] for _ in range(5)]
    assert seqs == sorted(set(seqs))


def test_acked_write_must_be_readable():
    oracle = DurabilityOracle()
    seq, value = oracle.next_value()
    oracle.record(b"k", seq, WriteStatus.ACKED)
    assert oracle.verify(lambda key: value) == []
    lost = oracle.verify(lambda key: None)
    assert len(lost) == 1 and "lost" in lost[0]


def test_acked_write_must_not_be_shadowed_by_older_value():
    oracle = DurabilityOracle()
    old_seq, old_value = oracle.next_value()
    new_seq, new_value = oracle.next_value()
    oracle.record(b"k", old_seq, WriteStatus.ACKED)
    oracle.record(b"k", new_seq, WriteStatus.ACKED)
    assert oracle.verify(lambda key: new_value) == []
    shadowed = oracle.verify(lambda key: old_value)
    assert len(shadowed) == 1 and "shadowed" in shadowed[0]


def test_ghost_value_is_flagged():
    oracle = DurabilityOracle()
    seq, _ = oracle.next_value()
    oracle.record(b"k", seq, WriteStatus.ACKED)
    ghosts = oracle.verify(lambda key: encode_value(999))
    assert len(ghosts) == 1 and "ghost" in ghosts[0]


def test_cleanly_aborted_write_must_stay_invisible():
    oracle = DurabilityOracle()
    seq, value = oracle.next_value()
    oracle.record(b"k", seq, WriteStatus.ABORTED)
    assert oracle.verify(lambda key: None) == []
    visible = oracle.verify(lambda key: value)
    assert len(visible) == 1 and "aborted" in visible[0]


def test_indeterminate_write_may_go_either_way():
    oracle = DurabilityOracle()
    seq, value = oracle.next_value()
    oracle.record(b"k", seq, WriteStatus.INDETERMINATE)
    assert oracle.verify(lambda key: value) == []
    assert oracle.verify(lambda key: None) == []


def test_retry_upgrades_indeterminate_to_acked():
    oracle = DurabilityOracle()
    seq, value = oracle.next_value()
    oracle.record(b"k", seq, WriteStatus.INDETERMINATE)
    oracle.record(b"k", seq, WriteStatus.ACKED)
    assert oracle.last_acked(b"k") == seq
    # Now the write is a promise: losing it is a violation.
    assert len(oracle.verify(lambda key: None)) == 1


def test_ack_never_downgraded():
    oracle = DurabilityOracle()
    seq, _ = oracle.next_value()
    oracle.record(b"k", seq, WriteStatus.ACKED)
    oracle.record(b"k", seq, WriteStatus.INDETERMINATE)
    assert oracle.last_acked(b"k") == seq


def test_indeterminate_txn_must_be_atomic():
    oracle = DurabilityOracle()
    seq_a, value_a = oracle.next_value()
    seq_b, value_b = oracle.next_value()
    members = {b"a": seq_a, b"b": seq_b}
    oracle.record_txn(members, WriteStatus.INDETERMINATE)

    def all_visible(key):
        return {b"a": value_a, b"b": value_b}[key]

    def none_visible(key):
        return None

    def torn(key):
        return {b"a": value_a, b"b": None}[key]

    assert oracle.verify(all_visible) == []
    assert oracle.verify(none_visible) == []
    problems = oracle.verify(torn)
    assert len(problems) == 1 and "torn" in problems[0]


def test_acked_txn_members_checked_per_key():
    oracle = DurabilityOracle()
    seq_a, value_a = oracle.next_value()
    seq_b, _ = oracle.next_value()
    oracle.record_txn({b"a": seq_a, b"b": seq_b}, WriteStatus.ACKED)
    problems = oracle.verify(lambda key: value_a if key == b"a" else None)
    assert len(problems) == 1 and "lost" in problems[0]


def test_counts_by_status():
    oracle = DurabilityOracle()
    for status in (
        WriteStatus.ACKED,
        WriteStatus.ACKED,
        WriteStatus.ABORTED,
        WriteStatus.INDETERMINATE,
    ):
        seq, _ = oracle.next_value()
        oracle.record(b"k%d" % seq, seq, status)
    assert oracle.counts() == {"acked": 2, "aborted": 1, "indeterminate": 1}
