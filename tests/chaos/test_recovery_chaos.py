"""Seeded crash-during-recovery chaos schedules against the durability
oracle: crashes mid-redo, mid-split, and mid-adoption must all converge
on retry with every acked write readable."""

import pytest

from repro.chaos import RECOVERY_SCENARIOS, run_recovery_chaos


@pytest.mark.parametrize("scenario", sorted(RECOVERY_SCENARIOS))
@pytest.mark.parametrize("seed", [1, 2])
def test_recovery_scenario_upholds_durability(scenario, seed):
    report = run_recovery_chaos(scenario, seed=seed)
    assert report.passed, report.violations
    assert report.faults_fired >= 1  # the schedule actually struck
    assert report.first_attempt_failed  # ... and mid-procedure
    assert report.acked == report.ops
    assert report.keys_checked == report.ops


def test_crash_during_adoption_dedupes_the_replay():
    report = run_recovery_chaos("crash-during-adoption")
    assert report.passed, report.violations
    # The first (killed) adoption durably re-homed some records; the
    # retried adoption must skip exactly those instead of double-appending.
    assert report.adopt_skipped >= 1
    assert report.fence_epoch == 2  # one fresh epoch per failover attempt


def test_crash_during_split_refences():
    report = run_recovery_chaos("crash-during-split")
    assert report.passed, report.violations
    assert report.fence_epoch == 2


def test_unknown_scenario_raises():
    with pytest.raises(KeyError):
        run_recovery_chaos("crash-during-lunch")


def test_too_small_cluster_raises():
    with pytest.raises(ValueError):
        run_recovery_chaos("crash-during-recovery", n_nodes=3)


def test_report_round_trips_to_dict():
    report = run_recovery_chaos("crash-during-recovery")
    payload = report.to_dict()
    assert payload["scenario"] == "crash-during-recovery"
    assert payload["passed"] is True
    assert payload["violations"] == []
    assert payload["acked"] == payload["ops"] == payload["keys_checked"]
