"""End-to-end chaos runs: every schedule must uphold the durability
contract, and must actually disrupt the cluster while doing so."""

import pytest

from repro.chaos import SCHEDULES, run_chaos


def test_covers_required_failure_modes():
    # The suite must keep covering the acceptance scenarios: datanode
    # death mid-append, server crash at commit, crashes during checkpoint
    # and compaction, a network partition that heals, and a kill ->
    # revive -> re-adopt cycle.
    assert len(SCHEDULES) >= 5
    for name in (
        "datanode-mid-append",
        "server-crash-at-commit",
        "crash-during-checkpoint",
        "crash-during-compaction",
        "partition-heal",
        "kill-revive-readopt",
    ):
        assert name in SCHEDULES


@pytest.mark.parametrize("scenario", sorted(SCHEDULES))
@pytest.mark.parametrize("seed", [1, 2])
def test_schedule_upholds_durability_contract(scenario, seed):
    report = run_chaos(scenario, seed=seed, ops=40)
    assert report.passed, report.violations
    # The run did real work and the schedule really interfered.
    assert report.acked > 0
    assert report.keys_checked > 0
    disruption = (
        report.faults_fired
        + report.rereplicated
        + len(report.expired_servers)
        + len(report.restarted_servers)
    )
    assert disruption > 0, f"{scenario} caused no disruption"


def test_unknown_scenario_raises():
    with pytest.raises(KeyError):
        run_chaos("no-such-scenario")


def test_small_cluster_rejected():
    with pytest.raises(ValueError):
        run_chaos("partition-heal", n_nodes=3)


def test_report_dict_is_json_shaped():
    report = run_chaos("datanode-mid-append", seed=1, ops=20)
    data = report.to_dict()
    assert data["scenario"] == "datanode-mid-append"
    assert data["passed"] is True
    assert isinstance(data["violations"], list)
    assert data["faults_fired"] >= 1  # the mid-append kill fired
