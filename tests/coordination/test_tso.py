"""Unit tests for the timestamp oracle."""

from repro.coordination.tso import TimestampOracle
from repro.coordination.znodes import CoordinationService


def test_timestamps_strictly_increase():
    tso = TimestampOracle(CoordinationService())
    values = [tso.next_timestamp() for _ in range(100)]
    assert values == sorted(values)
    assert len(set(values)) == 100


def test_starts_at_configured_value():
    tso = TimestampOracle(CoordinationService(), start=500)
    assert tso.next_timestamp() == 500


def test_current_peeks_without_allocating():
    tso = TimestampOracle(CoordinationService())
    peek = tso.current()
    assert tso.current() == peek
    assert tso.next_timestamp() == peek


def test_read_timestamp_covers_all_commits():
    tso = TimestampOracle(CoordinationService())
    commit = tso.next_timestamp()
    snapshot = tso.read_timestamp()
    assert commit < snapshot


def test_shared_oracle_across_handles():
    service = CoordinationService()
    a = TimestampOracle(service)
    b = TimestampOracle(service)
    assert a.next_timestamp() < b.next_timestamp()
