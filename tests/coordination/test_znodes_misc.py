"""Additional coordination-service behaviours."""

import pytest

from repro.coordination.znodes import CoordinationService
from repro.errors import NoNodeError


@pytest.fixture
def service():
    return CoordinationService()


def test_ensure_path_idempotent(service):
    session = service.connect("c")
    service.ensure_path(session, "/a/b/c")
    service.ensure_path(session, "/a/b/c")  # second call is a no-op
    assert service.exists("/a/b/c")


def test_stat_counts_children(service):
    session = service.connect("c")
    service.ensure_path(session, "/p")
    service.create(session, "/p/x")
    service.create(session, "/p/y")
    _, stat = service.get("/p")
    assert stat.num_children == 2


def test_stat_reports_ephemeral_owner(service):
    session = service.connect("c")
    service.create(session, "/eph", ephemeral=True)
    _, stat = service.get("/eph")
    assert stat.ephemeral_owner == session.session_id
    service.create(session, "/persistent")
    _, stat = service.get("/persistent")
    assert stat.ephemeral_owner is None


def test_get_children_of_missing_node(service):
    with pytest.raises(NoNodeError):
        service.get_children("/nowhere")


def test_sequence_counters_are_per_parent(service):
    session = service.connect("c")
    service.ensure_path(session, "/q1")
    service.ensure_path(session, "/q2")
    p1 = service.create(session, "/q1/item-", sequential=True)
    p2 = service.create(session, "/q2/item-", sequential=True)
    # Both start their numbering independently.
    assert p1.endswith("0000000000")
    assert p2.endswith("0000000000")


def test_expiring_session_twice_is_safe(service):
    session = service.connect("c")
    service.create(session, "/e", ephemeral=True)
    session.expire()
    session.expire()
    assert not service.exists("/e")


def test_nested_ephemerals_cleaned_up(service):
    session = service.connect("c")
    service.ensure_path(session, "/tree")
    service.create(session, "/tree/leaf", ephemeral=True)
    session.expire()
    assert service.exists("/tree")       # persistent ancestor survives
    assert not service.exists("/tree/leaf")
