"""Unit tests for leader election (master failover, §3.3)."""

import pytest

from repro.coordination.election import LeaderElection
from repro.coordination.znodes import CoordinationService


@pytest.fixture
def service():
    return CoordinationService()


def test_no_candidates_no_leader(service):
    election = LeaderElection(service, "/election")
    assert election.leader() is None


def test_first_volunteer_leads(service):
    election = LeaderElection(service, "/election")
    s1 = service.connect("m1")
    election.volunteer(s1, "m1")
    assert election.leader() == "m1"
    assert election.is_leader("m1")


def test_second_volunteer_waits(service):
    election = LeaderElection(service, "/election")
    s1, s2 = service.connect("m1"), service.connect("m2")
    election.volunteer(s1, "m1")
    election.volunteer(s2, "m2")
    assert election.leader() == "m1"
    assert not election.is_leader("m2")


def test_leader_failure_promotes_standby(service):
    election = LeaderElection(service, "/election")
    s1, s2 = service.connect("m1"), service.connect("m2")
    election.volunteer(s1, "m1")
    election.volunteer(s2, "m2")
    s1.expire()  # active master dies
    assert election.leader() == "m2"


def test_rejoin_goes_to_back_of_queue(service):
    election = LeaderElection(service, "/election")
    s1, s2 = service.connect("m1"), service.connect("m2")
    election.volunteer(s1, "m1")
    election.volunteer(s2, "m2")
    s1.expire()
    s1b = service.connect("m1")
    election.volunteer(s1b, "m1")
    assert election.leader() == "m2"
