"""Unit tests for the distributed lock manager (MVOCC write locks)."""

import pytest

from repro.coordination.locks import DistributedLockManager
from repro.coordination.znodes import CoordinationService
from repro.errors import LockError


@pytest.fixture
def service():
    return CoordinationService()


@pytest.fixture
def locks(service):
    return DistributedLockManager(service)


def test_acquire_free_lock(service, locks):
    session = service.connect("t1")
    assert locks.try_acquire(session, "record-a", "t1")
    assert locks.holder("record-a") == "t1"


def test_conflicting_acquire_fails(service, locks):
    s1, s2 = service.connect("t1"), service.connect("t2")
    assert locks.try_acquire(s1, "k", "t1")
    assert not locks.try_acquire(s2, "k", "t2")
    assert locks.holder("k") == "t1"


def test_reentrant_acquire_succeeds(service, locks):
    session = service.connect("t1")
    assert locks.try_acquire(session, "k", "t1")
    assert locks.try_acquire(session, "k", "t1")


def test_release_frees_lock(service, locks):
    s1, s2 = service.connect("t1"), service.connect("t2")
    locks.try_acquire(s1, "k", "t1")
    locks.release(s1, "k", "t1")
    assert locks.holder("k") is None
    assert locks.try_acquire(s2, "k", "t2")


def test_release_by_non_holder_rejected(service, locks):
    s1, s2 = service.connect("t1"), service.connect("t2")
    locks.try_acquire(s1, "k", "t1")
    with pytest.raises(LockError):
        locks.release(s2, "k", "t2")


def test_release_unheld_rejected(service, locks):
    session = service.connect("t1")
    with pytest.raises(LockError):
        locks.release(session, "never", "t1")


def test_session_expiry_frees_locks(service, locks):
    s1 = service.connect("t1")
    locks.try_acquire(s1, "k1", "t1")
    locks.try_acquire(s1, "k2", "t1")
    s1.expire()  # crashed transaction manager
    assert locks.holder("k1") is None
    assert locks.holder("k2") is None


def test_held_locks_listing(service, locks):
    s1 = service.connect("t1")
    locks.try_acquire(s1, "a", "t1")
    locks.try_acquire(s1, "b", "t1")
    assert sorted(locks.held_locks("t1")) == ["a", "b"]
