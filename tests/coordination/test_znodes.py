"""Unit tests for the znode tree: sessions, ephemerals, watches."""

import pytest

from repro.coordination.znodes import CoordinationService
from repro.errors import (
    NodeExistsError,
    NoNodeError,
    NotEmptyError,
    SessionExpiredError,
)


@pytest.fixture
def service():
    return CoordinationService()


@pytest.fixture
def session(service):
    return service.connect("tester")


def test_create_and_get(service, session):
    service.create(session, "/a", b"data")
    data, stat = service.get("/a")
    assert data == b"data"
    assert stat.version == 0


def test_nested_create_requires_parent(service, session):
    with pytest.raises(NoNodeError):
        service.create(session, "/a/b")


def test_ensure_path_creates_ancestors(service, session):
    service.ensure_path(session, "/a/b/c")
    assert service.exists("/a/b/c")


def test_duplicate_create_rejected(service, session):
    service.create(session, "/a")
    with pytest.raises(NodeExistsError):
        service.create(session, "/a")


def test_set_bumps_version(service, session):
    service.create(session, "/a", b"v0")
    version = service.set(session, "/a", b"v1")
    assert version == 1
    data, stat = service.get("/a")
    assert data == b"v1" and stat.version == 1


def test_sequential_nodes_are_ordered(service, session):
    service.create(session, "/q")
    p1 = service.create(session, "/q/item-", sequential=True)
    p2 = service.create(session, "/q/item-", sequential=True)
    assert p1 < p2
    assert service.get_children("/q") == [p1.rsplit("/", 1)[1], p2.rsplit("/", 1)[1]]


def test_delete_childless_only(service, session):
    service.ensure_path(session, "/a/b")
    with pytest.raises(NotEmptyError):
        service.delete(session, "/a")
    service.delete(session, "/a/b")
    service.delete(session, "/a")
    assert not service.exists("/a")


def test_ephemeral_dies_with_session(service):
    s1 = service.connect("one")
    service.create(s1, "/live", ephemeral=True)
    assert service.exists("/live")
    s1.expire()
    assert not service.exists("/live")


def test_persistent_survives_session(service):
    s1 = service.connect("one")
    service.create(s1, "/kept")
    s1.expire()
    assert service.exists("/kept")


def test_expired_session_rejected(service):
    s1 = service.connect("one")
    s1.expire()
    with pytest.raises(SessionExpiredError):
        service.create(s1, "/x")


def test_watch_fires_on_create(service, session):
    events = []
    service.watch("/w", lambda event, path: events.append((event, path)))
    service.create(session, "/w")
    assert events == [("created", "/w")]


def test_watch_is_one_shot(service, session):
    events = []
    service.create(session, "/w", b"0")
    service.watch("/w", lambda event, path: events.append(event))
    service.set(session, "/w", b"1")
    service.set(session, "/w", b"2")
    assert events == ["changed"]


def test_watch_fires_on_session_expiry_delete(service):
    s1 = service.connect("one")
    service.create(s1, "/eph", ephemeral=True)
    events = []
    service.watch("/eph", lambda event, path: events.append(event))
    s1.expire()
    assert events == ["deleted"]


def test_children_watch_on_parent(service, session):
    service.create(session, "/parent")
    events = []
    service.watch("/parent", lambda event, path: events.append(event))
    service.create(session, "/parent/child")
    assert "children" in events


def test_invalid_paths_rejected(service, session):
    for bad in ("no-slash", "/", ""):
        with pytest.raises(ValueError):
            service.create(session, bad)
