"""Group-commit batching tests (§3.7.2)."""

import pytest

from repro.txn.batch import GroupCommitter
from repro.wal.record import LogRecord, RecordType
from repro.wal.repository import LogRepository


def record(i: int) -> LogRecord:
    return LogRecord(
        record_type=RecordType.WRITE,
        table="t",
        tablet="t#0",
        key=f"k{i}".encode(),
        group="g",
        timestamp=i + 1,
        value=b"v",
    )


@pytest.fixture
def repo(dfs, machines):
    return LogRepository(dfs, machines[0], "/log", segment_size=1 << 20)


def test_rejects_bad_batch_size(repo):
    with pytest.raises(ValueError):
        GroupCommitter(repo, batch_size=0)


def test_flush_at_batch_size(repo):
    committer = GroupCommitter(repo, batch_size=4)
    futures = [committer.submit(record(i)) for i in range(4)]
    assert committer.flushes == 1
    assert committer.pending == 0
    assert all(f for f in futures)


def test_futures_filled_with_pointers(repo):
    committer = GroupCommitter(repo, batch_size=2)
    f1 = committer.submit(record(0))
    f2 = committer.submit(record(1))
    (p1, r1), (p2, r2) = f1[0], f2[0]
    assert repo.read(p1) == r1
    assert repo.read(p2) == r2


def test_manual_flush_drains_partial_batch(repo):
    committer = GroupCommitter(repo, batch_size=100)
    committer.submit(record(0))
    assert committer.pending == 1
    appended = committer.flush()
    assert len(appended) == 1
    assert committer.pending == 0


def test_empty_flush_is_noop(repo):
    committer = GroupCommitter(repo)
    assert committer.flush() == []
    assert committer.flushes == 0


def test_batching_reduces_replication_rounds(repo, machines):
    """The whole point: N records in one batch cost one round trip."""
    unbatched = GroupCommitter(repo, batch_size=1)
    before = machines[0].counters.get("net.messages")
    for i in range(8):
        unbatched.submit(record(i))
    unbatched_msgs = machines[0].counters.get("net.messages") - before

    batched = GroupCommitter(repo, batch_size=8)
    before = machines[0].counters.get("net.messages")
    for i in range(8, 16):
        batched.submit(record(i))
    batched_msgs = machines[0].counters.get("net.messages") - before
    assert batched_msgs == 1
    assert unbatched_msgs == 8


def test_server_group_committer_uses_config(dfs, machines):
    from repro.config import LogBaseConfig
    from repro.coordination.tso import TimestampOracle
    from repro.coordination.znodes import CoordinationService
    from repro.core.partition import KeyRange
    from repro.core.schema import ColumnGroup, TableSchema
    from repro.core.tablet import Tablet, TabletId
    from repro.core.tablet_server import TabletServer

    schema = TableSchema("t", "id", (ColumnGroup("g", ("v",)),))
    server = TabletServer(
        "ts-gc", machines[0], dfs, TimestampOracle(CoordinationService()),
        LogBaseConfig(group_commit_batch=4),
    )
    server.assign_tablet(Tablet(TabletId("t", 0), KeyRange(b"", None), schema))
    committer = server.group_committer()
    assert committer._batch_size == 4
    for i in range(4):
        committer.submit(record(i))
    assert committer.flushes == 1
