"""Strict-serializable mode tests (§3.7.1's optional read-lock variant).

"If strict serializability is required, read locks also need to be
acquired by transactions [27], but that will affect transaction
performance" — the mode exists, closes write skew, and costs conflicts
that snapshot isolation would have allowed.
"""

import pytest

from repro import ColumnGroup, LogBase, TableSchema, TransactionAborted
from repro.txn.mvocc import TransactionManager

X = b"000000000100"
Y = b"000000000200"


@pytest.fixture
def serializable_db(schema, small_config):
    db = LogBase(n_nodes=3, config=small_config)
    db.create_table(schema)
    # Swap in a strict-serializable transaction manager.
    db.txn_manager = TransactionManager(
        db.cluster.master, db.cluster.tso, db.cluster.coordination, serializable=True
    )
    db.put("events", X, {"payload": {"body": b"x0"}})
    db.put("events", Y, {"payload": {"body": b"y0"}})
    return db


def test_write_skew_prevented(serializable_db):
    """The Figure 5 cycle cannot commit on both sides any more."""
    db = serializable_db
    t1, t2 = db.begin(), db.begin()
    t1.read("events", X, "payload")
    t2.read("events", Y, "payload")
    t1.write("events", Y, "payload", {"body": b"y1"})
    t2.write("events", X, "payload", {"body": b"x2"})
    t1.commit()
    with pytest.raises(TransactionAborted):
        t2.commit()  # t2's read of Y is stale -> serializability violated
    assert db.get("events", Y, "payload") == {"body": b"y1"}
    assert db.get("events", X, "payload") == {"body": b"x0"}


def test_read_only_transactions_still_free(serializable_db):
    db = serializable_db
    txn = db.begin()
    assert txn.read("events", X, "payload") == {"body": b"x0"}
    txn.commit()
    assert db.txn_manager.read_only_commits == 1


def test_non_conflicting_updates_both_commit(serializable_db):
    db = serializable_db
    t1, t2 = db.begin(), db.begin()
    t1.write("events", X, "payload", {"body": b"x1"})
    t2.write("events", Y, "payload", {"body": b"y2"})
    t1.commit()
    t2.commit()
    assert db.get("events", X, "payload") == {"body": b"x1"}
    assert db.get("events", Y, "payload") == {"body": b"y2"}


def test_read_locks_block_concurrent_writer(serializable_db):
    """The cost the paper warns about: a reader's validation-time read
    lock conflicts with a writer's validation."""
    db = serializable_db
    reader = db.begin()
    reader.read("events", X, "payload")
    reader.write("events", Y, "payload", {"body": b"derived-from-x"})
    writer = db.begin()
    writer.write("events", X, "payload", {"body": b"x-new"})
    # Interleave: reader enters validation first (holds read lock on X).
    manager = db.txn_manager
    manager._acquire_locks(reader)
    with pytest.raises(TransactionAborted):
        manager._acquire_locks(writer)
    manager._release_locks(reader)
    manager.abort(writer)
    reader.commit()
    assert db.get("events", Y, "payload") == {"body": b"derived-from-x"}


def test_snapshot_mode_still_allows_write_skew(db):
    """Control: the default (snapshot isolation) manager permits the same
    history that serializable mode refuses."""
    db.put("events", X, {"payload": {"body": b"x0"}})
    db.put("events", Y, {"payload": {"body": b"y0"}})
    t1, t2 = db.begin(), db.begin()
    t1.read("events", X, "payload")
    t2.read("events", Y, "payload")
    t1.write("events", Y, "payload", {"body": b"y1"})
    t2.write("events", X, "payload", {"body": b"x2"})
    t1.commit()
    t2.commit()  # allowed under SI
    assert db.get("events", X, "payload") == {"body": b"x2"}
