"""Two-phase commit tests for transactions spanning tablet servers."""

import pytest

from repro.errors import TransactionAborted
from repro.wal.record import RecordType


def _keys_on_distinct_servers(db, count=2):
    """Find keys owned by different tablet servers."""
    master = db.cluster.master
    chosen = []
    owners = set()
    for step in range(0, 2_000_000_000, 123_456_789):
        key = str(step).zfill(12).encode()
        owner, _ = master.locate("events", key)
        if owner not in owners:
            owners.add(owner)
            chosen.append(key)
        if len(chosen) == count:
            return chosen
    raise RuntimeError("could not find keys on distinct servers")


def test_distributed_commit_all_visible(db):
    k1, k2 = _keys_on_distinct_servers(db)
    txn = db.begin()
    txn.write("events", k1, "payload", {"body": b"left"})
    txn.write("events", k2, "payload", {"body": b"right"})
    txn.commit()
    assert db.get("events", k1, "payload") == {"body": b"left"}
    assert db.get("events", k2, "payload") == {"body": b"right"}


def test_commit_record_on_every_participant(db):
    k1, k2 = _keys_on_distinct_servers(db)
    txn = db.begin()
    txn.write("events", k1, "payload", {"body": b"a"})
    txn.write("events", k2, "payload", {"body": b"b"})
    txn.commit()
    master = db.cluster.master
    for key in (k1, k2):
        server = master.server(master.locate("events", key)[0])
        kinds = [r.record_type for _, r in server.log.scan_all()]
        assert RecordType.COMMIT in kinds


def test_participant_failure_aborts_whole_transaction(db):
    k1, k2 = _keys_on_distinct_servers(db)
    txn = db.begin()
    txn.write("events", k1, "payload", {"body": b"a"})
    txn.write("events", k2, "payload", {"body": b"b"})
    master = db.cluster.master
    victim_name = master.locate("events", k2)[0]
    # Kill the second participant after the read phase, before commit.
    master.server(victim_name).serving = False
    with pytest.raises(TransactionAborted):
        txn.commit()
    master.server(victim_name).serving = True
    # Neither write is visible: atomicity across servers.
    assert db.get("events", k1, "payload") is None


def test_single_server_transaction_skips_2pc(db):
    """Entity-group-local transactions must not pay 2PC messages."""
    master = db.cluster.master
    key = b"000000000001"
    owner, tablet = master.locate("events", key)
    neighbour = tablet.key_range.start or b"000000000000"
    server = master.server(owner)
    txn = db.begin()
    txn.write("events", key, "payload", {"body": b"1"})
    txn.write("events", neighbour, "payload", {"body": b"2"})
    before = server.machine.counters.get("net.messages")
    txn.commit()
    # One batch append == one replication message, no prepare round.
    assert server.machine.counters.get("net.messages") - before == 1


def test_abort_records_written_on_prepared_participants(db):
    k1, k2 = _keys_on_distinct_servers(db)
    master = db.cluster.master
    sorted_keys = sorted([k1, k2], key=lambda k: master.locate("events", k)[0])
    first_name = master.locate("events", sorted_keys[0])[0]
    second_name = master.locate("events", sorted_keys[1])[0]
    txn = db.begin()
    for key in sorted_keys:
        txn.write("events", key, "payload", {"body": b"x"})
    # The second participant dies exactly at its prepare step (validation
    # already passed), so the first participant has prepared and must log
    # an abort record.
    from repro.errors import ServerDownError

    second_server = master.server(second_name)

    def failing_prepare(records):
        raise ServerDownError("crashed during prepare")

    second_server.append_transactional = failing_prepare
    with pytest.raises(TransactionAborted):
        txn.commit()
    first_server = master.server(first_name)
    kinds = [r.record_type for _, r in first_server.log.scan_all()]
    assert RecordType.ABORT in kinds
