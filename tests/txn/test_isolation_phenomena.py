"""Guarantee 2: the MVOCC prevents every inconsistency listed in §3.7.1
except write skew — exactly the snapshot-isolation profile.

Each test reproduces one multiversion history from the paper's list and
asserts the outcome snapshot isolation prescribes.
"""

import pytest

from repro.errors import ValidationConflict

X = b"000000000100"
Y = b"000000000200"


@pytest.fixture
def seeded(db):
    db.put("events", X, {"payload": {"body": b"x0"}})
    db.put("events", Y, {"payload": {"body": b"y0"}})
    return db


def body(row):
    return None if row is None else row["body"]


class TestDirtyRead:
    """w1[x1] ... r2[x0]: T2 must not see T1's uncommitted write."""

    def test_uncommitted_write_invisible(self, seeded):
        t1 = seeded.begin()
        t1.write("events", X, "payload", {"body": b"x1-uncommitted"})
        t2 = seeded.begin()
        assert body(t2.read("events", X, "payload")) == b"x0"
        t1.abort()
        assert body(t2.read("events", X, "payload")) == b"x0"


class TestFuzzyRead:
    """r1[x0] ... w2[x2] c2 ... r1[x] again: T1 re-reads the same version."""

    def test_repeat_read_stable_across_concurrent_commit(self, seeded):
        t1 = seeded.begin()
        first = body(t1.read("events", X, "payload"))
        t2 = seeded.begin()
        t2.write("events", X, "payload", {"body": b"x2"})
        t2.commit()
        second = body(t1.read("events", X, "payload"))
        assert first == second == b"x0"


class TestReadSkew:
    """r1[x0] w2[x2] w2[y2] c2 r1[y]: T1 must read y0, not y2."""

    def test_consistent_snapshot_across_records(self, seeded):
        t1 = seeded.begin()
        assert body(t1.read("events", X, "payload")) == b"x0"
        t2 = seeded.begin()
        t2.write("events", X, "payload", {"body": b"x2"})
        t2.write("events", Y, "payload", {"body": b"y2"})
        t2.commit()
        assert body(t1.read("events", Y, "payload")) == b"y0"


class TestPhantom:
    """r1[P] w2[y2 in P] c2 r1[P]: the predicate result set is stable."""

    def test_range_result_stable(self, seeded):
        t1 = seeded.begin()
        first = [key for key, _ in t1.scan("events", "payload", b"0", b"9")]
        t2 = seeded.begin()
        t2.write("events", b"000000000150", "payload", {"body": b"phantom"})
        t2.commit()
        second = [key for key, _ in t1.scan("events", "payload", b"0", b"9")]
        assert first == second
        t1.commit()
        # A transaction started after t2's commit does see the new row.
        t3 = seeded.begin()
        third = [key for key, _ in t3.scan("events", "payload", b"0", b"9")]
        assert b"000000000150" in third


class TestDirtyWrite:
    """w1[x1] w2[x2]: overlapping writers cannot both install blindly."""

    def test_first_committer_wins(self, seeded):
        t1 = seeded.begin()
        t2 = seeded.begin()
        t1.write("events", X, "payload", {"body": b"x1"})
        t2.write("events", X, "payload", {"body": b"x2"})
        t1.commit()
        with pytest.raises(ValidationConflict):
            t2.commit()
        assert body(seeded.get("events", X, "payload")) == b"x1"


class TestLostUpdate:
    """r1[x0] w2[x2] c2 w1[x1] c1: T1's commit must fail, not clobber."""

    def test_concurrent_increment_not_lost(self, seeded):
        t1 = seeded.begin()
        t2 = seeded.begin()
        v1 = body(t1.read("events", X, "payload"))
        v2 = body(t2.read("events", X, "payload"))
        assert v1 == v2 == b"x0"
        t2.write("events", X, "payload", {"body": v2 + b"+t2"})
        t2.commit()
        t1.write("events", X, "payload", {"body": v1 + b"+t1"})
        with pytest.raises(ValidationConflict):
            t1.commit()
        assert body(seeded.get("events", X, "payload")) == b"x0+t2"


class TestWriteSkew:
    """r1[x0] r2[y0] w1[y1] w2[x2] c1 c2: SI permits this anomaly —
    the paper explicitly documents the MVSG cycle (Figure 5)."""

    def test_write_skew_allowed(self, seeded):
        t1 = seeded.begin()
        t2 = seeded.begin()
        assert body(t1.read("events", X, "payload")) == b"x0"
        assert body(t2.read("events", Y, "payload")) == b"y0"
        t1.write("events", Y, "payload", {"body": b"y1"})
        t2.write("events", X, "payload", {"body": b"x2"})
        t1.commit()
        t2.commit()  # disjoint write sets: both commit under SI
        assert body(seeded.get("events", X, "payload")) == b"x2"
        assert body(seeded.get("events", Y, "payload")) == b"y1"


class TestSnapshotBoundary:
    def test_transaction_sees_commits_before_begin(self, seeded):
        t1 = seeded.begin()
        t1.write("events", X, "payload", {"body": b"x-new"})
        t1.commit()
        t2 = seeded.begin()
        assert body(t2.read("events", X, "payload")) == b"x-new"

    def test_own_commit_timestamp_orders_snapshot(self, seeded):
        t1 = seeded.begin()
        t1.write("events", X, "payload", {"body": b"xa"})
        ts = t1.commit()
        assert body(seeded.get("events", X, "payload", as_of=ts)) == b"xa"
        assert body(seeded.get("events", X, "payload", as_of=ts - 1)) == b"x0"
