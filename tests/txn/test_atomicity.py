"""Guarantee 3: the commit record gates visibility (atomicity)."""

import pytest

from repro.wal.record import RecordType


def test_commit_record_written_with_writes(db):
    txn = db.begin()
    txn.write("events", b"000000000001", "payload", {"body": b"a"})
    txn.commit()
    server_name, _ = db.cluster.master.locate("events", b"000000000001")
    server = db.cluster.master.server(server_name)
    kinds = [record.record_type for _, record in server.log.scan_all()]
    assert RecordType.COMMIT in kinds
    # The commit record follows the transaction's writes in the log.
    assert kinds.index(RecordType.WRITE) < kinds.index(RecordType.COMMIT)


def test_writes_and_commit_in_one_batch(db):
    """§3.7.2: commit and log records are persisted in batches — one
    replication round trip for the whole transaction."""
    txn = db.begin()
    key = b"000000000002"
    txn.write("events", key, "payload", {"body": b"a"})
    txn.write("events", key, "meta", {"source": b"s", "kind": b"k"})
    server_name, _ = db.cluster.master.locate("events", key)
    server = db.cluster.master.server(server_name)
    before = server.machine.counters.get("net.messages")
    txn.commit()
    assert server.machine.counters.get("net.messages") - before == 1


def test_scan_ignores_uncommitted_writes(db):
    server = db.cluster.servers[0]
    # Simulate a crash after the write batch but before the commit record:
    # append transactional writes with no commit.
    from repro.wal.record import LogRecord

    tablet = list(server.tablets.values())[0]
    key = tablet.key_range.start or b"000000000000"
    server.append_transactional([
        LogRecord(RecordType.WRITE, txn_id=999, table="events",
                  tablet=str(tablet.tablet_id), key=key, group="payload",
                  timestamp=10_000, value=b"orphan"),
    ])
    rows = list(server.full_scan("events", "payload"))
    assert all(value != b"orphan" for _, _, value in rows)
    assert server.read("events", key, "payload") is None


def test_compaction_discards_uncommitted_writes(db):
    server = db.cluster.servers[0]
    from repro.wal.record import LogRecord

    tablet = list(server.tablets.values())[0]
    key = tablet.key_range.start or b"000000000000"
    server.append_transactional([
        LogRecord(RecordType.WRITE, txn_id=998, table="events",
                  tablet=str(tablet.tablet_id), key=key, group="payload",
                  timestamp=9_999, value=b"orphan"),
    ])
    result = server.compact()
    assert result.stats.dropped_uncommitted == 1


def test_all_or_nothing_across_records(db):
    """All of a transaction's writes become visible atomically: a snapshot
    taken at any timestamp sees either none or all of them."""
    txn = db.begin()
    keys = [b"000000000010", b"000000000011", b"000000000012"]
    for key in keys:
        txn.write("events", key, "payload", {"body": b"atomic"})
    commit_ts = txn.commit()
    before = [db.get("events", key, "payload", as_of=commit_ts - 1) for key in keys]
    after = [db.get("events", key, "payload", as_of=commit_ts) for key in keys]
    assert before == [None, None, None]
    assert all(row == {"body": b"atomic"} for row in after)
