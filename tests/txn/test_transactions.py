"""Transaction lifecycle tests: begin/read/write/commit/abort."""

import pytest

from repro.errors import TransactionStateError, ValidationConflict
from repro.txn.transaction import TxnStatus


def test_read_only_always_commits(db):
    db.put("events", b"000000000001", {"payload": {"body": b"v"}})
    txn = db.begin()
    assert txn.read("events", b"000000000001", "payload") == {"body": b"v"}
    commit_ts = txn.commit()
    assert txn.status is TxnStatus.COMMITTED
    assert commit_ts == txn.read_ts
    assert db.txn_manager.read_only_commits == 1


def test_update_transaction_visible_after_commit(db):
    txn = db.begin()
    txn.write("events", b"000000000002", "payload", {"body": b"new"})
    # Not visible before commit.
    assert db.get("events", b"000000000002", "payload") is None
    txn.commit()
    assert db.get("events", b"000000000002", "payload") == {"body": b"new"}


def test_read_your_own_writes(db):
    txn = db.begin()
    txn.write("events", b"000000000003", "payload", {"body": b"mine"})
    assert txn.read("events", b"000000000003", "payload") == {"body": b"mine"}


def test_read_your_own_delete(db):
    db.put("events", b"000000000004", {"payload": {"body": b"v"}})
    txn = db.begin()
    txn.delete("events", b"000000000004", "payload")
    assert txn.read("events", b"000000000004", "payload") is None


def test_abort_discards_writes(db):
    txn = db.begin()
    txn.write("events", b"000000000005", "payload", {"body": b"gone"})
    txn.abort()
    assert txn.status is TxnStatus.ABORTED
    assert db.get("events", b"000000000005", "payload") is None


def test_operations_after_commit_rejected(db):
    txn = db.begin()
    txn.write("events", b"000000000006", "payload", {"body": b"v"})
    txn.commit()
    with pytest.raises(TransactionStateError):
        txn.read("events", b"000000000006", "payload")
    with pytest.raises(TransactionStateError):
        txn.commit()


def test_operations_after_abort_rejected(db):
    txn = db.begin()
    txn.abort()
    with pytest.raises(TransactionStateError):
        txn.write("events", b"k", "payload", {"body": b"v"})


def test_transactional_delete_applies_at_commit(db):
    db.put("events", b"000000000007", {"payload": {"body": b"v"}})
    txn = db.begin()
    txn.delete("events", b"000000000007", "payload")
    assert db.get("events", b"000000000007", "payload") is not None
    txn.commit()
    assert db.get("events", b"000000000007", "payload") is None


def test_commit_timestamps_order_transactions(db):
    t1 = db.begin()
    t1.write("events", b"000000000008", "payload", {"body": b"1"})
    ts1 = t1.commit()
    t2 = db.begin()
    t2.write("events", b"000000000008", "payload", {"body": b"2"})
    ts2 = t2.commit()
    assert ts2 > ts1
    # Historical read sees the first version.
    assert db.get("events", b"000000000008", "payload", as_of=ts1) == {"body": b"1"}


def test_conflict_abort_then_restart_succeeds(db):
    db.put("events", b"000000000009", {"payload": {"body": b"base"}})
    t1 = db.begin()
    t2 = db.begin()
    t1.read("events", b"000000000009", "payload")
    t2.read("events", b"000000000009", "payload")
    t1.write("events", b"000000000009", "payload", {"body": b"t1"})
    t2.write("events", b"000000000009", "payload", {"body": b"t2"})
    t1.commit()
    with pytest.raises(ValidationConflict):
        t2.commit()
    # Paper: failed validation restarts the transaction.
    t2b = db.txn_manager.restart(t2)
    assert t2b.restarts == 1
    t2b.read("events", b"000000000009", "payload")
    t2b.write("events", b"000000000009", "payload", {"body": b"t2-retry"})
    t2b.commit()
    assert db.get("events", b"000000000009", "payload") == {"body": b"t2-retry"}


def test_locks_released_after_commit_and_abort(db):
    t1 = db.begin()
    t1.write("events", b"000000000010", "payload", {"body": b"a"})
    t1.commit()
    t2 = db.begin()
    t2.write("events", b"000000000010", "payload", {"body": b"b"})
    t2.commit()  # would deadlock if t1's locks leaked
    assert db.get("events", b"000000000010", "payload") == {"body": b"b"}


def test_multi_record_transaction_atomic_visibility(db):
    txn = db.begin()
    txn.write("events", b"000000000011", "payload", {"body": b"a"})
    txn.write("events", b"000000000012", "payload", {"body": b"b"})
    txn.commit()
    assert db.get("events", b"000000000011", "payload") == {"body": b"a"}
    assert db.get("events", b"000000000012", "payload") == {"body": b"b"}


def test_abort_rate_metric(db):
    db.put("events", b"000000000013", {"payload": {"body": b"base"}})
    t1, t2 = db.begin(), db.begin()
    for t in (t1, t2):
        t.read("events", b"000000000013", "payload")
        t.write("events", b"000000000013", "payload", {"body": b"x"})
    t1.commit()
    with pytest.raises(ValidationConflict):
        t2.commit()
    assert db.txn_manager.commits == 1
    assert db.txn_manager.aborts == 1
    assert db.txn_manager.abort_rate == 0.5
