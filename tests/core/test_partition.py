"""Unit tests for vertical and horizontal partitioning (§3.2)."""

import pytest

from repro.core.partition import (
    KeyRange,
    QueryTrace,
    VerticalPartitioner,
    split_key_domain,
)


class TestKeyRange:
    def test_contains_half_open(self):
        rng = KeyRange(b"b", b"d")
        assert rng.contains(b"b")
        assert rng.contains(b"c")
        assert not rng.contains(b"d")
        assert not rng.contains(b"a")

    def test_unbounded_end(self):
        rng = KeyRange(b"m", None)
        assert rng.contains(b"zzzz")
        assert not rng.contains(b"a")


class TestSplitKeyDomain:
    def test_covers_whole_domain(self):
        ranges = split_key_domain(1000, 4)
        assert ranges[0].start == b""
        assert ranges[-1].end is None
        for a, b in zip(ranges, ranges[1:]):
            assert a.end == b.start

    def test_every_key_in_exactly_one_tablet(self):
        ranges = split_key_domain(1000, 3)
        for value in (0, 1, 332, 333, 334, 999, 2000):
            key = str(value).zfill(12).encode()
            owners = [r for r in ranges if r.contains(key)]
            assert len(owners) == 1

    def test_single_tablet(self):
        ranges = split_key_domain(100, 1)
        assert len(ranges) == 1
        assert ranges[0].contains(b"000000000050")

    def test_rejects_zero_tablets(self):
        with pytest.raises(ValueError):
            split_key_domain(100, 0)


class TestVerticalPartitioner:
    WIDTHS = {"a": 100, "b": 100, "c": 8, "d": 8}

    def test_disjoint_queries_get_separate_groups(self):
        part = VerticalPartitioner(self.WIDTHS)
        trace = [
            QueryTrace(frozenset({"a", "b"}), frequency=10),
            QueryTrace(frozenset({"c", "d"}), frequency=10),
        ]
        groups = {frozenset(g) for g in part.partition(trace)}
        assert frozenset({"a", "b"}) in groups
        assert frozenset({"c", "d"}) in groups

    def test_cotouched_columns_grouped(self):
        part = VerticalPartitioner(self.WIDTHS)
        trace = [QueryTrace(frozenset({"a", "c"}), frequency=100)]
        groups = part.partition(trace)
        owning = [g for g in groups if "a" in g]
        assert "c" in owning[0]

    def test_hot_narrow_query_splits_wide_column_away(self):
        # An aggregate touching only the narrow column "c" should not drag
        # the 100-byte column "a" along.
        part = VerticalPartitioner(self.WIDTHS)
        trace = [
            QueryTrace(frozenset({"c"}), frequency=1000),
            QueryTrace(frozenset({"a", "b", "c", "d"}), frequency=1),
        ]
        groups = part.partition(trace)
        c_group = next(g for g in groups if "c" in g)
        assert "a" not in c_group and "b" not in c_group

    def test_cost_matches_definition(self):
        part = VerticalPartitioner({"a": 10, "b": 20}, access_overhead=0)
        trace = [QueryTrace(frozenset({"a"}), frequency=2)]
        together = part.cost([frozenset({"a", "b"})], trace)
        apart = part.cost([frozenset({"a"}), frozenset({"b"})], trace)
        assert together == 60  # 2 * (10 + 20)
        assert apart == 20     # 2 * 10

    def test_access_overhead_rewards_grouping_coaccessed_columns(self):
        part = VerticalPartitioner({"a": 10, "b": 10}, access_overhead=16)
        trace = [QueryTrace(frozenset({"a", "b"}), frequency=1)]
        together = part.cost([frozenset({"a", "b"})], trace)
        apart = part.cost([frozenset({"a"}), frozenset({"b"})], trace)
        assert together < apart


    def test_greedy_agrees_on_small_obvious_case(self):
        widths = {"a": 50, "b": 50, "c": 50}
        trace = [
            QueryTrace(frozenset({"a", "b"}), frequency=5),
            QueryTrace(frozenset({"c"}), frequency=5),
        ]
        exhaustive = VerticalPartitioner(widths, exhaustive_limit=8).partition(trace)
        greedy = VerticalPartitioner(widths, exhaustive_limit=0).partition(trace)
        assert {frozenset(g) for g in exhaustive} == {frozenset(g) for g in greedy}

    def test_build_schema_covers_all_columns(self):
        part = VerticalPartitioner(self.WIDTHS)
        trace = [QueryTrace(frozenset({"a"}), 1), QueryTrace(frozenset({"c", "d"}), 1)]
        schema = part.build_schema("t", "id", trace)
        covered = {c for g in schema.groups for c in g.columns}
        assert covered == set(self.WIDTHS)

    def test_rejects_empty_columns(self):
        with pytest.raises(ValueError):
            VerticalPartitioner({})

    def test_set_partitions_count_is_bell_number(self):
        parts = list(VerticalPartitioner._set_partitions(["a", "b", "c", "d"]))
        assert len(parts) == 15  # Bell(4)
