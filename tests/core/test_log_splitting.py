"""Direct unit tests for log splitting and split-log adoption (§3.8)."""

import pytest

from repro.config import LogBaseConfig
from repro.coordination.tso import TimestampOracle
from repro.coordination.znodes import CoordinationService
from repro.core.partition import KeyRange
from repro.core.recovery import adopt_split_log, split_log_by_tablet
from repro.core.tablet import Tablet, TabletId
from repro.core.tablet_server import TabletServer
from repro.wal.record import LogRecord, RecordType, commit_record


@pytest.fixture
def tso():
    return TimestampOracle(CoordinationService())


def two_tablet_server(dfs, machine, schema, tso, name="ts-split") -> TabletServer:
    server = TabletServer(name, machine, dfs, tso, LogBaseConfig())
    server.assign_tablet(
        Tablet(TabletId("events", 0), KeyRange(b"", b"m"), schema)
    )
    server.assign_tablet(
        Tablet(TabletId("events", 1), KeyRange(b"m", None), schema)
    )
    return server


def test_split_separates_tablets(dfs, machines, schema, tso):
    server = two_tablet_server(dfs, machines[0], schema, tso)
    server.write("events", b"aaa", {"payload": b"left"})
    server.write("events", b"zzz", {"payload": b"right"})
    splits = split_log_by_tablet(dfs, server.name, machines[1])
    assert set(splits.paths) == {"events#0", "events#1"}


def test_adopt_replays_only_its_tablet(dfs, machines, schema, tso):
    source = two_tablet_server(dfs, machines[0], schema, tso)
    source.write("events", b"aaa", {"payload": b"left"})
    source.write("events", b"zzz", {"payload": b"right"})
    split_log_by_tablet(dfs, source.name, machines[1])

    adopter = TabletServer("ts-adopt", machines[1], dfs, tso, LogBaseConfig())
    adopter.assign_tablet(Tablet(TabletId("events", 1), KeyRange(b"m", None), schema))
    report = adopt_split_log(adopter, dfs, source.name, "events#1")
    assert report.writes_applied == 1
    assert adopter.read("events", b"zzz", "payload")[1] == b"right"
    from repro.errors import TabletNotFound

    with pytest.raises(TabletNotFound):
        adopter.read("events", b"aaa", "payload")


def test_split_respects_start_pointer(dfs, machines, schema, tso):
    """Only the post-checkpoint suffix is split (the §3.8 'from the
    consistent recovery starting point')."""
    server = two_tablet_server(dfs, machines[0], schema, tso)
    server.write("events", b"aaa", {"payload": b"old"})
    marker = server.log.end_pointer()
    server.write("events", b"bbb", {"payload": b"new"})
    splits = split_log_by_tablet(dfs, server.name, machines[1], start=marker)
    assert set(splits.paths) == {"events#0"}
    adopter = TabletServer("ts-adopt2", machines[2], dfs, tso, LogBaseConfig())
    adopter.assign_tablet(Tablet(TabletId("events", 0), KeyRange(b"", b"m"), schema))
    report = adopt_split_log(adopter, dfs, server.name, "events#0")
    assert report.writes_applied == 1  # only "bbb"


def test_uncommitted_txn_writes_not_adopted(dfs, machines, schema, tso):
    server = two_tablet_server(dfs, machines[0], schema, tso)
    # Committed transactional write plus an uncommitted one.
    server.append_transactional([
        LogRecord(RecordType.WRITE, txn_id=5, table="events", tablet="events#0",
                  key=b"good", group="payload", timestamp=10, value=b"committed"),
        commit_record(5, 10),
    ])
    server.append_transactional([
        LogRecord(RecordType.WRITE, txn_id=6, table="events", tablet="events#0",
                  key=b"bad", group="payload", timestamp=11, value=b"uncommitted"),
    ])
    split_log_by_tablet(dfs, server.name, machines[1])
    adopter = TabletServer("ts-adopt3", machines[1], dfs, tso, LogBaseConfig())
    adopter.assign_tablet(Tablet(TabletId("events", 0), KeyRange(b"", b"m"), schema))
    report = adopt_split_log(adopter, dfs, server.name, "events#0")
    assert report.uncommitted_ignored == 1
    assert adopter.read("events", b"good", "payload")[1] == b"committed"
    assert adopter.read("events", b"bad", "payload") is None


def test_adopted_deletes_apply(dfs, machines, schema, tso):
    server = two_tablet_server(dfs, machines[0], schema, tso)
    server.write("events", b"aaa", {"payload": b"v"})
    server.delete("events", b"aaa", "payload")
    split_log_by_tablet(dfs, server.name, machines[1])
    adopter = TabletServer("ts-adopt4", machines[1], dfs, tso, LogBaseConfig())
    adopter.assign_tablet(Tablet(TabletId("events", 0), KeyRange(b"", b"m"), schema))
    report = adopt_split_log(adopter, dfs, server.name, "events#0")
    assert report.deletes_applied == 1
    assert adopter.read("events", b"aaa", "payload") is None


def test_adoption_rehomes_data_into_adopter_log(dfs, machines, schema, tso):
    """Adoption re-appends records to the adopter's own log, so the
    adopter no longer depends on the failed server's files."""
    server = two_tablet_server(dfs, machines[0], schema, tso)
    server.write("events", b"aaa", {"payload": b"move-me"})
    split_log_by_tablet(dfs, server.name, machines[1])
    adopter = TabletServer("ts-adopt5", machines[1], dfs, tso, LogBaseConfig())
    adopter.assign_tablet(Tablet(TabletId("events", 0), KeyRange(b"", b"m"), schema))
    adopt_split_log(adopter, dfs, server.name, "events#0")
    own_records = [r.key for _, r in adopter.log.scan_all() if r.record_type is RecordType.WRITE]
    assert b"aaa" in own_records
