"""Unit tests for checkpointing (§3.8)."""

import pytest

from repro.config import LogBaseConfig
from repro.coordination.tso import TimestampOracle
from repro.coordination.znodes import CoordinationService
from repro.core.checkpoint import CheckpointBlock, CheckpointManager
from repro.core.partition import KeyRange
from repro.core.tablet import Tablet, TabletId
from repro.core.tablet_server import TabletServer
from repro.wal.record import LogPointer


@pytest.fixture
def server(dfs, machines, schema):
    tso = TimestampOracle(CoordinationService())
    srv = TabletServer("ts-0", machines[0], dfs, tso, LogBaseConfig())
    srv.assign_tablet(Tablet(TabletId("events", 0), KeyRange(b"", None), schema))
    return srv


@pytest.fixture
def manager(dfs, server):
    return CheckpointManager(dfs, server)


def test_block_roundtrip():
    block = CheckpointBlock(
        lsn=42, position=LogPointer(3, 128, 0), index_files={"t#0|g": "/p"}
    )
    restored = CheckpointBlock.from_bytes(block.to_bytes())
    assert restored.lsn == 42
    assert restored.position.file_no == 3 and restored.position.offset == 128
    assert restored.index_files == {"t#0|g": "/p"}


def test_no_checkpoint_initially(manager):
    assert not manager.has_checkpoint()


def test_write_checkpoint_persists_block_and_files(server, manager, dfs):
    for i in range(10):
        server.write("events", f"k{i}".encode(), {"payload": b"v"})
    block = manager.write_checkpoint()
    assert manager.has_checkpoint()
    assert block.lsn == server.log.next_lsn - 1
    for path in block.index_files.values():
        assert dfs.exists(path)


def test_load_checkpoint_restores_indexes(server, manager):
    for i in range(10):
        server.write("events", f"k{i}".encode(), {"payload": f"v{i}".encode()})
    manager.write_checkpoint()

    server.crash()
    server.restart()
    server.assign_tablet(
        Tablet(TabletId("events", 0), KeyRange(b"", None), server.tablets["events#0"].schema)
    )
    block = manager.load_checkpoint()
    assert block.lsn > 0
    assert server.read("events", b"k3", "payload")[1] == b"v3"


def test_checkpoint_overwrites_previous(server, manager):
    server.write("events", b"a", {"payload": b"1"})
    first = manager.write_checkpoint()
    server.write("events", b"b", {"payload": b"2"})
    second = manager.write_checkpoint()
    assert second.lsn > first.lsn
    assert manager.read_block().lsn == second.lsn


def test_checkpoint_cost_scales_with_index_size(server, manager, machines):
    for i in range(5):
        server.write("events", f"s{i}".encode(), {"payload": b"v"})
    before = machines[0].clock.now
    manager.write_checkpoint()
    small_cost = machines[0].clock.now - before

    for i in range(500):
        server.write("events", f"m{i:04d}".encode(), {"payload": b"v"})
    before = machines[0].clock.now
    manager.write_checkpoint()
    large_cost = machines[0].clock.now - before
    assert large_cost > small_cost
