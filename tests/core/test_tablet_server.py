"""Unit tests for the tablet server: write/read/delete/scan/compaction."""

import pytest

from repro.config import LogBaseConfig
from repro.coordination.tso import TimestampOracle
from repro.coordination.znodes import CoordinationService
from repro.core.partition import KeyRange
from repro.core.tablet import Tablet, TabletId
from repro.core.tablet_server import TabletServer
from repro.errors import ServerDownError, TabletNotFound


@pytest.fixture
def tso():
    return TimestampOracle(CoordinationService())


@pytest.fixture
def server(dfs, machines, schema, tso):
    config = LogBaseConfig(segment_size=8 * 1024)
    srv = TabletServer("ts-0", machines[0], dfs, tso, config)
    tablet = Tablet(TabletId("events", 0), KeyRange(b"", None), schema)
    srv.assign_tablet(tablet)
    return srv


def test_write_then_read(server):
    ts = server.write("events", b"k1", {"payload": b"hello"})
    assert server.read("events", b"k1", "payload") == (ts, b"hello")


def test_write_returns_monotonic_timestamps(server):
    t1 = server.write("events", b"a", {"payload": b"1"})
    t2 = server.write("events", b"a", {"payload": b"2"})
    assert t2 > t1


def test_read_unknown_key(server):
    assert server.read("events", b"ghost", "payload") is None


def test_multi_group_write_lands_in_both_indexes(server):
    server.write("events", b"k", {"payload": b"p", "meta": b"m"})
    assert server.read("events", b"k", "payload")[1] == b"p"
    assert server.read("events", b"k", "meta")[1] == b"m"


def test_historical_read_via_as_of(server):
    t1 = server.write("events", b"k", {"payload": b"v1"})
    t2 = server.write("events", b"k", {"payload": b"v2"})
    assert server.read("events", b"k", "payload", as_of=t1) == (t1, b"v1")
    assert server.read("events", b"k", "payload", as_of=t2) == (t2, b"v2")
    assert server.read("events", b"k", "payload", as_of=t1 - 1) is None


def test_read_served_from_cache_second_time(server, machines):
    server.write("events", b"k", {"payload": b"v"})
    server.read_cache.clear()
    server.read("events", b"k", "payload")  # fills cache from the log
    before = machines[0].counters.get("disk.reads")
    server.read("events", b"k", "payload")
    assert machines[0].counters.get("disk.reads") == before
    assert server.read_cache.hits >= 1


def test_cold_read_uses_one_log_seek(server, machines):
    """The §3.5 long-tail claim: one disk access per uncached read."""
    for i in range(50):
        server.write("events", str(i).encode() * 4, {"payload": b"v" * 100})
    server.read_cache.clear()
    machines[0].disk.invalidate_head()
    seeks_before = machines[0].counters.get("disk.seeks")
    server.read("events", b"7777", "payload")
    assert machines[0].counters.get("disk.seeks") - seeks_before == 1


def test_cache_disabled_config(dfs, machines, schema, tso):
    config = LogBaseConfig(read_cache_enabled=False)
    srv = TabletServer("ts-x", machines[1], dfs, tso, config)
    srv.assign_tablet(Tablet(TabletId("events", 0), KeyRange(b"", None), schema))
    srv.write("events", b"k", {"payload": b"v"})
    assert srv.read_cache is None
    assert srv.read("events", b"k", "payload")[1] == b"v"


def test_delete_removes_and_persists_marker(server):
    server.write("events", b"k", {"payload": b"v"})
    removed = server.delete("events", b"k", "payload")
    assert removed == 1
    assert server.read("events", b"k", "payload") is None
    # The invalidated entry is in the log (null Data).
    markers = [
        record
        for _, record in server.log.scan_all()
        if record.is_delete and record.key == b"k"
    ]
    assert len(markers) == 1
    assert markers[0].value is None


def test_delete_then_rewrite(server):
    server.write("events", b"k", {"payload": b"old"})
    server.delete("events", b"k", "payload")
    ts = server.write("events", b"k", {"payload": b"new"})
    assert server.read("events", b"k", "payload") == (ts, b"new")


def test_range_scan_latest_versions_sorted(server):
    for i in (3, 1, 2):
        server.write("events", f"k{i}".encode(), {"payload": f"v{i}".encode()})
    server.write("events", b"k2", {"payload": b"v2-new"})
    rows = list(server.range_scan("events", "payload", b"k1", b"k3"))
    assert [(key, value) for key, _, value in rows] == [
        (b"k1", b"v1"),
        (b"k2", b"v2-new"),
    ]


def test_range_scan_as_of(server):
    t1 = server.write("events", b"k", {"payload": b"v1"})
    server.write("events", b"k", {"payload": b"v2"})
    rows = list(server.range_scan("events", "payload", b"", b"z", as_of=t1))
    assert [value for _, _, value in rows] == [b"v1"]


def test_full_scan_returns_only_current_versions(server):
    for i in range(5):
        server.write("events", f"k{i}".encode(), {"payload": b"old"})
    for i in range(5):
        server.write("events", f"k{i}".encode(), {"payload": b"new"})
    rows = list(server.full_scan("events", "payload"))
    assert len(rows) == 5
    assert all(value == b"new" for _, _, value in rows)


def test_compaction_preserves_reads(server):
    for i in range(30):
        server.write("events", f"k{i:02d}".encode(), {"payload": f"v{i}".encode()})
    server.delete("events", b"k05", "payload")
    result = server.compact()
    assert result.stats.kept_versions > 0
    assert server.read("events", b"k07", "payload")[1] == b"v7"
    assert server.read("events", b"k05", "payload") is None


def test_compaction_clusters_range_scans(server, machines):
    import random

    rng = random.Random(3)
    keys = [f"{rng.randrange(10**9):010d}".encode() for _ in range(200)]
    for key in keys:
        server.write("events", key, {"payload": b"x" * 64})
    keys.sort()

    def scan_seeks() -> float:
        server.read_cache.clear()
        machines[0].disk.invalidate_head()
        before = machines[0].counters.get("disk.seeks")
        list(server.range_scan("events", "payload", keys[50], keys[90]))
        return machines[0].counters.get("disk.seeks") - before

    before_compaction = scan_seeks()
    server.compact()
    after_compaction = scan_seeks()
    assert after_compaction < before_compaction


def test_crashed_server_rejects_ops(server):
    server.crash()
    with pytest.raises(ServerDownError):
        server.write("events", b"k", {"payload": b"v"})
    with pytest.raises(ServerDownError):
        server.read("events", b"k", "payload")


def test_route_unknown_table(server):
    with pytest.raises(TabletNotFound):
        server.write("nope", b"k", {"payload": b"v"})


def test_unassign_tablet_drops_indexes(server, schema):
    server.write("events", b"k", {"payload": b"v"})
    server.unassign_tablet(TabletId("events", 0))
    with pytest.raises(TabletNotFound):
        server.read("events", b"k", "payload")
    assert server.indexes() == {}


def test_index_memory_accounting(server):
    assert server.index_memory_bytes() == 0
    server.write("events", b"k", {"payload": b"v", "meta": b"m"})
    assert server.index_memory_bytes() == 2 * 24


def test_checkpoint_hook_fires_on_threshold(dfs, machines, schema, tso):
    config = LogBaseConfig(checkpoint_update_threshold=5)
    srv = TabletServer("ts-h", machines[2], dfs, tso, config)
    srv.assign_tablet(Tablet(TabletId("events", 0), KeyRange(b"", None), schema))
    calls = []
    srv.set_checkpoint_hook(lambda s: calls.append(s.name))
    for i in range(5):
        srv.write("events", str(i).encode(), {"payload": b"v"})
    assert calls == ["ts-h"]


def test_compact_with_retention_cutoff(server):
    timestamps = [
        server.write("events", b"k", {"payload": f"v{i}".encode()}) for i in range(5)
    ]
    result = server.compact(retain_after=timestamps[3])
    assert result.stats.dropped_obsolete == 3
    # Latest still readable; expired history is gone.
    assert server.read("events", b"k", "payload")[1] == b"v4"
    assert server.read("events", b"k", "payload", as_of=timestamps[3])[1] == b"v3"
    assert server.read("events", b"k", "payload", as_of=timestamps[1]) is None
