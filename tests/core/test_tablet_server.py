"""Unit tests for the tablet server: write/read/delete/scan/compaction."""

import pytest

from repro.config import LogBaseConfig
from repro.coordination.tso import TimestampOracle
from repro.coordination.znodes import CoordinationService
from repro.core.checkpoint import CheckpointManager
from repro.core.partition import KeyRange
from repro.core.recovery import recover_server
from repro.core.tablet import Tablet, TabletId
from repro.core.tablet_server import TabletServer
from repro.errors import ServerDownError, TabletNotFound
from repro.sim.failure import CP_COMPACTION_MID, FaultPlan, fault_plan


@pytest.fixture
def tso():
    return TimestampOracle(CoordinationService())


@pytest.fixture
def server(dfs, machines, schema, tso):
    config = LogBaseConfig(segment_size=8 * 1024)
    srv = TabletServer("ts-0", machines[0], dfs, tso, config)
    tablet = Tablet(TabletId("events", 0), KeyRange(b"", None), schema)
    srv.assign_tablet(tablet)
    return srv


def test_write_then_read(server):
    ts = server.write("events", b"k1", {"payload": b"hello"})
    assert server.read("events", b"k1", "payload") == (ts, b"hello")


def test_write_returns_monotonic_timestamps(server):
    t1 = server.write("events", b"a", {"payload": b"1"})
    t2 = server.write("events", b"a", {"payload": b"2"})
    assert t2 > t1


def test_read_unknown_key(server):
    assert server.read("events", b"ghost", "payload") is None


def test_multi_group_write_lands_in_both_indexes(server):
    server.write("events", b"k", {"payload": b"p", "meta": b"m"})
    assert server.read("events", b"k", "payload")[1] == b"p"
    assert server.read("events", b"k", "meta")[1] == b"m"


def test_historical_read_via_as_of(server):
    t1 = server.write("events", b"k", {"payload": b"v1"})
    t2 = server.write("events", b"k", {"payload": b"v2"})
    assert server.read("events", b"k", "payload", as_of=t1) == (t1, b"v1")
    assert server.read("events", b"k", "payload", as_of=t2) == (t2, b"v2")
    assert server.read("events", b"k", "payload", as_of=t1 - 1) is None


def test_read_served_from_cache_second_time(server, machines):
    server.write("events", b"k", {"payload": b"v"})
    server.read_cache.clear()
    server.read("events", b"k", "payload")  # fills cache from the log
    before = machines[0].counters.get("disk.reads")
    server.read("events", b"k", "payload")
    assert machines[0].counters.get("disk.reads") == before
    assert server.read_cache.hits >= 1


def test_cold_read_uses_one_log_seek(server, machines):
    """The §3.5 long-tail claim: one disk access per uncached read."""
    for i in range(50):
        server.write("events", str(i).encode() * 4, {"payload": b"v" * 100})
    server.read_cache.clear()
    machines[0].disk.invalidate_head()
    seeks_before = machines[0].counters.get("disk.seeks")
    server.read("events", b"7777", "payload")
    assert machines[0].counters.get("disk.seeks") - seeks_before == 1


def test_cache_disabled_config(dfs, machines, schema, tso):
    config = LogBaseConfig(read_cache_enabled=False)
    srv = TabletServer("ts-x", machines[1], dfs, tso, config)
    srv.assign_tablet(Tablet(TabletId("events", 0), KeyRange(b"", None), schema))
    srv.write("events", b"k", {"payload": b"v"})
    assert srv.read_cache is None
    assert srv.read("events", b"k", "payload")[1] == b"v"


def test_delete_removes_and_persists_marker(server):
    server.write("events", b"k", {"payload": b"v"})
    removed = server.delete("events", b"k", "payload")
    assert removed == 1
    assert server.read("events", b"k", "payload") is None
    # The invalidated entry is in the log (null Data).
    markers = [
        record
        for _, record in server.log.scan_all()
        if record.is_delete and record.key == b"k"
    ]
    assert len(markers) == 1
    assert markers[0].value is None


def test_delete_then_rewrite(server):
    server.write("events", b"k", {"payload": b"old"})
    server.delete("events", b"k", "payload")
    ts = server.write("events", b"k", {"payload": b"new"})
    assert server.read("events", b"k", "payload") == (ts, b"new")


def test_range_scan_latest_versions_sorted(server):
    for i in (3, 1, 2):
        server.write("events", f"k{i}".encode(), {"payload": f"v{i}".encode()})
    server.write("events", b"k2", {"payload": b"v2-new"})
    rows = list(server.range_scan("events", "payload", b"k1", b"k3"))
    assert [(key, value) for key, _, value in rows] == [
        (b"k1", b"v1"),
        (b"k2", b"v2-new"),
    ]


def test_range_scan_as_of(server):
    t1 = server.write("events", b"k", {"payload": b"v1"})
    server.write("events", b"k", {"payload": b"v2"})
    rows = list(server.range_scan("events", "payload", b"", b"z", as_of=t1))
    assert [value for _, _, value in rows] == [b"v1"]


def test_full_scan_returns_only_current_versions(server):
    for i in range(5):
        server.write("events", f"k{i}".encode(), {"payload": b"old"})
    for i in range(5):
        server.write("events", f"k{i}".encode(), {"payload": b"new"})
    rows = list(server.full_scan("events", "payload"))
    assert len(rows) == 5
    assert all(value == b"new" for _, _, value in rows)


def test_compaction_preserves_reads(server):
    for i in range(30):
        server.write("events", f"k{i:02d}".encode(), {"payload": f"v{i}".encode()})
    server.delete("events", b"k05", "payload")
    result = server.compact()
    assert result.stats.kept_versions > 0
    assert server.read("events", b"k07", "payload")[1] == b"v7"
    assert server.read("events", b"k05", "payload") is None


def test_compaction_clusters_range_scans(server, machines):
    import random

    rng = random.Random(3)
    keys = [f"{rng.randrange(10**9):010d}".encode() for _ in range(200)]
    for key in keys:
        server.write("events", key, {"payload": b"x" * 64})
    keys.sort()

    def scan_seeks() -> float:
        server.read_cache.clear()
        machines[0].disk.invalidate_head()
        before = machines[0].counters.get("disk.seeks")
        list(server.range_scan("events", "payload", keys[50], keys[90]))
        return machines[0].counters.get("disk.seeks") - before

    before_compaction = scan_seeks()
    server.compact()
    after_compaction = scan_seeks()
    assert after_compaction < before_compaction


def test_crashed_server_rejects_ops(server):
    server.crash()
    with pytest.raises(ServerDownError):
        server.write("events", b"k", {"payload": b"v"})
    with pytest.raises(ServerDownError):
        server.read("events", b"k", "payload")


def test_route_unknown_table(server):
    with pytest.raises(TabletNotFound):
        server.write("nope", b"k", {"payload": b"v"})


def test_unassign_tablet_drops_indexes(server, schema):
    server.write("events", b"k", {"payload": b"v"})
    server.unassign_tablet(TabletId("events", 0))
    with pytest.raises(TabletNotFound):
        server.read("events", b"k", "payload")
    assert server.indexes() == {}


def test_index_memory_accounting(server):
    assert server.index_memory_bytes() == 0
    server.write("events", b"k", {"payload": b"v", "meta": b"m"})
    assert server.index_memory_bytes() == 2 * 24


def test_checkpoint_hook_fires_on_threshold(dfs, machines, schema, tso):
    config = LogBaseConfig(checkpoint_update_threshold=5)
    srv = TabletServer("ts-h", machines[2], dfs, tso, config)
    srv.assign_tablet(Tablet(TabletId("events", 0), KeyRange(b"", None), schema))
    calls = []
    srv.set_checkpoint_hook(lambda s: calls.append(s.name))
    for i in range(5):
        srv.write("events", str(i).encode(), {"payload": b"v"})
    assert calls == ["ts-h"]


# -- bisect routing ---------------------------------------------------------


@pytest.fixture
def multi_server(dfs, machines, schema, tso):
    """A server hosting three ranges of one table, with a gap [p, t)."""
    srv = TabletServer("ts-m", machines[1], dfs, tso, LogBaseConfig(segment_size=8 * 1024))
    ranges = [(b"", b"g"), (b"g", b"p"), (b"t", None)]
    for i, (start, end) in enumerate(ranges):
        srv.assign_tablet(Tablet(TabletId("events", i), KeyRange(start, end), schema))
    return srv


def test_route_picks_covering_tablet(multi_server):
    for key, expected in ((b"a", 0), (b"f", 0), (b"g", 1), (b"o", 1), (b"t", 2), (b"z", 2)):
        tablet = multi_server._route("events", key)
        assert tablet.tablet_id.ordinal == expected, key


def test_route_rejects_gap_keys(multi_server):
    with pytest.raises(TabletNotFound):
        multi_server._route("events", b"q")  # in the [p, t) gap


def test_route_cache_invalidated_on_assign(multi_server, schema):
    with pytest.raises(TabletNotFound):
        multi_server.write("events", b"q", {"payload": b"v"})
    multi_server.assign_tablet(
        Tablet(TabletId("events", 3), KeyRange(b"p", b"t"), schema)
    )
    ts = multi_server.write("events", b"q", {"payload": b"v"})
    assert multi_server.read("events", b"q", "payload") == (ts, b"v")


def test_route_cache_invalidated_on_unassign(multi_server):
    multi_server.write("events", b"z", {"payload": b"v"})
    multi_server.unassign_tablet(TabletId("events", 2))
    with pytest.raises(TabletNotFound):
        multi_server.write("events", b"z", {"payload": b"v"})


def test_routed_writes_land_in_per_tablet_indexes(multi_server):
    multi_server.write("events", b"a", {"payload": b"1"})
    multi_server.write("events", b"h", {"payload": b"2"})
    assert ("events#0", "payload") in multi_server.indexes()
    assert multi_server.indexes()[("events#0", "payload")].lookup_latest(b"a")
    assert multi_server.indexes()[("events#1", "payload")].lookup_latest(b"h")
    assert multi_server.indexes()[("events#0", "payload")].lookup_latest(b"h") is None


# -- incremental compaction (server level) ----------------------------------


@pytest.fixture
def inc_server(dfs, machines, schema, tso):
    config = LogBaseConfig.with_incremental_compaction(
        segment_size=8 * 1024, compaction_tier_fanout=2
    )
    srv = TabletServer("ts-i", machines[2], dfs, tso, config)
    srv.assign_tablet(Tablet(TabletId("events", 0), KeyRange(b"", None), schema))
    return srv


def test_incremental_compaction_preserves_reads(inc_server):
    for i in range(30):
        inc_server.write("events", f"k{i:02d}".encode(), {"payload": f"v{i}".encode()})
    inc_server.delete("events", b"k05", "payload")
    result = inc_server.compact()
    assert result.stats.kept_versions > 0
    assert inc_server.read("events", b"k07", "payload")[1] == b"v7"
    assert inc_server.read("events", b"k05", "payload") is None


def test_incremental_rounds_keep_scans_correct(inc_server):
    """Several churn rounds: every round compacts, later rounds trigger
    merge plans (fanout=2), and scans always see the latest versions."""
    for round_no in range(4):
        for i in range(12):
            inc_server.write(
                "events", f"k{i:02d}".encode(), {"payload": f"r{round_no}".encode()}
            )
        inc_server.compact()
    rows = list(inc_server.range_scan("events", "payload", b"", b"z"))
    assert [(key, value) for key, _, value in rows] == [
        (f"k{i:02d}".encode(), b"r3") for i in range(12)
    ]


def test_incremental_compaction_leaves_untouched_runs(inc_server):
    inc_server.write("events", b"a", {"payload": b"v"})
    inc_server.compact()
    runs_after_first = [
        f for f in inc_server.log.segments() if inc_server.log.is_sorted_segment(f)
    ]
    assert len(runs_after_first) == 1
    # A second round with only fresh tail data (below the merge fanout)
    # must not rewrite the existing run.
    inc_server.write("events", b"b", {"payload": b"v"})
    result = inc_server.compact()
    assert set(runs_after_first) <= set(inc_server.log.segments())
    assert set(result.retired_segments).isdisjoint(runs_after_first)


def test_incremental_compaction_with_retention_cutoff(inc_server):
    timestamps = [
        inc_server.write("events", b"k", {"payload": f"v{i}".encode()})
        for i in range(5)
    ]
    result = inc_server.compact(retain_after=timestamps[3])
    assert result.stats.dropped_obsolete == 3
    assert inc_server.read("events", b"k", "payload")[1] == b"v4"
    assert inc_server.read("events", b"k", "payload", as_of=timestamps[1]) is None


def test_incremental_patch_leaves_other_group_index_alone(inc_server):
    inc_server.write("events", b"k", {"payload": b"p", "meta": b"m"})
    inc_server.compact()
    meta_index = inc_server.indexes()[("events#0", "meta")]
    # Next round's tail holds only payload data: the meta index object
    # must survive the round untouched.
    inc_server.write("events", b"k2", {"payload": b"p2"})
    inc_server.compact()
    assert inc_server.indexes()[("events#0", "meta")] is meta_index
    assert inc_server.indexes()[("events#0", "payload")] is not meta_index
    assert inc_server.read("events", b"k", "meta")[1] == b"m"
    assert inc_server.read("events", b"k2", "payload")[1] == b"p2"


def test_merge_round_does_not_resurrect_deleted_key(inc_server):
    """A merge plan re-reads old runs that still hold a deleted key's
    versions while the delete marker sits in the unsorted tail outside
    the plan: index patching must not re-insert versions the live index
    already dropped."""
    for round_no in range(2):  # two similar-sized runs fill the tier
        for i in range(12):
            inc_server.write(
                "events", f"k{i:02d}".encode(), {"payload": f"r{round_no}".encode()}
            )
        inc_server.compact()
    runs = [f for f in inc_server.log.segments() if inc_server.log.is_sorted_segment(f)]
    assert len(runs) == 2
    inc_server.delete("events", b"k07", "payload")
    result = inc_server.compact()  # merge plan over both runs + tail plan
    assert set(runs) <= set(result.retired_segments)
    assert inc_server.read("events", b"k07", "payload") is None
    rows = list(inc_server.range_scan("events", "payload", b"", b"z"))
    assert [key for key, _, _ in rows] == [
        f"k{i:02d}".encode() for i in range(12) if i != 7
    ]


def test_crash_between_plans_does_not_resurrect_on_recovery(inc_server, dfs, schema):
    """Crash after the merge plan installs but before the tail plan: the
    merged run (holding the deleted key's old versions) now carries a
    higher file number than the tail segment holding the delete marker,
    so a file-order redo sees the tombstone *before* the shadowed writes
    — the key must stay dead through recovery."""
    for round_no in range(2):
        for i in range(12):
            inc_server.write(
                "events", f"k{i:02d}".encode(), {"payload": f"r{round_no}".encode()}
            )
        inc_server.compact()
    inc_server.delete("events", b"k07", "payload")

    def boom(_ctx):
        raise RuntimeError("crashed mid-round")

    plan = FaultPlan()
    plan.add(CP_COMPACTION_MID, boom, hits=2, machine=inc_server.machine.name)
    with fault_plan(plan):
        with pytest.raises(RuntimeError):
            inc_server.compact()
    inc_server.crash()
    inc_server.restart()
    inc_server.assign_tablet(Tablet(TabletId("events", 0), KeyRange(b"", None), schema))
    recover_server(inc_server, CheckpointManager(dfs, inc_server))
    assert inc_server.read("events", b"k07", "payload") is None
    assert inc_server.read("events", b"k06", "payload")[1] == b"r1"
    # The next round finishes the interrupted work; the key stays dead.
    inc_server.compact()
    assert inc_server.read("events", b"k07", "payload") is None


# -- incremental compaction with LSM indexes --------------------------------


@pytest.fixture
def lsm_server(dfs, machines, schema, tso):
    config = LogBaseConfig.with_incremental_compaction(
        segment_size=8 * 1024, compaction_tier_fanout=2, index_kind="lsm"
    )
    srv = TabletServer("ts-l", machines[2], dfs, tso, config)
    srv.assign_tablet(Tablet(TabletId("events", 0), KeyRange(b"", None), schema))
    return srv


def _lsm_run_files(dfs, name):
    return sorted(
        path
        for path in dfs.list_files(f"/logbase/{name}/lsm/")
        if "manifest" not in path
    )


def test_incremental_destroys_only_replaced_lsm_runs(lsm_server, dfs):
    lsm_server.write("events", b"k", {"payload": b"p", "meta": b"m"})
    lsm_server.compact()
    # Flush both groups' indexes so each owns run files on the DFS.
    for index in lsm_server.indexes().values():
        index.flush()
    meta_index = lsm_server.indexes()[("events#0", "meta")]
    meta_runs_before = [
        f for f in _lsm_run_files(dfs, "ts-l") if "/meta/" in f
    ]
    assert meta_runs_before
    # A payload-only round: the meta index and its run files survive.
    lsm_server.write("events", b"k2", {"payload": b"p2"})
    lsm_server.compact()
    assert lsm_server.indexes()[("events#0", "meta")] is meta_index
    meta_runs_after = [f for f in _lsm_run_files(dfs, "ts-l") if "/meta/" in f]
    assert meta_runs_after == meta_runs_before
    assert lsm_server.read("events", b"k", "meta")[1] == b"m"
    assert lsm_server.read("events", b"k2", "payload")[1] == b"p2"


def test_replaced_lsm_group_drops_old_generation_files(lsm_server, dfs):
    lsm_server.write("events", b"k", {"payload": b"p"})
    lsm_server.compact()
    lsm_server.indexes()[("events#0", "payload")].flush()
    old_payload_runs = [
        f for f in _lsm_run_files(dfs, "ts-l") if "/payload/" in f
    ]
    assert old_payload_runs
    lsm_server.write("events", b"k2", {"payload": b"p2"})
    lsm_server.compact()
    remaining = _lsm_run_files(dfs, "ts-l")
    for path in old_payload_runs:
        assert path not in remaining  # old generation destroyed
    assert lsm_server.read("events", b"k", "payload")[1] == b"p"


def test_crash_mid_round_leaves_both_generations_readable(lsm_server):
    """Crash on the SECOND plan of a round (hits=2): the first plan is
    fully installed, the second never installs — reads must keep working
    across old and new generations, and the next round completes."""
    # Round 1 and 2 each leave one sorted run; round 3 plans a merge of
    # the two runs (fanout=2) followed by a tail plan — two plans.
    lsm_server.write("events", b"k1", {"payload": b"v1"})
    lsm_server.compact()
    lsm_server.write("events", b"k2", {"payload": b"v2"})
    lsm_server.compact()
    lsm_server.write("events", b"k3", {"payload": b"v3"})

    def boom(_ctx):
        raise RuntimeError("crashed mid-round")

    plan = FaultPlan()
    plan.add(CP_COMPACTION_MID, boom, hits=2, machine=lsm_server.machine.name)
    with fault_plan(plan):
        with pytest.raises(RuntimeError):
            lsm_server.compact()
    # Merge plan installed, tail plan aborted before install: every key
    # is still readable (k3 through the untouched tail segments).
    for key, value in ((b"k1", b"v1"), (b"k2", b"v2"), (b"k3", b"v3")):
        assert lsm_server.read("events", key, "payload")[1] == value
    # The next round finishes the interrupted work.
    lsm_server.compact()
    for key, value in ((b"k1", b"v1"), (b"k2", b"v2"), (b"k3", b"v3")):
        assert lsm_server.read("events", key, "payload")[1] == value


def test_compact_with_retention_cutoff(server):
    timestamps = [
        server.write("events", b"k", {"payload": f"v{i}".encode()}) for i in range(5)
    ]
    result = server.compact(retain_after=timestamps[3])
    assert result.stats.dropped_obsolete == 3
    # Latest still readable; expired history is gone.
    assert server.read("events", b"k", "payload")[1] == b"v4"
    assert server.read("events", b"k", "payload", as_of=timestamps[3])[1] == b"v3"
    assert server.read("events", b"k", "payload", as_of=timestamps[1]) is None
