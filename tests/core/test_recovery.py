"""Recovery tests (§3.8): redo from checkpoint, durability (Guarantee 4)."""

import pytest

from repro.config import LogBaseConfig
from repro.coordination.tso import TimestampOracle
from repro.coordination.znodes import CoordinationService
from repro.core.checkpoint import CheckpointManager
from repro.core.partition import KeyRange
from repro.core.recovery import recover_server, redo_scan
from repro.core.tablet import Tablet, TabletId
from repro.core.tablet_server import TabletServer
from repro.wal.record import LogRecord, RecordType, commit_record


@pytest.fixture
def tso():
    return TimestampOracle(CoordinationService())


def make_server(dfs, machine, schema, tso, name="ts-0") -> TabletServer:
    srv = TabletServer(name, machine, dfs, tso, LogBaseConfig())
    srv.assign_tablet(Tablet(TabletId("events", 0), KeyRange(b"", None), schema))
    return srv


def crash_and_restart(server, schema):
    server.crash()
    server.restart()
    server.assign_tablet(Tablet(TabletId("events", 0), KeyRange(b"", None), schema))


def test_recovery_without_checkpoint_scans_whole_log(dfs, machines, schema, tso):
    server = make_server(dfs, machines[0], schema, tso)
    manager = CheckpointManager(dfs, server)
    for i in range(20):
        server.write("events", f"k{i:02d}".encode(), {"payload": f"v{i}".encode()})
    crash_and_restart(server, schema)
    report = recover_server(server, manager)
    assert not report.used_checkpoint
    assert report.writes_applied == 20
    assert server.read("events", b"k13", "payload")[1] == b"v13"


def test_recovery_with_checkpoint_scans_only_tail(dfs, machines, schema, tso):
    server = make_server(dfs, machines[0], schema, tso)
    manager = CheckpointManager(dfs, server)
    for i in range(20):
        server.write("events", f"k{i:02d}".encode(), {"payload": b"v"})
    manager.write_checkpoint()
    for i in range(5):
        server.write("events", f"tail{i}".encode(), {"payload": b"t"})
    crash_and_restart(server, schema)
    report = recover_server(server, manager)
    assert report.used_checkpoint
    assert report.writes_applied == 5  # only the tail is redone
    assert server.read("events", b"k07", "payload") is not None
    assert server.read("events", b"tail3", "payload") is not None


def test_every_confirmed_write_survives_crash(dfs, machines, schema, tso):
    """Guarantee 4: durability of confirmed writes."""
    server = make_server(dfs, machines[0], schema, tso)
    manager = CheckpointManager(dfs, server)
    written = {}
    for i in range(50):
        key = f"k{i:02d}".encode()
        ts = server.write("events", key, {"payload": f"v{i}".encode()})
        written[key] = (ts, f"v{i}".encode())
    crash_and_restart(server, schema)
    recover_server(server, manager)
    for key, (ts, value) in written.items():
        assert server.read("events", key, "payload") == (ts, value)


def test_uncommitted_transactional_writes_invisible_after_recovery(
    dfs, machines, schema, tso
):
    server = make_server(dfs, machines[0], schema, tso)
    manager = CheckpointManager(dfs, server)
    # Committed transaction.
    committed = [
        LogRecord(RecordType.WRITE, txn_id=1, table="events", tablet="events#0",
                  key=b"ok", group="payload", timestamp=10, value=b"committed"),
        commit_record(1, 10),
    ]
    server.append_transactional(committed)
    # Uncommitted: writes persisted, no commit record (crash before commit).
    server.append_transactional([
        LogRecord(RecordType.WRITE, txn_id=2, table="events", tablet="events#0",
                  key=b"bad", group="payload", timestamp=11, value=b"uncommitted"),
    ])
    crash_and_restart(server, schema)
    report = recover_server(server, manager)
    assert report.uncommitted_ignored == 1
    assert server.read("events", b"ok", "payload")[1] == b"committed"
    assert server.read("events", b"bad", "payload") is None


def test_deletes_reapplied_over_stale_checkpoint(dfs, machines, schema, tso):
    """§3.6.3: the invalidated log entry re-applies the delete even though
    the checkpointed index still contains the deleted key."""
    server = make_server(dfs, machines[0], schema, tso)
    manager = CheckpointManager(dfs, server)
    server.write("events", b"victim", {"payload": b"v"})
    manager.write_checkpoint()          # checkpoint still has the key
    server.delete("events", b"victim", "payload")
    crash_and_restart(server, schema)
    report = recover_server(server, manager)
    assert report.used_checkpoint
    assert report.deletes_applied == 1
    assert server.read("events", b"victim", "payload") is None


def test_repeated_restart_is_idempotent(dfs, machines, schema, tso):
    server = make_server(dfs, machines[0], schema, tso)
    manager = CheckpointManager(dfs, server)
    for i in range(10):
        server.write("events", f"k{i}".encode(), {"payload": b"v"})
    for _ in range(3):  # crash during recovery -> redo again
        crash_and_restart(server, schema)
        recover_server(server, manager)
    assert server.read("events", b"k4", "payload")[1] == b"v"
    assert len(list(server.full_scan("events", "payload"))) == 10


def test_lsn_restored_after_recovery(dfs, machines, schema, tso):
    server = make_server(dfs, machines[0], schema, tso)
    manager = CheckpointManager(dfs, server)
    for i in range(7):
        server.write("events", f"k{i}".encode(), {"payload": b"v"})
    lsn_before = server.log.next_lsn
    crash_and_restart(server, schema)
    recover_server(server, manager)
    assert server.log.next_lsn >= lsn_before
    # New writes continue the LSN sequence without collision.
    server.write("events", b"new", {"payload": b"v"})
    lsns = [record.lsn for _, record in server.log.scan_all()]
    assert len(lsns) == len(set(lsns))


def test_writes_after_recovery_work(dfs, machines, schema, tso):
    server = make_server(dfs, machines[0], schema, tso)
    manager = CheckpointManager(dfs, server)
    server.write("events", b"pre", {"payload": b"1"})
    crash_and_restart(server, schema)
    recover_server(server, manager)
    ts = server.write("events", b"post", {"payload": b"2"})
    assert server.read("events", b"post", "payload") == (ts, b"2")


def test_redo_scan_respects_min_lsn(dfs, machines, schema, tso):
    server = make_server(dfs, machines[0], schema, tso)
    for i in range(4):
        server.write("events", f"k{i}".encode(), {"payload": b"v"})
    cutoff = server.log.next_lsn - 1
    server.write("events", b"late", {"payload": b"v"})
    crash_and_restart(server, schema)
    report = redo_scan(server, min_lsn=cutoff)
    assert report.writes_applied == 1
    assert server.read("events", b"late", "payload") is not None


def test_recovery_time_grows_with_unscanned_log(dfs, machines, schema, tso):
    """The Figure 18 effect: more un-checkpointed log -> longer recovery."""
    server = make_server(dfs, machines[0], schema, tso)
    manager = CheckpointManager(dfs, server)
    for i in range(10):
        server.write("events", f"a{i:03d}".encode(), {"payload": b"x" * 200})
    crash_and_restart(server, schema)
    short = recover_server(server, manager).seconds

    for i in range(200):
        server.write("events", f"b{i:03d}".encode(), {"payload": b"x" * 200})
    crash_and_restart(server, schema)
    long = recover_server(server, manager).seconds
    assert long > short


def test_redo_skips_writes_shadowed_by_earlier_tombstone(dfs, machines, schema, tso):
    """Incremental compaction re-homes old versions into runs numbered
    past the tombstone that shadows them, so a file-order redo can meet
    the delete marker *before* the write it kills.  Timestamps, not scan
    order, decide: the shadowed version stays dead, a strictly newer
    rebirth survives."""
    server = make_server(dfs, machines[0], schema, tso)
    manager = CheckpointManager(dfs, server)

    def raw(record_type, key, ts, value=b""):
        return LogRecord(
            record_type=record_type,
            lsn=0,
            txn_id=0,
            table="events",
            tablet="events#0",
            key=key,
            group="payload",
            timestamp=ts,
            value=value,
        )

    server.log.append(raw(RecordType.INVALIDATE, b"k", 50))
    server.log.append(raw(RecordType.WRITE, b"k", 10, b"old"))  # shadowed
    server.log.append(raw(RecordType.WRITE, b"k", 90, b"reborn"))  # newer: lives
    crash_and_restart(server, schema)
    report = recover_server(server, manager)
    assert report.deletes_applied == 1
    assert report.writes_applied == 1  # the shadowed write is skipped
    index = server.indexes()[("events#0", "payload")]
    assert {entry.timestamp for entry in index.versions(b"k")} == {90}
