"""Client-side gray resilience: capped backoff, scoped cache
invalidation, failure latency accounting, admission retry, and the
client's own circuit breakers."""

import pytest

from repro.config import LogBaseConfig
from repro.core.database import LogBase
from repro.core.schema import ColumnGroup, TableSchema
from repro.errors import DeadlineExceededError, ServerDownError
from repro.sim.metrics import (
    ADMISSION_SHED,
    BREAKER_TRIPS,
    CLIENT_BREAKER_WAITS,
    CLIENT_RETRIES,
)

SCHEMA_T = TableSchema("t", "id", (ColumnGroup("g", ("v",)),))
SCHEMA_U = TableSchema("u", "id", (ColumnGroup("g", ("v",)),))

KEY = b"000000000001"


def _db(config, *, tables=("t",)):
    db = LogBase(n_nodes=3, config=config)
    if "t" in tables:
        db.create_table(SCHEMA_T, only_servers=["ts-node-0"])
    if "u" in tables:
        db.create_table(SCHEMA_U, only_servers=["ts-node-1"])
    return db


def test_retry_backoff_is_capped():
    config = LogBaseConfig(
        client_retry_limit=5,
        client_retry_backoff=0.05,
        client_retry_backoff_max=0.1,
    )
    db = _db(config)
    client = db.client(db.cluster.machines[2])
    client.put_raw("t", KEY, "g", b"x")
    db.cluster.kill_node("ts-node-0")
    clock = db.cluster.machines[2].clock
    before = clock.now
    with pytest.raises(ServerDownError):
        client.put_raw("t", b"000000000002", "g", b"y")
    waited = clock.now - before
    # 0.05 then 0.1 four times — not the uncapped 0.05+0.1+0.2+0.4+0.8.
    assert waited >= 0.05 + 4 * 0.1
    assert waited < 0.05 + 4 * 0.1 + 0.05
    assert db.cluster.machines[2].counters.get(CLIENT_RETRIES) == 5


def test_server_down_invalidates_only_the_affected_table():
    db = _db(LogBaseConfig(), tables=("t", "u"))
    client = db.client(db.cluster.machines[2])
    client.put_raw("t", KEY, "g", b"x")
    client.put_raw("u", KEY, "g", b"x")  # both caches warm
    db.cluster.kill_node("ts-node-0")
    with pytest.raises(ServerDownError):
        client.put_raw("t", b"000000000002", "g", b"y")
    # Only t's location entry was dropped; u still routes from cache
    # (no fresh master lookup) to its unaffected server.
    assert "t" not in client._locations
    assert "u" in client._locations
    assert client.put_raw("u", b"000000000002", "g", b"y") > 0


def test_last_op_seconds_recorded_on_failure():
    db = _db(LogBaseConfig())
    client = db.client(db.cluster.machines[2])
    client.put_raw("t", KEY, "g", b"x")
    db.cluster.kill_node("ts-node-0")
    client.last_op_seconds = -1.0
    with pytest.raises(ServerDownError):
        client.put_raw("t", b"000000000002", "g", b"y")
    # The failed attempt's latency (at least the RPC) was recorded, so
    # health tracking sees failures, not only successes.
    assert client.last_op_seconds > 0.0


def test_overloaded_server_shed_is_retried_after_hint():
    config = LogBaseConfig.with_gray_resilience(
        segment_size=64 * 1024,
        op_deadline=None,
        admission_queue_depth=8,
    )
    db = _db(config)
    client = db.client(db.cluster.machines[2])
    client.put_raw("t", KEY, "g", b"x")
    server = db.cluster.server_by_name("ts-node-0")
    # The server's clock races far ahead of the client's: a synchronous
    # caller would queue behind all that in-flight work.
    server.machine.clock.advance(1.0)
    clock = db.cluster.machines[2].clock
    before = clock.now
    assert client.put_raw("t", b"000000000002", "g", b"y") > 0
    assert server.machine.counters.get(ADMISSION_SHED) >= 1
    assert db.cluster.machines[2].counters.get(CLIENT_RETRIES) >= 1
    # The client honored the retry-after hint: it waited roughly the
    # excess backlog out on its own clock, then got admitted.
    assert clock.now - before >= 0.9
    assert client.get_raw("t", b"000000000002", "g") == b"y"


def test_client_breaker_waits_out_cooldown_on_limping_server():
    config = LogBaseConfig.with_gray_resilience(
        segment_size=64 * 1024,
        read_cache_enabled=False,  # reads must reach the limping disk
        hedge_reads=False,  # isolate the client-side breaker
        breaker_min_samples=1,
        breaker_cooldown=0.5,
    )
    db = _db(config)
    client = db.client(db.cluster.machines[2])
    client.put_raw("t", KEY, "g", b"x")
    db.cluster.failures.degrade("ts-node-0", 40.0)
    counters = db.cluster.machines[2].counters
    assert client.get_raw("t", KEY, "g") == b"x"  # slow: trips the breaker
    assert counters.get(BREAKER_TRIPS) >= 1
    clock = db.cluster.machines[2].clock
    before = clock.now
    assert client.get_raw("t", KEY, "g") == b"x"
    # The client sat out the breaker's cooldown before its probe.
    assert counters.get(CLIENT_BREAKER_WAITS) == 1
    assert clock.now - before >= 0.5


def test_op_deadline_bounds_the_whole_operation():
    config = LogBaseConfig.with_gray_resilience(
        segment_size=64 * 1024,
        op_deadline=1e-4,  # smaller than even the request RPC
    )
    db = _db(config)
    client = db.client(db.cluster.machines[2])
    with pytest.raises(DeadlineExceededError):
        client.put_raw("t", KEY, "g", b"x")
