"""Recovery of group-commit-written records: a crash right after a group
flush must leave every acked member readable, the fan-in counters must
survive the restart, and the group-commit and fast-recovery gates must
compose (parallel redo of coalesced appends)."""

import pytest

from repro.config import LogBaseConfig
from repro.core.database import LogBase
from repro.sim.metrics import COMMIT_GROUP_FANIN, COMMIT_GROUPS


def make_key(value: int) -> bytes:
    return str(value).zfill(12).encode()


def build_db(schema, **overrides) -> LogBase:
    config = LogBaseConfig.with_group_commit(
        segment_size=16 * 1024, **overrides
    )
    db = LogBase(n_nodes=3, config=config)
    db.create_table(schema)
    return db


def submit_batch(db: LogBase, n: int) -> dict[bytes, bytes]:
    """Submit ``n`` writes through the async group-commit path, flush
    every coordinator, and assert each future was acked cleanly."""
    client = db.client(db.cluster.machines[0])
    futures = {}
    for i in range(n):
        key = make_key(i)
        future, _request, _ack = client.submit_put_raw(
            "events", key, "payload", b"gc%d" % i
        )
        futures[key] = future
    for server in db.cluster.servers:
        server.commit.drain()
    for key, future in futures.items():
        assert future.done, key
        assert future.error is None, key
        assert future.acked, key
    return {key: b"gc%d" % i for i, key in enumerate(futures)}


def crash_and_restart_all(db: LogBase):
    reports = {}
    for server in list(db.cluster.servers):
        db.cluster.kill_node(server.name)
    for server in list(db.cluster.servers):
        reports[server.name] = db.cluster.restart_server(server.name)
    return reports


def readback(db: LogBase, expected: dict[bytes, bytes]) -> None:
    client = db.client(db.cluster.machines[0])
    for key, value in expected.items():
        assert client.get_raw("events", key, "payload") == value, key


def test_acked_group_members_survive_crash(schema):
    db = build_db(schema)
    expected = submit_batch(db, 30)
    totals = db.cluster.total_counters()
    groups, fanin = totals[COMMIT_GROUPS], totals[COMMIT_GROUP_FANIN]
    assert groups >= 1
    assert fanin == len(expected)  # every acked member was group-flushed
    crash_and_restart_all(db)
    readback(db, expected)
    # Counters live on the machines, not the server process: the restart
    # must not reset them, and redo must not re-count the commit groups.
    totals = db.cluster.total_counters()
    assert totals[COMMIT_GROUPS] == groups
    assert totals[COMMIT_GROUP_FANIN] == fanin


def test_crash_between_groups_recovers_every_flushed_group(schema):
    db = build_db(schema)
    first = submit_batch(db, 12)
    second = submit_batch(db, 24)  # a later group on the same logs
    crash_and_restart_all(db)
    readback(db, {**first, **second})


def test_group_commit_composes_with_fast_recovery(schema):
    db = build_db(schema, fast_recovery=True, recovery_workers=4)
    expected = submit_batch(db, 30)
    reports = crash_and_restart_all(db)
    assert all(report.parallel for report in reports.values())
    assert sum(report.writes_applied for report in reports.values()) >= len(
        expected
    )
    readback(db, expected)
