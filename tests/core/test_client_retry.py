"""Client retry behaviour around dead servers (config-gated; the seed
default of ``client_retry_limit=0`` raises immediately)."""

import pytest

from repro.config import LogBaseConfig
from repro.core.database import LogBase
from repro.core.schema import ColumnGroup, TableSchema
from repro.errors import ServerDownError
from repro.sim.metrics import CLIENT_RETRIES

SCHEMA = TableSchema("t", "id", (ColumnGroup("g", ("v",)),))


def _db(config):
    db = LogBase(n_nodes=3, config=config)
    # Keep the whole table on ts-node-0 so killing it affects every key.
    db.create_table(SCHEMA, only_servers=["ts-node-0"])
    return db


def test_default_limit_raises_immediately():
    db = _db(LogBaseConfig())
    client = db.client(db.cluster.machines[2])
    client.put_raw("t", b"000000000001", "g", b"x")
    db.cluster.kill_node("ts-node-0")
    with pytest.raises(ServerDownError):
        client.put_raw("t", b"000000000002", "g", b"y")
    assert db.cluster.machines[2].counters.get(CLIENT_RETRIES) == 0


def test_retries_exhaust_with_backoff_charged_to_client():
    config = LogBaseConfig(client_retry_limit=2, client_retry_backoff=0.05)
    db = _db(config)
    client = db.client(db.cluster.machines[2])
    client.put_raw("t", b"000000000001", "g", b"x")
    db.cluster.kill_node("ts-node-0")
    clock = db.cluster.machines[2].clock
    before = clock.now
    with pytest.raises(ServerDownError):
        client.put_raw("t", b"000000000002", "g", b"y")
    assert db.cluster.machines[2].counters.get(CLIENT_RETRIES) == 2
    # Exponential backoff (0.05 + 0.10) is simulated time the client
    # spent waiting, charged to its own clock.
    assert clock.now - before >= 0.05 + 0.10


def test_retry_succeeds_once_failover_lands(monkeypatch):
    config = LogBaseConfig.with_fault_tolerance(segment_size=64 * 1024)
    db = _db(config)
    db.cluster.master.enable_auto_failover()
    client = db.client(db.cluster.machines[2])
    client.put_raw("t", b"000000000001", "g", b"x")
    db.cluster.kill_node("ts-node-0")

    # While the client sits out its retry backoff, the cluster's failure
    # detector notices the dead server and fails its tablets over — model
    # that concurrency by running a heartbeat during any backoff-sized
    # clock charge.
    clock = db.cluster.machines[2].clock
    original_advance = clock.advance
    failed_over = []

    def advance(seconds):
        original_advance(seconds)
        if seconds >= config.client_retry_backoff and not failed_over:
            db.cluster.heartbeat()
            failed_over.append(True)

    monkeypatch.setattr(clock, "advance", advance)
    assert client.put_raw("t", b"000000000002", "g", b"y") > 0
    assert failed_over  # the retry path was actually exercised
    assert db.cluster.machines[2].counters.get(CLIENT_RETRIES) >= 1
    # The write landed on the adopting server and is readable.
    assert client.get_raw("t", b"000000000002", "g") == b"y"
    # The pre-crash write survived failover too (log-based recovery).
    assert client.get_raw("t", b"000000000001", "g") == b"x"


def test_stale_cache_after_graceful_move_retries_transparently():
    db = _db(LogBaseConfig())
    client = db.client(db.cluster.machines[2])
    client.put_raw("t", b"000000000001", "g", b"x")  # cache now warm
    tablet = db.cluster.master.tablets("t")[0]
    db.cluster.master.move_tablet(str(tablet.tablet_id), "ts-node-1")
    # The cached location points at ts-node-0, which answers
    # TabletNotFound; the client must refresh and succeed silently.
    client.put_raw("t", b"000000000001", "g", b"y")
    assert client.get_raw("t", b"000000000001", "g") == b"y"
    assert db.cluster.machines[2].counters.get(CLIENT_RETRIES) == 0
