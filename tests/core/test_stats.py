"""Tests for the operational stats module."""

from repro.core.stats import collect_cluster_stats, collect_server_stats, format_stats


def test_server_snapshot_reflects_writes(db):
    server_before = collect_server_stats(db.cluster.servers[0])
    key = db.cluster.master.tablets("events")[0].key_range.start or b"000000000001"
    owner, _ = db.cluster.master.locate("events", key)
    server = db.cluster.master.server(owner)
    server.write("events", key, {"payload": b"v"})
    after = collect_server_stats(server)
    assert after.index_entries >= 1
    assert after.log_bytes > 0
    assert after.next_lsn >= 2
    assert after.simulated_seconds > 0
    assert after.tablets == 1
    assert after.serving


def test_cache_stats_hit_rate(db):
    db.put("events", b"000000000001", {"payload": {"body": b"v"}})
    db.get("events", b"000000000001", "payload")
    owner, _ = db.cluster.master.locate("events", b"000000000001")
    stats = collect_server_stats(db.cluster.master.server(owner))
    assert stats.cache is not None
    assert stats.cache.hits >= 1
    assert 0.0 <= stats.cache.hit_rate <= 1.0


def test_cluster_snapshot_aggregates(db):
    for i in range(6):
        key = str(i * 300_000_000).zfill(12).encode()
        db.put("events", key, {"payload": {"body": b"v"}})
    stats = collect_cluster_stats(db.cluster)
    assert len(stats.servers) == 3
    assert stats.total_index_entries == 6
    assert stats.total_log_bytes == sum(s.log_bytes for s in stats.servers)
    assert stats.makespan_seconds == db.cluster.elapsed_makespan()
    assert stats.counters.get("disk.bytes_written", 0) > 0


def test_format_stats_readable(db):
    db.put("events", b"000000000001", {"payload": {"body": b"v"}})
    text = format_stats(collect_cluster_stats(db.cluster))
    assert "cluster: 3 servers" in text
    for server in db.cluster.servers:
        assert server.name in text
    assert "totals:" in text


def test_down_server_reported(db):
    db.cluster.servers[0].crash()
    stats = collect_cluster_stats(db.cluster)
    down = next(s for s in stats.servers if s.name == db.cluster.servers[0].name)
    assert not down.serving
    assert "[down]" in format_stats(stats)


def test_secondary_index_count(db):
    for server in db.cluster.servers:
        server.create_secondary_index("events", "meta", "source")
    stats = collect_server_stats(db.cluster.servers[0])
    assert stats.secondary_indexes == 1


def test_health_comes_from_the_shared_gauge_schema(db):
    from repro.obs.monitor import gauges_by_entity

    db.put("events", b"000000000001", {"payload": {"body": b"v"}})
    db.cluster.heartbeat()
    stats = collect_cluster_stats(db.cluster)
    assert stats.health == gauges_by_entity(db.cluster)
    for server in db.cluster.servers:
        assert stats.health[server.name]["gauge.server_up"] == 1.0
    text = format_stats(stats)
    assert "health" in text and "server_up=1" in text


def test_down_server_health_gauge_reads_zero(db):
    db.cluster.servers[0].crash()
    stats = collect_cluster_stats(db.cluster)
    assert stats.health[db.cluster.servers[0].name]["gauge.server_up"] == 0.0
