"""Configuration arithmetic and validation."""

import pytest

from repro.config import GiB, LogBaseConfig


def test_defaults_match_paper():
    config = LogBaseConfig()
    assert config.replication == 3
    assert config.dfs_block_size == 64 * 1024 * 1024
    assert config.segment_size == 64 * 1024 * 1024
    assert config.index_heap_fraction == 0.40
    assert config.cache_heap_fraction == 0.20


def test_budget_arithmetic():
    config = LogBaseConfig(heap_bytes=GiB)
    assert config.index_budget_bytes == int(0.40 * GiB)
    assert config.cache_budget_bytes == int(0.20 * GiB)


def test_paper_index_capacity_estimate():
    """§3.5: 40% of 1 GB heap holds ~17 million 24-byte entries."""
    config = LogBaseConfig(heap_bytes=GiB)
    entries = config.index_budget_bytes // 24
    assert 16_000_000 < entries < 18_500_000


def test_validate_accepts_defaults():
    LogBaseConfig().validate()


@pytest.mark.parametrize(
    "kwargs",
    [
        {"replication": 0},
        {"index_kind": "hash"},
        {"max_versions": 0},
        {"index_heap_fraction": 0.8, "cache_heap_fraction": 0.5},
    ],
)
def test_validate_rejects_bad_settings(kwargs):
    with pytest.raises(ValueError):
        LogBaseConfig(**kwargs).validate()
