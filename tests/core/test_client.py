"""Client tests: routing cache, typed API, scans, tuple reconstruction."""

import pytest

from repro.core.client import Client


@pytest.fixture
def client(db):
    return db.client()


def test_put_get_roundtrip(client):
    client.put("events", b"000000000001", {"payload": {"body": b"hello"}})
    assert client.get("events", b"000000000001", "payload") == {"body": b"hello"}


def test_get_missing_returns_none(client):
    assert client.get("events", b"000000000404", "payload") is None


def test_put_multiple_groups_and_reconstruct(client):
    client.put(
        "events",
        b"000000000002",
        {
            "payload": {"body": b"data"},
            "meta": {"source": b"web", "kind": b"click"},
        },
    )
    row = client.get_row("events", b"000000000002")
    assert row == {
        "payload": {"body": b"data"},
        "meta": {"source": b"web", "kind": b"click"},
    }


def test_get_row_missing(client):
    assert client.get_row("events", b"000000000404") is None


def test_historical_get(client):
    t1 = client.put("events", b"000000000003", {"payload": {"body": b"v1"}})
    client.put("events", b"000000000003", {"payload": {"body": b"v2"}})
    assert client.get("events", b"000000000003", "payload", as_of=t1) == {"body": b"v1"}
    assert client.get("events", b"000000000003", "payload") == {"body": b"v2"}


def test_delete_single_group(client):
    client.put(
        "events",
        b"000000000004",
        {"payload": {"body": b"x"}, "meta": {"source": b"s", "kind": b"k"}},
    )
    client.delete("events", b"000000000004", "payload")
    assert client.get("events", b"000000000004", "payload") is None
    assert client.get("events", b"000000000004", "meta") is not None


def test_delete_all_groups(client):
    client.put(
        "events",
        b"000000000005",
        {"payload": {"body": b"x"}, "meta": {"source": b"s", "kind": b"k"}},
    )
    client.delete("events", b"000000000005")
    assert client.get_row("events", b"000000000005") is None


def test_scan_across_tablet_boundaries(client, db):
    # Keys spread across all three servers' tablets.
    keys = [str(k).zfill(12).encode() for k in range(0, 1_800_000_000, 300_000_001)]
    for i, key in enumerate(keys):
        client.put("events", key, {"payload": {"body": f"v{i}".encode()}})
    rows = client.scan("events", "payload", b"000000000000", b"999999999999")
    assert [key for key, _ in rows] == sorted(keys)


def test_scan_respects_bounds(client):
    for i in range(5):
        key = str(i * 100).zfill(12).encode()
        client.put("events", key, {"payload": {"body": b"v"}})
    rows = client.scan("events", "payload", b"000000000100", b"000000000300")
    assert [key for key, _ in rows] == [b"000000000100", b"000000000200"]


def test_location_cache_skips_master_after_first_call(client, db):
    client.put("events", b"000000000009", {"payload": {"body": b"v"}})
    machine = db.cluster.machines[0]
    # Subsequent ops should not pay the metadata RPC again: compare the
    # client-side clock cost of two identical reads.
    client.get("events", b"000000000009", "payload")
    before = machine.clock.now
    client.get("events", b"000000000009", "payload")
    second_cost = machine.clock.now - before
    assert second_cost < 0.01


def test_invalidate_cache_allows_relookup(client):
    client.put("events", b"000000000010", {"payload": {"body": b"v"}})
    client.invalidate_cache("events")
    assert client.get("events", b"000000000010", "payload") == {"body": b"v"}


def test_raw_api_roundtrip(client):
    client.put_raw("events", b"000000000011", "payload", b"opaque-bytes")
    assert client.get_raw("events", b"000000000011", "payload") == b"opaque-bytes"


def test_last_op_seconds_updated(client):
    client.put("events", b"000000000012", {"payload": {"body": b"v"}})
    assert client.last_op_seconds > 0


def test_stale_location_cache_retries_after_tablet_move(db):
    """After a tablet moves, a client holding the old location transparently
    refreshes its cache and retries (§3.3 stale-cache behaviour)."""
    client = db.client()
    key = b"000000000055"
    client.put("events", key, {"payload": {"body": b"v"}})
    master = db.cluster.master
    _, tablet = master.locate("events", key)
    old_owner = master.locate("events", key)[0]
    new_owner = next(s.name for s in db.cluster.servers if s.name != old_owner)
    master.move_tablet(str(tablet.tablet_id), new_owner)
    # The client's cache still points at old_owner; ops must still work.
    assert client.get("events", key, "payload") == {"body": b"v"}
    client.put("events", key, {"payload": {"body": b"v2"}})
    assert client.get("events", key, "payload") == {"body": b"v2"}
