"""Master tests: catalog, routing, liveness, election, permanent failover."""

import pytest

from repro import ColumnGroup, LogBaseConfig, TableSchema
from repro.core.cluster import LogBaseCluster
from repro.errors import TableAlreadyExists, TableNotFound, TabletNotFound


@pytest.fixture
def cluster(schema):
    c = LogBaseCluster(n_nodes=4, config=LogBaseConfig(), n_masters=2)
    c.create_table(schema, tablets_per_server=2)
    return c


def test_active_master_elected(cluster):
    assert cluster.master.is_active
    actives = [m for m in cluster.masters if m.is_active]
    assert len(actives) == 1


def test_standby_takes_over(cluster):
    active = cluster.master
    standby = next(m for m in cluster.masters if m is not active)
    active.session.expire()
    assert standby.is_active
    assert cluster.master is standby


def test_create_table_spreads_tablets(cluster):
    master = cluster.master
    tablets = master.tablets("events")
    assert len(tablets) == 8  # 4 servers * 2 tablets each
    owners = {master.locate("events", t.key_range.start or b"0")[0] for t in tablets}
    assert len(owners) == 4


def test_duplicate_table_rejected(cluster, schema):
    with pytest.raises(TableAlreadyExists):
        cluster.create_table(schema)


def test_unknown_table(cluster):
    with pytest.raises(TableNotFound):
        cluster.master.schema("missing")
    with pytest.raises(TableNotFound):
        cluster.master.tablets("missing")


def test_locate_returns_covering_tablet(cluster):
    server_name, tablet = cluster.master.locate("events", b"000500000000")
    assert tablet.covers(b"000500000000")
    assert server_name in [s.name for s in cluster.servers]


def test_locate_miss(cluster, schema):
    # Locate on a table that exists but a tablet gap cannot occur: ranges
    # cover the whole keyspace, so any key resolves.
    name, _ = cluster.master.locate("events", b"\xff" * 12)
    assert name


def test_live_servers_tracks_sessions(cluster):
    master = cluster.master
    assert len(master.live_servers()) == 4
    master.expire_server(cluster.servers[0].name)
    assert len(master.live_servers()) == 3


def test_permanent_failover_moves_tablets_and_data(cluster):
    master = cluster.master
    client_machine = cluster.machines[1]
    from repro.core.client import Client

    client = Client(master, client_machine)
    keys = [str(k).zfill(12).encode() for k in range(0, 2_000_000_000, 97_000_019)]
    for key in keys:
        client.put("events", key, {"payload": {"body": b"v-" + key}})

    victim = cluster.servers[0]
    victim_tablets = [t for t in master.tablets("events")
                      if master.locate("events", t.key_range.start or b"0")[0] == victim.name]
    assert victim_tablets

    victim.crash()
    report = master.handle_permanent_failure(victim.name)
    assert set(report.reassigned) == {str(t.tablet_id) for t in victim_tablets}
    assert all(target != victim.name for target in report.reassigned.values())

    # Every record is still readable after the move.
    client.invalidate_cache()
    for key in keys:
        row = client.get("events", key, "payload")
        assert row == {"body": b"v-" + key}


def test_failover_requires_known_server(cluster):
    from repro.errors import ServerDownError

    with pytest.raises(ServerDownError):
        cluster.master.handle_permanent_failure("ghost")


def test_kill_server_helper(cluster):
    report = cluster.kill_server(cluster.servers[1].name, permanent=True)
    assert report is not None
    assert report.failed_server == cluster.servers[1].name


def test_auto_failover_on_session_expiry(cluster):
    """§3.3: the master monitors server liveness via the coordination
    service; an expired liveness session triggers failover by itself."""
    master = cluster.master
    master.enable_auto_failover()
    client_machine = cluster.machines[1]
    from repro.core.client import Client

    client = Client(master, client_machine)
    key = b"000000000123"
    client.put("events", key, {"payload": {"body": b"v"}})
    victim_name = master.locate("events", key)[0]
    cluster.server_by_name(victim_name).crash()
    # The liveness session expiring (missed heartbeats) IS the detection.
    master.expire_server(victim_name)
    assert victim_name not in master.live_servers()
    new_owner = master.locate("events", key)[0]
    assert new_owner != victim_name
    client.invalidate_cache()
    assert client.get("events", key, "payload") == {"body": b"v"}


def test_auto_failover_watches_late_registrations(cluster):
    master = cluster.master
    master.enable_auto_failover()
    from repro.core.cluster import LogBaseCluster  # noqa: F401

    new_server = None
    # Register a new server after enabling auto failover.
    from repro.core.tablet_server import TabletServer
    from repro.sim.machine import Machine

    machine = Machine("late-node", network=cluster.machines[0].network)
    cluster.machines.append(machine)
    cluster.dfs.add_machine(machine)
    new_server = TabletServer("ts-late", machine, cluster.dfs, cluster.tso, cluster.config)
    master.register_server(new_server)
    assert "ts-late" in master.live_servers()
    new_server.crash()
    master.expire_server("ts-late")
    # Watch fired; the dead server left the membership automatically.
    assert "ts-late" not in master.live_servers()
    assert "ts-late" not in master._servers
