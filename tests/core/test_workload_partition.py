"""Tests for the Schism-style workload-driven partitioner (§3.2)."""

import random

import pytest

from repro.core.workload_partition import (
    PartitionAssignment,
    WorkloadPartitioner,
    hash_assignment,
    range_assignment,
)


def clustered_trace(n_groups=8, keys_per_group=6, txns_per_group=20):
    """A workload whose transactions stay inside disjoint key clusters."""
    rng = random.Random(13)
    groups = [
        {f"g{g}k{i}".encode() for i in range(keys_per_group)} for g in range(n_groups)
    ]
    trace = []
    for g, members in enumerate(groups):
        members = sorted(members)
        for _ in range(txns_per_group):
            trace.append(set(rng.sample(members, 3)))
    rng.shuffle(trace)
    return trace


def test_rejects_bad_partition_count():
    with pytest.raises(ValueError):
        WorkloadPartitioner(0)


def test_graph_counts_coaccess_weights():
    partitioner = WorkloadPartitioner(2)
    trace = [{b"a", b"b"}, {b"a", b"b"}, {b"a", b"c"}]
    graph = partitioner.build_graph(trace)
    assert graph[b"a"][b"b"]["weight"] == 2
    assert graph[b"a"][b"c"]["weight"] == 1


def test_clustered_workload_gets_zero_distributed_txns():
    trace = clustered_trace(n_groups=4)
    partitioner = WorkloadPartitioner(4)
    assignment = partitioner.partition(trace)
    assert assignment.distributed_fraction(trace) == 0.0


def test_workload_driven_beats_hash_and_range():
    trace = clustered_trace(n_groups=8)
    comparison = WorkloadPartitioner(4).compare(trace)
    wd = comparison["workload-driven"].distributed_fraction(trace)
    hashed = comparison["hash"].distributed_fraction(trace)
    assert wd < hashed
    # Key names interleave clusters, so ranges also split them.
    ranged = comparison["range"].distributed_fraction(trace)
    assert wd <= ranged


def test_every_key_assigned():
    trace = clustered_trace(n_groups=3)
    assignment = WorkloadPartitioner(3).partition(trace)
    keys = {key for txn in trace for key in txn}
    assert set(assignment.mapping) == keys
    assert set(assignment.mapping.values()) <= set(range(3))


def test_non_power_of_two_targets():
    trace = clustered_trace(n_groups=6)
    assignment = WorkloadPartitioner(3).partition(trace)
    assert assignment.n_partitions == 3
    assert len(set(assignment.mapping.values())) <= 3


def test_unseen_key_routes_deterministically():
    assignment = PartitionAssignment(4)
    assert assignment.partition_of(b"never-seen") == assignment.partition_of(
        b"never-seen"
    )


def test_balance_metric():
    keys = {f"k{i}".encode() for i in range(100)}
    assignment = range_assignment(keys, 4)
    assert assignment.balance() == pytest.approx(1.0, abs=0.2)


def test_hash_assignment_covers_all_partitions():
    keys = {f"k{i}".encode() for i in range(200)}
    assignment = hash_assignment(keys, 4)
    assert set(assignment.mapping.values()) == {0, 1, 2, 3}


def test_single_partition_never_distributed():
    trace = clustered_trace(n_groups=2)
    assignment = WorkloadPartitioner(1).partition(trace)
    assert assignment.distributed_fraction(trace) == 0.0
