"""Server-side group commit: the config gate, submit_write visibility,
and coordinator lifecycle across crash/restart."""

import pytest

from repro.config import LogBaseConfig
from repro.core.database import LogBase
from repro.errors import ServerDownError


def make_key(value: int) -> bytes:
    return str(value).zfill(12).encode()


@pytest.fixture
def gc_db(schema):
    db = LogBase(
        n_nodes=3, config=LogBaseConfig.with_group_commit(segment_size=16 * 1024)
    )
    db.create_table(schema)
    return db


def server_for(db, key):
    name, _tablet = db.cluster.master.locate("events", key)
    return db.cluster.master.server(name)


def test_gate_defaults_off_and_preset_turns_on():
    assert LogBaseConfig().group_commit is False
    config = LogBaseConfig.with_group_commit()
    assert config.group_commit is True
    config.validate()


@pytest.mark.parametrize(
    "kwargs",
    [
        {"group_commit_batch": 0},
        {"group_commit_max_delay": -0.001},
        {"group_commit_max_bytes": 0},
    ],
)
def test_validate_rejects_bad_group_commit_settings(kwargs):
    with pytest.raises(ValueError):
        LogBaseConfig(**kwargs).validate()


def test_gate_off_has_no_coordinator(db):
    server = server_for(db, make_key(1))
    assert server.commit is None
    with pytest.raises(RuntimeError, match="group_commit"):
        server.submit_write("events", make_key(1), {"payload": b"v"})


def test_submit_write_visible_only_after_flush(gc_db):
    key = make_key(1)
    server = server_for(gc_db, key)
    future = server.submit_write("events", key, {"payload": b"hello"})
    assert not future.done
    # Not yet durable: the group has not flushed, so reads miss.
    assert server.read("events", key, "payload") is None
    server.commit.drain()
    assert future.acked
    timestamp, value = server.read("events", key, "payload")
    assert value == b"hello"
    assert timestamp == future.token


def test_client_submit_put_raw_round_trip(gc_db):
    key = make_key(2)
    client = gc_db.client(gc_db.cluster.machines[0])
    future, request_seconds, ack_seconds = client.submit_put_raw(
        "events", key, "payload", b"async"
    )
    assert request_seconds > 0 and ack_seconds > 0
    server_for(gc_db, key).commit.drain()
    assert future.acked
    assert client.get_raw("events", key, "payload") == b"async"


def test_crash_abandons_pending_futures(gc_db):
    key = make_key(3)
    server = server_for(gc_db, key)
    future = server.submit_write("events", key, {"payload": b"doomed"})
    server.crash()
    assert future.done and not future.acked
    assert isinstance(future.error, ServerDownError)


def test_restart_installs_fresh_coordinator(gc_db):
    key = make_key(4)
    server = server_for(gc_db, key)
    old = server.commit
    server.crash()
    server.restart()
    assert server.commit is not None and server.commit is not old
    future = server.submit_write("events", key, {"payload": b"recovered"})
    server.commit.drain()
    assert future.acked
    assert server.read("events", key, "payload")[1] == b"recovered"
