"""Follower (read replica) tests: log tailing, watermarks, staleness.

The invariants under test: a follower read never observes a write past
the follower's watermark and always returns the *latest* version at or
below it; a replica beyond its staleness bound rejects instead of
serving stale; a fresh replica never serves before its first complete
tail pass; ownership changes (promotion, migration) tear replicas down;
and compaction on the owner only ever lags a follower transiently —
the next tail pass re-points retired log positions.
"""

import random

import pytest

from repro import LogBase, LogBaseConfig
from repro.chaos.replica import StalenessChecker
from repro.chaos.oracle import encode_value
from repro.errors import FollowerLaggingError

TABLE = "events"
GROUP = "payload"
SOURCE = "ts-node-0"


def _rep_config(**overrides):
    return LogBaseConfig.with_read_replicas(segment_size=16 * 1024, **overrides)


@pytest.fixture
def rep_db(schema):
    """A 3-node cluster, one tablet on the source, followers placed and
    caught up on ``ops`` raw writes."""
    db = LogBase(n_nodes=3, config=_rep_config())
    db.create_table(schema, tablets_per_server=1, only_servers=[SOURCE])
    client = db.client(db.cluster.machines[-1])
    keys = [str(k).zfill(12).encode() for k in range(0, 2_000_000_000, 97_000_003)]
    history = {}
    for i, key in enumerate(keys):
        ts = client.put_raw(TABLE, key, GROUP, encode_value(i))
        history[key] = (ts, i)
    db.cluster.heartbeat()
    return db, keys, history


def _the_follower(db):
    """(tablet_id, follower server, FollowerTablet) of the only tablet."""
    followers = db.cluster.master.catalog.followers
    tablet_id = next(iter(followers))
    server = db.cluster.server_by_name(followers[tablet_id][0])
    return tablet_id, server, server.followers[tablet_id]


def test_follower_placed_and_caught_up(rep_db):
    db, keys, history = rep_db
    tablet_id, server, follower = _the_follower(db)
    assert server.name != SOURCE
    assert follower.owner_name == SOURCE
    assert follower.watermark > 0
    assert follower.entry_count() == len(keys)
    for key, (ts, i) in history.items():
        assert server.follower_read(TABLE, key, GROUP) == (ts, encode_value(i))


def test_follower_read_never_passes_the_watermark(rep_db):
    """Property test: across interleaved writes and tail passes, every
    successful follower read is exactly the latest version at or below
    the follower's watermark — never newer, never an older shadow."""
    db, keys, history = rep_db
    tablet_id, server, follower = _the_follower(db)
    checker = StalenessChecker()
    for key, (ts, i) in history.items():
        checker.record(key, ts, i)
    client = db.client(db.cluster.machines[-1])
    rng = random.Random(7)
    seq = len(keys)
    for round_no in range(6):
        for key in rng.sample(keys, 3):
            ts = client.put_raw(TABLE, key, GROUP, encode_value(seq))
            checker.record(key, ts, seq)
            seq += 1
        if round_no % 2 == 0:
            db.cluster.heartbeat()  # tail pass advances the watermark
        for key in keys:
            try:
                result = server.follower_read(TABLE, key, GROUP)
            except FollowerLaggingError:
                continue
            problem = checker.check(key, follower.watermark, result)
            assert problem is None, problem


def test_stale_follower_rejects_instead_of_serving(rep_db):
    db, keys, _ = rep_db
    _, server, follower = _the_follower(db)
    bound = db.cluster.config.replica_max_staleness
    server.machine.clock.advance(bound + 1.0)
    with pytest.raises(FollowerLaggingError):
        server.follower_read(TABLE, keys[0], GROUP)
    # A fresh tail pass resets the lag and the replica serves again.
    db.cluster.heartbeat()
    assert server.follower_read(TABLE, keys[0], GROUP) is not None


def test_per_request_staleness_bound_overrides_the_default(rep_db):
    db, keys, _ = rep_db
    _, server, _ = _the_follower(db)
    server.machine.clock.advance(1.0)
    # Within the 5s default, but beyond an exacting per-request bound.
    assert server.follower_read(TABLE, keys[0], GROUP) is not None
    with pytest.raises(FollowerLaggingError):
        server.follower_read(TABLE, keys[0], GROUP, max_staleness=0.5)


def test_as_of_past_the_watermark_is_rejected(rep_db):
    db, keys, _ = rep_db
    _, server, follower = _the_follower(db)
    with pytest.raises(FollowerLaggingError):
        server.follower_read(
            TABLE, keys[0], GROUP, as_of=follower.watermark + 1
        )
    # At or below the watermark, historical reads serve.
    assert (
        server.follower_read(TABLE, keys[0], GROUP, as_of=follower.watermark)
        is not None
    )


def test_fresh_replica_never_serves_before_first_tail(rep_db):
    """A just-subscribed replica has no complete tail pass behind it, so
    its staleness is unbounded — it must reject even at time zero."""
    db, keys, _ = rep_db
    tablet_id, server, _ = _the_follower(db)
    other = next(
        s
        for s in db.cluster.servers
        if s.name not in (SOURCE, server.name)
    )
    tablet = db.cluster.master._tablet_by_id(tablet_id)
    other.follow_tablet(tablet, SOURCE, 0)
    with pytest.raises(FollowerLaggingError):
        other.follower_read(TABLE, keys[0], GROUP)
    other.unfollow_tablet(tablet_id)


def test_deletes_replicate_as_tombstones(rep_db):
    db, keys, _ = rep_db
    _, server, _ = _the_follower(db)
    db.delete(TABLE, keys[0], GROUP)
    db.cluster.heartbeat()
    assert server.follower_read(TABLE, keys[0], GROUP) is None
    # The other keys are untouched.
    assert server.follower_read(TABLE, keys[1], GROUP) is not None


def test_owner_compaction_only_lags_the_follower_transiently(rep_db):
    """Compaction retires the log positions the replica's index points
    at; reads may lag until the next tail pass re-points them at the
    sorted segments, but never return wrong data."""
    db, keys, history = rep_db
    _, server, follower = _the_follower(db)
    db.cluster.server_by_name(SOURCE).compact()
    for key in keys:
        try:
            result = server.follower_read(TABLE, key, GROUP)
        except FollowerLaggingError:
            continue  # retired position: fall back to the owner
        assert result == (history[key][0], encode_value(history[key][1]))
    db.cluster.heartbeat()  # tail pass picks up the sorted segments
    for key, (ts, i) in history.items():
        assert server.follower_read(TABLE, key, GROUP) == (ts, encode_value(i))


def test_follower_scan_matches_owner_scan(rep_db):
    db, keys, history = rep_db
    _, server, _ = _the_follower(db)
    rows = server.follower_scan(TABLE, GROUP, keys[0], keys[-1] + b"\xff")
    assert [(k, v) for k, ts, v in rows] == [
        (key, encode_value(history[key][1])) for key in sorted(keys)
    ]


def test_scan_with_no_covering_replica_rejects(schema):
    """A clipped scan landing (via a stale client route) on a server that
    hosts other tablets of the table but no replica covering the range
    must raise, not silently return [] — the client would accept the
    empty slice and drop that tablet's rows from the scan result."""
    db = LogBase(n_nodes=3, config=_rep_config())
    db.create_table(schema, tablets_per_server=2, only_servers=[SOURCE])
    client = db.client(db.cluster.machines[-1])
    k0, k1 = b"000000000001", b"001000000001"
    client.put_raw(TABLE, k0, GROUP, encode_value(0))
    client.put_raw(TABLE, k1, GROUP, encode_value(1))
    db.cluster.heartbeat()
    followers = db.cluster.master.catalog.followers
    t0_id, t1_id = sorted(followers)
    # The rotation spreads the two replicas over the two non-owners.
    assert followers[t0_id] != followers[t1_id]
    t1 = db.cluster.master._tablet_by_id(t1_id)
    s0 = db.cluster.server_by_name(followers[t0_id][0])
    assert t1_id not in s0.followers
    with pytest.raises(FollowerLaggingError):
        s0.follower_scan(TABLE, GROUP, t1.key_range.start, k1 + b"\xff")
    # The server that does cover the range serves the same clipped scan.
    s1 = db.cluster.server_by_name(followers[t1_id][0])
    rows = s1.follower_scan(TABLE, GROUP, t1.key_range.start, k1 + b"\xff")
    assert [(k, v) for k, _, v in rows] == [(k1, encode_value(1))]


def test_scan_ignores_lag_of_non_intersecting_replicas(schema):
    """A lagging replica of an unrelated tablet must not fail a clipped
    scan that a fresh co-hosted replica fully covers."""
    db = LogBase(n_nodes=2, config=_rep_config())
    db.create_table(schema, tablets_per_server=2, only_servers=[SOURCE])
    client = db.client(db.cluster.machines[-1])
    k0, k1 = b"000000000001", b"001000000001"
    client.put_raw(TABLE, k0, GROUP, encode_value(0))
    client.put_raw(TABLE, k1, GROUP, encode_value(1))
    db.cluster.heartbeat()
    followers = db.cluster.master.catalog.followers
    t0_id, t1_id = sorted(followers)
    # One non-owner, so it co-hosts both replicas on one tailer.
    server = db.cluster.server_by_name(followers[t0_id][0])
    assert followers[t1_id][0] == server.name
    server.followers[t1_id].caught_up_at = None  # unrelated replica lags
    rows = server.follower_scan(TABLE, GROUP, k0, k0 + b"\xff")
    assert [(k, v) for k, _, v in rows] == [(k0, encode_value(0))]
    t1 = db.cluster.master._tablet_by_id(t1_id)
    with pytest.raises(FollowerLaggingError):
        server.follower_scan(TABLE, GROUP, t1.key_range.start, k1 + b"\xff")


def test_new_subscription_quarantines_cohosted_replicas(schema):
    """Subscribing a replica resets the shared stream; until the
    re-replay fully drains, co-hosted replicas must stop serving — a
    batch-bounded pass can transiently re-insert a WRITE whose shadowing
    INVALIDATE only lands in a later pass."""
    db = LogBase(n_nodes=2, config=_rep_config())
    db.create_table(schema, tablets_per_server=2, only_servers=[SOURCE])
    client = db.client(db.cluster.machines[-1])
    k0, k1 = b"000000000001", b"001000000001"
    client.put_raw(TABLE, k0, GROUP, encode_value(0))
    client.put_raw(TABLE, k1, GROUP, encode_value(1))
    db.delete(TABLE, k0, GROUP)
    db.cluster.heartbeat()
    followers = db.cluster.master.catalog.followers
    t0_id, t1_id = sorted(followers)
    server = db.cluster.server_by_name(followers[t0_id][0])
    assert server.follower_read(TABLE, k0, GROUP) is None
    # Re-point tablet 1's replica: the shared stream restarts from zero.
    t1 = db.cluster.master._tablet_by_id(t1_id)
    epoch = server.followers[t1_id].epoch
    server.unfollow_tablet(t1_id)
    server.follow_tablet(t1, SOURCE, epoch)
    tailer = server._tailers[SOURCE]
    with pytest.raises(FollowerLaggingError):
        server.follower_read(TABLE, k0, GROUP)
    # One-record passes re-insert k0's WRITE before its INVALIDATE is
    # re-seen; the co-hosted replica must keep rejecting mid-replay.
    drained = False
    while not drained:
        _, drained = tailer.tail(1)
        if not drained:
            with pytest.raises(FollowerLaggingError):
                server.follower_read(TABLE, k0, GROUP)
    # Fully drained: serving resumes and the delete still holds.
    assert server.follower_read(TABLE, k0, GROUP) is None
    assert server.follower_read(TABLE, k1, GROUP) is not None


def test_promotion_tears_the_replica_down(rep_db):
    db, keys, _ = rep_db
    tablet_id, server, _ = _the_follower(db)
    tablet = db.cluster.master._tablet_by_id(tablet_id)
    server.assign_tablet(tablet)
    assert tablet_id not in server.followers
    assert not server._tailers


def test_migration_fences_and_repoints_the_replica(rep_db):
    db, keys, _ = rep_db
    tablet_id, server, _ = _the_follower(db)
    target = next(
        s.name
        for s in db.cluster.servers
        if s.name not in (SOURCE, server.name)
    )
    report = db.cluster.migrate_tablet(tablet_id, target)
    assert report.completed
    # Torn down inside the flip...
    assert all(tablet_id not in s.followers for s in db.cluster.servers)
    # ...and re-placed against the new owner at the next heartbeat.
    db.cluster.heartbeat()
    _, new_server, new_follower = _the_follower(db)
    assert new_follower.owner_name == target
    assert new_server.follower_read(TABLE, keys[0], GROUP) is not None


def test_replica_routed_client_reads_every_ack(rep_db):
    db, keys, history = rep_db
    client = db.client(db.cluster.machines[-1])
    for key, (ts, i) in history.items():
        assert client.get_raw(TABLE, key, GROUP) == encode_value(i)
    served = db.cluster.total_counters().get("replica.reads_served", 0)
    assert served > 0


def test_heartbeat_reports_replica_lag(rep_db):
    db, keys, _ = rep_db
    tick = db.cluster.heartbeat()
    tablet_id, _, _ = _the_follower(db)
    assert tablet_id in tick["replica_lags"]
    assert tick["replica_lags"][tablet_id] >= 0.0


def test_gate_off_places_nothing(schema):
    db = LogBase(n_nodes=3, config=LogBaseConfig(segment_size=16 * 1024))
    db.create_table(schema, tablets_per_server=1, only_servers=[SOURCE])
    db.put(TABLE, b"000000000001", {GROUP: {"body": b"v"}})
    tick = db.cluster.heartbeat()
    assert tick["replica_lags"] == {}
    assert not db.cluster.master.catalog.followers
    assert all(not s.followers for s in db.cluster.servers)
