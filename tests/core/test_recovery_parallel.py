"""Fast recovery: parallel redo parity, hot-first bring-up, serve-while-
recovering, crash-safe split/adopt, and the fast_recovery config gate."""

import pytest

from repro.config import LogBaseConfig
from repro.coordination.tso import TimestampOracle
from repro.coordination.znodes import CoordinationService
from repro.core.checkpoint import CheckpointManager
from repro.core.database import LogBase
from repro.core.partition import KeyRange
from repro.core.recovery import (
    adopt_split_log,
    read_split_fence,
    recover_server,
    recover_server_parallel,
    redo_scan,
    split_log_by_tablet,
)
from repro.core.schema import ColumnGroup, TableSchema
from repro.core.tablet import Tablet, TabletId
from repro.core.tablet_server import TabletServer
from repro.errors import (
    RecoveryError,
    ServerDownError,
    TabletRecoveringError,
)
from repro.sim.failure import (
    CP_RECOVERY_MID,
    CP_SPLIT_PERSIST,
    FaultPlan,
    fault_plan,
    kill_action,
)
from repro.wal.record import LogRecord, RecordType, commit_record
from repro.wal.repository import LogRepository

TABLE = "recov"
GROUP = "g"
SCHEMA = TableSchema(TABLE, "id", (ColumnGroup(GROUP, ("v",)),))
SERVER = "ts-node-0"


@pytest.fixture
def tso():
    return TimestampOracle(CoordinationService())


def make_db(*, fast: bool, workers: int = 4) -> LogBase:
    config = LogBaseConfig(
        segment_size=16 * 1024,
        fast_recovery=fast,
        recovery_workers=workers,
        client_retry_limit=3,
    )
    db = LogBase(n_nodes=3, config=config)
    db.create_table(
        SCHEMA,
        tablets_per_server=4,
        key_domain=1000,
        key_width=4,
        only_servers=[SERVER],
    )
    return db


def load(db: LogBase, n: int, *, checkpoint_at: int | None = None):
    client = db.client(db.cluster.machines[-1])
    keys = [str(i * 7 % 1000).zfill(4).encode() for i in range(n)]
    for i, key in enumerate(keys):
        client.put_raw(TABLE, key, GROUP, f"v{i}".encode())
        if checkpoint_at is not None and i == checkpoint_at:
            db.cluster.checkpoints[SERVER].write_checkpoint()
    return keys


def crash_and_recover(db: LogBase):
    db.cluster.kill_node(SERVER)
    return db.cluster.restart_server(SERVER)


def readback(db: LogBase, keys):
    client = db.client(db.cluster.machines[-1])
    return {key: client.get_raw(TABLE, key, GROUP) for key in keys}


# -- config gate ---------------------------------------------------------------


def test_gate_defaults_off_and_preset_turns_on():
    assert LogBaseConfig().fast_recovery is False
    config = LogBaseConfig.with_fast_recovery()
    assert config.fast_recovery is True
    config.validate()


def test_validate_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        LogBaseConfig(recovery_workers=0).validate()


# -- parity with the sequential path -------------------------------------------


@pytest.mark.parametrize("checkpoint_at", [None, 60])
def test_parallel_recovery_matches_sequential(checkpoint_at):
    db_seq, db_par = make_db(fast=False), make_db(fast=True)
    keys = load(db_seq, 120, checkpoint_at=checkpoint_at)
    assert load(db_par, 120, checkpoint_at=checkpoint_at) == keys
    seq = crash_and_recover(db_seq)
    par = crash_and_recover(db_par)
    assert not seq.parallel and par.parallel
    assert par.used_checkpoint == seq.used_checkpoint == (checkpoint_at is not None)
    for field in (
        "records_scanned",
        "writes_applied",
        "deletes_applied",
        "uncommitted_ignored",
    ):
        assert getattr(par, field) == getattr(seq, field), field
    assert readback(db_par, keys) == readback(db_seq, keys)


def test_parallel_gating_ignores_uncommitted_and_applies_committed(tso, dfs, machines):
    config = LogBaseConfig(fast_recovery=True)
    server = TabletServer(SERVER, machines[0], dfs, tso, config)
    server.assign_tablet(Tablet(TabletId(TABLE, 0), KeyRange(b"", None), SCHEMA))
    manager = CheckpointManager(dfs, server)

    def rec(record_type, txn, key, ts, value=b""):
        return LogRecord(record_type, lsn=0, txn_id=txn, table=TABLE,
                         tablet=f"{TABLE}#0", key=key, group=GROUP,
                         timestamp=ts, value=value)

    server.append_transactional([
        rec(RecordType.WRITE, 1, b"ok", 10, b"committed"),
        commit_record(1, 10),
    ])
    server.append_transactional([
        rec(RecordType.WRITE, 2, b"bad", 11, b"uncommitted"),
    ])
    server.crash()
    server.restart()
    server.assign_tablet(Tablet(TabletId(TABLE, 0), KeyRange(b"", None), SCHEMA))
    report = recover_server_parallel(server, manager)
    assert report.parallel
    assert report.writes_applied == 1
    assert report.uncommitted_ignored == 1
    assert server.read(TABLE, b"ok", GROUP)[1] == b"committed"
    assert server.read(TABLE, b"bad", GROUP) is None


# -- hot-first, serve-while-recovering -----------------------------------------


def test_hot_tablets_come_up_first():
    # One worker makes the bring-up order strictly the heat order; the
    # checkpoint gives every tablet a real (DFS index load) bring-up cost.
    db = make_db(fast=True, workers=1)
    keys = load(db, 120, checkpoint_at=60)
    client = db.client(db.cluster.machines[-1])
    hot_key = keys[0]
    for _ in range(200):
        client.get_raw(TABLE, hot_key, GROUP)
    db.cluster.heartbeat()
    hot_tablet = str(db.cluster.master.locate(TABLE, hot_key)[1].tablet_id)
    assert db.cluster.tablet_heat[hot_tablet] == max(db.cluster.tablet_heat.values())
    report = crash_and_recover(db)
    assert report.tablets_recovered == 4
    assert report.first_ready_seconds == min(report.tablet_ready.values())
    assert report.tablet_ready[hot_tablet] == report.first_ready_seconds
    assert report.first_ready_seconds < report.seconds


def test_ready_tablets_serve_while_others_recover():
    db = make_db(fast=True, workers=1)
    keys = load(db, 80)
    server = db.cluster.server_by_name(SERVER)
    snapshots = []

    def on_ready(tablet_id, _at):
        snapshots.append((tablet_id, set(server.recovering_tablets)))

    db.cluster.kill_node(SERVER)
    db.cluster.restart_server(SERVER, recover=False)
    recover_server_parallel(
        server, db.cluster.checkpoints[SERVER], on_tablet_ready=on_ready
    )
    assert len(snapshots) == 4
    first_ready, still_recovering = snapshots[0]
    assert first_ready not in still_recovering
    assert len(still_recovering) == 3  # the rest were still recovering
    assert not server.recovering_tablets  # all served at the end
    assert all(value is not None for value in readback(db, keys).values())


def test_ops_on_recovering_tablet_raise_retryable_error():
    db = make_db(fast=True)
    keys = load(db, 40)
    server = db.cluster.server_by_name(SERVER)
    server.begin_tablet_recovery(server.tablets.keys())
    with pytest.raises(TabletRecoveringError):
        server.read(TABLE, keys[0], GROUP)
    with pytest.raises(TabletRecoveringError):
        server.write(TABLE, keys[0], {GROUP: b"x"})
    # The client backs off and retries; the window never closes here, so
    # the retryable error surfaces only after the retry budget.
    client = db.client(db.cluster.machines[-1])
    with pytest.raises(TabletRecoveringError):
        client.get_raw(TABLE, keys[0], GROUP)
    for tablet_id in list(server.tablets):
        server.finish_tablet_recovery(tablet_id)
    assert client.get_raw(TABLE, keys[0], GROUP) is not None


def test_client_retry_covers_recovery_window():
    db = make_db(fast=True)
    keys = load(db, 40)
    server = db.cluster.server_by_name(SERVER)
    server.begin_tablet_recovery(server.tablets.keys())
    client = db.client(db.cluster.machines[-1])
    original = server.read
    calls = {"n": 0}

    def flaky_read(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] == 2:  # recovery finishes while the client backs off
            for tablet_id in list(server.tablets):
                server.finish_tablet_recovery(tablet_id)
        return original(*args, **kwargs)

    server.read = flaky_read
    try:
        assert client.get_raw(TABLE, keys[0], GROUP) is not None
    finally:
        server.read = original
    assert calls["n"] >= 2


# -- crash-safe recovery -------------------------------------------------------


def test_crash_mid_parallel_recovery_then_rerun_converges():
    db = make_db(fast=True)
    keys = load(db, 120, checkpoint_at=60)
    expected = readback(db, keys)
    db.cluster.kill_node(SERVER)
    plan = FaultPlan()
    plan.add(
        CP_RECOVERY_MID,
        kill_action(db.cluster.failures, SERVER, ServerDownError("mid-redo")),
        hits=2,
        server=SERVER,
    )
    with fault_plan(plan):
        with pytest.raises(ServerDownError):
            db.cluster.restart_server(SERVER)
        report = db.cluster.restart_server(SERVER)
    assert len(plan.fired) == 1
    assert report.parallel and not db.cluster.server_by_name(SERVER).recovering_tablets
    assert readback(db, keys) == expected


def test_split_persist_is_atomic_under_crash(tso, dfs, machines):
    server = TabletServer("ts-a", machines[0], dfs, tso, LogBaseConfig())
    server.assign_tablet(Tablet(TabletId(TABLE, 0), KeyRange(b"", None), SCHEMA))
    for i in range(10):
        server.write(TABLE, f"k{i}".encode(), {GROUP: b"x"})
    from repro.sim.failure import FailureInjector

    injector = FailureInjector()
    injector.register("ts-b", machines[1])
    plan = FaultPlan()
    plan.add(
        CP_SPLIT_PERSIST,
        kill_action(injector, "ts-b", ServerDownError("mid-split")),
        server="ts-a",
    )
    with fault_plan(plan):
        with pytest.raises(ServerDownError):
            split_log_by_tablet(dfs, "ts-a", machines[1], fence=1)
    # The torn attempt left only the temp file: a reattach of the split
    # directory sees no segments, and no fence was installed.
    split_root = f"/logbase/splits/ts-a/{TABLE}#0"
    assert dfs.exists(f"{split_root}/segment-00000001.log.tmp")
    assert not dfs.exists(f"{split_root}/segment-00000001.log")
    repo = LogRepository.reattach(dfs, machines[2], split_root)
    assert list(repo.scan_all()) == []
    assert read_split_fence(dfs, "ts-a", machines[2]) is None
    # The retried split (fresh epoch) overwrites the leftover cleanly.
    machines[1].restart()
    splits = split_log_by_tablet(dfs, "ts-a", machines[1], fence=2)
    assert f"{TABLE}#0" in splits.paths
    assert read_split_fence(dfs, "ts-a", machines[2]) == 2


def test_adopt_rejects_stale_fence(tso, dfs, machines):
    source = TabletServer("ts-a", machines[0], dfs, tso, LogBaseConfig())
    tablet = Tablet(TabletId(TABLE, 0), KeyRange(b"", None), SCHEMA)
    source.assign_tablet(tablet)
    source.write(TABLE, b"k", {GROUP: b"x"})
    split_log_by_tablet(dfs, "ts-a", machines[1], fence=1)
    adopter = TabletServer("ts-b", machines[1], dfs, tso, LogBaseConfig())
    adopter.assign_tablet(tablet)
    with pytest.raises(RecoveryError, match="fence"):
        adopt_split_log(adopter, dfs, "ts-a", f"{TABLE}#0", fence=2)


def test_adopting_twice_never_double_appends(tso, dfs, machines):
    source = TabletServer("ts-a", machines[0], dfs, tso, LogBaseConfig())
    tablet = Tablet(TabletId(TABLE, 0), KeyRange(b"", None), SCHEMA)
    source.assign_tablet(tablet)
    written = {}
    for i in range(12):
        key = f"k{i:02d}".encode()
        written[key] = source.write(TABLE, key, {GROUP: f"v{i}".encode()})
    split_log_by_tablet(dfs, "ts-a", machines[1], fence=1)
    adopter = TabletServer("ts-b", machines[1], dfs, tso, LogBaseConfig())
    adopter.assign_tablet(tablet)
    first = adopt_split_log(adopter, dfs, "ts-a", f"{TABLE}#0", fence=1)
    assert first.writes_applied == 12 and first.skipped == 0
    appended = len(list(adopter.log.scan_all()))
    # A re-run (crashed failover retried) skips every already-homed record.
    second = adopt_split_log(adopter, dfs, "ts-a", f"{TABLE}#0", fence=1)
    assert second.skipped == 12 and second.writes_applied == 0
    assert len(list(adopter.log.scan_all())) == appended
    for key in written:
        index = adopter.index_for(TABLE, key, GROUP)
        assert len(index.versions(key)) == 1  # one version, not two


# -- the foreign-repository LSN satellite --------------------------------------


def test_redo_scan_of_foreign_repository_leaves_lsn_cursor(tso, dfs, machines):
    source = TabletServer("ts-a", machines[0], dfs, tso, LogBaseConfig())
    tablet = Tablet(TabletId(TABLE, 0), KeyRange(b"", None), SCHEMA)
    source.assign_tablet(tablet)
    for i in range(8):
        source.write(TABLE, f"k{i}".encode(), {GROUP: b"x"})
    reader = TabletServer("ts-b", machines[1], dfs, tso, LogBaseConfig())
    reader.assign_tablet(tablet)
    before = reader.log.next_lsn
    report = redo_scan(reader, repository=source.log)
    assert report.writes_applied == 8
    assert reader.log.next_lsn == before  # foreign scan must not move it


def test_redo_scan_of_own_log_still_restores_lsn(tso, dfs, machines):
    server = TabletServer("ts-a", machines[0], dfs, tso, LogBaseConfig())
    server.assign_tablet(Tablet(TabletId(TABLE, 0), KeyRange(b"", None), SCHEMA))
    for i in range(8):
        server.write(TABLE, f"k{i}".encode(), {GROUP: b"x"})
    lsn_before = server.log.next_lsn
    server.crash()
    server.restart()
    server.assign_tablet(Tablet(TabletId(TABLE, 0), KeyRange(b"", None), SCHEMA))
    redo_scan(server)
    assert server.log.next_lsn >= lsn_before


# -- stats surface -------------------------------------------------------------


def test_recovery_surfaces_in_stats():
    from repro.core.stats import collect_server_stats

    db = make_db(fast=True)
    keys = load(db, 40)
    crash_and_recover(db)
    stats = collect_server_stats(db.cluster.server_by_name(SERVER))
    assert stats.recovering_tablets == 0
    assert stats.last_recovery is not None
    assert stats.last_recovery["parallel"] is True
    assert stats.last_recovery["tablets_recovered"] == 4
    assert stats.counters.get("recovery.parallel_runs") == 1
    assert stats.counters.get("recovery.tablets_recovered") == 4
    histogram = db.cluster.server_by_name(SERVER).recovery_histogram
    assert histogram is not None and histogram.count == 4
    assert readback(db, keys)
