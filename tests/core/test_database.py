"""Facade tests: the LogBase object end to end."""

import pytest

from repro import ColumnGroup, LogBase, LogBaseConfig, TableSchema


def test_put_get_through_facade(db):
    db.put("events", b"000000000001", {"payload": {"body": b"hi"}})
    assert db.get("events", b"000000000001", "payload") == {"body": b"hi"}


def test_transactions_through_facade(db):
    txn = db.begin()
    txn.write("events", b"000000000002", "payload", {"body": b"txn"})
    commit_ts = txn.commit()
    assert commit_ts > 0
    assert db.get("events", b"000000000002", "payload") == {"body": b"txn"}


def test_compact_all_preserves_data(db):
    for i in range(20):
        key = str(i * 90_000_000).zfill(12).encode()
        db.put("events", key, {"payload": {"body": f"v{i}".encode()}})
    results = db.compact_all()
    assert len(results) == 3
    assert db.get("events", b"000000000000", "payload") == {"body": b"v0"}


def test_checkpoint_all_writes_blocks(db):
    db.put("events", b"000000000003", {"payload": {"body": b"v"}})
    db.checkpoint_all()
    for server in db.cluster.servers:
        assert db.cluster.checkpoints[server.name].has_checkpoint()


def test_multiple_tables(db):
    other = TableSchema("other", "id", (ColumnGroup("data", ("x",)),))
    db.create_table(other)
    db.put("other", b"000000000001", {"data": {"x": b"1"}})
    db.put("events", b"000000000001", {"payload": {"body": b"2"}})
    assert db.get("other", b"000000000001", "data") == {"x": b"1"}
    assert db.get("events", b"000000000001", "payload") == {"body": b"2"}


def test_scan_facade(db):
    for i in range(3):
        key = str(i * 600_000_000).zfill(12).encode()
        db.put("events", key, {"payload": {"body": b"v"}})
    rows = db.scan("events", "payload", b"", b"999999999999")
    assert len(rows) == 3


def test_single_node_cluster_works():
    small = LogBase(n_nodes=1, config=LogBaseConfig(replication=1))
    small.create_table(TableSchema("t", "id", (ColumnGroup("g", ("v",)),)))
    small.put("t", b"000000000001", {"g": {"v": b"x"}})
    assert small.get("t", b"000000000001", "g") == {"v": b"x"}


def test_config_validation():
    with pytest.raises(ValueError):
        LogBaseConfig(index_kind="btree").validate()
    with pytest.raises(ValueError):
        LogBaseConfig(replication=0).validate()
    with pytest.raises(ValueError):
        LogBaseConfig(index_heap_fraction=0.9, cache_heap_fraction=0.4).validate()
    with pytest.raises(ValueError):
        LogBaseConfig(max_versions=0).validate()


def test_facade_scan_as_of(db):
    t1 = db.put("events", b"000000000050", {"payload": {"body": b"v1"}})
    db.put("events", b"000000000050", {"payload": {"body": b"v2"}})
    rows = db.scan("events", "payload", b"", b"z", as_of=t1)
    assert rows == [(b"000000000050", {"body": b"v1"})]


def test_facade_unknown_table_raises(db):
    from repro.errors import TableNotFound

    with pytest.raises(TableNotFound):
        db.get("nope", b"000000000001", "g")
