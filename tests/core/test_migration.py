"""Live migration tests: lease-fenced handoff, splitting, balancing.

The invariants under test: ownership moves without losing a single acked
write; the only client-visible unavailability is the fenced flip window;
a lease-lapsed or mid-flip server refuses to serve; and a master that
dies mid-migration leaves a record a successor can always converge.
"""

import pytest

from repro import LogBase, LogBaseConfig
from repro.chaos.migration import check_single_owner
from repro.core.migration import MIGRATIONS_PATH
from repro.errors import (
    LogBaseError,
    MigrationError,
    SessionExpiredError,
    TabletMigratingError,
)
from repro.sim.failure import (
    CP_MIGRATION_CATCHUP,
    CP_MIGRATION_FLIP,
    CP_MIGRATION_PREPARE,
    FaultPlan,
    fault_plan,
)

TABLE = "events"
GROUP = "payload"


def _mig_config(**overrides):
    return LogBaseConfig.with_live_migration(segment_size=16 * 1024, **overrides)


@pytest.fixture
def mig_db(schema):
    db = LogBase(n_nodes=3, config=_mig_config())
    db.create_table(schema, tablets_per_server=1)
    keys = [str(k).zfill(12).encode() for k in range(0, 2_000_000_000, 53_000_017)]
    for i, key in enumerate(keys):
        db.put(TABLE, key, {GROUP: {"body": f"v{i}".encode()}})
    db.cluster.heartbeat()
    return db, keys


def _victim(db):
    """(tablet_id, source name, a different live server name)."""
    assignments = db.cluster.master.catalog.assignments
    tablet_id = sorted(assignments)[0]
    source = assignments[tablet_id]
    target = next(s.name for s in db.cluster.servers if s.name != source)
    return tablet_id, source, target


def test_live_migration_moves_ownership_and_data(mig_db):
    db, keys = mig_db
    tablet_id, source, target = _victim(db)
    report = db.cluster.migrate_tablet(tablet_id, target)
    assert report.completed
    assert report.records_caught_up > 0
    assert db.cluster.master.catalog.assignments[tablet_id] == target
    assert tablet_id not in db.cluster.server_by_name(source).tablets
    client = db.client(db.cluster.machines[1])
    for i, key in enumerate(keys):
        assert client.get(TABLE, key, GROUP) == {"body": f"v{i}".encode()}
    assert check_single_owner(db) == []
    counters = db.cluster.total_counters()
    assert counters["migration.started"] == 1
    assert counters["migration.completed"] == 1
    # The flip window stayed within the configured unavailability budget.
    assert report.flip_seconds <= db.cluster.config.migration_flip_budget


def test_migration_record_cleared_after_completion(mig_db):
    db, _ = mig_db
    tablet_id, _, target = _victim(db)
    db.cluster.migrate_tablet(tablet_id, target)
    assert not db.cluster.coordination.exists(f"{MIGRATIONS_PATH}/{tablet_id}")


def test_writes_between_catchup_and_flip_become_the_delta(mig_db):
    db, keys = mig_db
    tablet_id, source, target = _victim(db)
    migrator = db.cluster.migrator
    steps, ctx = migrator.phases(tablet_id, target)
    by_name = dict(steps)
    by_name["prepare"]()
    by_name["catchup"]()
    # The source keeps serving during catch-up; these writes land after
    # the persisted cutoff and must ride the flip delta.
    tablet = db.cluster.server_by_name(source).tablets[tablet_id]
    late = [k for k in keys if tablet.covers(k)][:3]
    client = db.client(db.cluster.machines[1])
    for key in late:
        client.put(TABLE, key, {GROUP: {"body": b"late"}})
    by_name["flip"]()
    report = ctx["report"]
    assert report.completed
    assert report.delta_records >= len(late)
    client.invalidate_cache()
    for key in late:
        assert client.get(TABLE, key, GROUP) == {"body": b"late"}


def test_migrate_to_current_owner_rejected(mig_db):
    db, _ = mig_db
    tablet_id, source, _ = _victim(db)
    with pytest.raises(MigrationError):
        db.cluster.migrate_tablet(tablet_id, source)


def test_client_invalidates_cache_on_migrating_error(mig_db):
    db, keys = mig_db
    tablet_id, source, _ = _victim(db)
    server = db.cluster.server_by_name(source)
    tablet = server.tablets[tablet_id]
    key = next(k for k in keys if tablet.covers(k))
    client = db.client(db.cluster.machines[1])
    client.get(TABLE, key, GROUP)  # warm the location cache
    assert TABLE in client._locations
    invalidations = []
    original = client.invalidate_cache
    client.invalidate_cache = lambda table=None: (
        invalidations.append(table),
        original(table),
    )
    server.begin_tablet_migration(tablet_id)
    with pytest.raises(TabletMigratingError):
        client.get(TABLE, key, GROUP)
    # Every rejected attempt dropped the cached route (ownership may have
    # moved) and re-resolved from the master after backing off.
    assert invalidations.count(TABLE) >= 1
    assert client._machine.counters.get("client.retries") >= 1
    server.finish_tablet_migration(tablet_id)
    assert client.get(TABLE, key, GROUP) is not None


def test_lapsed_lease_fences_the_owner(mig_db):
    db, keys = mig_db
    tablet_id, source, _ = _victim(db)
    server = db.cluster.server_by_name(source)
    tablet = server.tablets[tablet_id]
    key = next(k for k in keys if tablet.covers(k))
    # No heartbeat renewals: once the owner's clock passes its lease it
    # must self-fence even though nobody told it anything.
    server.machine.clock.advance(db.cluster.config.migration_lease_seconds + 1.0)
    with pytest.raises(TabletMigratingError):
        server.read(TABLE, key, GROUP)
    assert server.machine.counters.get("migration.lease_rejects") >= 1
    # The heartbeat re-grants leases to reachable owners.
    db.cluster.heartbeat()
    assert server.read(TABLE, key, GROUP) is not None


def test_restarted_server_comes_back_leaseless(mig_db):
    db, keys = mig_db
    tablet_id, source, _ = _victim(db)
    db.cluster.kill_server(source)
    db.cluster.restart_server(source)
    server = db.cluster.server_by_name(source)
    assert not server.lease_valid(tablet_id)
    db.cluster.heartbeat()
    assert server.lease_valid(tablet_id)


def test_split_at_observed_median(mig_db):
    db, keys = mig_db
    tablet_id, source, _ = _victim(db)
    server = db.cluster.server_by_name(source)
    tablet = server.tablets[tablet_id]
    covered = [k for k in keys if tablet.covers(k)]
    client = db.client(db.cluster.machines[1])
    for key in covered:  # build the observed-key sample
        client.get(TABLE, key, GROUP)
    report = db.cluster.split_tablet(tablet_id)
    assert report.entries_moved > 0
    catalog = db.cluster.master.catalog
    assert tablet_id not in catalog.assignments
    assert catalog.assignments[report.left] == source
    assert catalog.assignments[report.right] == source
    # Both halves cover the old range with no gap or overlap.
    tablets = {str(t.tablet_id): t for t in catalog.tablets[TABLE]}
    assert tablets[report.left].key_range.end == report.split_key
    assert tablets[report.right].key_range.start == report.split_key
    client.invalidate_cache()
    for i, key in enumerate(keys):
        assert client.get(TABLE, key, GROUP) == {"body": f"v{i}".encode()}
    assert check_single_owner(db) == []


def test_split_without_sample_rejected(mig_db):
    db, _ = mig_db
    tablet_id, _, _ = _victim(db)
    # Reads went through put-time only; wipe the sample to simulate a
    # cold tablet.
    db.cluster.server_by_name(_victim(db)[1])._key_samples.clear()
    with pytest.raises(MigrationError):
        db.cluster.split_tablet(tablet_id)


def test_balancer_moves_heat_off_the_hot_server(schema):
    db = LogBase(n_nodes=3, config=_mig_config())
    # Everything on one server: maximal skew.
    db.create_table(schema, tablets_per_server=1, only_servers=["ts-node-0"])
    keys = [str(k).zfill(12).encode() for k in range(0, 2_000_000_000, 53_000_017)]
    for i, key in enumerate(keys):
        db.put(TABLE, key, {GROUP: {"body": f"v{i}".encode()}})
    db.cluster.heartbeat()
    actions = db.cluster.balance()
    assert len(actions) == 1
    counters = db.cluster.total_counters()
    assert counters["migration.balancer_moves"] == 1
    client = db.client(db.cluster.machines[1])
    for i, key in enumerate(keys):
        assert client.get(TABLE, key, GROUP) == {"body": f"v{i}".encode()}
    assert check_single_owner(db) == []


def test_balancer_idle_when_balanced(mig_db):
    db, _ = mig_db
    assert db.cluster.balance() == []


def test_ghost_heat_decays(mig_db):
    db, _ = mig_db
    db.cluster.tablet_heat["ghost#0"] = 8.0
    db.cluster.heartbeat()  # first tick records when the ghost was seen
    assert "ghost#0" in db.cluster.tablet_heat
    half_life = db.cluster.config.heat_half_life
    db.cluster.machines[0].clock.advance(half_life)
    db.cluster.heartbeat()
    assert db.cluster.tablet_heat["ghost#0"] == pytest.approx(4.0)
    db.cluster.machines[0].clock.advance(half_life * 10)
    db.cluster.heartbeat()
    assert "ghost#0" not in db.cluster.tablet_heat


def test_assigned_heat_never_decays(mig_db):
    db, _ = mig_db
    tablet_id, _, _ = _victim(db)
    before = db.cluster.tablet_heat.get(tablet_id, 0.0)
    assert before > 0
    db.cluster.machines[0].clock.advance(10_000.0)
    db.cluster.heartbeat()
    assert db.cluster.tablet_heat[tablet_id] >= before


@pytest.mark.parametrize(
    "point,stage",
    [
        (CP_MIGRATION_PREPARE, None),
        (CP_MIGRATION_CATCHUP, "split"),
        (CP_MIGRATION_CATCHUP, "adopt"),
        (CP_MIGRATION_FLIP, "begin"),
        (CP_MIGRATION_FLIP, "commit"),
    ],
)
def test_master_failover_mid_migration_converges(schema, point, stage):
    """A standby promoted at any step re-reads the persisted migration
    record and either completes or safely aborts — never two owners,
    never a lost write."""
    db = LogBase(n_nodes=3, config=_mig_config(), n_masters=2)
    db.create_table(schema, tablets_per_server=1)
    keys = [str(k).zfill(12).encode() for k in range(0, 2_000_000_000, 53_000_017)]
    for i, key in enumerate(keys):
        db.put(TABLE, key, {GROUP: {"body": f"v{i}".encode()}})
    db.cluster.heartbeat()
    assignments = db.cluster.master.catalog.assignments
    tablet_id = sorted(assignments)[0]
    target = next(
        s.name for s in db.cluster.servers if s.name != assignments[tablet_id]
    )
    old_master = db.cluster.master

    def depose(ctx):
        old_master.session.expire()
        raise SessionExpiredError("deposed mid-migration")

    plan = FaultPlan()
    match = {"tablet": tablet_id}
    if stage is not None:
        match["stage"] = stage
    plan.add(point, depose, **match)
    with fault_plan(plan):
        with pytest.raises(LogBaseError):
            db.cluster.migrate_tablet(tablet_id, target)
    assert len(plan.fired) == 1
    new_master = db.cluster.master
    assert new_master is not old_master and new_master.is_active
    outcomes = db.cluster.resume_migrations()
    assert [o["tablet"] for o in outcomes] == [tablet_id]
    assert outcomes[0]["outcome"] in ("completed", "aborted")
    db.cluster.heartbeat()
    assert check_single_owner(db) == []
    # The record is gone either way: resume again is a no-op.
    assert db.cluster.resume_migrations() == []
    client = db.client(db.cluster.machines[1])
    for i, key in enumerate(keys):
        assert client.get(TABLE, key, GROUP) == {"body": f"v{i}".encode()}


def test_gate_off_uses_offline_move(schema, small_config):
    db = LogBase(n_nodes=3, config=small_config)
    db.create_table(schema, tablets_per_server=1)
    keys = [str(k).zfill(12).encode() for k in range(0, 2_000_000_000, 53_000_017)]
    for i, key in enumerate(keys):
        db.put(TABLE, key, {GROUP: {"body": f"v{i}".encode()}})
    assignments = db.cluster.master.catalog.assignments
    tablet_id = sorted(assignments)[0]
    target = next(
        s.name for s in db.cluster.servers if s.name != assignments[tablet_id]
    )
    db.cluster.migrate_tablet(tablet_id, target)  # master.move_tablet path
    assert assignments[tablet_id] == target
    with pytest.raises(ValueError):
        db.cluster.split_tablet(tablet_id)
    assert db.cluster.balance() == []
    counters = db.cluster.total_counters()
    assert counters.get("migration.started", 0) == 0
