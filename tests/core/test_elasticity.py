"""Elastic scaling tests (§1 desiderata: scale out and back on demand)."""

import pytest

from repro import ColumnGroup, LogBase, LogBaseConfig, TableSchema
from repro.errors import ServerDownError


@pytest.fixture
def loaded_db(schema, small_config):
    db = LogBase(n_nodes=3, config=small_config)
    db.create_table(schema, tablets_per_server=2)
    keys = [str(k).zfill(12).encode() for k in range(0, 2_000_000_000, 53_000_017)]
    for i, key in enumerate(keys):
        db.put("events", key, {"payload": {"body": f"v{i}".encode()}})
    return db, keys


def test_move_tablet_preserves_data(loaded_db):
    db, keys = loaded_db
    master = db.cluster.master
    tablet = master.tablets("events")[0]
    tablet_id = str(tablet.tablet_id)
    old_owner = master.locate("events", tablet.key_range.start or b"0")[0]
    new_owner = next(s.name for s in db.cluster.servers if s.name != old_owner)
    master.move_tablet(tablet_id, new_owner)
    assert master.locate("events", tablet.key_range.start or b"0")[0] == new_owner
    client = db.client(db.cluster.machines[1])
    for i, key in enumerate(keys):
        assert client.get("events", key, "payload") == {"body": f"v{i}".encode()}


def test_move_to_self_is_noop(loaded_db):
    db, _ = loaded_db
    master = db.cluster.master
    tablet = master.tablets("events")[0]
    owner = master.locate("events", tablet.key_range.start or b"0")[0]
    report = master.move_tablet(str(tablet.tablet_id), owner)
    assert report.records_scanned == 0


def test_scale_out_rebalances_tablets(loaded_db):
    db, keys = loaded_db
    new_server = db.cluster.add_node()
    master = db.cluster.master
    owners = [
        master.locate("events", t.key_range.start or b"0")[0]
        for t in master.tablets("events")
    ]
    # The new server took a fair share (6 tablets over 4 servers -> >= 1).
    assert new_server.name in owners
    counts = {name: owners.count(name) for name in set(owners)}
    assert max(counts.values()) - min(counts.values()) <= 1
    # All data survived the moves.
    client = db.client(db.cluster.machines[0])
    client.invalidate_cache()
    for i, key in enumerate(keys):
        assert client.get("events", key, "payload") == {"body": f"v{i}".encode()}


def test_new_node_serves_writes(loaded_db):
    db, _ = loaded_db
    new_server = db.cluster.add_node()
    master = db.cluster.master
    moved = next(
        t for t in master.tablets("events")
        if master.locate("events", t.key_range.start or b"0")[0] == new_server.name
    )
    key = moved.key_range.start or b"000000000001"
    client = db.client(db.cluster.machines[0])
    client.put("events", key, {"payload": {"body": b"on-new-node"}})
    # The new server owns the tablet and served the write.
    assert new_server.read("events", key, "payload") is not None
    assert client.get("events", key, "payload") == {"body": b"on-new-node"}


def test_scale_back_decommission(loaded_db):
    db, keys = loaded_db
    victim = db.cluster.servers[0].name
    db.cluster.remove_node(victim)
    master = db.cluster.master
    assert victim not in master.live_servers()
    owners = {
        master.locate("events", t.key_range.start or b"0")[0]
        for t in master.tablets("events")
    }
    assert victim not in owners
    client = db.client(db.cluster.machines[1])
    client.invalidate_cache()
    for i, key in enumerate(keys):
        assert client.get("events", key, "payload") == {"body": f"v{i}".encode()}


def test_cannot_decommission_last_server(schema):
    db = LogBase(n_nodes=1, config=LogBaseConfig(replication=1))
    db.create_table(schema)
    db.put("events", b"000000000001", {"payload": {"body": b"v"}})
    with pytest.raises(ServerDownError):
        db.cluster.master.decommission(db.cluster.servers[0].name)


def test_rebalance_idempotent(loaded_db):
    db, _ = loaded_db
    assert db.cluster.master.rebalance() == {}  # already balanced
    db.cluster.add_node(rebalance=False)
    first = db.cluster.master.rebalance()
    assert first  # something moved
    assert db.cluster.master.rebalance() == {}  # now stable


def test_scale_out_after_writes_keeps_versions(loaded_db):
    """Historical versions survive migration (the split replays every
    committed version, not just the latest)."""
    db, keys = loaded_db
    key = keys[0]
    first_ts = db.put("events", key, {"payload": {"body": b"v-new"}})
    db.put("events", key, {"payload": {"body": b"v-newest"}})
    db.cluster.add_node()
    client = db.client(db.cluster.machines[0])
    client.invalidate_cache()
    assert client.get("events", key, "payload", as_of=first_ts) == {"body": b"v-new"}
    assert client.get("events", key, "payload") == {"body": b"v-newest"}