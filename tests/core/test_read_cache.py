"""Unit tests for the read buffer (§3.6.2)."""

from repro.core.read_cache import ReadCache
from repro.util.lru import FIFOPolicy


def test_miss_then_hit():
    cache = ReadCache(1 << 16)
    assert cache.get("t", "g", b"k") is None
    cache.put("t", "g", b"k", 5, b"value")
    assert cache.get("t", "g", b"k") == (5, b"value")
    assert cache.hits == 1 and cache.misses == 1


def test_newer_version_replaces():
    cache = ReadCache(1 << 16)
    cache.put("t", "g", b"k", 1, b"old")
    cache.put("t", "g", b"k", 2, b"new")
    assert cache.get("t", "g", b"k") == (2, b"new")


def test_stale_version_does_not_replace():
    cache = ReadCache(1 << 16)
    cache.put("t", "g", b"k", 9, b"current")
    cache.put("t", "g", b"k", 3, b"stale")
    assert cache.get("t", "g", b"k") == (9, b"current")


def test_invalidate_on_delete():
    cache = ReadCache(1 << 16)
    cache.put("t", "g", b"k", 1, b"v")
    cache.invalidate("t", "g", b"k")
    assert cache.get("t", "g", b"k") is None


def test_groups_are_isolated():
    cache = ReadCache(1 << 16)
    cache.put("t", "g1", b"k", 1, b"one")
    cache.put("t", "g2", b"k", 1, b"two")
    assert cache.get("t", "g1", b"k")[1] == b"one"
    assert cache.get("t", "g2", b"k")[1] == b"two"


def test_byte_capacity_evicts():
    cache = ReadCache(capacity_bytes=3 * (100 + 24))
    for i in range(5):
        cache.put("t", "g", f"k{i}".encode(), 1, b"x" * 100)
    assert len(cache) <= 3
    assert cache.bytes_used <= 3 * 124


def test_pluggable_policy():
    cache = ReadCache(capacity_bytes=2 * 124, policy=FIFOPolicy())
    cache.put("t", "g", b"k0", 1, b"x" * 100)
    cache.put("t", "g", b"k1", 1, b"x" * 100)
    cache.get("t", "g", b"k0")  # FIFO ignores recency
    cache.put("t", "g", b"k2", 1, b"x" * 100)
    assert cache.get("t", "g", b"k0") is None


def test_clear_simulates_crash():
    cache = ReadCache(1 << 16)
    cache.put("t", "g", b"k", 1, b"v")
    cache.clear()
    assert len(cache) == 0
