"""Unit tests for schemas, column groups, and the group-value codec."""

import pytest

from repro.core.schema import (
    ColumnGroup,
    TableSchema,
    decode_group_value,
    encode_group_value,
)


def test_group_requires_name():
    with pytest.raises(ValueError):
        ColumnGroup("", ("a",))


def test_group_rejects_duplicate_columns():
    with pytest.raises(ValueError):
        ColumnGroup("g", ("a", "a"))


def test_schema_maps_columns_to_groups():
    schema = TableSchema(
        "t", "id", (ColumnGroup("g1", ("a", "b")), ColumnGroup("g2", ("c",)))
    )
    assert schema.group_of_column("a").name == "g1"
    assert schema.group_of_column("c").name == "g2"
    assert schema.group_names == ["g1", "g2"]


def test_schema_rejects_column_in_two_groups():
    with pytest.raises(ValueError):
        TableSchema("t", "id", (ColumnGroup("g1", ("a",)), ColumnGroup("g2", ("a",))))


def test_schema_rejects_key_in_group():
    with pytest.raises(ValueError):
        TableSchema("t", "id", (ColumnGroup("g", ("id",)),))


def test_unknown_group_lookup():
    schema = TableSchema("t", "id", (ColumnGroup("g", ("a",)),))
    with pytest.raises(KeyError):
        schema.group("missing")
    with pytest.raises(KeyError):
        schema.group_of_column("missing")


def test_groups_for_columns_minimal_cover():
    schema = TableSchema(
        "t", "id", (ColumnGroup("g1", ("a", "b")), ColumnGroup("g2", ("c",)))
    )
    covering = schema.groups_for_columns({"a"})
    assert [g.name for g in covering] == ["g1"]
    covering = schema.groups_for_columns({"a", "c"})
    assert [g.name for g in covering] == ["g1", "g2"]


def test_group_value_roundtrip():
    values = {"title": b"LogBase", "cost": b"42", "empty": b""}
    assert decode_group_value(encode_group_value(values)) == values


def test_group_value_empty_roundtrip():
    assert decode_group_value(encode_group_value({})) == {}


def test_group_value_deterministic_order():
    a = encode_group_value({"x": b"1", "y": b"2"})
    b = encode_group_value({"y": b"2", "x": b"1"})
    assert a == b


def test_group_value_binary_safe():
    values = {"blob": bytes(range(256))}
    assert decode_group_value(encode_group_value(values)) == values
