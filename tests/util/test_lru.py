"""Unit tests for the bounded cache and replacement policies."""

import pytest

from repro.util.lru import FIFOPolicy, LRUCache, LRUPolicy


def test_requires_some_capacity():
    with pytest.raises(ValueError):
        LRUCache()


def test_byte_capacity_requires_sizer():
    with pytest.raises(ValueError):
        LRUCache(byte_capacity=100)


def test_basic_put_get():
    cache = LRUCache(capacity=2)
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.hits == 1
    assert cache.get("b") is None
    assert cache.misses == 1


def test_lru_evicts_least_recent():
    cache = LRUCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")          # a is now most recent
    cache.put("c", 3)       # evicts b
    assert "b" not in cache
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.evictions == 1


def test_fifo_ignores_access_order():
    cache = LRUCache(capacity=2, policy=FIFOPolicy())
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")          # does not protect a under FIFO
    cache.put("c", 3)       # evicts a (oldest inserted)
    assert "a" not in cache
    assert "b" in cache


def test_byte_capacity_eviction():
    cache = LRUCache(byte_capacity=10, sizer=len)
    cache.put("a", b"xxxx")
    cache.put("b", b"yyyy")
    assert cache.bytes_used == 8
    cache.put("c", b"zzzz")  # 12 bytes total -> evict until <= 10
    assert cache.bytes_used <= 10
    assert "a" not in cache


def test_replace_updates_bytes():
    cache = LRUCache(byte_capacity=100, sizer=len)
    cache.put("a", b"xx")
    cache.put("a", b"xxxxxx")
    assert cache.bytes_used == 6
    assert len(cache) == 1


def test_remove_and_clear():
    cache = LRUCache(capacity=4)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.remove("a")
    assert "a" not in cache
    cache.clear()
    assert len(cache) == 0


def test_peek_does_not_count():
    cache = LRUCache(capacity=2)
    cache.put("a", 1)
    assert cache.peek("a") == 1
    assert cache.hits == 0 and cache.misses == 0


def test_oversized_value_evicts_itself_only_if_over():
    cache = LRUCache(byte_capacity=3, sizer=len)
    cache.put("big", b"xxxxxx")
    # A single value larger than capacity cannot be kept.
    assert len(cache) == 0


def test_policy_victim_order_after_removal():
    policy = LRUPolicy()
    policy.on_insert("a")
    policy.on_insert("b")
    policy.on_remove("a")
    assert policy.victim() == "b"
