"""Unit tests for the uvarint codec."""

import pytest

from repro.util.varint import decode_uvarint, encode_uvarint


def test_zero_is_single_byte():
    assert encode_uvarint(0) == b"\x00"


def test_small_values_one_byte():
    for value in (1, 42, 127):
        assert len(encode_uvarint(value)) == 1


def test_128_needs_two_bytes():
    assert len(encode_uvarint(128)) == 2


def test_roundtrip_boundaries():
    for value in (0, 1, 127, 128, 16383, 16384, 2**32 - 1, 2**63 - 1):
        encoded = encode_uvarint(value)
        decoded, offset = decode_uvarint(encoded)
        assert decoded == value
        assert offset == len(encoded)


def test_decode_at_offset():
    buf = b"\xff" + encode_uvarint(300)
    value, offset = decode_uvarint(buf, 1)
    assert value == 300
    assert offset == len(buf)


def test_negative_rejected():
    with pytest.raises(ValueError):
        encode_uvarint(-1)


def test_truncated_raises():
    encoded = encode_uvarint(2**40)
    with pytest.raises(ValueError):
        decode_uvarint(encoded[:-1])


def test_overlong_rejected():
    with pytest.raises(ValueError):
        decode_uvarint(b"\x80" * 11 + b"\x01")


def test_consecutive_varints_parse_in_sequence():
    buf = encode_uvarint(7) + encode_uvarint(70000) + encode_uvarint(0)
    v1, pos = decode_uvarint(buf)
    v2, pos = decode_uvarint(buf, pos)
    v3, pos = decode_uvarint(buf, pos)
    assert (v1, v2, v3) == (7, 70000, 0)
    assert pos == len(buf)
