"""Unit tests for the Bloom filter."""

import pytest

from repro.util.bloom import BloomFilter


def test_rejects_bad_parameters():
    with pytest.raises(ValueError):
        BloomFilter(0)
    with pytest.raises(ValueError):
        BloomFilter(10, fp_rate=1.5)


def test_no_false_negatives():
    filt = BloomFilter(1000, fp_rate=0.01)
    keys = [f"key-{i}".encode() for i in range(1000)]
    for key in keys:
        filt.add(key)
    assert all(filt.might_contain(key) for key in keys)


def test_false_positive_rate_reasonable():
    filt = BloomFilter(1000, fp_rate=0.01)
    for i in range(1000):
        filt.add(f"present-{i}".encode())
    false_positives = sum(
        filt.might_contain(f"absent-{i}".encode()) for i in range(5000)
    )
    # Allow generous slack over the 1% design point.
    assert false_positives / 5000 < 0.05


def test_empty_filter_contains_nothing():
    filt = BloomFilter(100)
    assert not filt.might_contain(b"anything")


def test_len_tracks_additions():
    filt = BloomFilter(10)
    filt.add(b"a")
    filt.add(b"b")
    assert len(filt) == 2


def test_serialization_roundtrip():
    filt = BloomFilter(50, fp_rate=0.02)
    for i in range(50):
        filt.add(f"k{i}".encode())
    restored = BloomFilter.from_bytes(filt.to_bytes(), filt.num_hashes, count=50)
    assert all(restored.might_contain(f"k{i}".encode()) for i in range(50))
    assert restored.num_bits == filt.size_bytes * 8


def test_sizing_scales_with_items():
    small = BloomFilter(100)
    large = BloomFilter(10000)
    assert large.num_bits > small.num_bits
