"""Unit tests for CRC-32C."""

from repro.util.crc import crc32c


def test_empty_is_zero():
    assert crc32c(b"") == 0


def test_known_vector():
    # RFC 3720 appendix test vector: 32 zero bytes.
    assert crc32c(b"\x00" * 32) == 0x8A9136AA


def test_known_vector_ones():
    assert crc32c(b"\xff" * 32) == 0x62A8AB43


def test_known_vector_ascending():
    assert crc32c(bytes(range(32))) == 0x46DD794E


def test_incremental_matches_whole():
    data = b"the quick brown fox jumps over the lazy dog" * 3
    whole = crc32c(data)
    partial = crc32c(data[20:], crc32c(data[:20]))
    assert whole == partial


def test_detects_single_bit_flip():
    data = bytearray(b"some block payload")
    original = crc32c(bytes(data))
    data[5] ^= 0x01
    assert crc32c(bytes(data)) != original


def test_different_inputs_differ():
    assert crc32c(b"abc") != crc32c(b"abd")
