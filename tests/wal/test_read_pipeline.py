"""Tests for the log read pipeline: coalesced batch reads, scan prefetch,
block-cache interaction with the log, and write-batch routing."""

import random

import pytest

from repro import LogBase, LogBaseConfig
from repro.dfs.filesystem import DFS
from repro.wal.record import LogRecord, RecordType
from repro.wal.repository import LogRepository


def make_key(value: int) -> bytes:
    return str(value).zfill(12).encode()


def write_record(key: bytes, value: bytes, ts: int = 1) -> LogRecord:
    return LogRecord(
        record_type=RecordType.WRITE,
        table="t",
        tablet="t#0",
        key=key,
        group="g",
        timestamp=ts,
        value=value,
    )


@pytest.fixture
def tiny_block_dfs(machines):
    """DFS with 4 KiB blocks so batches straddle block boundaries."""
    return DFS(machines, replication=3, block_size=4096)


@pytest.fixture
def cached_tiny_dfs(machines):
    """Same, plus a block cache with chunks smaller than a block."""
    return DFS(
        machines,
        replication=3,
        block_size=4096,
        block_cache_bytes=1 << 20,
        block_cache_chunk=1024,
    )


def test_append_batch_straddles_block_boundary(tiny_block_dfs, machines):
    repo = LogRepository(tiny_block_dfs, machines[0], "/log", segment_size=1 << 20)
    records = [write_record(make_key(i), b"v" * 400, ts=i + 1) for i in range(30)]
    pairs = repo.append_batch(records)  # ~12 KB: spans several 4 KiB blocks
    meta = tiny_block_dfs.namenode.get_file(repo.segment_path(1))
    assert len(meta.blocks) >= 3
    for pointer, stamped in pairs:
        assert repo.read(pointer) == stamped


def test_read_many_spans_block_boundaries(cached_tiny_dfs, machines):
    repo = LogRepository(
        cached_tiny_dfs,
        machines[0],
        "/log",
        segment_size=1 << 20,
        coalesce_gap=64 * 1024,
    )
    pairs = repo.append_batch(
        [write_record(make_key(i), b"v" * 400, ts=i + 1) for i in range(30)]
    )
    pointers = [pointer for pointer, _ in pairs]
    assert repo.read_many(pointers) == [stamped for _, stamped in pairs]


@pytest.mark.parametrize("cached", [False, True])
def test_read_after_append_sees_fresh_tail(
    tiny_block_dfs, cached_tiny_dfs, machines, cached
):
    dfs = cached_tiny_dfs if cached else tiny_block_dfs
    repo = LogRepository(dfs, machines[0], "/log", segment_size=1 << 20)
    p1, r1 = repo.append(write_record(b"a", b"first"))
    assert repo.read(p1) == r1  # warms the reader (and cache, if enabled)
    p2, r2 = repo.append(write_record(b"b", b"second"))
    assert repo.read(p2) == r2  # the tail append must be visible
    assert repo.read(p1) == r1


@pytest.mark.parametrize("gap", [None, 0, 64 * 1024])
def test_read_many_preserves_input_order(dfs, machines, gap):
    repo = LogRepository(
        dfs, machines[0], "/log", segment_size=4096, coalesce_gap=gap
    )
    pairs = [
        repo.append(write_record(make_key(i), b"v" * 300, ts=i + 1))
        for i in range(40)
    ]
    assert len(repo.segments()) >= 2  # the batch crosses segments
    rng = random.Random(7)
    sample = rng.sample(pairs, len(pairs)) + [pairs[3], pairs[3]]  # duplicates too
    records = repo.read_many([pointer for pointer, _ in sample])
    assert records == [stamped for _, stamped in sample]


def test_read_many_coalesces_adjacent_records(dfs, machines):
    repo = LogRepository(
        dfs, machines[0], "/log", segment_size=1 << 20, coalesce_gap=64 * 1024
    )
    pairs = repo.append_batch(
        [write_record(make_key(i), b"v" * 100, ts=i + 1) for i in range(50)]
    )
    before = machines[0].counters.get("log.read_many.spans")
    repo.read_many([pointer for pointer, _ in pairs])
    spans = machines[0].counters.get("log.read_many.spans") - before
    assert spans == 1  # 50 adjacent records, one span read
    assert machines[0].counters.get("log.read_many.records") >= 50


@pytest.mark.parametrize("prefetch", [0, 256, 1 << 20])
def test_scan_prefetch_yields_identical_records(dfs, machines, prefetch):
    repo = LogRepository(
        dfs, machines[0], "/log", segment_size=1 << 20, scan_prefetch=prefetch
    )
    appended = [
        repo.append(write_record(make_key(i), b"v" * 120, ts=i + 1))
        for i in range(40)
    ]
    scanned = list(repo.scan_segment(1))
    assert scanned == appended
    if prefetch == 256:
        # 40 records of ~180 B through a 256 B window needs many refills.
        assert machines[0].counters.get("log.scan.prefetch_windows") > 10


def test_scan_prefetch_stops_at_torn_tail(dfs, machines):
    repo = LogRepository(
        dfs, machines[0], "/log", segment_size=1 << 20, scan_prefetch=256
    )
    appended = [repo.append(write_record(make_key(i), b"v")) for i in range(5)]
    # Simulate a crash mid-append: raw garbage after the last full frame.
    repo._current._writer.append(b"\x00\x01partial-frame-gar")
    assert list(repo.scan_segment(1)) == appended


def test_compaction_retires_segment_from_block_cache(schema):
    config = LogBaseConfig.with_read_pipeline(segment_size=16 * 1024)
    db = LogBase(n_nodes=3, config=config)
    db.create_table(schema)
    for i in range(120):
        db.put("events", make_key(i * 1000), {"payload": {"body": b"x" * 200}})
    db.scan("events", "payload", make_key(0), make_key(200_000_000))

    dfs = db.cluster.dfs
    old_blocks: dict[str, list[int]] = {}
    warmed = 0
    for server in db.cluster.servers:
        cache = dfs.block_cache_for(server.machine)
        for file_no in server.log.segments():
            path = server.log.segment_path(file_no)
            for block in dfs.namenode.get_file(path).blocks:
                old_blocks.setdefault(server.name, []).append(block.block_id)
                warmed += len(cache.cached_chunks(block.block_id))
    assert warmed > 0  # the scan really did warm the caches

    db.compact_all()

    # Every retired segment's blocks must be gone from every cache.
    live_blocks = set()
    for server in db.cluster.servers:
        for file_no in server.log.segments():
            path = server.log.segment_path(file_no)
            for block in dfs.namenode.get_file(path).blocks:
                live_blocks.add(block.block_id)
    for server in db.cluster.servers:
        cache = dfs.block_cache_for(server.machine)
        for block_id in old_blocks.get(server.name, []):
            if block_id not in live_blocks:
                assert cache.cached_chunks(block_id) == []

    # And reads still come back correct after the swap.
    assert db.get("events", make_key(1000), "payload") == {"body": b"x" * 200}


def test_write_batch_routes_each_record_once(db):
    server = db.cluster.servers[0]
    tablet = next(iter(server.tablets.values()))
    base = int(tablet.key_range.start) if tablet.key_range.start else 0
    keys = [make_key(base + i) for i in range(3)]

    calls = 0
    original = server._route

    def counting_route(table, key):
        nonlocal calls
        calls += 1
        return original(table, key)

    server._route = counting_route
    try:
        # 3 items x 2 groups = 6 records, but only 3 routing lookups.
        timestamps = server.write_batch(
            "events",
            [(key, {"payload": b"v", "meta": b"m"}) for key in keys],
        )
    finally:
        server._route = original
    assert calls == 3
    assert len(timestamps) == 3
    for key, timestamp in zip(keys, timestamps):
        result = server.read("events", key, "payload")
        assert result == (timestamp, b"v")


def test_range_scan_batched_matches_lazy(schema):
    plain = LogBase(n_nodes=3, config=LogBaseConfig(segment_size=16 * 1024))
    piped = LogBase(
        n_nodes=3, config=LogBaseConfig.with_read_pipeline(segment_size=16 * 1024)
    )
    rng = random.Random(11)
    keys = [rng.randrange(2_000_000_000) for _ in range(200)]
    for database in (plain, piped):
        database.create_table(schema)
        for i, key in enumerate(keys):
            database.put(
                "events", make_key(key), {"payload": {"body": str(i).encode()}}
            )
    lo, hi = make_key(0), make_key(2_000_000_000)
    assert plain.scan("events", "payload", lo, hi) == piped.scan(
        "events", "payload", lo, hi
    )
    assert (
        piped.cluster.total_counters().get("log.read_many.records", 0) >= 200
    )
