"""Unit tests for segment writers/readers, including torn-write handling."""

import pytest

from repro.wal.record import LogRecord, RecordType
from repro.wal.segment import LogSegmentReader, LogSegmentWriter, open_segment_reader


def record(key: bytes) -> LogRecord:
    return LogRecord(
        record_type=RecordType.WRITE,
        table="t",
        tablet="t#0",
        key=key,
        group="g",
        timestamp=1,
        value=b"v",
    )


@pytest.fixture
def segment(dfs, machines):
    writer = dfs.create("/log/segment-1", machines[0])
    return LogSegmentWriter(1, writer)


def test_append_returns_pointer(segment):
    encoded = record(b"a").encode()
    pointer = segment.append(encoded)
    assert pointer.file_no == 1
    assert pointer.offset == 0
    assert pointer.size == len(encoded)


def test_append_many_pointers_are_contiguous(segment):
    frames = [record(str(i).encode()).encode() for i in range(4)]
    pointers = segment.append_many(frames)
    offset = 0
    for pointer, frame in zip(pointers, frames):
        assert pointer.offset == offset
        offset += len(frame)


def test_read_at_and_scan(dfs, machines, segment):
    frames = [record(str(i).encode()).encode() for i in range(3)]
    pointers = segment.append_many(frames)
    reader = open_segment_reader(dfs, "/log/segment-1", 1, machines[0])
    assert reader.read_at(pointers[1]).key == b"1"
    scanned = [rec.key for _, rec in reader.scan()]
    assert scanned == [b"0", b"1", b"2"]


def test_scan_stops_at_torn_tail(dfs, machines, segment):
    segment.append(record(b"complete").encode())
    torn = record(b"torn").encode()[:10]  # simulate crash mid-append
    segment.append(torn)
    reader = open_segment_reader(dfs, "/log/segment-1", 1, machines[0])
    scanned = [rec.key for _, rec in reader.scan()]
    assert scanned == [b"complete"]


def test_scan_pointers_are_readable(dfs, machines, segment):
    segment.append_many([record(str(i).encode()).encode() for i in range(3)])
    reader = open_segment_reader(dfs, "/log/segment-1", 1, machines[0])
    for pointer, rec in list(reader.scan()):
        assert reader.read_at(pointer) == rec
