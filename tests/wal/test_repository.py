"""Unit tests for the log repository: appends, reads, segments, LSNs."""

import pytest

from repro.errors import InvalidLogPointer
from repro.wal.record import LogRecord, RecordType
from repro.wal.repository import LogRepository


def write_record(key: bytes, value: bytes, ts: int = 1) -> LogRecord:
    return LogRecord(
        record_type=RecordType.WRITE,
        table="t",
        tablet="t#0",
        key=key,
        group="g",
        timestamp=ts,
        value=value,
    )


@pytest.fixture
def repo(dfs, machines):
    return LogRepository(dfs, machines[0], "/logbase/ts-0/log", segment_size=4096)


def test_append_assigns_increasing_lsns(repo):
    _, r1 = repo.append(write_record(b"a", b"1"))
    _, r2 = repo.append(write_record(b"b", b"2"))
    assert r2.lsn == r1.lsn + 1


def test_append_then_read_back(repo):
    pointer, stamped = repo.append(write_record(b"key", b"value"))
    read = repo.read(pointer)
    assert read == stamped


def test_batch_append_is_one_dfs_write(repo, machines):
    records = [write_record(str(i).encode(), b"v") for i in range(10)]
    messages_before = machines[0].counters.get("net.messages")
    pairs = repo.append_batch(records)
    messages_after = machines[0].counters.get("net.messages")
    # One replication round for the whole batch (group commit).
    assert messages_after - messages_before == 1
    for pointer, stamped in pairs:
        assert repo.read(pointer) == stamped


def test_segments_roll_at_size(repo):
    big_value = b"x" * 1500
    for i in range(6):
        repo.append(write_record(str(i).encode(), big_value))
    assert len(repo.segments()) >= 2


def test_scan_all_returns_in_order(repo):
    appended = [repo.append(write_record(str(i).encode(), b"v"))[1] for i in range(20)]
    scanned = [record for _, record in repo.scan_all()]
    assert scanned == appended


def test_scan_from_start_pointer(repo):
    for i in range(5):
        repo.append(write_record(str(i).encode(), b"v"))
    marker = repo.end_pointer()
    repo.append(write_record(b"after", b"v"))
    tail = [record.key for _, record in repo.scan_all(start=marker)]
    assert tail == [b"after"]


def test_end_pointer_after_roll(repo):
    repo.append(write_record(b"k", b"v"))
    repo.roll()
    marker = repo.end_pointer()
    repo.append(write_record(b"post-roll", b"v"))
    tail = [record.key for _, record in repo.scan_all(start=marker)]
    assert tail == [b"post-roll"]


def test_invalid_pointer_rejected(repo):
    from repro.wal.record import LogPointer

    with pytest.raises(InvalidLogPointer):
        repo.read(LogPointer(99, 0, 10))


def test_total_bytes_grows(repo):
    before = repo.total_bytes()
    repo.append(write_record(b"k", b"v" * 100))
    assert repo.total_bytes() > before


def test_reattach_sees_existing_segments(repo, dfs, machines):
    for i in range(3):
        repo.append(write_record(str(i).encode(), b"v"))
    attached = LogRepository.reattach(dfs, machines[1], "/logbase/ts-0/log")
    assert attached.segments() == repo.segments()
    scanned = [record.key for _, record in attached.scan_all()]
    assert scanned == [b"0", b"1", b"2"]


def test_set_next_lsn_only_forward(repo):
    repo.set_next_lsn(100)
    assert repo.next_lsn == 100
    repo.set_next_lsn(50)
    assert repo.next_lsn == 100


def test_empty_batch_is_noop(repo):
    assert repo.append_batch([]) == []
