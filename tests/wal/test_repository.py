"""Unit tests for the log repository: appends, reads, segments, LSNs."""

import pytest

from repro.errors import InvalidLogPointer
from repro.sim.failure import CP_META_PERSIST, FaultPlan, fault_plan
from repro.wal.compaction import CompactionJob
from repro.wal.record import LogRecord, RecordType
from repro.wal.repository import LogRepository


def write_record(key: bytes, value: bytes, ts: int = 1) -> LogRecord:
    return LogRecord(
        record_type=RecordType.WRITE,
        table="t",
        tablet="t#0",
        key=key,
        group="g",
        timestamp=ts,
        value=value,
    )


@pytest.fixture
def repo(dfs, machines):
    return LogRepository(dfs, machines[0], "/logbase/ts-0/log", segment_size=4096)


def test_append_assigns_increasing_lsns(repo):
    _, r1 = repo.append(write_record(b"a", b"1"))
    _, r2 = repo.append(write_record(b"b", b"2"))
    assert r2.lsn == r1.lsn + 1


def test_append_then_read_back(repo):
    pointer, stamped = repo.append(write_record(b"key", b"value"))
    read = repo.read(pointer)
    assert read == stamped


def test_batch_append_is_one_dfs_write(repo, machines):
    records = [write_record(str(i).encode(), b"v") for i in range(10)]
    messages_before = machines[0].counters.get("net.messages")
    pairs = repo.append_batch(records)
    messages_after = machines[0].counters.get("net.messages")
    # One replication round for the whole batch (group commit).
    assert messages_after - messages_before == 1
    for pointer, stamped in pairs:
        assert repo.read(pointer) == stamped


def test_segments_roll_at_size(repo):
    big_value = b"x" * 1500
    for i in range(6):
        repo.append(write_record(str(i).encode(), big_value))
    assert len(repo.segments()) >= 2


def test_scan_all_returns_in_order(repo):
    appended = [repo.append(write_record(str(i).encode(), b"v"))[1] for i in range(20)]
    scanned = [record for _, record in repo.scan_all()]
    assert scanned == appended


def test_scan_from_start_pointer(repo):
    for i in range(5):
        repo.append(write_record(str(i).encode(), b"v"))
    marker = repo.end_pointer()
    repo.append(write_record(b"after", b"v"))
    tail = [record.key for _, record in repo.scan_all(start=marker)]
    assert tail == [b"after"]


def test_end_pointer_after_roll(repo):
    repo.append(write_record(b"k", b"v"))
    repo.roll()
    marker = repo.end_pointer()
    repo.append(write_record(b"post-roll", b"v"))
    tail = [record.key for _, record in repo.scan_all(start=marker)]
    assert tail == [b"post-roll"]


def test_invalid_pointer_rejected(repo):
    from repro.wal.record import LogPointer

    with pytest.raises(InvalidLogPointer):
        repo.read(LogPointer(99, 0, 10))


def test_total_bytes_grows(repo):
    before = repo.total_bytes()
    repo.append(write_record(b"k", b"v" * 100))
    assert repo.total_bytes() > before


def test_reattach_sees_existing_segments(repo, dfs, machines):
    for i in range(3):
        repo.append(write_record(str(i).encode(), b"v"))
    attached = LogRepository.reattach(dfs, machines[1], "/logbase/ts-0/log")
    assert attached.segments() == repo.segments()
    scanned = [record.key for _, record in attached.scan_all()]
    assert scanned == [b"0", b"1", b"2"]


def test_set_next_lsn_only_forward(repo):
    repo.set_next_lsn(100)
    assert repo.next_lsn == 100
    repo.set_next_lsn(50)
    assert repo.next_lsn == 100


def test_empty_batch_is_noop(repo):
    assert repo.append_batch([]) == []


# -- oversized batches ------------------------------------------------------


def test_append_batch_splits_across_rolls(repo, machines):
    """A batch bigger than one segment must split across rolls instead of
    blowing a single segment past the threshold — one DFS round trip per
    resulting segment."""
    records = [write_record(str(i).encode(), b"x" * 1000) for i in range(8)]
    before = machines[0].counters.get("net.messages")
    pairs = repo.append_batch(records)
    segments_touched = len(repo.segments())
    assert segments_touched >= 2
    for file_no in repo.segments():
        assert repo.segment_bytes(file_no) <= 4096
    assert machines[0].counters.get("net.messages") - before == segments_touched
    for pointer, stamped in pairs:
        assert repo.read(pointer) == stamped
    scanned = [record for _, record in repo.scan_all()]
    assert scanned == [stamped for _, stamped in pairs]


def test_append_batch_single_record_larger_than_segment(repo):
    pairs = repo.append_batch(
        [write_record(b"big", b"x" * 8000), write_record(b"small", b"v")]
    )
    # The oversized record goes alone; the next record opens a new segment.
    assert len(repo.segments()) == 2
    for pointer, stamped in pairs:
        assert repo.read(pointer) == stamped


# -- atomic metadata persistence --------------------------------------------


def _crash(_ctx):
    raise RuntimeError("crashed mid-persist")


def test_meta_swap_crash_leaves_complete_map(repo, dfs, machines):
    """Regression: the old code deleted ``segments.meta`` before
    re-creating it, so a crash in between lost the slim map and reads of
    sorted segments came back without table/group.  The swap now goes
    through a temp file; a crash after the temp is complete but before
    the rename must still let ``reattach`` recover the new map."""
    repo.append(write_record(b"k", b"payload"))
    plan = FaultPlan()
    plan.add(CP_META_PERSIST, _crash, machine=machines[0].name)
    with fault_plan(plan):
        with pytest.raises(RuntimeError):
            CompactionJob(repo).run()
    attached = LogRepository.reattach(dfs, machines[1], "/logbase/ts-0/log")
    (file_no,) = attached.segments()
    assert attached.segment_scope(file_no) == ("t", "g")
    (record,) = [record for _, record in attached.scan_segment(file_no)]
    assert record.table == "t" and record.group == "g"
    assert record.value == b"payload"


def test_reattach_ignores_torn_meta_tmp(repo, dfs, machines):
    """An unparseable temp file is a crash mid-write: reattach must fall
    back to the old complete map it never replaced."""
    repo.append(write_record(b"k", b"v"))
    CompactionJob(repo).run()
    expected = {f: repo.segment_scope(f) for f in repo.segments()}
    writer = dfs.create("/logbase/ts-0/log/segments.meta.tmp", machines[0])
    writer.append(b'{"torn')
    writer.close()
    attached = LogRepository.reattach(dfs, machines[1], "/logbase/ts-0/log")
    assert {f: attached.segment_scope(f) for f in attached.segments()} == expected


def test_meta_swap_cleans_up_tmp(repo, dfs):
    repo.append(write_record(b"k", b"v"))
    CompactionJob(repo).run()
    assert not dfs.exists("/logbase/ts-0/log/segments.meta.tmp")
    assert dfs.exists("/logbase/ts-0/log/segments.meta")
