"""Unit tests for the log record codec."""

import pytest

from repro.errors import CorruptLogRecord
from repro.wal.record import (
    LogPointer,
    LogRecord,
    RecordType,
    abort_record,
    commit_record,
)


def sample_record(**overrides) -> LogRecord:
    fields = dict(
        record_type=RecordType.WRITE,
        lsn=42,
        txn_id=7,
        table="events",
        tablet="events#0",
        key=b"000000000123",
        group="payload",
        timestamp=99,
        value=b"the value",
    )
    fields.update(overrides)
    return LogRecord(**fields)


def test_roundtrip_full():
    record = sample_record()
    decoded, offset = LogRecord.decode(record.encode())
    assert decoded == record
    assert offset == record.encoded_size()


def test_roundtrip_null_value():
    record = sample_record(record_type=RecordType.INVALIDATE, value=None)
    decoded, _ = LogRecord.decode(record.encode())
    assert decoded.value is None
    assert decoded.is_delete


def test_roundtrip_empty_key_and_value():
    record = sample_record(key=b"", value=b"")
    decoded, _ = LogRecord.decode(record.encode())
    assert decoded.key == b"" and decoded.value == b""


def test_slim_layout_omits_table_metadata():
    record = sample_record()
    slim = record.encode(slim=True)
    full = record.encode()
    assert len(slim) < len(full)
    decoded, _ = LogRecord.decode(slim)
    assert decoded.table == "" and decoded.group == ""
    assert decoded.key == record.key and decoded.value == record.value


def test_checksum_detects_corruption():
    encoded = bytearray(sample_record().encode())
    encoded[-1] ^= 0xFF
    with pytest.raises(CorruptLogRecord):
        LogRecord.decode(bytes(encoded))


def test_truncated_header_rejected():
    encoded = sample_record().encode()
    with pytest.raises(CorruptLogRecord):
        LogRecord.decode(encoded[:4])


def test_truncated_body_rejected():
    encoded = sample_record().encode()
    with pytest.raises(CorruptLogRecord):
        LogRecord.decode(encoded[: len(encoded) - 3])


def test_multiple_records_in_buffer():
    r1, r2 = sample_record(lsn=1), sample_record(lsn=2, key=b"other")
    buf = r1.encode() + r2.encode()
    d1, pos = LogRecord.decode(buf)
    d2, pos = LogRecord.decode(buf, pos)
    assert (d1.lsn, d2.lsn) == (1, 2)
    assert pos == len(buf)


def test_with_lsn_replaces_only_lsn():
    record = sample_record(lsn=0)
    stamped = record.with_lsn(77)
    assert stamped.lsn == 77
    assert stamped.key == record.key and stamped.value == record.value


def test_commit_record_shape():
    record = commit_record(txn_id=5, commit_ts=123)
    assert record.record_type is RecordType.COMMIT
    assert record.txn_id == 5 and record.timestamp == 123
    assert record.value is None


def test_abort_record_shape():
    record = abort_record(9)
    assert record.record_type is RecordType.ABORT
    assert record.txn_id == 9


def test_pointer_ordering():
    assert LogPointer(1, 100, 10) < LogPointer(1, 200, 10)
    assert LogPointer(1, 900, 10) < LogPointer(2, 0, 10)


def test_unicode_table_names_roundtrip():
    record = sample_record(table="événements", group="payload-β")
    decoded, _ = LogRecord.decode(record.encode())
    assert decoded.table == "événements" and decoded.group == "payload-β"
