"""Unit tests for the size-tiered compaction planner."""

import pytest

from repro.wal.compaction import CompactionJob
from repro.wal.planner import CompactionPlanner
from repro.wal.record import LogRecord, RecordType
from repro.wal.repository import LogRepository


def write(key: bytes, ts: int, value: bytes, *, table="t", group="g") -> LogRecord:
    return LogRecord(
        record_type=RecordType.WRITE,
        txn_id=0,
        table=table,
        tablet=f"{table}#0",
        key=key,
        group=group,
        timestamp=ts,
        value=value,
    )


@pytest.fixture
def repo(dfs, machines):
    return LogRepository(dfs, machines[0], "/logbase/ts-0/log", segment_size=4096)


def fill_segments(repo, n, *, key_prefix=b"k", start_ts=1):
    """Append enough records to roll ``n`` unsorted segments."""
    ts = start_ts
    while len(repo.segments()) < n:
        repo.append(write(key_prefix + b"%06d" % ts, ts, b"x" * 256))
        ts += 1
    return ts


def make_run(repo, keys_ts, *, table="t", group="g"):
    """Write one sorted run directly (planner-visible scope metadata)."""
    segment = repo.create_sorted_segment(table, group)
    for key, ts in keys_ts:
        segment.append(write(key, ts, b"v", table=table, group=group).encode(slim=True))
    segment.close()
    repo.persist_meta()
    return segment.file_no


def test_unsorted_tail_always_planned(repo):
    fill_segments(repo, 3)
    plans = CompactionPlanner(repo).plan()
    assert len(plans) == 1
    assert plans[0].kind == "tail"
    assert plans[0].inputs == tuple(repo.segments())
    assert plans[0].scope is None


def test_no_segments_no_plans(repo):
    assert CompactionPlanner(repo).plan() == []


def test_sorted_runs_below_fanout_left_alone(repo):
    for i in range(3):
        make_run(repo, [(b"a%d" % i, i + 1)])
    plans = CompactionPlanner(repo, tier_fanout=4).plan()
    assert plans == []


def test_full_tier_becomes_merge_plan(repo):
    runs = [make_run(repo, [(b"a%d" % i, i + 1)]) for i in range(4)]
    plans = CompactionPlanner(repo, tier_fanout=4).plan()
    assert len(plans) == 1
    assert plans[0].kind == "merge"
    assert plans[0].scope == ("t", "g")
    assert plans[0].inputs == tuple(sorted(runs))


def test_dissimilar_sizes_split_tiers(repo):
    # Two small runs and two runs ~100x bigger: neither size tier
    # reaches the fanout, so nothing merges.
    small = [make_run(repo, [(b"s%d" % i, i + 1)]) for i in range(2)]
    big = [
        make_run(repo, [(b"b%06d" % (100 * i + j), 100 * i + j + 10) for j in range(80)])
        for i in range(2)
    ]
    plans = CompactionPlanner(repo, tier_fanout=2).plan()
    # The two small runs form one full tier, the two big ones another.
    assert len(plans) == 2
    scopes = {plan.inputs for plan in plans}
    assert tuple(sorted(small)) in scopes
    assert tuple(sorted(big)) in scopes


def test_scopes_plan_independently(repo):
    for i in range(4):
        make_run(repo, [(b"a%d" % i, i + 1)], group="g1")
    make_run(repo, [(b"b", 50)], group="g2")
    plans = CompactionPlanner(repo, tier_fanout=4).plan()
    assert len(plans) == 1
    assert plans[0].scope == ("t", "g1")


def test_tail_budget_defers_newest_segments(repo):
    fill_segments(repo, 4)
    sizes = {f: repo.segment_bytes(f) for f in repo.segments()}
    budget = sizes[repo.segments()[0]] + sizes[repo.segments()[1]]
    plans = CompactionPlanner(repo, max_input_bytes=budget).plan()
    assert len(plans) == 1
    assert plans[0].kind == "tail"
    # Oldest two under the budget; the newer tail is deferred.
    assert plans[0].inputs == tuple(repo.segments()[:2])
    assert plans[0].input_bytes <= budget


def test_tail_budget_always_takes_at_least_one(repo):
    fill_segments(repo, 2)
    plans = CompactionPlanner(repo, max_input_bytes=1).plan()
    assert len(plans) == 1
    assert len(plans[0].inputs) == 1


def test_merge_budget_caps_inputs_but_keeps_two(repo):
    for i in range(4):
        make_run(repo, [(b"a%d" % i, i + 1)])
    plans = CompactionPlanner(repo, tier_fanout=4, max_input_bytes=1).plan()
    assert len(plans) == 1
    assert plans[0].kind == "merge"
    assert len(plans[0].inputs) == 2


def test_planner_sees_monolithic_output_as_runs(repo):
    for key, ts in ((b"a", 1), (b"b", 2), (b"c", 3)):
        repo.append(write(key, ts, b"v"))
    CompactionJob(repo).run()
    plans = CompactionPlanner(repo, tier_fanout=2).plan()
    # One sorted run, no unsorted tail: below fanout, nothing to do.
    assert plans == []


def test_fanout_validation():
    with pytest.raises(ValueError):
        CompactionPlanner(None, tier_fanout=1)
