"""Unit tests for the commit coordinator: leader/follower grouping, one
DFS round trip per group, ack pipelining, and crash semantics."""

import pytest

from repro.errors import ServerDownError
from repro.sim.failure import CP_LOG_APPEND, FaultPlan, fault_plan
from repro.sim.metrics import (
    COMMIT_ACKS_DEFERRED,
    COMMIT_GROUP_FANIN,
    COMMIT_GROUPS,
    DFS_APPEND_ROUND_TRIPS,
    REGISTRY,
)
from repro.wal.group_commit import CommitCoordinator
from repro.wal.record import LogRecord, RecordType
from repro.wal.repository import LogRepository


def write_record(key: bytes, value: bytes = b"v", ts: int = 1) -> LogRecord:
    return LogRecord(
        record_type=RecordType.WRITE,
        table="t",
        tablet="t#0",
        key=key,
        group="g",
        timestamp=ts,
        value=value,
    )


@pytest.fixture
def repo(dfs, machines):
    return LogRepository(dfs, machines[0], "/logbase/ts-0/log", segment_size=1 << 20)


@pytest.fixture
def coordinator(repo, machines):
    return CommitCoordinator(repo, machines[0], max_delay=0.002, max_records=16)


def test_metric_names_are_registered():
    for name in (
        "commit.groups",
        "commit.group_fanin",
        "commit.acks_deferred",
        "dfs.append_round_trips",
        "commit.flush",
        "commit.fanin",
        "latency.commit",
    ):
        assert REGISTRY.known(name), name


def test_append_delegates_to_append_batch(dfs, machines):
    """The satellite refactor: a single append is a one-record batch with
    identical pointer, LSN and simulated cost."""
    repo_a = LogRepository(dfs, machines[0], "/logbase/a/log", segment_size=1 << 20)
    repo_b = LogRepository(dfs, machines[1], "/logbase/b/log", segment_size=1 << 20)
    before_a = machines[0].clock.now
    before_b = machines[1].clock.now
    pointer_a, stamped_a = repo_a.append(write_record(b"k", b"payload"))
    [(pointer_b, stamped_b)] = repo_b.append_batch([write_record(b"k", b"payload")])
    assert pointer_a.offset == pointer_b.offset
    assert pointer_a.size == pointer_b.size
    assert stamped_a.lsn == stamped_b.lsn
    assert machines[0].clock.now - before_a == pytest.approx(
        machines[1].clock.now - before_b
    )
    assert repo_a.read(pointer_a) == stamped_a


def test_single_submission_flushes_on_drain(coordinator, repo):
    future = coordinator.submit(0.0, [write_record(b"a")])
    assert not future.done
    assert coordinator.pending == 1
    [resolved] = coordinator.drain()
    assert resolved is future
    assert future.acked
    (pointer, stamped) = future.result()[0]
    assert repo.read(pointer) == stamped


def test_followers_join_one_round_trip(coordinator, machines):
    before = machines[0].counters.get(DFS_APPEND_ROUND_TRIPS)
    futures = [
        coordinator.submit(0.0005 * i, [write_record(b"k%d" % i)]) for i in range(4)
    ]
    coordinator.drain()
    assert all(f.acked for f in futures)
    # One replication pipeline for the whole group.
    assert machines[0].counters.get(DFS_APPEND_ROUND_TRIPS) - before == 1
    assert machines[0].counters.get(COMMIT_GROUPS) == 1
    assert machines[0].counters.get(COMMIT_GROUP_FANIN) == 4
    # Each member got exactly its own records back.
    for i, future in enumerate(futures):
        assert [r.key for _, r in future.result()] == [b"k%d" % i]


def test_full_budget_seals_immediately(repo, machines):
    coordinator = CommitCoordinator(
        repo, machines[0], max_delay=0.5, max_records=2
    )
    coordinator.submit(0.0, [write_record(b"a")])
    coordinator.submit(0.0001, [write_record(b"b")])
    # Sealed at the filling arrival, not at the end of the leader window.
    assert coordinator.next_due() == pytest.approx(0.0001)
    resolved = coordinator.run_due(0.0001)
    assert len(resolved) == 2


def test_late_arrival_leads_new_group(coordinator, machines):
    coordinator.submit(0.0, [write_record(b"a")])
    coordinator.submit(0.01, [write_record(b"b")])  # past the 2 ms window
    coordinator.drain()
    assert machines[0].counters.get(COMMIT_GROUPS) == 2


def test_run_due_respects_leader_window(coordinator):
    future = coordinator.submit(0.0, [write_record(b"a")])
    assert coordinator.run_due(0.001) == []
    assert not future.done
    assert coordinator.next_due() == pytest.approx(0.002)
    [resolved] = coordinator.run_due(0.002)
    assert resolved.acked


def test_pipeline_defers_ack_drain(coordinator, machines):
    """With 3-way replication the ack leg is deferred: members complete
    after the machine clock (data done), and the deferral is counted."""
    future = coordinator.submit(0.0, [write_record(b"a")])
    coordinator.drain()
    ack_wait = 2 * machines[0].network.latency  # two secondary acks
    assert future.completion_time == pytest.approx(
        machines[0].clock.now + ack_wait
    )
    assert machines[0].counters.get(COMMIT_ACKS_DEFERRED) == 1


def test_pipeline_off_charges_ack_on_clock(repo, machines):
    coordinator = CommitCoordinator(repo, machines[0], pipeline=False)
    future = coordinator.submit(0.0, [write_record(b"a")])
    coordinator.drain()
    assert future.completion_time == pytest.approx(machines[0].clock.now)
    assert machines[0].counters.get(COMMIT_ACKS_DEFERRED) == 0


def test_pipelined_groups_overlap(coordinator, machines):
    """The next group's flush starts at data-done of the previous one,
    not at its ack-drain completion."""
    first = coordinator.submit(0.0, [write_record(b"a", b"x" * 4096)])
    second = coordinator.submit(0.01, [write_record(b"b")])
    coordinator.drain()
    ack_wait = 2 * machines[0].network.latency
    # Both completions sit one ack-drain past their group's data-done;
    # the second flush began before the first group's acks finished.
    assert first.completion_time < second.completion_time
    assert second.completion_time == pytest.approx(machines[0].clock.now + ack_wait)


def test_crash_mid_flush_fails_every_member(coordinator, machines):
    """Guarantee 1 under group commit: a crash inside the flush acks no
    member of the group."""
    plan = FaultPlan()

    def die(_ctx):
        machines[0].fail()
        raise ServerDownError("crashed mid-group-flush")

    plan.add(CP_LOG_APPEND, die, machine=machines[0].name)
    futures = [coordinator.submit(0.0005 * i, [write_record(b"k%d" % i)]) for i in range(3)]
    with fault_plan(plan):
        resolved = coordinator.drain()
    assert len(resolved) == 3
    assert all(f.done and not f.acked for f in futures)
    for future in futures:
        with pytest.raises(ServerDownError):
            future.result()
    assert machines[0].counters.get(COMMIT_GROUPS) == 0


def test_flush_on_dead_machine_fails_group(coordinator, machines):
    future = coordinator.submit(0.0, [write_record(b"a")])
    machines[0].fail()
    coordinator.drain()
    assert future.error is not None and not future.acked


def test_abandon_fails_pending(coordinator):
    future = coordinator.submit(0.0, [write_record(b"a")])
    failed = coordinator.abandon()
    assert failed == [future]
    assert isinstance(future.error, ServerDownError)
    assert coordinator.pending == 0


def test_on_durable_runs_before_resolution(coordinator):
    applied = []
    future = coordinator.submit(
        0.0, [write_record(b"a")], on_durable=lambda pairs: applied.extend(pairs)
    )
    coordinator.drain()
    assert applied == future.result()


def test_byte_budget_limits_group(repo, machines):
    coordinator = CommitCoordinator(
        repo, machines[0], max_delay=0.5, max_records=64, max_bytes=2048
    )
    coordinator.submit(0.0, [write_record(b"a", b"x" * 1500)])
    coordinator.submit(0.0001, [write_record(b"b", b"x" * 1500)])
    coordinator.drain()
    # The second submission did not fit the byte budget: two groups.
    assert machines[0].counters.get(COMMIT_GROUPS) == 2
