"""Unit tests for incremental compaction plan execution."""

import pytest

from repro.sim.failure import (
    CP_COMPACTION_MID,
    FailureInjector,
    FaultPlan,
    fault_plan,
    kill_action,
)
from repro.wal.compaction import CompactionJob, IncrementalCompactionJob
from repro.wal.planner import CompactionPlan, CompactionPlanner
from repro.wal.record import LogRecord, RecordType, abort_record, commit_record
from repro.wal.repository import LogRepository


def write(key: bytes, ts: int, value: bytes, *, table="t", group="g", txn=0) -> LogRecord:
    return LogRecord(
        record_type=RecordType.WRITE,
        txn_id=txn,
        table=table,
        tablet=f"{table}#0",
        key=key,
        group=group,
        timestamp=ts,
        value=value,
    )


def delete(key: bytes, ts: int, *, table="t", group="g") -> LogRecord:
    return LogRecord(
        record_type=RecordType.INVALIDATE,
        table=table,
        tablet=f"{table}#0",
        key=key,
        group=group,
        timestamp=ts,
        value=None,
    )


@pytest.fixture
def repo(dfs, machines):
    return LogRepository(dfs, machines[0], "/logbase/ts-0/log", segment_size=1 << 20)


def run_plans(repo, **knobs):
    """Plan once over the current log and execute every plan."""
    results = []
    for plan in CompactionPlanner(repo, **knobs).plan():
        results.append(IncrementalCompactionJob(repo, plan).run())
    return results


def visible_versions(repo):
    """(table, group, key) -> live timestamps, replaying the whole log the
    way a redo scan would: INVALIDATE kills versions at or below its ts."""
    live: dict[tuple[str, str, bytes], set[int]] = {}
    committed = set()
    staged = []
    for file_no in repo.segments():
        for _, record in repo.scan_segment(file_no):
            if record.record_type is RecordType.COMMIT:
                committed.add(record.txn_id)
            staged.append(record)
    for record in staged:
        if record.txn_id != 0 and record.txn_id not in committed:
            continue
        slot = (record.table, record.group, record.key)
        if record.record_type is RecordType.WRITE:
            live.setdefault(slot, set()).add(record.timestamp)
        elif record.record_type is RecordType.INVALIDATE:
            kept = {ts for ts in live.get(slot, set()) if ts > record.timestamp}
            if kept:
                live[slot] = kept
            else:
                live.pop(slot, None)
    return live


# -- tail plans -------------------------------------------------------------


def test_tail_plan_matches_monolithic_semantics(repo):
    for key, ts in ((b"b", 2), (b"a", 3), (b"b", 1), (b"a", 1)):
        repo.append(write(key, ts, b"v"))
    repo.append(write(b"c", 4, b"txn", txn=9))
    repo.append(commit_record(9, 4))
    repo.append(write(b"d", 5, b"lost", txn=10))  # never committed
    (result,) = run_plans(repo)
    order = [(key, ts) for _, _, key, ts, _ in result.index_entries]
    assert order == [(b"a", 1), (b"a", 3), (b"b", 1), (b"b", 2), (b"c", 4)]
    assert result.stats.dropped_uncommitted == 1
    assert result.touched_scopes == {("t", "g")}
    # Survivors are auto-committed slim records in sorted runs.
    for file_no in repo.segments():
        assert repo.is_sorted_segment(file_no)
        for _, record in repo.scan_segment(file_no):
            assert record.txn_id == 0


def test_tail_plan_drops_covered_deletes(repo):
    repo.append(write(b"k", 1, b"old"))
    repo.append(delete(b"k", 2))
    (result,) = run_plans(repo)
    # The plan covers the whole log, so the tombstone may be dropped.
    assert result.stats.tombstones_carried == 0
    assert visible_versions(repo) == {}


def test_tail_plan_carries_tombstone_when_not_covered(repo):
    # Sorted run holding the victim, written by an earlier full round.
    repo.append(write(b"k", 1, b"victim"))
    CompactionJob(repo).run()
    run = repo.segments()[0]
    # New tail deletes it; the tail plan must not touch the sorted run
    # (below fanout), so the tombstone has to ride along.
    repo.append(delete(b"k", 5))
    repo.roll()
    results = run_plans(repo, tier_fanout=4)
    assert sum(r.stats.tombstones_carried for r in results) == 1
    assert run in repo.segments()  # sorted run untouched
    assert visible_versions(repo) == {}  # ...but the delete still wins


def test_carried_tombstone_spares_newer_write(repo):
    repo.append(write(b"k", 1, b"old"))
    CompactionJob(repo).run()
    repo.append(delete(b"k", 3))
    repo.append(write(b"k", 7, b"reborn"))
    repo.roll()
    run_plans(repo, tier_fanout=4)
    assert visible_versions(repo) == {("t", "g", b"k"): {7}}


def test_tail_plan_leaves_sorted_runs_alone(repo):
    repo.append(write(b"a", 1, b"v"))
    CompactionJob(repo).run()
    runs = list(repo.segments())
    repo.append(write(b"b", 2, b"v"))
    repo.roll()
    plans = CompactionPlanner(repo, tier_fanout=4).plan()
    assert len(plans) == 1 and plans[0].kind == "tail"
    result = IncrementalCompactionJob(repo, plans[0]).run()
    assert set(runs) <= set(repo.segments())
    assert set(result.retired_segments).isdisjoint(runs)


# -- budget cuts and dangling transactions ----------------------------------


def test_budget_cut_defers_dangling_txn_segments(repo):
    # Transaction writes land in segment A; its COMMIT lands past the
    # budget cut.  The plan must defer A rather than drop the write.
    repo.append(write(b"k", 1, b"txn-value", txn=7))
    first = repo.segments()[-1]
    repo.roll()
    repo.append(commit_record(7, 1))
    repo.roll()
    plan = CompactionPlan("tail", (first,), repo.segment_bytes(first))
    result = IncrementalCompactionJob(repo, plan).run()
    assert result.retired_segments == []
    assert result.stats.dropped_uncommitted == 0
    assert first in repo.segments()
    assert visible_versions(repo) == {("t", "g", b"k"): {1}}


def test_aborted_txn_not_deferred(repo):
    repo.append(write(b"k", 1, b"doomed", txn=7))
    repo.append(abort_record(7))
    repo.append(write(b"live", 2, b"v"))
    first = repo.segments()[-1]
    repo.roll()
    repo.append(write(b"later", 3, b"v"))
    plan = CompactionPlan("tail", (first,), repo.segment_bytes(first))
    result = IncrementalCompactionJob(repo, plan).run()
    # ABORT resolves txn 7 inside the plan: nothing dangles, the segment
    # compacts and the aborted write disappears.
    assert result.retired_segments == [first]
    kept = [key for _, _, key, _, _ in result.index_entries]
    assert kept == [b"live"]


# -- merge plans ------------------------------------------------------------


def make_runs(repo, per_run, **knobs):
    """One sorted run per entry of ``per_run`` (a list of record lists)."""
    runs = []
    for records in per_run:
        for record in records:
            repo.append(record)
        result = IncrementalCompactionJob(
            repo, CompactionPlanner(repo, **knobs).plan()[-1]
        ).run()
        runs.extend(result.new_segments)
        repo.roll()
    return runs


def test_merge_plan_streams_runs_into_one(repo):
    runs = make_runs(
        repo,
        [
            [write(b"a", 1, b"v"), write(b"c", 2, b"v")],
            [write(b"b", 3, b"v"), write(b"c", 4, b"v")],
        ],
        tier_fanout=4,
    )
    plan = CompactionPlan(
        "merge",
        tuple(runs),
        sum(repo.segment_bytes(f) for f in runs),
        ("t", "g"),
    )
    result = IncrementalCompactionJob(repo, plan).run()
    assert len(result.new_segments) == 1
    order = [(key, ts) for _, _, key, ts, _ in result.index_entries]
    assert order == [(b"a", 1), (b"b", 3), (b"c", 2), (b"c", 4)]
    assert sorted(result.retired_segments) == sorted(runs)
    for file_no in runs:
        assert file_no not in repo.segments()


def test_merge_dedupes_same_key_timestamp_across_runs(repo):
    # The same (key, ts) version can exist in two runs (e.g. after a
    # crash between install steps); the merge keeps exactly one copy.
    runs = make_runs(
        repo,
        [[write(b"k", 5, b"v")], [write(b"k", 5, b"v"), write(b"k", 6, b"w")]],
        tier_fanout=4,
    )
    plan = CompactionPlan("merge", tuple(runs), 0, ("t", "g"))
    result = IncrementalCompactionJob(repo, plan).run()
    kept = [(key, ts) for _, _, key, ts, _ in result.index_entries]
    assert kept == [(b"k", 5), (b"k", 6)]


def test_merge_applies_carried_tombstones(repo):
    # Run 1 holds the data; run 2 holds a carried tombstone + newer write.
    repo.append(write(b"k", 1, b"old"))
    CompactionJob(repo).run()
    repo.append(delete(b"k", 3))
    repo.append(write(b"k", 8, b"new"))
    repo.roll()
    run_plans(repo, tier_fanout=4)  # tail plan carries the tombstone
    runs = list(repo.segments())
    assert len(runs) == 2
    plan = CompactionPlan("merge", tuple(runs), 0, ("t", "g"))
    result = IncrementalCompactionJob(repo, plan).run()
    kept = [(key, ts) for _, _, key, ts, _ in result.index_entries]
    assert kept == [(b"k", 8)]
    # The merge covers every segment of the scope: tombstone dropped.
    assert result.stats.tombstones_carried == 0
    assert visible_versions(repo) == {("t", "g", b"k"): {8}}


def test_merge_keeps_tombstone_while_uncovered(repo):
    repo.append(write(b"k", 1, b"v"))
    CompactionJob(repo).run()  # run A: k@1
    repo.append(delete(b"k", 3))
    repo.roll()
    run_plans(repo, tier_fanout=4)  # tail plan carries the tombstone: run B
    runs = list(repo.segments())
    assert len(runs) == 2
    # An unsorted segment outside the merge could still hold b"k", so the
    # merged run must re-carry the tombstone even though k@1 dies here.
    repo.append(write(b"other", 9, b"v"))
    plan = CompactionPlan("merge", tuple(runs), 0, ("t", "g"))
    result = IncrementalCompactionJob(repo, plan).run()
    assert result.stats.tombstones_carried == 1
    assert result.index_entries == []  # k@1 was shadowed and dropped
    assert ("t", "g", b"k") not in visible_versions(repo)


def test_incremental_rounds_converge_with_monolithic(repo):
    """Several churn rounds of incremental compaction leave exactly the
    data a monolithic compaction of the same history would."""
    expected: dict[bytes, set[int]] = {}
    ts = 0
    for round_no in range(5):
        for i in range(6):
            ts += 1
            key = b"key%d" % (i % 4)
            repo.append(write(key, ts, b"r%d" % round_no))
            expected.setdefault(key, set()).add(ts)
        if round_no == 2:
            ts += 1
            repo.append(delete(b"key0", ts))
            expected[b"key0"] = {t for t in expected[b"key0"] if t > ts}
        repo.roll()
        run_plans(repo, tier_fanout=2)
    got = visible_versions(repo)
    assert {slot[2]: tss for slot, tss in got.items()} == {
        key: tss for key, tss in expected.items() if tss
    }


# -- crash safety -----------------------------------------------------------


def test_crash_before_install_keeps_inputs_live(repo, dfs, machines):
    repo.append(write(b"a", 1, b"v"))
    repo.append(delete(b"a", 2))
    repo.append(write(b"b", 3, b"v"))
    inputs = list(repo.segments())
    injector = FailureInjector()
    injector.register(machines[0].name, machines[0])
    plan = FaultPlan()
    plan.add(
        CP_COMPACTION_MID,
        kill_action(injector, machines[0].name, RuntimeError("died")),
        machine=machines[0].name,
    )
    (compaction_plan,) = CompactionPlanner(repo).plan()
    with fault_plan(plan):
        with pytest.raises(RuntimeError):
            IncrementalCompactionJob(repo, compaction_plan).run()
    # Inputs were never retired: every record is still readable.
    assert set(inputs) <= set(repo.segments())
    machines[0].restart()
    reattached = LogRepository.reattach(dfs, machines[0], "/logbase/ts-0/log")
    assert set(inputs) <= set(reattached.segments())
    assert visible_versions(reattached)[("t", "g", b"b")] == {3}
    assert ("t", "g", b"a") not in visible_versions(reattached)


def test_validation():
    with pytest.raises(ValueError):
        IncrementalCompactionJob(None, CompactionPlan("tail", (), 0), max_versions=0)
    with pytest.raises(ValueError):
        IncrementalCompactionJob(None, CompactionPlan("sideways", (), 0))
    with pytest.raises(ValueError):
        IncrementalCompactionJob(None, CompactionPlan("merge", (), 0, scope=None))
