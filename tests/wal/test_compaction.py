"""Unit tests for log compaction (§3.6.5)."""

import pytest

from repro.wal.compaction import CompactionJob
from repro.wal.record import LogRecord, RecordType, commit_record
from repro.wal.repository import LogRepository


def write(key: bytes, ts: int, value: bytes, *, table="t", group="g", txn=0) -> LogRecord:
    return LogRecord(
        record_type=RecordType.WRITE,
        txn_id=txn,
        table=table,
        tablet=f"{table}#0",
        key=key,
        group=group,
        timestamp=ts,
        value=value,
    )


def delete(key: bytes, ts: int, *, table="t", group="g") -> LogRecord:
    return LogRecord(
        record_type=RecordType.INVALIDATE,
        table=table,
        tablet=f"{table}#0",
        key=key,
        group=group,
        timestamp=ts,
        value=None,
    )


@pytest.fixture
def repo(dfs, machines):
    return LogRepository(dfs, machines[0], "/logbase/ts-0/log", segment_size=1 << 20)


def test_output_sorted_by_key_then_timestamp(repo):
    for key, ts in ((b"b", 2), (b"a", 3), (b"b", 1), (b"a", 1)):
        repo.append(write(key, ts, b"v"))
    result = CompactionJob(repo).run()
    order = [(key, ts) for _, _, key, ts, _ in result.index_entries]
    assert order == [(b"a", 1), (b"a", 3), (b"b", 1), (b"b", 2)]


def test_all_versions_kept_by_default(repo):
    for ts in range(1, 6):
        repo.append(write(b"k", ts, b"v%d" % ts))
    result = CompactionJob(repo).run()
    assert result.stats.kept_versions == 5


def test_max_versions_drops_oldest(repo):
    for ts in range(1, 6):
        repo.append(write(b"k", ts, b"v%d" % ts))
    result = CompactionJob(repo, max_versions=2).run()
    kept_ts = [ts for _, _, _, ts, _ in result.index_entries]
    assert kept_ts == [4, 5]
    assert result.stats.dropped_obsolete == 3


def test_deleted_records_removed(repo):
    repo.append(write(b"k", 1, b"old"))
    repo.append(write(b"k", 2, b"newer"))
    repo.append(delete(b"k", 3))
    result = CompactionJob(repo).run()
    assert result.stats.kept_versions == 0
    assert result.stats.dropped_deleted == 2


def test_write_after_delete_survives(repo):
    repo.append(write(b"k", 1, b"old"))
    repo.append(delete(b"k", 2))
    repo.append(write(b"k", 3, b"reborn"))
    result = CompactionJob(repo).run()
    kept = [(key, ts) for _, _, key, ts, _ in result.index_entries]
    assert kept == [(b"k", 3)]


def test_uncommitted_transactional_writes_dropped(repo):
    repo.append(write(b"a", 1, b"committed", txn=10))
    repo.append(commit_record(10, 1))
    repo.append(write(b"b", 2, b"uncommitted", txn=11))  # no commit record
    result = CompactionJob(repo).run()
    keys = [key for _, _, key, _, _ in result.index_entries]
    assert keys == [b"a"]
    assert result.stats.dropped_uncommitted == 1


def test_sorted_segments_are_slim_and_grouped(repo):
    repo.append(write(b"k1", 1, b"v", group="g1"))
    repo.append(write(b"k2", 2, b"v", group="g2"))
    result = CompactionJob(repo).run()
    assert len(result.new_segments) == 2  # one per (table, group)
    for file_no in result.new_segments:
        assert repo.is_sorted_segment(file_no)


def test_old_segments_retired(repo):
    repo.append(write(b"k", 1, b"v"))
    old_segments = repo.segments()
    repo.roll()
    result = CompactionJob(repo).run(old_segments)
    assert result.retired_segments == old_segments
    for file_no in old_segments:
        assert file_no not in repo.segments()


def test_pointers_into_sorted_segments_resolve(repo):
    repo.append(write(b"k", 5, b"payload"))
    result = CompactionJob(repo).run()
    _, _, key, ts, pointer = result.index_entries[0]
    record = repo.read(pointer)
    assert record.key == key
    assert record.timestamp == ts
    assert record.value == b"payload"
    # Slim metadata reconstitutes table/group on read.
    assert record.table == "t" and record.group == "g"


def test_compaction_reduces_storage(repo):
    for ts in range(1, 20):
        repo.append(write(b"hot", ts, b"x" * 200))
    before = repo.total_bytes()
    repo.roll()
    CompactionJob(repo, max_versions=1).run()
    assert repo.total_bytes() < before


def test_recompaction_of_sorted_segments(repo):
    repo.append(write(b"a", 1, b"v1"))
    CompactionJob(repo).run()
    repo.append(write(b"a", 2, b"v2"))
    result = CompactionJob(repo).run()
    kept = [(key, ts) for _, _, key, ts, _ in result.index_entries]
    assert kept == [(b"a", 1), (b"a", 2)]


def test_rejects_bad_max_versions(repo):
    with pytest.raises(ValueError):
        CompactionJob(repo, max_versions=0)


def test_compacted_txn_writes_become_auto_committed(repo):
    """Regression: compaction drops COMMIT records, so surviving
    transactional writes must be re-emitted as auto-committed — otherwise
    a later redo scan or log split treats them as uncommitted and loses
    them."""
    repo.append(write(b"k", 1, b"txn-value", txn=42))
    repo.append(commit_record(42, 1))
    CompactionJob(repo).run()
    survivors = [
        record
        for file_no in repo.segments()
        for _, record in repo.scan_segment(file_no)
        if record.record_type is RecordType.WRITE
    ]
    assert len(survivors) == 1
    assert survivors[0].txn_id == 0
    assert survivors[0].value == b"txn-value"


def test_unowned_records_dropped_with_filter(repo):
    repo.append(write(b"mine", 1, b"keep"))
    repo.append(write(b"theirs", 2, b"drop"))
    job = CompactionJob(repo, owned=lambda table, key: key == b"mine")
    result = job.run()
    kept = [key for _, _, key, _, _ in result.index_entries]
    assert kept == [b"mine"]
    assert result.stats.dropped_unowned == 1


def test_retain_after_expires_old_history_keeps_latest(repo):
    for ts in range(1, 7):
        repo.append(write(b"k", ts, b"v%d" % ts))
    result = CompactionJob(repo, retain_after=4).run()
    kept_ts = [ts for _, _, _, ts, _ in result.index_entries]
    assert kept_ts == [4, 5, 6]
    assert result.stats.dropped_obsolete == 3


def test_retain_after_never_drops_only_version(repo):
    repo.append(write(b"ancient", 1, b"only"))
    result = CompactionJob(repo, retain_after=100).run()
    kept = [(key, ts) for _, _, key, ts, _ in result.index_entries]
    assert kept == [(b"ancient", 1)]


def test_retain_after_composes_with_max_versions(repo):
    for ts in range(1, 9):
        repo.append(write(b"k", ts, b"v"))
    result = CompactionJob(repo, max_versions=2, retain_after=3).run()
    kept_ts = [ts for _, _, _, ts, _ in result.index_entries]
    assert kept_ts == [7, 8]
