"""Archival-tier tests (LHAM-inspired cold storage for old segments)."""

import pytest

from repro.config import LogBaseConfig
from repro.coordination.tso import TimestampOracle
from repro.coordination.znodes import CoordinationService
from repro.core.partition import KeyRange
from repro.core.tablet import Tablet, TabletId
from repro.core.tablet_server import TabletServer
from repro.wal.archive import ArchiveReport, ColdStorage, LogArchiver


@pytest.fixture
def server(dfs, machines, schema):
    tso = TimestampOracle(CoordinationService())
    srv = TabletServer("ts-arch", machines[0], dfs, tso, LogBaseConfig())
    srv.assign_tablet(Tablet(TabletId("events", 0), KeyRange(b"", None), schema))
    return srv


@pytest.fixture
def cold(machines):
    return ColdStorage(n_nodes=2, network=machines[0].network)


def load_and_compact(server, n=30) -> int:
    """Insert n records and compact; returns the newest timestamp."""
    ts = 0
    for i in range(n):
        ts = server.write("events", f"k{i:02d}".encode(), {"payload": b"x" * 64})
    server.compact()
    return ts


def test_only_old_sorted_segments_move(server, cold):
    newest = load_and_compact(server)
    archiver = LogArchiver(server.log, cold)
    # Cutoff below everything: nothing qualifies.
    report = archiver.archive_older_than(1)
    assert report.segments_moved == 0
    # Cutoff above everything: all sorted segments move.
    report = archiver.archive_older_than(newest + 1)
    assert report.segments_moved >= 1
    assert report.bytes_moved > 0


def test_unsorted_segments_never_archived(server, cold):
    for i in range(10):
        server.write("events", f"k{i}".encode(), {"payload": b"v"})
    # No compaction: every segment is unsorted.
    report = LogArchiver(server.log, cold).archive_older_than(10**9)
    assert report.segments_examined == 0
    assert report.segments_moved == 0


def test_reads_through_archive_stay_correct(server, cold):
    newest = load_and_compact(server)
    LogArchiver(server.log, cold).archive_older_than(newest + 1)
    assert server.read("events", b"k07", "payload")[1] == b"x" * 64
    rows = list(server.range_scan("events", "payload", b"k00", b"k99"))
    assert len(rows) == 30


def test_archived_reads_cost_more(server, cold, machines):
    newest = load_and_compact(server)

    def cold_read_cost() -> float:
        server.read_cache.clear()
        machines[0].disk.invalidate_head()
        before = machines[0].clock.now
        server.read("events", b"k05", "payload")
        return machines[0].clock.now - before

    hot_cost = cold_read_cost()
    LogArchiver(server.log, cold).archive_older_than(newest + 1)
    server.log._readers.clear()
    archived_cost = cold_read_cost()
    # Cold tier: slower disk + a network hop.
    assert archived_cost > hot_cost


def test_hot_storage_shrinks_and_cold_grows(server, cold):
    newest = load_and_compact(server)
    hot_before = server.log.total_bytes()
    report = LogArchiver(server.log, cold).archive_older_than(newest + 1)
    assert server.log.total_bytes() < hot_before
    assert cold.stored_bytes() == report.bytes_moved


def test_archive_is_idempotent(server, cold):
    newest = load_and_compact(server)
    archiver = LogArchiver(server.log, cold)
    first = archiver.archive_older_than(newest + 1)
    second = archiver.archive_older_than(newest + 1)
    assert first.segments_moved >= 1
    assert second.segments_moved == 0


def test_new_writes_stay_hot_until_next_cycle(server, cold):
    newest = load_and_compact(server)
    LogArchiver(server.log, cold).archive_older_than(newest + 1)
    fresh_ts = server.write("events", b"new", {"payload": b"fresh"})
    # The fresh write is in an unsorted hot segment; reads work.
    assert server.read("events", b"new", "payload") == (fresh_ts, b"fresh")
    # Compact + archive again: the old archived data has been superseded
    # by the compaction rebuild, and everything stays readable.
    server.compact()
    LogArchiver(server.log, cold).archive_older_than(fresh_ts + 1)
    assert server.read("events", b"new", "payload")[1] == b"fresh"
    assert server.read("events", b"k03", "payload")[1] == b"x" * 64
