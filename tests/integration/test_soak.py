"""Capstone soak test: every subsystem interleaved against a model.

A long scripted scenario drives writes, transactions, deletes, scans,
compaction, checkpoints, crashes, recovery, permanent failover, elastic
scale-out/scale-back and archival on one cluster, checking the full
key/value model after every disruptive step.  If the pieces interact
badly, this is where it shows.
"""

import random

import pytest

from repro import ColumnGroup, LogBase, LogBaseConfig, TableSchema, TransactionAborted
from repro.core.recovery import recover_server
from repro.wal.archive import ColdStorage, LogArchiver

SCHEMA = TableSchema(
    "soak", "id", (ColumnGroup("data", ("v",)), ColumnGroup("meta", ("tag",)))
)


def make_key(rng: random.Random) -> bytes:
    return str(rng.randrange(2_000_000_000)).zfill(12).encode()


@pytest.mark.slow
def test_full_system_soak():
    rng = random.Random(2026)
    db = LogBase(n_nodes=4, config=LogBaseConfig(segment_size=64 * 1024), n_masters=2)
    db.create_table(SCHEMA, tablets_per_server=2)
    client = db.client(db.cluster.machines[0])
    model: dict[bytes, bytes] = {}

    def verify_model() -> None:
        client.invalidate_cache()
        sample = rng.sample(sorted(model), min(len(model), 40)) if model else []
        for key in sample:
            row = client.get("soak", key, "data")
            assert row is not None, f"lost {key!r}"
            assert row["v"] == model[key]
        # And spot-check scans agree on cardinality.
        scanned = {
            key
            for server in db.cluster.servers
            if server.serving
            for key, _, _ in server.full_scan("soak", "data")
        }
        assert scanned == set(model)

    # --- phase 1: plain load ------------------------------------------------
    for i in range(120):
        key = make_key(rng)
        value = f"v{i}".encode()
        client.put("soak", key, {"data": {"v": value}, "meta": {"tag": b"t"}})
        model[key] = value
    verify_model()

    # --- phase 2: transactions (some conflicting) ----------------------------
    keys = sorted(model)
    for i in range(25):
        a, b = rng.sample(keys, 2)
        txn = db.begin()
        txn.write("soak", a, "data", {"v": f"txn{i}a".encode()})
        txn.write("soak", b, "data", {"v": f"txn{i}b".encode()})
        try:
            txn.commit()
            model[a] = f"txn{i}a".encode()
            model[b] = f"txn{i}b".encode()
        except TransactionAborted:
            pass
    verify_model()

    # --- phase 3: deletes -----------------------------------------------------
    for key in rng.sample(keys, 15):
        client.delete("soak", key)
        model.pop(key, None)
    verify_model()

    # --- phase 4: compaction + checkpoints --------------------------------------
    db.compact_all()
    db.checkpoint_all()
    verify_model()

    # --- phase 5: crash + recover one server ------------------------------------
    victim = db.cluster.servers[1]
    tablets = list(victim.tablets.values())
    victim.crash()
    victim.restart()
    for tablet in tablets:
        victim.assign_tablet(tablet)
    recover_server(victim, db.cluster.checkpoints[victim.name])
    verify_model()

    # --- phase 6: more writes, then permanent failover ---------------------------
    for i in range(40):
        key = make_key(rng)
        client.put("soak", key, {"data": {"v": f"p6-{i}".encode()},
                                 "meta": {"tag": b"t"}})
        model[key] = f"p6-{i}".encode()
    db.cluster.kill_server(db.cluster.servers[2].name, permanent=True)
    verify_model()

    # --- phase 7: elastic scale-out and scale-back --------------------------------
    db.cluster.add_node()
    verify_model()
    db.cluster.remove_node(db.cluster.servers[0].name)
    verify_model()

    # --- phase 8: archive cold history ----------------------------------------------
    db.compact_all()
    cold = ColdStorage(n_nodes=2, network=db.cluster.machines[0].network)
    moved = 0
    for server in db.cluster.servers:
        if server.serving:
            moved += LogArchiver(server.log, cold).archive_older_than(10**9).segments_moved
    assert moved >= 1
    verify_model()

    # --- phase 9: writes keep flowing after everything ------------------------------
    for i in range(20):
        key = make_key(rng)
        client.put("soak", key, {"data": {"v": b"final"}, "meta": {"tag": b"t"}})
        model[key] = b"final"
    verify_model()
