"""End-to-end integration: full write/read/txn/compaction/failover story."""

import pytest

from repro import ColumnGroup, LogBase, LogBaseConfig, TableSchema
from repro.core.recovery import recover_server


@pytest.fixture
def big_db():
    db = LogBase(n_nodes=4, config=LogBaseConfig(segment_size=32 * 1024), n_masters=2)
    db.create_table(
        TableSchema(
            "accounts",
            "id",
            (ColumnGroup("balance", ("amount",)), ColumnGroup("profile", ("name",))),
        ),
        tablets_per_server=2,
    )
    return db


def key(i: int) -> bytes:
    return str(i * 7_000_000).zfill(12).encode()


def test_full_lifecycle(big_db):
    db = big_db
    # 1. Load data spread over every tablet.
    for i in range(200):
        db.put(
            "accounts",
            key(i),
            {"balance": {"amount": str(100 + i).encode()},
             "profile": {"name": f"user-{i}".encode()}},
        )
    # 2. Transactional transfer between two accounts.
    txn = db.begin()
    a = txn.read("accounts", key(10), "balance")
    b = txn.read("accounts", key(150), "balance")
    total_before = int(a["amount"]) + int(b["amount"])
    txn.write("accounts", key(10), "balance", {"amount": str(int(a["amount"]) - 50).encode()})
    txn.write("accounts", key(150), "balance", {"amount": str(int(b["amount"]) + 50).encode()})
    txn.commit()

    a2 = db.get("accounts", key(10), "balance")
    b2 = db.get("accounts", key(150), "balance")
    assert int(a2["amount"]) + int(b2["amount"]) == total_before

    # 3. Compaction keeps everything readable.
    db.compact_all()
    assert db.get("accounts", key(42), "profile") == {"name": b"user-42"}

    # 4. Checkpoint, crash one server, recover it.
    db.checkpoint_all()
    for i in range(200, 220):
        db.put("accounts", key(i), {"balance": {"amount": b"0"},
                                    "profile": {"name": b"late"}})
    victim = db.cluster.servers[0]
    victim.crash()
    victim.restart()
    for tablet in db.cluster.master.tablets("accounts"):
        owner, _ = db.cluster.master.locate("accounts", tablet.key_range.start or b"0")
        if owner == victim.name:
            victim.assign_tablet(tablet)
    report = recover_server(victim, db.cluster.checkpoints[victim.name])
    assert report.used_checkpoint

    # 5. Everything is still there.
    for i in range(220):
        assert db.get("accounts", key(i), "profile") is not None

    # 6. Permanent failure of another server: tablets move, data survives.
    second = db.cluster.servers[1]
    db.cluster.kill_server(second.name, permanent=True)
    client = db.client(db.cluster.machines[2])
    for i in range(0, 220, 7):
        assert client.get("accounts", key(i), "profile") is not None


def test_money_conservation_under_conflicts(big_db):
    """Concurrent transfers with validation conflicts never lose money."""
    db = big_db
    accounts = [key(i) for i in range(4)]
    for k in accounts:
        db.put("accounts", k, {"balance": {"amount": b"1000"}})

    from repro.errors import TransactionAborted

    committed = aborted = 0
    for round_no in range(20):
        src, dst = accounts[round_no % 4], accounts[(round_no + 1) % 4]
        t1 = db.begin()
        t2 = db.begin()
        for t in (t1, t2):
            s = t.read("accounts", src, "balance")
            d = t.read("accounts", dst, "balance")
            t.write("accounts", src, "balance",
                    {"amount": str(int(s["amount"]) - 10).encode()})
            t.write("accounts", dst, "balance",
                    {"amount": str(int(d["amount"]) + 10).encode()})
        for t in (t1, t2):
            try:
                t.commit()
                committed += 1
            except TransactionAborted:
                aborted += 1
    assert aborted > 0  # the conflicting sibling must abort
    total = sum(
        int(db.get("accounts", k, "balance")["amount"]) for k in accounts
    )
    assert total == 4000


def test_multiversion_analytics_over_history(big_db):
    """The paper's motivating multiversion use case: trend analysis over
    historical versions."""
    db = big_db
    k = key(3)
    timestamps = []
    for price in (100, 105, 103, 110):
        ts = db.put("accounts", k, {"balance": {"amount": str(price).encode()}})
        timestamps.append(ts)
    observed = [
        int(db.get("accounts", k, "balance", as_of=ts)["amount"]) for ts in timestamps
    ]
    assert observed == [100, 105, 103, 110]
