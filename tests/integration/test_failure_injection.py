"""Failure-injection integration tests: crashes at awkward moments."""

import pytest

from repro import ColumnGroup, LogBase, LogBaseConfig, TableSchema
from repro.core.recovery import recover_server
from repro.errors import ServerDownError, TransactionAborted


@pytest.fixture
def db(schema, small_config):
    database = LogBase(n_nodes=4, config=small_config, n_masters=2)
    database.create_table(schema)
    return database


def key_on(db, server_name: str) -> bytes:
    master = db.cluster.master
    for tablet in master.tablets("events"):
        key = tablet.key_range.start or b"000000000001"
        if master.locate("events", key)[0] == server_name:
            return key
    raise AssertionError(f"no tablet on {server_name}")


def test_datanode_failure_mid_replication_stream(db):
    """A replica dies between appends; the pipeline continues with the
    survivors and reads keep working (Guarantee 1)."""
    victim_server = db.cluster.servers[0]
    key = key_on(db, victim_server.name)
    db.put("events", key, {"payload": {"body": b"before"}})
    # Kill a DIFFERENT machine that holds replicas of the victim's log.
    other = db.cluster.machines[1]
    other.fail()
    db.cluster.servers[1].serving = False  # its tablet server dies too
    # Victim keeps writing; the pipeline skips the dead replica.
    db.put("events", key, {"payload": {"body": b"after"}})
    assert db.get("events", key, "payload") == {"body": b"after"}


def test_write_to_dead_server_raises_then_failover_recovers(db):
    victim = db.cluster.servers[0]
    key = key_on(db, victim.name)
    db.put("events", key, {"payload": {"body": b"v"}})
    victim.crash()
    with pytest.raises(ServerDownError):
        victim.write("events", key, {"payload": b"x"})
    report = db.cluster.master.handle_permanent_failure(victim.name)
    assert report.reassigned
    client = db.client(db.cluster.machines[1])
    assert client.get("events", key, "payload") == {"body": b"v"}


def test_crash_during_transaction_leaves_no_partial_state(db):
    """A participant dies mid-commit; the transaction aborts and no write
    becomes visible anywhere (atomicity across failures)."""
    master = db.cluster.master
    keys = []
    owners = set()
    for tablet in master.tablets("events"):
        key = tablet.key_range.start or b"000000000001"
        owner = master.locate("events", key)[0]
        if owner not in owners:
            owners.add(owner)
            keys.append((key, owner))
        if len(keys) == 2:
            break
    (k1, _), (k2, owner2) = keys
    txn = db.begin()
    txn.write("events", k1, "payload", {"body": b"half"})
    txn.write("events", k2, "payload", {"body": b"half"})
    master.server(owner2).crash()
    with pytest.raises(TransactionAborted):
        txn.commit()
    assert db.get("events", k1, "payload") is None


def test_master_failover_mid_workload(db):
    active = db.cluster.master
    standby = next(m for m in db.cluster.masters if m is not active)
    db.put("events", b"000000000001", {"payload": {"body": b"pre"}})
    active.session.expire()
    assert db.cluster.master is standby
    # New DDL and traffic go through the promoted master.
    db.cluster.master.create_table(
        TableSchema("post_failover", "id", (ColumnGroup("g", ("v",)),))
    )
    client = db.client(db.cluster.machines[0])
    client.put("post_failover", b"000000000001", {"g": {"v": b"x"}})
    assert client.get("post_failover", b"000000000001", "g") == {"v": b"x"}


def test_crash_restart_crash_restart(db):
    """Repeated crashes between partial recoveries stay consistent (§3.8:
    'in the event of repeated restart ... the system only needs to redo')."""
    victim = db.cluster.servers[0]
    key = key_on(db, victim.name)
    manager = db.cluster.checkpoints[victim.name]
    db.put("events", key, {"payload": {"body": b"v1"}})
    manager.write_checkpoint()
    db.put("events", key, {"payload": {"body": b"v2"}})
    tablets = list(victim.tablets.values())
    for _ in range(3):
        victim.crash()
        victim.restart()
        for tablet in tablets:
            victim.assign_tablet(tablet)
        recover_server(victim, manager)
    from repro.core.schema import decode_group_value

    assert decode_group_value(victim.read("events", key, "payload")[1]) == {
        "body": b"v2"
    }
    # Exactly two committed versions exist, not duplicates per restart.
    versions = victim.index_for("events", key, "payload").versions(key)
    assert len(versions) == 2


def test_failover_of_server_with_secondary_indexes(db):
    for server in db.cluster.servers:
        server.create_secondary_index("events", "meta", "source")
    victim = db.cluster.servers[0]
    key = key_on(db, victim.name)
    db.put("events", key, {"meta": {"source": b"web", "kind": b"k"}})
    db.cluster.kill_server(victim.name, permanent=True)
    new_owner, _ = db.cluster.master.locate("events", key)
    adopter = db.cluster.master.server(new_owner)
    adopter.create_secondary_index("events", "meta", "source")
    assert adopter.secondary.get("events", "source").lookup_equal(b"web") == [key]
