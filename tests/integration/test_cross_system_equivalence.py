"""Cross-system equivalence: the same operation stream must produce the
same logical results on LogBase, HBase and LRS.

The three systems differ in storage architecture (log-only vs WAL+Data vs
LSM-indexed log) but implement the same key-value-with-versions contract;
if their answers ever diverge, a baseline comparison benchmark would be
measuring a behavioural difference rather than a performance one.
"""

import random

import pytest

from repro.baselines.hbase.cluster import HBaseCluster
from repro.baselines.hbase.store import HBaseConfig
from repro.baselines.lrs.store import LRSCluster
from repro.config import LogBaseConfig
from repro.core.cluster import LogBaseCluster
from repro.core.schema import ColumnGroup, TableSchema

SCHEMA = TableSchema("t", "id", (ColumnGroup("g", ("v",)),))


class LogBaseLike:
    """Driver over LogBase/LRS clusters."""

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        cluster.create_table(SCHEMA)

    def _server(self, key: bytes):
        name, _ = self.cluster.master.locate("t", key)
        return self.cluster.master.server(name)

    def put(self, key, value):
        return self._server(key).write("t", key, {"g": value})

    def get(self, key, as_of=None):
        result = self._server(key).read("t", key, "g", as_of=as_of)
        return None if result is None else result[1]

    def delete(self, key):
        self._server(key).delete("t", key, "g")

    def scan(self):
        return sorted(
            (key, value)
            for server in self.cluster.servers
            for key, _, value in server.full_scan("t", "g")
        )


class HBaseLike:
    """Driver over the HBase cluster."""

    def __init__(self) -> None:
        config = HBaseConfig(memstore_flush_size=2048, sstable_block_size=512)
        self.cluster = HBaseCluster(3, config)
        self.cluster.create_table(SCHEMA)

    def put(self, key, value):
        return self.cluster.server_for("t", key).write("t", key, {"g": value})

    def get(self, key, as_of=None):
        result = self.cluster.server_for("t", key).read("t", key, "g", as_of=as_of)
        return None if result is None else result[1]

    def delete(self, key):
        self.cluster.server_for("t", key).delete("t", key, "g")

    def scan(self):
        return sorted(
            (key, value)
            for server in self.cluster.servers
            for key, _, value in server.full_scan("t", "g")
        )


def build_systems():
    lrs = LRSCluster(3, LogBaseConfig(segment_size=64 * 1024))
    for server in lrs.servers:
        pass  # default LSM settings
    return {
        "logbase": LogBaseLike(LogBaseCluster(3, LogBaseConfig(segment_size=64 * 1024))),
        "lrs": LogBaseLike(lrs),
        "hbase": HBaseLike(),
    }


def test_same_history_same_answers():
    systems = build_systems()
    rng = random.Random(77)
    keys = [str(rng.randrange(2_000_000_000)).zfill(12).encode() for _ in range(50)]
    history: list[tuple[bytes, int]] = []  # (key, version ts per system? equal ops)

    # Identical operation stream against each system: timestamps advance
    # identically because each cluster has its own oracle fed by the same
    # operation order.
    script = []
    for i in range(150):
        action = rng.random()
        key = keys[rng.randrange(len(keys))]
        if action < 0.7:
            script.append(("put", key, f"v{i}".encode()))
        elif action < 0.85:
            script.append(("delete", key))
        else:
            script.append(("get", key))

    versions: dict[str, list[int]] = {name: [] for name in systems}
    ever_deleted: set[bytes] = set()
    for step in script:
        for name, system in systems.items():
            if step[0] == "put":
                versions[name].append(system.put(step[1], step[2]))
            elif step[0] == "delete":
                system.delete(step[1])
                ever_deleted.add(step[1])
            else:
                system.get(step[1])

    # Same version timestamps assigned everywhere.
    assert versions["logbase"] == versions["hbase"] == versions["lrs"]

    # Same latest values.
    for key in keys:
        expected = systems["logbase"].get(key)
        assert systems["hbase"].get(key) == expected, key
        assert systems["lrs"].get(key) == expected, key

    # Same scan contents.
    assert systems["logbase"].scan() == systems["hbase"].scan() == systems["lrs"].scan()

    # Same historical answers at a few sampled snapshots — for keys that
    # were never deleted.  Deletion semantics legitimately diverge:
    # LogBase's Delete removes *every* index entry for the key (§3.6.3),
    # erasing its history, while HBase's timestamped tombstone keeps
    # pre-delete versions readable.
    for snapshot in versions["logbase"][:: max(1, len(versions["logbase"]) // 5)]:
        for key in keys[:10]:
            if key in ever_deleted:
                continue
            expected = systems["logbase"].get(key, as_of=snapshot)
            assert systems["hbase"].get(key, as_of=snapshot) == expected
            assert systems["lrs"].get(key, as_of=snapshot) == expected


def test_equivalence_survives_maintenance():
    """Compaction (LogBase/LRS) and flush+compact (HBase) change layout,
    never answers."""
    systems = build_systems()
    rng = random.Random(9)
    keys = [str(rng.randrange(2_000_000_000)).zfill(12).encode() for _ in range(30)]
    for i, key in enumerate(keys * 2):  # two versions per key
        for system in systems.values():
            system.put(key, f"v{i}".encode())
    for key in keys[:5]:
        for system in systems.values():
            system.delete(key)

    for server in systems["logbase"].cluster.servers:
        server.compact()
    for server in systems["lrs"].cluster.servers:
        server.compact()
    for server in systems["hbase"].cluster.servers:
        server.flush_all()
        for store in list(server._sstables):
            server.minor_compact(store)

    assert systems["logbase"].scan() == systems["hbase"].scan() == systems["lrs"].scan()
    for key in keys:
        expected = systems["logbase"].get(key)
        assert systems["hbase"].get(key) == expected
        assert systems["lrs"].get(key) == expected
