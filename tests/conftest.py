"""Shared fixtures: machines, DFS instances, clusters, schemas."""

from __future__ import annotations

import pytest

from repro import ColumnGroup, LogBase, LogBaseConfig, TableSchema
from repro.dfs.filesystem import DFS
from repro.sim.machine import Machine


@pytest.fixture
def machines() -> list[Machine]:
    """Three machines on two racks (smallest paper cluster)."""
    return [Machine(f"node-{i}", rack=f"rack-{i % 2}") for i in range(3)]


@pytest.fixture
def dfs(machines: list[Machine]) -> DFS:
    """A 3-node DFS with 3-way replication, small blocks for fast tests."""
    return DFS(machines, replication=3, block_size=1 << 20, checksum_replicas=True)


@pytest.fixture
def schema() -> TableSchema:
    """A two-group table used across core tests."""
    return TableSchema(
        "events",
        "id",
        (
            ColumnGroup("payload", ("body",)),
            ColumnGroup("meta", ("source", "kind")),
        ),
    )


@pytest.fixture
def small_config() -> LogBaseConfig:
    """A config with tiny segments so rolling/compaction paths execute."""
    return LogBaseConfig(segment_size=16 * 1024)


@pytest.fixture
def db(schema: TableSchema, small_config: LogBaseConfig) -> LogBase:
    """A ready 3-node LogBase with the ``events`` table created."""
    database = LogBase(n_nodes=3, config=small_config)
    database.create_table(schema)
    return database


def make_key(value: int) -> bytes:
    """Zero-padded 12-digit key helper shared by tests."""
    return str(value).zfill(12).encode()
