"""End-to-end tracing on a real cluster: propagation across machine
boundaries, hedged-read span closure under a gray chaos schedule, and
the tracing-off gate."""

import pytest

from repro.chaos.gray import GRAY_SCHEDULES
from repro.chaos.runner import run_chaos
from repro.config import LogBaseConfig
from repro.core.database import LogBase
from repro.core.schema import ColumnGroup, TableSchema
from repro.obs.analyze import coverage, where_did_time_go
from repro.obs.trace import current_tracer, uninstall_tracer

SCHEMA = TableSchema("t", "id", (ColumnGroup("g", ("v",)),))
KEY = b"000000000001"


def traced_db(**overrides) -> LogBase:
    config = LogBaseConfig.with_tracing(segment_size=64 * 1024, **overrides)
    return LogBase(n_nodes=3, config=config)


def test_traced_cluster_installs_tracer_and_gate_off_does_not():
    db = traced_db()
    assert db.cluster.tracer is not None
    assert current_tracer() is db.cluster.tracer
    uninstall_tracer()
    plain = LogBase(n_nodes=3)
    assert plain.cluster.tracer is None
    assert current_tracer() is None


def test_trace_propagates_across_machine_boundaries():
    db = traced_db()
    db.create_table(SCHEMA, only_servers=["ts-node-1"])
    client = db.client(db.cluster.machines[2])
    client.put_raw("t", KEY, "g", b"payload")  # also warms the location cache
    assert client.get_raw("t", KEY, "g") == b"payload"

    tracer = db.cluster.tracer
    assert tracer.open_spans == 0
    server_machine = db.cluster.master.server("ts-node-1").machine.name
    client_machine = db.cluster.machines[2].name
    assert server_machine != client_machine

    root = tracer.trace_log.traces("op.get")[-1]
    assert root.machine == client_machine
    rpc_spans = root.find("rpc.server")
    assert rpc_spans
    for rpc in rpc_spans:
        assert rpc.machine == server_machine
    # The trace id is the cross-machine correlation key: every span of
    # the operation carries it, whichever clock it was anchored on.
    for node in root.walk():
        assert node.trace_id == root.trace_id
        assert node.closed
    # The tree reproduces the client-observed latency (warm cache: no
    # metadata lookup outside the measured call).
    assert root.end_to_end() == pytest.approx(client.last_op_seconds, rel=1e-9)
    assert coverage(root) >= 0.99


def test_put_trace_shows_one_sequential_append_and_full_coverage():
    db = traced_db()
    db.create_table(SCHEMA, only_servers=["ts-node-1"])
    client = db.client(db.cluster.machines[2])
    for i in range(4):
        client.put_raw("t", b"%012d" % (i + 1), "g", b"x" * 256)

    tracer = db.cluster.tracer
    puts = tracer.trace_log.traces("op.put")
    assert len(puts) == 4
    for root in puts:
        # The paper-shaped write path: exactly one sequential log append
        # (which is where the DFS replication pipeline is charged).
        assert len(root.find("log.append")) == 1
        assert len(root.find("dfs.append")) >= 1
        assert coverage(root) >= 0.99

    report = where_did_time_go(tracer.trace_log.traces())
    assert report["percent_sum"] == pytest.approx(100.0, abs=1.0)
    assert report["coverage"] >= 0.99
    hist = tracer.histograms.get("latency.op.put")
    assert hist is not None and hist.count == 4


def test_hedged_read_spans_close_with_loser_in_background():
    # The hedge-under-limp gray schedule on a traced cluster: hedges must
    # fire, every span must close (no orphans across the whole chaotic
    # run), and cancelled-loser work must be marked background.
    config = LogBaseConfig.with_gray_resilience(
        segment_size=64 * 1024,
        read_cache_enabled=False,
        breaker_enabled=False,
        tracing=True,
    )
    report = run_chaos(
        "hedge-under-limp",
        seed=1,
        ops=60,
        config=config,
        schedules=GRAY_SCHEDULES,
    )
    assert report.passed, report.violations
    assert report.hedge_wins > 0

    tracer = current_tracer()
    assert tracer is not None
    assert tracer.open_spans == 0

    winners = [s for root in tracer.trace_log for s in root.find("dfs.hedge.winner")]
    losers = [s for root in tracer.trace_log for s in root.find("dfs.hedge.loser")]
    assert winners
    for winner in winners:
        assert winner.closed
        assert not winner.background
    # Remote losers (cancelled sibling reads) appear whenever a hedge
    # race was actually decided against a remote replica.
    if report.hedge_losses:
        assert losers
    for loser in losers:
        assert loser.closed
        assert loser.background
        assert loser.self_seconds >= 0.0
