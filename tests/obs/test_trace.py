"""Unit tests for spans, clock attribution, trace analysis and export."""

import json

import pytest

from repro.obs.analyze import (
    SlowOpSampler,
    TraceLog,
    coverage,
    critical_path,
    format_time_report,
    layer_breakdown,
    span_layer,
    where_did_time_go,
)
from repro.obs.export import chrome_trace, export_chrome_trace
from repro.obs.trace import (
    Tracer,
    current_span,
    current_tracer,
    install_tracer,
    root_span,
    span,
    uninstall_tracer,
)
from repro.sim.machine import Machine


def tracer(**kwargs) -> Tracer:
    created = Tracer(**kwargs)
    install_tracer(created)
    return created


# -- gating ----------------------------------------------------------------


def test_span_is_noop_without_tracer():
    machine = Machine("m0")
    with span("log.append", machine) as opened:
        assert opened is None
    assert current_span() is None
    assert current_tracer() is None


def test_child_span_is_noop_without_open_trace():
    installed = tracer()
    with span("log.append", Machine("m0")) as opened:
        assert opened is None
    assert installed.spans_started == 0


def test_uninstall_ignores_stale_tracer_handles():
    first = tracer()
    second = Tracer()
    install_tracer(second)
    uninstall_tracer(first)  # stale handle: must not unhook the newer tracer
    assert current_tracer() is second
    uninstall_tracer(second)
    assert current_tracer() is None


# -- clock attribution -----------------------------------------------------


def test_root_span_collects_own_clock_advance():
    installed = tracer()
    machine = Machine("m0")
    with root_span("op.get", machine) as root:
        machine.clock.advance(0.25)
    assert root.closed
    assert root.duration == pytest.approx(0.25)
    assert root.self_seconds == pytest.approx(0.25)
    assert installed.open_spans == 0
    assert installed.trace_log.traces() == [root]


def test_cross_clock_child_extends_end_to_end():
    tracer()
    client, server = Machine("client"), Machine("server")
    with root_span("op.get", client) as root:
        client.clock.advance(0.1)
        with span("rpc.server", server) as rpc:
            server.clock.advance(0.4)
    assert rpc.trace_id == root.trace_id
    assert rpc.machine == "server"
    assert root.end_to_end() == pytest.approx(0.5)
    assert coverage(root) == pytest.approx(1.0)
    assert [s.name for s in critical_path(root)] == ["op.get", "rpc.server"]


def test_same_clock_child_does_not_double_count():
    tracer()
    machine = Machine("m0")
    with root_span("op.put", machine) as root:
        with span("log.append", machine) as child:
            machine.clock.advance(0.3)
    # The child's time already advanced the root's own clock: end-to-end
    # is the root duration alone, and exclusive time sits on the child.
    assert root.end_to_end() == pytest.approx(0.3)
    assert child.self_seconds == pytest.approx(0.3)
    assert root.self_seconds == pytest.approx(0.0)
    assert coverage(root) == pytest.approx(1.0)
    # Same-clock children overlap the parent: the critical path stops.
    assert [s.name for s in critical_path(root)] == ["op.put"]


def test_background_child_excluded_from_latency():
    tracer()
    reader, loser = Machine("reader"), Machine("loser")
    with root_span("op.get", reader) as root:
        reader.clock.advance(0.1)
        with span("dfs.hedge.loser", loser, background=True) as bg:
            loser.clock.advance(0.7)
    assert bg.closed and bg.background
    assert root.end_to_end() == pytest.approx(0.1)
    layers = layer_breakdown([root])
    assert layers["background.dfs"] == pytest.approx(0.7)
    assert layers["client"] == pytest.approx(0.1)


def test_unowned_clock_charge_lands_in_background_seconds():
    tracer()
    anchor, other = Machine("anchor"), Machine("other")
    with root_span("op.put", anchor) as root:
        other.clock.advance(0.3)
    assert root.self_seconds == 0.0
    assert root.background_seconds == pytest.approx(0.3)


def test_ancestor_clock_charge_credits_the_owning_span():
    # A machine can play two roles at once: a replica write hosted on the
    # client's machine, charged while a server-side span is innermost,
    # extends the client root's duration — so it must be the root's self
    # time, not the inner span's background time.
    tracer()
    client, server = Machine("c"), Machine("s")
    with root_span("op.put", client) as root:
        with span("dfs.append", server) as inner:
            client.clock.advance(0.2)
    assert root.self_seconds == pytest.approx(0.2)
    assert inner.background_seconds == 0.0
    assert coverage(root) == pytest.approx(1.0)


# -- trace identity --------------------------------------------------------


def test_each_root_starts_a_fresh_trace():
    installed = tracer()
    machine = Machine("m0")
    with root_span("op.put", machine):
        pass
    with root_span("op.get", machine):
        pass
    ids = {root.trace_id for root in installed.trace_log.traces()}
    assert len(ids) == 2


def test_root_span_degrades_to_child_inside_open_trace():
    installed = tracer()
    machine = Machine("m0")
    with root_span("op.put", machine) as outer:
        with root_span("compaction.round", machine) as inner:
            pass
    assert inner.trace_id == outer.trace_id
    assert not inner.root
    assert installed.trace_log.traces() == [outer]


def test_exception_tags_span_and_still_closes_it():
    installed = tracer()
    machine = Machine("m0")
    with pytest.raises(RuntimeError):
        with root_span("op.get", machine) as root:
            raise RuntimeError("boom")
    assert root.closed
    assert root.attrs["error"] == "RuntimeError"
    assert installed.open_spans == 0


def test_root_latency_recorded_in_histogram():
    installed = tracer()
    machine = Machine("m0")
    with root_span("op.get", machine):
        machine.clock.advance(0.2)
    hist = installed.histograms.get("latency.op.get")
    assert hist is not None
    assert hist.count == 1
    assert hist.percentile(0.5) == pytest.approx(0.2)


# -- analysis --------------------------------------------------------------


def test_trace_log_ring_evicts_oldest():
    installed = tracer(ring=2)
    machine = Machine("m0")
    for _ in range(3):
        with root_span("op.put", machine):
            machine.clock.advance(0.01)
    assert len(installed.trace_log) == 2
    assert installed.trace_log.appended == 3


def test_trace_log_rejects_empty_ring():
    with pytest.raises(ValueError):
        TraceLog(0)


def test_slow_op_sampler_keeps_the_n_slowest():
    sampler = SlowOpSampler(per_op=2)
    for latency, tag in ((0.1, "a"), (0.5, "b"), (0.3, "c"), (0.05, "d")):
        sampler.offer("op.get", latency, tag)
    assert sampler.worst("op.get") == ["b", "c"]
    assert sampler.op_names() == ["op.get"]
    assert sampler.worst("op.scan") == []


def test_span_layer_mapping():
    assert span_layer("op.get") == "client"
    assert span_layer("client.retry") == "client"
    assert span_layer("rpc.server") == "rpc"
    assert span_layer("ts.read") == "server"
    assert span_layer("txn.commit") == "txn"
    assert span_layer("log.append") == "wal"
    assert span_layer("dfs.read") == "dfs"
    assert span_layer("compaction.plan") == "compaction"
    assert span_layer("recovery.redo") == "recovery"
    assert span_layer("weird") == "other"


def test_where_did_time_go_percentages_sum_to_hundred():
    installed = tracer()
    client, server = Machine("c"), Machine("s")
    with root_span("op.get", client):
        client.clock.advance(0.1)
        with span("ts.read", server):
            server.clock.advance(0.3)
    report = where_did_time_go(installed.trace_log.traces())
    assert report["traces"] == 1
    assert report["total_seconds"] == pytest.approx(0.4)
    assert report["percent_sum"] == pytest.approx(100.0)
    assert report["coverage"] == pytest.approx(1.0)
    assert report["layer_percent"]["server"] == pytest.approx(75.0)


def test_format_time_report_renders_every_section():
    installed = tracer()
    machine = Machine("m0")
    with root_span("op.put", machine):
        machine.clock.advance(0.2)
    text = format_time_report(installed)
    assert "where did the time go" in text
    assert "latency histograms" in text
    assert "slowest traces" in text
    assert "op.put" in text


def test_format_time_report_empty_trace_log():
    assert format_time_report(Tracer()) == "trace log empty: no closed traces"


# -- export ----------------------------------------------------------------


def test_chrome_trace_event_shape(tmp_path):
    installed = tracer()
    client, server = Machine("c"), Machine("s")
    with root_span("op.get", client) as root:
        client.clock.advance(0.1)
        with span("rpc.server", server):
            server.clock.advance(0.4)
    document = chrome_trace(installed.trace_log.traces())
    events = document["traceEvents"]
    assert len(events) == 2
    rpc = next(e for e in events if e["name"] == "rpc.server")
    assert rpc["ph"] == "X"
    assert rpc["pid"] == "s"
    assert rpc["tid"] == f"trace-{root.trace_id}"
    assert rpc["dur"] == pytest.approx(0.4e6)
    assert {e["tid"] for e in events} == {f"trace-{root.trace_id}"}

    path = tmp_path / "trace.json"
    assert export_chrome_trace(installed, str(path)) == 2
    loaded = json.loads(path.read_text())
    assert loaded["displayTimeUnit"] == "ms"
    assert len(loaded["traceEvents"]) == 2
