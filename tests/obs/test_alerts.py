"""Unit tests for the SLO/alert engine (threshold and burn-rate rules)."""

from repro.obs.alerts import CLUSTER_ENTITY, AlertEngine, SloRule, ThresholdRule
from repro.obs.timeseries import MetricStore


def _engine(*rules, **kwargs):
    return AlertEngine(rules=list(rules), **kwargs)


def test_threshold_fires_per_entity():
    engine = _engine(
        ThresholdRule(
            name="server-down",
            metric="gauge.server_up",
            op="<",
            threshold=0.5,
            absent_value=1.0,
        )
    )
    store = MetricStore(capacity=8)
    store.record("node-0", "gauge.server_up", 1.0, 1.0)
    store.record("node-1", "gauge.server_up", 1.0, 0.0)
    fired = engine.evaluate(store, 1.0)
    assert [(a["alert"], a["entity"]) for a in fired] == [("server-down", "node-1")]
    assert fired[0]["state"] == "firing"
    assert fired[0]["severity"] == "page"


def test_threshold_resolves_with_duration():
    engine = _engine(
        ThresholdRule(name="hot", metric="gauge.tablet_heat", op=">", threshold=5.0)
    )
    store = MetricStore(capacity=8)
    store.record("t1", "gauge.tablet_heat", 1.0, 9.0)
    assert engine.evaluate(store, 1.0)
    store.record("t1", "gauge.tablet_heat", 4.0, 2.0)
    assert engine.evaluate(store, 4.0) == []  # resolutions are not returned
    assert engine.firing() == []
    resolved = [r for r in engine.log if r["state"] == "resolved"]
    assert len(resolved) == 1
    assert resolved[0]["duration"] == 3.0


def test_sustained_for_delays_firing():
    engine = _engine(
        ThresholdRule(
            name="backlog",
            metric="gauge.recovery_queue",
            op=">",
            threshold=0.0,
            sustained_for=2.0,
        )
    )
    store = MetricStore(capacity=8)
    for t in (0.0, 1.0):
        store.record("node-0", "gauge.recovery_queue", t, 3.0)
        assert engine.evaluate(store, t) == []
    store.record("node-0", "gauge.recovery_queue", 2.0, 3.0)
    fired = engine.evaluate(store, 2.0)
    assert [a["alert"] for a in fired] == ["backlog"]


def test_breach_interruption_resets_sustained_clock():
    engine = _engine(
        ThresholdRule(
            name="backlog",
            metric="gauge.recovery_queue",
            op=">",
            threshold=0.0,
            sustained_for=2.0,
        )
    )
    store = MetricStore(capacity=8)
    store.record("node-0", "gauge.recovery_queue", 0.0, 3.0)
    engine.evaluate(store, 0.0)
    store.record("node-0", "gauge.recovery_queue", 1.0, 0.0)  # recovers
    engine.evaluate(store, 1.0)
    store.record("node-0", "gauge.recovery_queue", 2.0, 3.0)  # breaches again
    assert engine.evaluate(store, 2.0) == []  # clock restarted at t=2
    store.record("node-0", "gauge.recovery_queue", 4.0, 3.0)
    assert engine.evaluate(store, 4.0)


def test_stale_sample_decays_to_absent_value():
    """A firing entity whose series stops being scraped resolves via
    ``absent_value`` (server-up style: no sample this tick means up)."""
    engine = _engine(
        ThresholdRule(
            name="server-down",
            metric="gauge.server_up",
            op="<",
            threshold=0.5,
            absent_value=1.0,
        )
    )
    store = MetricStore(capacity=8)
    store.record("node-0", "gauge.server_up", 1.0, 0.0)
    assert engine.evaluate(store, 1.0)
    # Tick 2: nothing recorded for node-0 — the stale t=1 sample must not
    # keep the alert alive.
    assert engine.evaluate(store, 2.0) == []
    assert engine.firing() == []


def test_counter_delta_absent_means_quiet():
    """Delta series default ``absent_value=0``: a quiet tick resolves."""
    engine = _engine(
        ThresholdRule(name="burst", metric="net.messages", op=">", threshold=10.0)
    )
    store = MetricStore(capacity=8)
    store.record("node-0", "net.messages", 1.0, 50.0)
    assert engine.evaluate(store, 1.0)
    assert engine.evaluate(store, 2.0) == []
    assert engine.firing() == []


def test_slo_rule_burn_rate():
    rule = SloRule(
        name="slo-burn-op.put",
        op_class="op.put",
        target_seconds=0.05,
        objective=0.99,
        burn_threshold=10.0,
        window=30.0,
        min_samples=5,
    )
    engine = _engine(rule)
    store = MetricStore(capacity=32)
    # 100 ops, 1 bad: burn = (1/100)/0.01 = 1.0 — under threshold.
    store.record(CLUSTER_ENTITY, rule.count_series, 1.0, 100.0)
    store.record(CLUSTER_ENTITY, rule.bad_series, 1.0, 1.0)
    assert engine.evaluate(store, 1.0) == []
    # 20 more ops, 15 bad: window burn >> 10x.
    store.record(CLUSTER_ENTITY, rule.count_series, 2.0, 120.0)
    store.record(CLUSTER_ENTITY, rule.bad_series, 2.0, 16.0)
    fired = engine.evaluate(store, 2.0)
    assert [a["alert"] for a in fired] == ["slo-burn-op.put"]
    assert fired[0]["entity"] == CLUSTER_ENTITY


def test_slo_rule_needs_min_samples():
    rule = SloRule(
        name="slo-burn-op.get",
        op_class="op.get",
        target_seconds=0.05,
        min_samples=50,
    )
    engine = _engine(rule)
    store = MetricStore(capacity=32)
    store.record(CLUSTER_ENTITY, rule.count_series, 1.0, 10.0)
    store.record(CLUSTER_ENTITY, rule.bad_series, 1.0, 10.0)  # 100% bad
    assert engine.evaluate(store, 1.0) == []


def test_alert_log_is_bounded():
    engine = _engine(
        ThresholdRule(name="flap", metric="gauge.tablet_heat", op=">", threshold=0.0),
        max_log=4,
    )
    store = MetricStore(capacity=8)
    for i in range(8):
        t = float(i)
        store.record("t1", "gauge.tablet_heat", t, 1.0 if i % 2 == 0 else 0.0)
        engine.evaluate(store, t)
    assert len(engine.log) <= 4
    assert engine.fired_names() == {"flap"}
