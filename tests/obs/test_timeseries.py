"""Unit tests for the fixed-capacity time series and the metric store."""

import pytest

from repro.obs.timeseries import MetricStore, TimeSeries


def test_series_records_in_order():
    series = TimeSeries("node-0", "disk.seeks", capacity=8)
    series.record(1.0, 10.0)
    series.record(2.0, 20.0)
    assert series.samples() == [(1.0, 10.0), (2.0, 20.0)]
    assert series.latest() == (2.0, 20.0)
    assert len(series) == 2


def test_ring_overwrites_oldest_at_capacity():
    series = TimeSeries("node-0", "disk.seeks", capacity=3)
    for i in range(5):
        series.record(float(i), float(i * 10))
    assert len(series) == 3
    assert series.samples() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
    assert series.latest() == (4.0, 40.0)


def test_empty_series():
    series = TimeSeries("node-0", "disk.seeks", capacity=4)
    assert series.latest() is None
    assert series.samples() == []
    assert series.window(0.0) == []


def test_window_selects_samples_at_or_after_since():
    series = TimeSeries("node-0", "disk.seeks", capacity=16)
    for i in range(10):
        series.record(float(i), float(i))
    assert series.window(7.0) == [(7.0, 7.0), (8.0, 8.0), (9.0, 9.0)]
    assert series.window(100.0) == []


def test_tail_returns_newest_n():
    series = TimeSeries("node-0", "disk.seeks", capacity=4)
    for i in range(6):
        series.record(float(i), float(i))
    assert series.tail(2) == [(4.0, 4.0), (5.0, 5.0)]
    assert series.tail(100) == series.samples()


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        TimeSeries("node-0", "disk.seeks", capacity=0)


def test_store_keys_series_by_entity_and_metric():
    store = MetricStore(capacity=8)
    store.record("node-0", "disk.seeks", 1.0, 5.0)
    store.record("node-1", "disk.seeks", 1.0, 7.0)
    store.record("node-0", "net.messages", 2.0, 1.0)
    assert store.latest("node-0", "disk.seeks") == 5.0
    assert store.latest("node-1", "disk.seeks") == 7.0
    assert store.latest("node-2", "disk.seeks") is None
    assert sorted(store.entities_for("disk.seeks")) == ["node-0", "node-1"]
    assert sorted(store.metric_names()) == ["disk.seeks", "net.messages"]
    assert len(store.keys()) == 3


def test_store_rejects_unregistered_metric_names():
    store = MetricStore(capacity=8)
    with pytest.raises(ValueError):
        store.record("node-0", "not.a.registered.metric", 1.0, 1.0)


def test_store_tails_bundle_newest_samples_per_entity():
    store = MetricStore(capacity=8)
    for i in range(5):
        store.record("node-0", "disk.seeks", float(i), float(i))
    store.record("node-1", "net.messages", 9.0, 3.0)
    tails = store.tails(2)
    assert tails["node-0"]["disk.seeks"] == [(3.0, 3.0), (4.0, 4.0)]
    assert tails["node-1"]["net.messages"] == [(9.0, 3.0)]
