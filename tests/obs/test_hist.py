"""Unit tests for the geometric-bucket histogram and its registry."""

import pytest

from repro.obs.hist import Histogram, HistogramRegistry


def test_empty_histogram_reports_zeros():
    hist = Histogram("latency.op.get")
    assert hist.count == 0
    assert hist.mean == 0.0
    assert hist.percentile(0.5) == 0.0
    snap = hist.snapshot()
    assert snap["count"] == 0
    assert snap["min"] == 0.0
    assert snap["max"] == 0.0


def test_identical_samples_are_exact():
    hist = Histogram("latency.op.get")
    for _ in range(100):
        hist.record(0.125)
    assert hist.percentile(0.50) == 0.125
    assert hist.percentile(0.99) == 0.125
    assert hist.mean == pytest.approx(0.125)
    assert hist.min == 0.125
    assert hist.max == 0.125


def test_nearest_rank_matches_list_for_spread_samples():
    # Values spread over decades land in distinct buckets, so every
    # percentile reproduces the list-based nearest-rank value exactly.
    values = [10.0 ** (i / 3.0 - 4.0) for i in range(30)]
    hist = Histogram("latency.op.get")
    for value in values:
        hist.record(value)
    ordered = sorted(values)
    for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
        rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
        assert hist.percentile(q) == ordered[rank]


def test_shared_bucket_resolves_ranks_exactly_below_the_cap():
    # Coarse buckets force distinct values into one bucket; the exact
    # per-bucket value counts still answer every rank precisely.
    hist = Histogram("latency.op.get", growth=2.0)
    for value in (1.0, 1.1, 1.2, 1.3, 1.4):
        hist.record(value)
    assert hist.percentile(0.0) == 1.0
    assert hist.percentile(0.5) == 1.2
    assert hist.percentile(1.0) == 1.4


def test_collapsed_bucket_falls_back_to_the_summary():
    # Past the cap a bucket drops its value map: edges stay exact, a
    # mid-bucket rank approximates within the observed [min, max].
    hist = Histogram("latency.op.get", growth=2.0, exact_cap=2)
    for value in (1.0, 1.1, 1.2, 1.3, 1.4):
        hist.record(value)
    assert hist.percentile(0.0) == 1.0
    assert hist.percentile(1.0) == 1.4
    assert 1.0 <= hist.percentile(0.5) <= 1.4


def test_negative_values_clamp_to_zero():
    hist = Histogram("latency.op.get")
    hist.record(-1.0)
    assert hist.count == 1
    assert hist.min == 0.0
    assert hist.max == 0.0


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        Histogram("latency.x", growth=1.0)
    with pytest.raises(ValueError):
        Histogram("latency.x", floor=0.0)


def test_registry_creates_once_and_snapshots():
    registry = HistogramRegistry()
    hist = registry.histogram("latency.op.get")
    assert registry.histogram("latency.op.get") is hist
    assert registry.get("latency.op.get") is hist
    assert registry.get("latency.op.scan") is None
    assert len(registry) == 1
    hist.record(0.5)
    assert registry.snapshot()["latency.op.get"]["count"] == 1


def test_registry_rejects_unknown_metric_names():
    registry = HistogramRegistry()
    with pytest.raises(ValueError):
        registry.histogram("totally.unknown.series")


def test_quantile_at_rank_boundaries():
    # Nearest-rank at the exact edges: q=0 is the min, q=1 the max, and
    # a q landing exactly on a rank boundary picks that rank's value.
    hist = Histogram("latency.op.get", growth=2.0)
    for value in (1.0, 2.0, 3.0, 4.0):
        hist.record(value)
    assert hist.percentile(0.0) == 1.0
    assert hist.percentile(1.0) == 4.0
    assert hist.percentile(1.0 / 3.0) == 2.0  # rank exactly 1
    assert hist.percentile(2.0 / 3.0) == 3.0  # rank exactly 2


def test_single_bucket_histogram_quantiles():
    # Every sample in one geometric bucket: the exact value map still
    # resolves all quantiles, including both boundaries.
    hist = Histogram("latency.op.get", growth=10.0, floor=1.0)
    for value in (1.5, 2.0, 2.5, 3.0):
        hist.record(value)
    assert len(hist._buckets) == 1
    assert hist.percentile(0.0) == 1.5
    assert hist.percentile(1.0 / 3.0) == 2.0
    assert hist.percentile(1.0) == 3.0


def test_count_above_empty_histogram():
    hist = Histogram("latency.op.get")
    assert hist.count_above(0.0) == 0
    assert hist.fraction_above(0.0) == 0.0


def test_count_above_is_strict_and_exact_with_value_maps():
    hist = Histogram("latency.op.get", growth=2.0)
    for value in (1.0, 1.1, 1.2, 1.3, 1.4):
        hist.record(value)
    assert hist.count_above(0.5) == 5  # whole bucket above
    assert hist.count_above(1.2) == 2  # strictly greater: 1.2 excluded
    assert hist.count_above(1.4) == 0  # threshold at the max
    assert hist.fraction_above(1.2) == pytest.approx(0.4)


def test_count_above_collapsed_bucket_approximates():
    hist = Histogram("latency.op.get", growth=2.0, exact_cap=2)
    for value in (1.0, 1.1, 1.2, 1.3, 1.4):
        hist.record(value)
    # Below the bucket minimum / above its maximum stay exact...
    assert hist.count_above(0.5) == 5
    assert hist.count_above(1.4) == 0
    # ...and a straddling threshold contributes the count-weighted half.
    assert hist.count_above(1.2) == 5 // 2
