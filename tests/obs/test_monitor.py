"""Integration tests for the ClusterMonitor scrape/alert/recorder plane."""

import json

import pytest

from repro.chaos.runner import GROUP, KEY_WIDTH, SCHEMA, TABLE
from repro.config import LogBaseConfig
from repro.core.database import LogBase
from repro.core.stats import collect_cluster_stats
from repro.obs.monitor import collect_health_gauges, gauges_by_entity
from repro.sim.metrics import GAUGE_SERVER_UP, validate_metric_name


@pytest.fixture
def monitored_db():
    config = LogBaseConfig.with_monitoring(
        segment_size=64 * 1024, monitor_scrape_interval=0.0
    )
    db = LogBase(n_nodes=4, config=config)
    db.create_table(SCHEMA, tablets_per_server=2)
    yield db
    if db.cluster.monitor is not None:
        db.cluster.monitor.close()


def _write_some(db, n=20):
    client = db.client(db.cluster.machines[-1])
    for i in range(n):
        client.put_raw(TABLE, str(i).zfill(KEY_WIDTH).encode(), GROUP, b"v" * 32)
    return client


def test_gate_off_builds_no_monitor():
    db = LogBase(n_nodes=4, config=LogBaseConfig(segment_size=64 * 1024))
    assert db.cluster.monitor is None
    db.create_table(SCHEMA, tablets_per_server=2)
    db.cluster.heartbeat()  # must not require a monitor


def test_heartbeat_scrapes_counters_and_gauges(monitored_db):
    db = monitored_db
    monitor = db.cluster.monitor
    assert monitor is not None
    _write_some(db)
    db.cluster.heartbeat()
    assert monitor.scrapes >= 1
    # Every server shows as up.
    for server in db.cluster.servers:
        assert monitor.store.latest(server.name, GAUGE_SERVER_UP) == 1.0
    # Counter deltas landed for the machines that did work.
    assert "disk.bytes_written" in monitor.store.metric_names()
    # Samples are per-interval deltas, not cumulative totals: summing the
    # series reconstructs the machine's counter exactly.
    db.cluster.heartbeat()
    for machine in db.cluster.machines:
        series = monitor.store.series(machine.name, "disk.bytes_written")
        sampled = sum(v for _t, v in series.samples()) if series else 0.0
        assert sampled == pytest.approx(machine.counters.get("disk.bytes_written"))


def test_kill_fires_server_down_and_postmortem(monitored_db):
    db = monitored_db
    monitor = db.cluster.monitor
    _write_some(db)
    db.cluster.heartbeat()
    victim = db.cluster.servers[0]
    db.cluster.kill_node(victim.name)
    fired = monitor.tick(force=True)
    assert ("server-down", victim.name) in {
        (a["alert"], a["entity"]) for a in fired
    }
    # The injected kill was observed as a fault...
    assert monitor.fault_times()
    # ...and the alert latency against it is non-negative and small.
    latency = monitor.detection_latency("server-down")
    assert latency is not None and latency >= 0.0
    # The fire snapshotted a post-mortem bundle.
    reasons = [pm["reason"] for pm in monitor.postmortem_dicts()]
    assert any(r.startswith("alert:server-down") for r in reasons)


def test_postmortem_exports_json_and_markdown(monitored_db):
    db = monitored_db
    monitor = db.cluster.monitor
    _write_some(db)
    db.cluster.heartbeat()
    db.cluster.kill_node(db.cluster.servers[0].name)
    monitor.tick(force=True)
    pm = monitor.recorder.postmortems[0]
    decoded = json.loads(pm.to_json())
    assert decoded["reason"] == pm.reason
    assert "series" in decoded and "events" in decoded
    markdown = pm.to_markdown()
    assert markdown.startswith("# Post-mortem:")
    assert "## Recent events" in markdown


def test_scrape_interval_gates_ticks():
    config = LogBaseConfig.with_monitoring(segment_size=64 * 1024)
    assert config.monitor_scrape_interval > 0.0
    db = LogBase(n_nodes=4, config=config)
    db.create_table(SCHEMA, tablets_per_server=2)
    monitor = db.cluster.monitor
    try:
        db.cluster.heartbeat()
        scrapes = monitor.scrapes
        # Same simulated instant: the cadence gate swallows the tick...
        monitor.tick()
        assert monitor.scrapes == scrapes
        # ...but force bypasses it.
        monitor.tick(force=True)
        assert monitor.scrapes == scrapes + 1
    finally:
        monitor.close()


def test_note_fault_records_event_and_bundle(monitored_db):
    db = monitored_db
    monitor = db.cluster.monitor
    db.cluster.heartbeat()
    monitor.note_fault("synthetic", {"node": "ts-node-1", "why": "test"})
    assert monitor.first_fault_time() is not None
    events = monitor.recorder.events()
    assert any(e["kind"] == "synthetic" for e in events.get("ts-node-1", []))
    assert [pm["reason"] for pm in monitor.postmortem_dicts()] == [
        "fault:synthetic"
    ]


def test_health_gauges_shared_with_stats(monitored_db):
    """Satellite: core.stats and the scraper share one gauge schema."""
    db = monitored_db
    _write_some(db)
    db.cluster.heartbeat()
    stats = collect_cluster_stats(db.cluster)
    flat = collect_health_gauges(db.cluster)
    nested = gauges_by_entity(db.cluster)
    # The stats report embeds exactly the nested shape of the flat scrape.
    assert stats.health == nested
    assert {
        (entity, metric)
        for entity, gauges in nested.items()
        for metric in gauges
    } == set(flat)
    # Every gauge the schema emits is a registered metric name.
    for _entity, metric in flat:
        validate_metric_name(metric)
    # And the scraper's latest samples agree with the stats snapshot.
    monitor = db.cluster.monitor
    for (entity, metric), value in flat.items():
        assert monitor.store.latest(entity, metric) == pytest.approx(value)


def test_monitoring_gate_changes_no_simulated_state():
    """The plane only reads: an identical workload with the gate on and
    off lands on byte-identical simulated outcomes (the enabled-arm twin
    of the gate-off figure identity)."""

    def run(monitoring):
        config = LogBaseConfig.with_monitoring(
            segment_size=64 * 1024, monitoring=monitoring
        )
        db = LogBase(n_nodes=4, config=config)
        db.create_table(SCHEMA, tablets_per_server=2)
        client = db.client(db.cluster.machines[-1])
        for i in range(40):
            client.put_raw(TABLE, str(i).zfill(KEY_WIDTH).encode(), GROUP, b"v" * 32)
            if i % 5 == 0:
                db.cluster.heartbeat()
        db.cluster.heartbeat()
        state = (
            db.cluster.elapsed_makespan(),
            db.cluster.total_counters(),
            [s.log.total_bytes() for s in db.cluster.servers],
            [s.log.next_lsn for s in db.cluster.servers],
        )
        if db.cluster.monitor is not None:
            db.cluster.monitor.close()
        return state

    assert run(False) == run(True)


def test_close_unhooks_fault_observer(monitored_db):
    db = monitored_db
    monitor = db.cluster.monitor
    monitor.close()
    before = len(monitor.fault_log)
    db.cluster.kill_node(db.cluster.servers[0].name)
    assert len(monitor.fault_log) == before
