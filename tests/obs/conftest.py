"""Tracer hygiene: the tracer is process-global (like the clock observer
it installs), so every obs test tears it down to keep later tests —
including untraced seed benchmarks — unobserved."""

import pytest

from repro.obs.trace import uninstall_tracer


@pytest.fixture(autouse=True)
def _clean_tracer():
    yield
    uninstall_tracer()
