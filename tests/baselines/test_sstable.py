"""Unit tests for SSTables: blocks, sparse index, trailer, caching."""

import pytest

from repro.baselines.hbase.sstable import SSTable, SSTableWriter
from repro.util.lru import LRUCache


def build_table(dfs, machine, n=100, block_size=256, path="/sst/t1"):
    writer = SSTableWriter(dfs, path, machine, block_size=block_size)
    for i in range(n):
        writer.add(f"k{i:04d}".encode(), i + 1, f"value-{i}".encode())
    writer.finish()
    return SSTable(dfs, path, machine)


def test_trailer_metadata(dfs, machines):
    table = build_table(dfs, machines[0], n=50)
    assert table.entry_count == 50
    assert table.max_ts == 50


def test_point_lookup(dfs, machines):
    table = build_table(dfs, machines[0])
    versions = table.get_versions(b"k0042", None)
    assert versions == [(43, b"value-42")]


def test_absent_key(dfs, machines):
    table = build_table(dfs, machines[0])
    assert table.get_versions(b"nope", None) == []


def test_multiversion_key(dfs, machines):
    writer = SSTableWriter(dfs, "/sst/mv", machines[0], block_size=128)
    for ts in (1, 3, 7):
        writer.add(b"k", ts, f"v{ts}".encode())
    writer.finish()
    table = SSTable(dfs, "/sst/mv", machines[0])
    assert table.get_versions(b"k", None) == [(1, b"v1"), (3, b"v3"), (7, b"v7")]


def test_tombstones_roundtrip(dfs, machines):
    writer = SSTableWriter(dfs, "/sst/tomb", machines[0])
    writer.add(b"k", 1, b"v")
    writer.add(b"k", 2, None)
    writer.finish()
    table = SSTable(dfs, "/sst/tomb", machines[0])
    assert table.get_versions(b"k", None) == [(1, b"v"), (2, None)]


def test_sparse_index_has_multiple_blocks(dfs, machines):
    table = build_table(dfs, machines[0], n=200, block_size=256)
    assert len(table._block_index()) > 3


def test_range_scan(dfs, machines):
    table = build_table(dfs, machines[0])
    keys = [k for k, _, _ in table.range(b"k0010", b"k0014", None)]
    assert keys == [b"k0010", b"k0011", b"k0012", b"k0013"]


def test_full_scan_in_order(dfs, machines):
    table = build_table(dfs, machines[0], n=60)
    keys = [k for k, _, _ in table.scan()]
    assert keys == sorted(keys)
    assert len(keys) == 60


def test_point_read_fetches_whole_block(dfs, machines):
    """The §4.2.2 effect: HBase reads a 64 KB-ish block per point read."""
    table = build_table(dfs, machines[0], n=200, block_size=4096)
    machines[0].counters.reset()
    table.get_versions(b"k0100", None)
    assert machines[0].counters.get("disk.bytes_read") >= 2048


def test_block_cache_absorbs_second_read(dfs, machines):
    table = build_table(dfs, machines[0], n=200, block_size=512)
    cache = LRUCache(byte_capacity=1 << 20, sizer=lambda b: 512)
    table.get_versions(b"k0100", cache)
    before = machines[0].counters.get("disk.reads")
    table.get_versions(b"k0100", cache)
    assert machines[0].counters.get("disk.reads") == before


def test_corrupt_magic_detected(dfs, machines):
    from repro.errors import CorruptLogRecord

    writer = dfs.create("/sst/bad", machines[0])
    writer.append(b"not an sstable at all, padded to trailer size....")
    with pytest.raises(CorruptLogRecord):
        SSTable(dfs, "/sst/bad", machines[0])
