"""LRS baseline tests: LogBase architecture with LSM-tree indexes."""

from repro.baselines.lrs.store import LRSCluster, make_lrs_config
from repro.config import LogBaseConfig
from repro.core.client import Client
from repro.index.lsm import LSMTreeIndex


def test_config_swaps_index_kind():
    cfg = make_lrs_config(LogBaseConfig(segment_size=123))
    assert cfg.index_kind == "lsm"
    assert cfg.segment_size == 123  # other settings preserved


def test_servers_use_lsm_indexes(schema):
    cluster = LRSCluster(3)
    cluster.create_table(schema)
    for index in cluster.servers[0].indexes().values():
        assert isinstance(index, LSMTreeIndex)


def test_full_crud_on_lrs(schema):
    cluster = LRSCluster(3)
    cluster.create_table(schema)
    client = Client(cluster.master, cluster.machines[0])
    client.put("events", b"000000000001", {"payload": {"body": b"v1"}})
    assert client.get("events", b"000000000001", "payload") == {"body": b"v1"}
    client.delete("events", b"000000000001", "payload")
    assert client.get("events", b"000000000001", "payload") is None


def test_lrs_survives_index_spill(schema):
    """Data stays correct across LSM flushes (index beyond memory)."""
    cluster = LRSCluster(3)
    cluster.create_table(schema)
    client = Client(cluster.master, cluster.machines[0])
    # Shrink memtables so flushes happen at test scale.
    for server in cluster.servers:
        for index in server.indexes().values():
            index._memtable_limit = 24 * 16
    keys = [str(k).zfill(12).encode() for k in range(0, 2_000_000_000, 9_900_991)]
    for key in keys:
        client.put_raw("events", key, "payload", b"val-" + key)
    flushed = sum(
        index.flushes
        for server in cluster.servers
        for index in server.indexes().values()
    )
    assert flushed > 0
    for key in keys[:50]:
        assert client.get_raw("events", key, "payload") == b"val-" + key


def test_lrs_index_memory_below_blink_equivalent(schema):
    """The reason LRS exists: index memory stays bounded."""
    cluster = LRSCluster(3)
    cluster.create_table(schema)
    client = Client(cluster.master, cluster.machines[0])
    for server in cluster.servers:
        for index in server.indexes().values():
            index._memtable_limit = 24 * 32
    n = 600
    for k in range(n):
        key = str(k * 3_000_000).zfill(12).encode()
        client.put_raw("events", key, "payload", b"x")
    from repro.index.interface import ENTRY_BYTES

    resident = sum(s.index_memory_bytes() for s in cluster.servers)
    # Far below the n * ENTRY_BYTES a fully in-memory index would need
    # (bloom filters and block indexes are small).
    assert resident < n * ENTRY_BYTES
