"""HBase region server tests: WAL+Data semantics, flushes, recovery."""

import pytest

from repro.baselines.hbase.cluster import HBaseCluster
from repro.baselines.hbase.store import HBaseConfig, HBaseRegionServer
from repro.coordination.tso import TimestampOracle
from repro.coordination.znodes import CoordinationService
from repro.core.partition import KeyRange
from repro.core.tablet import Tablet, TabletId
from repro.errors import ServerDownError
from repro.wal.record import RecordType


@pytest.fixture
def server(dfs, machines, schema):
    tso = TimestampOracle(CoordinationService())
    config = HBaseConfig(memstore_flush_size=2048, sstable_block_size=512)
    srv = HBaseRegionServer("rs-0", machines[0], dfs, tso, config)
    srv.assign_tablet(Tablet(TabletId("events", 0), KeyRange(b"", None), schema))
    return srv


def test_write_then_read_from_memstore(server):
    ts = server.write("events", b"k", {"payload": b"v"})
    assert server.read("events", b"k", "payload") == (ts, b"v")


def test_write_goes_to_wal_and_memstore(server):
    server.write("events", b"k", {"payload": b"v"})
    wal_records = [r for _, r in server.wal.scan_all() if r.record_type is RecordType.WRITE]
    assert len(wal_records) == 1
    assert server._memstores[("events#0", "payload")].get_latest(b"k") is not None


def test_flush_on_threshold_and_read_from_sstable(server):
    for i in range(40):  # 40 * (~70 bytes) > 2048 -> at least one flush
        server.write("events", f"k{i:02d}".encode(), {"payload": b"x" * 64})
    assert server.flushes >= 1
    assert server.read("events", b"k00", "payload")[1] == b"x" * 64


def test_double_write_amplification(server, machines, dfs, schema):
    """The paper's core claim: WAL+Data writes every byte at least twice."""
    payload = b"p" * 256
    for i in range(40):
        server.write("events", f"k{i:02d}".encode(), {"payload": payload})
    server.flush_all()
    data_bytes = server.data_bytes()
    logical = 40 * 256
    assert data_bytes > 2 * logical  # WAL copy + SSTable copy (+ framing)


def test_historical_read(server):
    t1 = server.write("events", b"k", {"payload": b"v1"})
    server.write("events", b"k", {"payload": b"v2"})
    assert server.read("events", b"k", "payload", as_of=t1) == (t1, b"v1")


def test_historical_read_spanning_flush(server):
    t1 = server.write("events", b"k", {"payload": b"v1"})
    server.flush_store(("events#0", "payload"))
    server.write("events", b"k", {"payload": b"v2"})
    assert server.read("events", b"k", "payload", as_of=t1)[1] == b"v1"
    assert server.read("events", b"k", "payload")[1] == b"v2"


def test_delete_tombstone_hides_record(server):
    server.write("events", b"k", {"payload": b"v"})
    server.delete("events", b"k", "payload")
    assert server.read("events", b"k", "payload") is None


def test_delete_survives_flush(server):
    server.write("events", b"k", {"payload": b"v"})
    server.delete("events", b"k", "payload")
    server.flush_all()
    assert server.read("events", b"k", "payload") is None


def test_range_scan_sorted_latest(server):
    for i in (3, 1, 2):
        server.write("events", f"k{i}".encode(), {"payload": f"v{i}".encode()})
    server.write("events", b"k2", {"payload": b"v2b"})
    rows = list(server.range_scan("events", "payload", b"k1", b"k4"))
    assert [(k, v) for k, _, v in rows] == [(b"k1", b"v1"), (b"k2", b"v2b"), (b"k3", b"v3")]


def test_range_scan_merges_memstore_and_sstables(server):
    server.write("events", b"a", {"payload": b"flushed"})
    server.flush_all()
    server.write("events", b"b", {"payload": b"buffered"})
    rows = list(server.range_scan("events", "payload", b"", b"z"))
    assert [k for k, _, _ in rows] == [b"a", b"b"]


def test_minor_compaction_merges_files(server):
    store = ("events#0", "payload")
    for round_no in range(3):
        server.write("events", f"k{round_no}".encode(), {"payload": b"v"})
        server.flush_store(store)
    assert server.minor_compactions >= 1
    assert len(server._sstables[store]) < 3
    assert server.read("events", b"k0", "payload") is not None


def test_recovery_replays_wal(server, schema):
    for i in range(10):
        server.write("events", f"k{i}".encode(), {"payload": f"v{i}".encode()})
    server.crash()
    server.restart()
    server.assign_tablet(Tablet(TabletId("events", 0), KeyRange(b"", None), schema))
    replayed = server.recover()
    assert replayed == 10
    assert server.read("events", b"k7", "payload")[1] == b"v7"


def test_recovery_skips_flushed_entries(server, schema):
    for i in range(5):
        server.write("events", f"a{i}".encode(), {"payload": b"v"})
    server.flush_all()
    for i in range(3):
        server.write("events", f"b{i}".encode(), {"payload": b"v"})
    server.crash()
    server.restart()
    server.assign_tablet(Tablet(TabletId("events", 0), KeyRange(b"", None), schema))
    replayed = server.recover()
    assert replayed == 3  # only the unflushed tail
    assert server.read("events", b"a2", "payload") is not None
    assert server.read("events", b"b2", "payload") is not None


def test_crashed_server_rejects_ops(server):
    server.crash()
    with pytest.raises(ServerDownError):
        server.write("events", b"k", {"payload": b"v"})


def test_cluster_routing(schema):
    cluster = HBaseCluster(3)
    cluster.create_table(schema)
    cluster.put_raw("events", b"000000000001", "payload", b"v")
    assert cluster.get_raw("events", b"000000000001", "payload") == b"v"
    owners = {cluster.server_for("events", str(k).zfill(12).encode()).name
              for k in range(0, 2_000_000_000, 400_000_000)}
    assert len(owners) == 3


def test_trim_wal_after_full_flush(server):
    for i in range(10):
        server.write("events", f"k{i}".encode(), {"payload": b"x" * 64})
    server.flush_all()
    wal_before = server.wal.total_bytes()
    removed = server.trim_wal()
    assert removed >= 1
    assert server.wal.total_bytes() < wal_before
    # Data remains readable from the SSTables.
    assert server.read("events", b"k3", "payload")[1] == b"x" * 64


def test_trim_refused_with_unflushed_entries(server):
    server.write("events", b"k", {"payload": b"v"})
    assert server.trim_wal() == 0  # memstore holds data the WAL protects


def test_recovery_after_trim(server, schema):
    from repro.core.partition import KeyRange
    from repro.core.tablet import Tablet, TabletId

    for i in range(5):
        server.write("events", f"a{i}".encode(), {"payload": b"flushed"})
    server.flush_all()
    server.trim_wal()
    server.write("events", b"tail", {"payload": b"unflushed"})
    server.crash()
    server.restart()
    server.assign_tablet(Tablet(TabletId("events", 0), KeyRange(b"", None), schema))
    replayed = server.recover()
    assert replayed == 1  # only the post-trim tail needed replay
    assert server.read("events", b"a2", "payload")[1] == b"flushed"
    assert server.read("events", b"tail", "payload")[1] == b"unflushed"
