"""Unit tests for the HBase memtable."""

from repro.baselines.hbase.memtable import Memtable


def test_put_and_get_latest():
    mem = Memtable()
    mem.put(b"k", 1, b"old")
    mem.put(b"k", 5, b"new")
    assert mem.get_latest(b"k") == (5, b"new")


def test_get_asof():
    mem = Memtable()
    mem.put(b"k", 2, b"v2")
    mem.put(b"k", 8, b"v8")
    assert mem.get_asof(b"k", 5) == (2, b"v2")
    assert mem.get_asof(b"k", 1) is None


def test_missing_key():
    assert Memtable().get_latest(b"ghost") is None


def test_tombstone_stored_as_none():
    mem = Memtable()
    mem.put(b"k", 1, b"v")
    mem.put(b"k", 2, None)
    assert mem.get_latest(b"k") == (2, None)


def test_bytes_used_tracks_payload():
    mem = Memtable()
    mem.put(b"key", 1, b"x" * 100)
    assert mem.bytes_used >= 100
    before = mem.bytes_used
    mem.put(b"key", 1, b"y" * 50)  # replace same version
    assert mem.bytes_used < before


def test_sorted_entries_order():
    mem = Memtable()
    mem.put(b"b", 2, b"")
    mem.put(b"a", 9, b"")
    mem.put(b"a", 1, b"")
    order = [(k, ts) for k, ts, _ in mem.sorted_entries()]
    assert order == [(b"a", 1), (b"a", 9), (b"b", 2)]


def test_range_bounds():
    mem = Memtable()
    for i in range(5):
        mem.put(f"k{i}".encode(), 1, b"v")
    found = [k for k, _, _ in mem.range(b"k1", b"k4")]
    assert found == [b"k1", b"k2", b"k3"]


def test_clear_resets():
    mem = Memtable()
    mem.put(b"k", 1, b"v")
    mem.clear()
    assert len(mem) == 0
    assert mem.bytes_used == 0
