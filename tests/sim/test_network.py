"""Unit tests for the network cost model."""

import pytest

from repro.sim.network import NetworkModel


def test_transfer_includes_latency_and_bandwidth():
    net = NetworkModel(latency=0.001, bandwidth=1e6)
    assert net.transfer_cost(1000) == pytest.approx(0.001 + 0.001)


def test_local_transfer_is_loopback_only():
    net = NetworkModel(latency=0.001, bandwidth=1e6, local_latency=1e-5)
    assert net.transfer_cost(10_000_000, local=True) == pytest.approx(1e-5)


def test_rpc_is_two_transfers():
    net = NetworkModel(latency=0.001, bandwidth=1e6)
    assert net.rpc_cost(1000, 1000) == pytest.approx(2 * (0.001 + 0.001))


def test_bigger_payloads_cost_more():
    net = NetworkModel()
    assert net.transfer_cost(1 << 20) > net.transfer_cost(1 << 10)
