"""Unit tests for the network cost model and partition state."""

import pytest

from repro.errors import NetworkPartitionError
from repro.sim.machine import Machine
from repro.sim.network import NetworkModel, PartitionState


def test_transfer_includes_latency_and_bandwidth():
    net = NetworkModel(latency=0.001, bandwidth=1e6)
    assert net.transfer_cost(1000) == pytest.approx(0.001 + 0.001)


def test_local_transfer_is_loopback_only():
    net = NetworkModel(latency=0.001, bandwidth=1e6, local_latency=1e-5)
    assert net.transfer_cost(10_000_000, local=True) == pytest.approx(1e-5)


def test_rpc_is_two_transfers():
    net = NetworkModel(latency=0.001, bandwidth=1e6)
    assert net.rpc_cost(1000, 1000) == pytest.approx(2 * (0.001 + 0.001))


def test_bigger_payloads_cost_more():
    net = NetworkModel()
    assert net.transfer_cost(1 << 20) > net.transfer_cost(1 << 10)


# -- partitions --------------------------------------------------------------


def test_everything_reachable_by_default():
    state = PartitionState()
    assert not state.active
    assert state.reachable("a", "b")


def test_partition_splits_groups():
    state = PartitionState()
    state.partition(["a", "b"], ["c"])
    assert state.active
    assert state.reachable("a", "b")
    assert not state.reachable("a", "c")
    assert not state.reachable("c", "b")


def test_unnamed_machines_share_implicit_group():
    state = PartitionState()
    state.partition(["a"])
    # x and y are not named in any group: they can still talk to each
    # other, but not to the isolated machine.
    assert state.reachable("x", "y")
    assert not state.reachable("x", "a")


def test_isolate_cuts_one_machine_off():
    state = PartitionState()
    state.isolate("a")
    assert not state.reachable("a", "b")
    assert state.reachable("b", "c")


def test_self_reachable_even_when_isolated():
    state = PartitionState()
    state.isolate("a")
    assert state.reachable("a", "a")


def test_heal_restores_connectivity():
    state = PartitionState()
    state.partition(["a"], ["b"])
    state.heal()
    assert not state.active
    assert state.reachable("a", "b")


def test_send_across_partition_raises():
    net = NetworkModel()
    a = Machine("a", network=net)
    b = Machine("b", network=net)
    net.partitions.isolate("b")
    with pytest.raises(NetworkPartitionError):
        a.send(b, 100)
    # The failed send charges nothing and moves nothing.
    assert a.clock.now == 0.0
    net.partitions.heal()
    assert a.send(b, 100) > 0.0


# -- link health (gray failures) ---------------------------------------------


def test_links_healthy_by_default():
    net = NetworkModel()
    assert not net.links.active
    assert net.links.factor("a", "b") == 1.0


def test_slow_link_is_symmetric():
    net = NetworkModel(latency=0.001, bandwidth=1e6)
    net.links.slow("a", "b", 50.0)
    assert net.links.active
    assert net.links.factor("a", "b") == 50.0
    assert net.links.factor("b", "a") == 50.0
    assert net.links.factor("a", "c") == 1.0


def test_slow_link_multiplies_transfer_cost():
    net = NetworkModel(latency=0.001, bandwidth=1e6)
    healthy = net.transfer_cost(1000, a="a", b="c")
    net.links.slow("a", "b", 50.0)
    assert net.transfer_cost(1000, a="a", b="b") == pytest.approx(50.0 * healthy)
    # Other endpoint pairs, and endpoint-less transfers, are unaffected.
    assert net.transfer_cost(1000, a="a", b="c") == pytest.approx(healthy)
    assert net.transfer_cost(1000) == pytest.approx(healthy)


def test_slow_link_does_not_touch_loopback():
    net = NetworkModel(latency=0.001, bandwidth=1e6, local_latency=1e-5)
    net.links.slow("a", "a", 50.0)
    assert net.transfer_cost(1000, local=True, a="a", b="a") == pytest.approx(1e-5)


def test_link_heal_by_factor_and_wholesale():
    net = NetworkModel()
    net.links.slow("a", "b", 50.0)
    net.links.slow("a", "b", 1.0)  # factor 1.0 heals the link
    assert not net.links.active
    net.links.slow("a", "b", 50.0)
    net.links.slow("c", "d", 2.0)
    net.links.heal()
    assert not net.links.active
    assert net.links.factor("a", "b") == 1.0


def test_slow_link_charged_by_machine_send():
    net = NetworkModel(latency=0.001, bandwidth=1e6)
    a = Machine("a", network=net)
    b = Machine("b", network=net)
    healthy = a.send(b, 1000)
    net.links.slow("a", "b", 10.0)
    assert a.send(b, 1000) == pytest.approx(10.0 * healthy)
