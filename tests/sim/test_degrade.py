"""Gray-failure fault injection: degraded disks and the injector's
kill/degrade/revive interplay."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.disk import DiskModel, SimDisk
from repro.sim.failure import FailureInjector, limp_action
from repro.sim.machine import Machine

MODEL = DiskModel(seek_time=0.008, rotational_latency=0.004, bandwidth=100e6)


@pytest.fixture
def disk():
    return SimDisk(SimClock(), MODEL)


def test_slowdown_multiplies_random_access(disk):
    healthy = MODEL.random_access_cost(1000)
    disk.set_slowdown(40.0)
    assert disk.read(1, 0, 1000) == pytest.approx(40.0 * healthy)


def test_slowdown_multiplies_sequential_access(disk):
    disk.read(1, 0, 1000)
    disk.set_slowdown(7.0)
    cost = disk.read(1, 1000, 1000)  # contiguous: no seek, still limping
    assert cost == pytest.approx(7.0 * MODEL.sequential_cost(1000))


def test_slowdown_multiplies_buffered_write(disk):
    disk.set_slowdown(3.0)
    assert disk.write_buffered(2000) == pytest.approx(
        3.0 * MODEL.sequential_cost(2000)
    )


def test_peek_cost_reflects_slowdown_without_charging(disk):
    disk.set_slowdown(40.0)
    est = disk.peek_cost(1000)
    assert est == pytest.approx(40.0 * MODEL.random_access_cost(1000))
    assert disk.clock.now == 0.0  # nothing charged
    est_seq = disk.peek_cost(1000, sequential=True)
    assert est_seq == pytest.approx(40.0 * MODEL.sequential_cost(1000))


def test_peek_cost_matches_charged_random_read(disk):
    disk.set_slowdown(5.0)
    est = disk.peek_cost(512)
    assert disk.read(9, 4096, 512) == pytest.approx(est)


def test_slowdown_restore(disk):
    disk.set_slowdown(40.0)
    disk.set_slowdown(1.0)
    assert disk.read(1, 0, 1000) == pytest.approx(MODEL.random_access_cost(1000))


def test_slowdown_rejects_nonpositive(disk):
    with pytest.raises(ValueError):
        disk.set_slowdown(0.0)
    with pytest.raises(ValueError):
        disk.set_slowdown(-2.0)


# -- FailureInjector.degrade ------------------------------------------------


@pytest.fixture
def injector():
    inj = FailureInjector()
    inj.register("ts-a", Machine("a"))
    inj.register("ts-b", Machine("b"))
    return inj


def test_degrade_tracks_and_heals(injector):
    injector.degrade("ts-a", 40.0)
    assert injector.degraded == {"ts-a": 40.0}
    assert injector.node("ts-a").disk.slowdown == 40.0
    injector.degrade("ts-a", 1.0)
    assert injector.degraded == {}
    assert injector.node("ts-a").disk.slowdown == 1.0


def test_degrade_unknown_node_raises(injector):
    with pytest.raises(KeyError):
        injector.degrade("ts-zzz", 2.0)


def test_degrade_diskless_node_raises():
    class Process:
        alive = True

        def fail(self):
            self.alive = False

    inj = FailureInjector()
    inj.register("proc", Process())
    with pytest.raises(TypeError):
        inj.degrade("proc", 2.0)


def test_degraded_node_stays_alive(injector):
    # The defining property of a gray failure: liveness checks see nothing.
    injector.degrade("ts-a", 40.0)
    assert injector.is_alive("ts-a")
    assert injector.killed == []


def test_kill_degrade_revive_interplay(injector):
    # A limping node that power-fails and reboots is *still* limping —
    # restarting a machine does not fix its disk.
    injector.degrade("ts-a", 40.0)
    injector.kill("ts-a")
    assert not injector.is_alive("ts-a")
    assert injector.degraded == {"ts-a": 40.0}  # gray state survives death
    injector.revive("ts-a")
    assert injector.is_alive("ts-a")
    assert injector.node("ts-a").disk.slowdown == 40.0
    injector.degrade("ts-a", 1.0)  # only an explicit heal restores it
    assert injector.node("ts-a").disk.slowdown == 1.0


def test_limp_action_factory(injector):
    action = limp_action(injector, "ts-b", 12.0)
    action({})
    assert injector.degraded == {"ts-b": 12.0}
    limp_action(injector, "ts-b", 1.0)({})
    assert injector.degraded == {}
