"""Unit tests for the machine abstraction and failure injection."""

import pytest

from repro.sim.failure import FailureInjector
from repro.sim.machine import Machine


def test_machine_shares_clock_with_disk():
    machine = Machine("m0")
    machine.disk.read(1, 0, 1000)
    assert machine.clock.now > 0


def test_send_remote_charges_latency_and_bandwidth():
    a = Machine("a")
    b = Machine("b")
    cost = a.send(b, 125_000_000)  # one second of bandwidth at defaults
    assert cost == pytest.approx(a.network.latency + 1.0)
    assert a.counters.get("net.bytes_sent") == 125_000_000


def test_send_local_is_loopback():
    a = Machine("a")
    assert a.send(a, 1 << 30) == pytest.approx(a.network.local_latency)


def test_fail_and_restart():
    machine = Machine("m")
    machine.fail()
    assert not machine.alive
    machine.restart()
    assert machine.alive


def test_failure_injector_kills_registered_node():
    machine = Machine("m")
    injector = FailureInjector()
    injector.register("m", machine)
    injector.kill("m")
    assert not machine.alive
    assert injector.killed == ["m"]
    assert injector.alive_nodes() == []


def test_failure_injector_unknown_name():
    with pytest.raises(KeyError):
        FailureInjector().kill("ghost")
