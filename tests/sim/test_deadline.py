"""Deadline budgets across unsynchronized clock domains."""

import pytest

from repro.errors import DeadlineExceededError
from repro.sim.clock import SimClock
from repro.sim.deadline import (
    Deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
)


def test_budget_counts_down_with_the_clock():
    clock = SimClock()
    deadline = Deadline.after(clock, 1.0)
    clock.advance(0.4)
    assert deadline.remaining() == pytest.approx(0.6)
    assert not deadline.expired


def test_expiry_and_check():
    clock = SimClock()
    deadline = Deadline.after(clock, 0.5)
    clock.advance(0.5)
    assert deadline.expired
    with pytest.raises(DeadlineExceededError):
        deadline.check("tablet read")


def test_negative_budget_rejected():
    with pytest.raises(ValueError):
        Deadline(SimClock(), -0.1)


def test_rebase_transfers_remaining_budget():
    # The cluster's clocks are unsynchronized: the server's clock may be
    # far ahead of the client's.  Rebasing must transfer the *remaining
    # budget*, not compare absolute instants.
    client = SimClock()
    server = SimClock()
    server.advance(100.0)  # wildly skewed
    deadline = Deadline.after(client, 1.0)
    client.advance(0.3)
    deadline.rebase(server)
    assert deadline.remaining() == pytest.approx(0.7)
    server.advance(0.2)
    assert deadline.remaining() == pytest.approx(0.5)
    deadline.rebase(client)  # hop back: consumption on both clocks kept
    assert deadline.remaining() == pytest.approx(0.5)


def test_rebase_preserves_expiry():
    client = SimClock()
    server = SimClock()
    deadline = Deadline.after(client, 0.2)
    client.advance(0.3)
    deadline.rebase(server)
    assert deadline.expired


def test_ambient_scope_arms_and_restores():
    clock = SimClock()
    deadline = Deadline.after(clock, 1.0)
    assert current_deadline() is None
    check_deadline()  # no-op without a scope
    with deadline_scope(deadline):
        assert current_deadline() is deadline
        check_deadline("inner")
    assert current_deadline() is None


def test_ambient_scope_none_is_passthrough():
    with deadline_scope(None):
        assert current_deadline() is None


def test_scopes_nest():
    clock = SimClock()
    outer = Deadline.after(clock, 1.0)
    inner = Deadline.after(clock, 0.5)
    with deadline_scope(outer):
        with deadline_scope(inner):
            assert current_deadline() is inner
        assert current_deadline() is outer


def test_check_deadline_raises_inside_scope():
    clock = SimClock()
    deadline = Deadline.after(clock, 0.1)
    with deadline_scope(deadline):
        clock.advance(0.2)
        with pytest.raises(DeadlineExceededError):
            check_deadline("log read")
    assert current_deadline() is None  # scope unwound despite the raise
