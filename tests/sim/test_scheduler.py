"""Tests for the virtual-time concurrent-client scheduler."""

import pytest

from repro.sim.scheduler import Advance, ConcurrentScheduler, Invoke, Submit


class FakeFuture:
    """Minimal stand-in for a CommitFuture."""

    def __init__(self):
        self.done = False
        self.completion_time = None
        self.error = None


class FakeCoordinator:
    """Resolves submitted futures at a fixed deadline, like a group flush."""

    def __init__(self, flush_at, completion_at=None):
        self.flush_at = flush_at
        self.completion_at = completion_at if completion_at is not None else flush_at
        self.futures = []

    def submit(self):
        future = FakeFuture()
        self.futures.append(future)
        return future

    def next_due(self):
        return self.flush_at if self.futures else None

    def run_due(self, now):
        if not self.futures or now < self.flush_at:
            return []
        resolved, self.futures = self.futures, []
        for future in resolved:
            future.done = True
            future.completion_time = self.completion_at
        return resolved


def test_invoke_receives_result_and_seconds():
    seen = []

    def client():
        result, seconds = yield Invoke(lambda now: ("hello", 0.5))
        seen.append((result, seconds))

    scheduler = ConcurrentScheduler()
    scheduler.add_client(client())
    makespan = scheduler.run()
    assert seen == [("hello", 0.5)]
    assert makespan == pytest.approx(0.5)
    assert scheduler.finished == 1


def test_clients_interleave_in_virtual_time():
    trace = []

    def client(name, step):
        for _ in range(3):
            yield Invoke(lambda now, name=name: (trace.append((name, now)), step))

    scheduler = ConcurrentScheduler()
    scheduler.add_client(client("slow", 0.3))
    scheduler.add_client(client("fast", 0.1))
    scheduler.run()
    times = [t for _, t in trace]
    assert times == sorted(times)  # earliest-time client always steps next
    # The fast client's later ops land between the slow client's ops:
    # genuine overlap, not sequential execution.
    assert trace.index(("fast", pytest.approx(0.2))) < trace.index(
        ("slow", pytest.approx(0.3))
    )


def test_advance_moves_only_that_client():
    trace = []

    def waiter():
        yield Advance(1.0)
        yield Invoke(lambda now: (trace.append(("waiter", now)), 0.0))

    def worker():
        yield Invoke(lambda now: (trace.append(("worker", now)), 0.0))

    scheduler = ConcurrentScheduler()
    scheduler.add_client(waiter())
    scheduler.add_client(worker())
    scheduler.run()
    assert trace == [("worker", 0.0), ("waiter", 1.0)]


def test_add_client_start_offset():
    starts = []

    def client():
        yield Invoke(lambda now: (starts.append(now), 0.0))

    scheduler = ConcurrentScheduler()
    scheduler.add_client(client(), at=2.5)
    scheduler.run()
    assert starts == [pytest.approx(2.5)]


def test_submit_parks_until_flush_and_resumes_at_completion():
    coordinator = FakeCoordinator(flush_at=0.002, completion_at=0.0045)
    resumed = []

    def client():
        future = yield Submit(lambda now: coordinator.submit())
        yield Invoke(lambda now: (resumed.append((future.done, now)), 0.0))

    scheduler = ConcurrentScheduler(coordinators=[coordinator])
    scheduler.add_client(client())
    scheduler.run()
    assert resumed == [(True, pytest.approx(0.0045))]


def test_parked_clients_share_one_flush():
    coordinator = FakeCoordinator(flush_at=0.002)
    woken = []

    def client(i):
        yield Submit(lambda now: coordinator.submit())
        woken.append(i)

    scheduler = ConcurrentScheduler(coordinators=[coordinator])
    for i in range(4):
        scheduler.add_client(client(i))
    scheduler.run()
    assert sorted(woken) == [0, 1, 2, 3]
    assert len(coordinator.futures) == 0


def test_already_resolved_submit_does_not_park():
    def instant(now):
        future = FakeFuture()
        future.done = True
        future.completion_time = now + 0.001
        return future

    ends = []

    def client():
        future = yield Submit(instant)
        ends.append(future.completion_time)

    scheduler = ConcurrentScheduler()
    scheduler.add_client(client())
    assert scheduler.run() == pytest.approx(0.001)
    assert ends == [pytest.approx(0.001)]


def test_action_exception_rethrown_inside_generator():
    caught = []

    def boom(now):
        raise ValueError("op failed")

    def client():
        try:
            yield Invoke(boom)
        except ValueError as exc:
            caught.append(str(exc))

    scheduler = ConcurrentScheduler()
    scheduler.add_client(client())
    scheduler.run()
    assert caught == ["op failed"]


def test_bad_action_raises_type_error_in_generator():
    def client():
        yield "not an action"

    scheduler = ConcurrentScheduler()
    scheduler.add_client(client())
    with pytest.raises(TypeError, match="not a scheduler action"):
        scheduler.run()


def test_negative_advance_rejected():
    def client():
        yield Advance(-1.0)

    scheduler = ConcurrentScheduler()
    scheduler.add_client(client())
    with pytest.raises(ValueError):
        scheduler.run()


def test_park_without_coordinator_deadlocks():
    orphan = FakeCoordinator(flush_at=0.002)

    def client():
        yield Submit(lambda now: orphan.submit())

    scheduler = ConcurrentScheduler()  # orphan never registered
    scheduler.add_client(client())
    with pytest.raises(RuntimeError, match="parked"):
        scheduler.run()


def test_makespan_is_latest_finish():
    def client(duration):
        yield Advance(duration)

    scheduler = ConcurrentScheduler()
    scheduler.add_client(client(0.25))
    scheduler.add_client(client(1.5))
    assert scheduler.run() == pytest.approx(1.5)
    assert scheduler.finished == 2


def test_measured_charges_machine_clock_delta():
    from repro.sim.machine import Machine
    from repro.sim.scheduler import measured

    machine = Machine("m")

    def op(now):
        machine.clock.advance(0.5)
        return "ok"

    result, seconds = measured(machine, op)(0.0)
    assert result == "ok"
    assert seconds == pytest.approx(0.5)

    def worker():
        got = yield Invoke(measured(machine, op))
        assert got == ("ok", pytest.approx(0.5))

    scheduler = ConcurrentScheduler()
    scheduler.add_client(worker())
    assert scheduler.run() == pytest.approx(0.5)
