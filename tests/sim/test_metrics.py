"""Unit tests for the counter bag."""

from repro.sim.metrics import Counters


def test_add_and_get():
    counters = Counters()
    counters.add("disk.seeks")
    counters.add("disk.seeks", 2)
    assert counters.get("disk.seeks") == 3


def test_missing_counter_is_zero():
    assert Counters().get("nope") == 0.0


def test_snapshot_is_a_copy():
    counters = Counters()
    counters.add("x", 5)
    snap = counters.snapshot()
    counters.add("x", 1)
    assert snap == {"x": 5}


def test_reset():
    counters = Counters()
    counters.add("x")
    counters.reset()
    assert counters.get("x") == 0.0
    assert counters.snapshot() == {}


def test_iteration_sorted():
    counters = Counters()
    counters.add("b", 2)
    counters.add("a", 1)
    assert list(counters) == [("a", 1.0), ("b", 2.0)]


def test_repr_contains_values():
    counters = Counters()
    counters.add("hits", 3)
    assert "hits=3" in repr(counters)
