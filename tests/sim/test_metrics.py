"""Unit tests for the counter bag and the frozen metric-name registry."""

import pytest

from repro.sim.metrics import (
    BLOCK_CACHE_HITS,
    REGISTRY,
    Counters,
    MetricNameRegistry,
    validate_metric_name,
)


def test_add_and_get():
    counters = Counters()
    counters.add("disk.seeks")
    counters.add("disk.seeks", 2)
    assert counters.get("disk.seeks") == 3


def test_missing_counter_is_zero():
    assert Counters().get("nope") == 0.0


def test_snapshot_is_a_copy():
    counters = Counters()
    counters.add("x", 5)
    snap = counters.snapshot()
    counters.add("x", 1)
    assert snap == {"x": 5}


def test_reset():
    counters = Counters()
    counters.add("x")
    counters.reset()
    assert counters.get("x") == 0.0
    assert counters.snapshot() == {}


def test_iteration_sorted():
    counters = Counters()
    counters.add("b", 2)
    counters.add("a", 1)
    assert list(counters) == [("a", 1.0), ("b", 2.0)]


def test_repr_contains_values():
    counters = Counters()
    counters.add("hits", 3)
    assert "hits=3" in repr(counters)


def test_merge_sums_counters_and_dicts():
    left = Counters()
    left.add("x", 1)
    left.add("y", 2)
    right = Counters()
    right.add("x", 3)
    assert left.merge(right) is left
    assert left.get("x") == 4
    assert left.get("y") == 2
    left.merge({"z": 5.0, "x": 1.0})
    assert left.get("z") == 5
    assert left.get("x") == 5
    assert right.get("x") == 3  # the merged-from bag is untouched


def test_registry_validates_exact_and_prefixed_names():
    assert validate_metric_name(BLOCK_CACHE_HITS) == "blockcache.hits"
    assert validate_metric_name("disk.seeks") == "disk.seeks"  # disk. prefix
    assert validate_metric_name("latency.op.get") == "latency.op.get"
    with pytest.raises(ValueError):
        validate_metric_name("no.such.metric")


def test_global_registry_is_frozen():
    assert REGISTRY.frozen
    assert REGISTRY.known("rpc.server")
    with pytest.raises(RuntimeError):
        REGISTRY.register("late.metric")
    with pytest.raises(RuntimeError):
        REGISTRY.register_prefix("late.")


def test_fresh_registry_lifecycle():
    registry = MetricNameRegistry()
    registry.register("a.b")
    registry.register_prefix("c.")
    assert registry.known("a.b")
    assert registry.known("c.anything")
    assert not registry.known("a.bc")
    assert registry.names() == frozenset({"a.b"})
    assert registry.validate("c.suffix") == "c.suffix"
    registry.freeze()
    assert registry.frozen


def test_delta_since_reports_only_moved_counters():
    counters = Counters()
    counters.add("disk.seeks", 3)
    counters.add("net.messages", 5)
    snapshot = counters.snapshot()
    counters.add("disk.seeks", 2)
    counters.add("cache.hits", 7)
    delta = counters.delta_since(snapshot)
    assert delta == {"disk.seeks": 2.0, "cache.hits": 7.0}
    assert "net.messages" not in delta  # unchanged: no entry


def test_delta_since_empty_snapshot_is_full_state():
    counters = Counters()
    counters.add("disk.seeks", 4)
    assert counters.delta_since({}) == {"disk.seeks": 4.0}
    assert Counters().delta_since({}) == {}


def test_delta_since_surfaces_resets_as_negative():
    counters = Counters()
    counters.add("disk.seeks", 10)
    snapshot = counters.snapshot()
    counters.reset()
    counters.add("disk.seeks", 3)
    assert counters.delta_since(snapshot) == {"disk.seeks": -7.0}


def test_delta_since_counter_vanished_after_reset():
    counters = Counters()
    counters.add("net.messages", 6)
    snapshot = counters.snapshot()
    counters.reset()
    # The counter no longer exists at all: the full old value comes back
    # as a negative delta so callers can notice the reset.
    assert counters.delta_since(snapshot) == {"net.messages": -6.0}
