"""Unit tests for failure injection: injector bookkeeping and fault plans."""

import pytest

from repro.sim.failure import (
    CP_LOG_APPEND,
    CP_TXN_PRE_COMMIT,
    FailureInjector,
    FaultPlan,
    crash_point,
    fault_plan,
    kill_action,
)
from repro.sim.machine import Machine


@pytest.fixture
def injector():
    inj = FailureInjector()
    inj.register("node-0", Machine("node-0"))
    inj.register("node-1", Machine("node-1"))
    return inj


# -- FailureInjector bookkeeping --------------------------------------------


def test_kill_revive_kill_leaves_one_killed_entry(injector):
    injector.kill("node-0")
    assert injector.killed == ["node-0"]
    injector.revive("node-0")
    assert injector.killed == []
    assert injector.is_alive("node-0")
    injector.kill("node-0")
    assert injector.killed == ["node-0"]
    # History is append-only: both kills are remembered.
    assert injector.kill_history == ["node-0", "node-0"]


def test_kill_dead_node_is_noop(injector):
    injector.kill("node-0")
    injector.kill("node-0")
    assert injector.killed == ["node-0"]
    assert injector.kill_history == ["node-0"]


def test_revive_live_node_is_noop(injector):
    injector.revive("node-0")
    assert injector.killed == []
    assert injector.is_alive("node-0")


def test_revive_uses_restart_when_available(injector):
    calls = []

    class Node:
        alive = True

        def fail(self):
            self.alive = False

        def restart(self):
            calls.append("restart")
            self.alive = True

    injector.register("custom", Node())
    injector.kill("custom")
    injector.revive("custom")
    assert calls == ["restart"]
    assert injector.is_alive("custom")


def test_revive_flips_alive_without_restart(injector):
    class Node:
        alive = True

        def fail(self):
            self.alive = False

    injector.register("bare", Node())
    injector.kill("bare")
    injector.revive("bare")
    assert injector.is_alive("bare")


def test_alive_nodes_tracks_state(injector):
    assert sorted(injector.alive_nodes()) == ["node-0", "node-1"]
    injector.kill("node-1")
    assert injector.alive_nodes() == ["node-0"]


def test_degrade_slows_disk_and_restores(injector):
    machine = injector.node("node-0")
    healthy = machine.disk.read(1, 0, 1 << 20)
    injector.degrade("node-0", 4.0)
    degraded = machine.disk.read(1, 0, 1 << 20)
    assert degraded == pytest.approx(4.0 * healthy)
    injector.degrade("node-0", 1.0)
    assert machine.disk.read(1, 0, 1 << 20) == pytest.approx(healthy)


def test_degrade_without_disk_raises(injector):
    class Diskless:
        alive = True

        def fail(self):
            self.alive = False

    injector.register("diskless", Diskless())
    with pytest.raises(TypeError):
        injector.degrade("diskless", 2.0)


def test_unknown_node_raises_keyerror(injector):
    with pytest.raises(KeyError):
        injector.kill("ghost")
    with pytest.raises(KeyError):
        injector.revive("ghost")


# -- crash points and fault plans -------------------------------------------


def test_crash_point_is_noop_without_active_plan():
    crash_point(CP_LOG_APPEND, machine="node-0")  # must not raise


def test_rule_fires_on_nth_matching_hit():
    plan = FaultPlan()
    fired = []
    plan.add(CP_LOG_APPEND, fired.append, hits=3)
    with fault_plan(plan):
        for _ in range(5):
            crash_point(CP_LOG_APPEND)
    assert len(fired) == 1
    assert len(plan.fired) == 1


def test_rule_matches_context_items():
    plan = FaultPlan()
    fired = []
    plan.add(CP_LOG_APPEND, fired.append, machine="node-1")
    with fault_plan(plan):
        crash_point(CP_LOG_APPEND, machine="node-0")  # wrong machine
        crash_point(CP_LOG_APPEND)  # no machine at all
        crash_point(CP_LOG_APPEND, machine="node-1")
    assert fired == [{"machine": "node-1"}]


def test_repeat_rule_fires_every_nth_hit():
    plan = FaultPlan()
    fired = []
    plan.add(CP_LOG_APPEND, fired.append, hits=2, repeat=True)
    with fault_plan(plan):
        for _ in range(6):
            crash_point(CP_LOG_APPEND)
    assert len(fired) == 3


def test_non_repeat_rule_fires_once():
    plan = FaultPlan()
    fired = []
    plan.add(CP_LOG_APPEND, fired.append)
    with fault_plan(plan):
        for _ in range(4):
            crash_point(CP_LOG_APPEND)
    assert len(fired) == 1


def test_plan_records_fired_point_and_context():
    plan = FaultPlan()
    plan.add(CP_TXN_PRE_COMMIT, lambda ctx: None, server="ts-node-0")
    with fault_plan(plan):
        crash_point(CP_TXN_PRE_COMMIT, server="ts-node-0", txn=7)
    assert plan.fired == [(CP_TXN_PRE_COMMIT, {"server": "ts-node-0", "txn": 7})]


def test_fault_plan_nesting_restores_previous_plan():
    outer, inner = FaultPlan(), FaultPlan()
    outer_hits, inner_hits = [], []
    outer.add(CP_LOG_APPEND, outer_hits.append, repeat=True)
    inner.add(CP_LOG_APPEND, inner_hits.append, repeat=True)
    with fault_plan(outer):
        crash_point(CP_LOG_APPEND)
        with fault_plan(inner):
            crash_point(CP_LOG_APPEND)
        crash_point(CP_LOG_APPEND)
    crash_point(CP_LOG_APPEND)  # no plan active: silent
    assert len(outer_hits) == 2
    assert len(inner_hits) == 1


def test_plan_deactivated_after_exception():
    injector = FailureInjector()
    injector.register("x", Machine("x"))
    plan = FaultPlan()
    plan.add(CP_LOG_APPEND, kill_action(injector, "x", RuntimeError("crash")))
    with pytest.raises(RuntimeError):
        with fault_plan(plan):
            crash_point(CP_LOG_APPEND)
    crash_point(CP_LOG_APPEND)  # plan must be disarmed again


def test_kill_action_kills_and_raises():
    injector = FailureInjector()
    injector.register("node-0", Machine("node-0"))
    plan = FaultPlan()
    plan.add(
        CP_LOG_APPEND,
        kill_action(injector, "node-0", RuntimeError("power cut")),
    )
    with fault_plan(plan):
        with pytest.raises(RuntimeError, match="power cut"):
            crash_point(CP_LOG_APPEND)
    assert not injector.is_alive("node-0")
    assert injector.killed == ["node-0"]


def test_kill_action_without_exception_continues():
    injector = FailureInjector()
    injector.register("node-0", Machine("node-0"))
    plan = FaultPlan()
    plan.add(CP_LOG_APPEND, kill_action(injector, "node-0"))
    with fault_plan(plan):
        crash_point(CP_LOG_APPEND)  # kills silently, no exception
    assert not injector.is_alive("node-0")
