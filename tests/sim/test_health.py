"""Latency health primitives: EWMA, circuit breakers, admission control."""

import pytest

from repro.errors import ServerOverloadedError
from repro.sim.health import (
    AdmissionController,
    CircuitBreaker,
    GrayPolicy,
    HealthMonitor,
    LatencyEwma,
)
from repro.sim.metrics import ADMISSION_SHED, BREAKER_TRIPS, Counters


# -- LatencyEwma ------------------------------------------------------------


def test_ewma_first_sample_is_the_value():
    ewma = LatencyEwma(alpha=0.3)
    assert ewma.observe(0.01) == pytest.approx(0.01)
    assert ewma.samples == 1


def test_ewma_folds_with_alpha():
    ewma = LatencyEwma(alpha=0.5)
    ewma.observe(0.02)
    assert ewma.observe(0.04) == pytest.approx(0.03)


def test_ewma_reset():
    ewma = LatencyEwma()
    ewma.observe(1.0)
    ewma.reset()
    assert ewma.value is None
    assert ewma.samples == 0


def test_ewma_alpha_bounds():
    with pytest.raises(ValueError):
        LatencyEwma(alpha=0.0)
    with pytest.raises(ValueError):
        LatencyEwma(alpha=1.5)


# -- CircuitBreaker ---------------------------------------------------------


def _breaker(**kw):
    defaults = dict(trip_after=0.1, cooldown=1.0, min_samples=3, alpha=1.0)
    defaults.update(kw)
    return CircuitBreaker(**defaults)


def test_breaker_needs_min_samples_to_trip():
    breaker = _breaker()
    assert not breaker.observe(0.5, now=0.0)
    assert not breaker.observe(0.5, now=0.0)
    assert breaker.observe(0.5, now=0.0)  # third sample trips
    assert breaker.state == CircuitBreaker.OPEN
    assert breaker.trips == 1


def test_fast_traffic_never_trips():
    breaker = _breaker()
    for _ in range(10):
        assert not breaker.observe(0.01, now=0.0)
    assert breaker.state == CircuitBreaker.CLOSED


def test_open_breaker_blocks_until_cooldown():
    breaker = _breaker(min_samples=1)
    breaker.observe(0.5, now=0.0)
    assert not breaker.allow(now=0.5)
    assert breaker.remaining_cooldown(now=0.5) == pytest.approx(0.5)
    assert breaker.allow(now=1.0)  # cooldown elapsed: half-open probe
    assert breaker.state == CircuitBreaker.HALF_OPEN


def test_fast_probe_closes_and_forgets_limp_history():
    breaker = _breaker(min_samples=1)
    breaker.observe(0.5, now=0.0)
    breaker.allow(now=1.0)
    assert not breaker.observe(0.01, now=1.0)
    assert breaker.state == CircuitBreaker.CLOSED
    # Limp-era EWMA was reset: the next slow sample alone cannot trip it
    # through leftover history, but fresh slow evidence still can.
    assert breaker.ewma.value == pytest.approx(0.01)


def test_slow_probe_reopens():
    breaker = _breaker(min_samples=1)
    breaker.observe(0.5, now=0.0)
    breaker.allow(now=1.0)
    assert breaker.observe(0.5, now=1.0)  # probe still slow: re-trip
    assert breaker.state == CircuitBreaker.OPEN
    assert breaker.trips == 2
    assert not breaker.allow(now=1.5)  # new cooldown from the re-open


# -- HealthMonitor ----------------------------------------------------------


POLICY = GrayPolicy(
    hedge_min_delay=0.002,  # below the latencies observed in these tests
    breaker_trip_seconds=0.1,
    breaker_cooldown=1.0,
    breaker_min_samples=1,
    ewma_alpha=1.0,
)


def test_monitor_trips_and_counts():
    monitor = HealthMonitor(POLICY)
    counters = Counters()
    monitor.observe("node-0", 0.5, now=0.0, counters=counters)
    assert monitor.state("node-0") == CircuitBreaker.OPEN
    assert not monitor.allow("node-0", now=0.1)
    assert monitor.allow("node-1", now=0.1)  # unknown nodes pass
    assert counters.get(BREAKER_TRIPS) == 1


def test_monitor_breaker_disabled_always_allows():
    policy = GrayPolicy(
        breaker_enabled=False, breaker_min_samples=1, ewma_alpha=1.0
    )
    monitor = HealthMonitor(policy)
    monitor.observe("node-0", 9.9, now=0.0)
    assert monitor.allow("node-0", now=0.0)
    assert monitor.state("node-0") == CircuitBreaker.CLOSED


def test_hedge_delay_floors_when_cold():
    monitor = HealthMonitor(POLICY)
    assert monitor.hedge_delay() == POLICY.hedge_min_delay


def test_hedge_delay_tracks_typical_latency():
    monitor = HealthMonitor(POLICY)
    monitor.observe("node-0", 0.01, now=0.0)
    assert monitor.hedge_delay() == pytest.approx(
        POLICY.hedge_quantile * 0.01
    )


def test_limping_node_cannot_raise_the_hedge_delay():
    # Regression: the hedge delay anchors on the *best* replica's EWMA.
    # If it tracked the global average, a limping node's own slow
    # observations would raise the delay past its latency and hedging
    # would turn itself off exactly when it is needed.
    monitor = HealthMonitor(POLICY)
    monitor.observe("healthy", 0.01, now=0.0)
    for _ in range(5):
        monitor.observe("limping", 0.5, now=0.0)
    assert monitor.hedge_delay() == pytest.approx(
        POLICY.hedge_quantile * 0.01
    )


# -- AdmissionController ----------------------------------------------------


def test_admission_requires_positive_queue():
    with pytest.raises(ValueError):
        AdmissionController(max_queue=0)


def test_backlog_within_queue_admits():
    ctl = AdmissionController(max_queue=8, default_service=0.002)
    ctl.admit(arrival_now=0.0, server_now=0.016)  # exactly 8 deep
    assert ctl.shed_count == 0


def test_backlog_beyond_queue_sheds_with_retry_after():
    ctl = AdmissionController(max_queue=8, default_service=0.002)
    counters = Counters()
    with pytest.raises(ServerOverloadedError) as exc:
        ctl.admit(arrival_now=0.0, server_now=0.032, counters=counters)
    assert ctl.shed_count == 1
    assert counters.get(ADMISSION_SHED) == 1
    # retry_after drains exactly the excess: one honored wait re-admits.
    assert exc.value.retry_after == pytest.approx(0.016)
    ctl.admit(arrival_now=exc.value.retry_after, server_now=0.032)


def test_queue_depth_uses_observed_service_time():
    ctl = AdmissionController(max_queue=8, alpha=1.0, default_service=0.002)
    ctl.observe(0.010)  # service is really 10 ms
    assert ctl.queue_depth(arrival_now=0.0, server_now=0.05) == pytest.approx(5.0)
    ctl.admit(arrival_now=0.0, server_now=0.05)  # 5 < 8: admitted


def test_client_ahead_of_server_is_no_backlog():
    ctl = AdmissionController(max_queue=8)
    assert ctl.queue_depth(arrival_now=5.0, server_now=1.0) == 0.0
    ctl.admit(arrival_now=5.0, server_now=1.0)
