"""Unit tests for simulated clocks."""

import pytest

from repro.sim.clock import SimClock, makespan


def test_starts_at_zero():
    assert SimClock().now == 0.0


def test_advance_accumulates():
    clock = SimClock()
    clock.advance(1.5)
    clock.advance(0.5)
    assert clock.now == pytest.approx(2.0)


def test_negative_advance_rejected():
    with pytest.raises(ValueError):
        SimClock().advance(-1)


def test_advance_to_only_moves_forward():
    clock = SimClock(5.0)
    clock.advance_to(3.0)
    assert clock.now == 5.0
    clock.advance_to(7.0)
    assert clock.now == 7.0


def test_reset():
    clock = SimClock(9.0)
    clock.reset()
    assert clock.now == 0.0


def test_makespan_is_max():
    clocks = [SimClock(1.0), SimClock(4.0), SimClock(2.0)]
    assert makespan(clocks) == 4.0


def test_makespan_empty():
    assert makespan([]) == 0.0
