"""Unit tests for the disk cost model — the arithmetic the paper's
sequential-vs-random argument rests on."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.disk import DiskModel, SimDisk


@pytest.fixture
def disk():
    return SimDisk(SimClock(), DiskModel(seek_time=0.008, rotational_latency=0.004, bandwidth=100e6))


def test_first_access_pays_seek(disk):
    cost = disk.read(1, 0, 1000)
    assert cost == pytest.approx(0.008 + 0.004 + 1000 / 100e6)
    assert disk.counters.get("disk.seeks") == 1


def test_contiguous_read_is_sequential(disk):
    disk.read(1, 0, 1000)
    cost = disk.read(1, 1000, 1000)
    assert cost == pytest.approx(1000 / 100e6)
    assert disk.counters.get("disk.seeks") == 1


def test_jump_pays_seek_again(disk):
    disk.read(1, 0, 1000)
    disk.read(1, 50_000, 1000)
    assert disk.counters.get("disk.seeks") == 2


def test_file_switch_pays_seek(disk):
    disk.read(1, 0, 1000)
    disk.read(2, 1000, 1000)
    assert disk.counters.get("disk.seeks") == 2


def test_sequential_write_after_read_pays_seek(disk):
    disk.read(1, 0, 1000)
    disk.write(2, 0, 1000)
    assert disk.counters.get("disk.seeks") == 2


def test_buffered_write_never_seeks(disk):
    disk.read(1, 0, 1000)
    cost = disk.write_buffered(1000)
    assert cost == pytest.approx(1000 / 100e6)
    assert disk.counters.get("disk.seeks") == 1


def test_buffered_write_preserves_read_head(disk):
    disk.read(1, 0, 1000)
    disk.write_buffered(500)
    cost = disk.read(1, 1000, 1000)  # still sequential for the reader
    assert cost == pytest.approx(1000 / 100e6)


def test_clock_accumulates_costs(disk):
    disk.read(1, 0, 1000)
    disk.read(1, 1000, 1000)
    assert disk.clock.now == pytest.approx(0.012 + 2000 / 100e6)


def test_counters_track_bytes(disk):
    disk.read(1, 0, 500)
    disk.write_buffered(300)
    assert disk.counters.get("disk.bytes_read") == 500
    assert disk.counters.get("disk.bytes_written") == 300


def test_invalidate_head_forces_seek(disk):
    disk.read(1, 0, 100)
    disk.invalidate_head()
    disk.read(1, 100, 100)
    assert disk.counters.get("disk.seeks") == 2


def test_random_is_much_slower_than_sequential():
    model = DiskModel()
    assert model.random_access_cost(1000) > 100 * model.sequential_cost(1000)
