"""Webshop orders with crash recovery: the TPC-W scenario end to end.

Order transactions bundle a cart read with an order write (§4.4) under
snapshot isolation; conflicting concurrent orders abort and retry
(first-committer-wins).  A tablet server is then killed mid-workload and
recovered from its checkpoint plus the log tail — every confirmed order
survives (Guarantee 4).

Run with ``python examples/webshop_recovery.py``.
"""

import random

from repro import ColumnGroup, LogBase, LogBaseConfig, TableSchema, TransactionAborted
from repro.core.recovery import recover_server


def main() -> None:
    db = LogBase(n_nodes=3, config=LogBaseConfig(segment_size=256 * 1024))
    db.create_table(
        TableSchema("cart", "c_id", (ColumnGroup("cart", ("contents",)),))
    )
    db.create_table(
        TableSchema("orders", "o_id", (ColumnGroup("order", ("lines", "status")),))
    )
    db.create_table(
        TableSchema("stock", "i_id", (ColumnGroup("inv", ("count",)),))
    )

    rng = random.Random(5)
    customers = [str(rng.randrange(2_000_000_000)).zfill(12).encode() for _ in range(40)]
    for customer in customers:
        db.put("cart", customer, {"cart": {"contents": b"widget x3"}})
    hot_item = b"000000000777"
    db.put("stock", hot_item, {"inv": {"count": b"100"}})

    # ---- 1. order transactions: read cart, write order ----------------------
    placed = 0
    for seq, customer in enumerate(customers):
        txn = db.begin()
        cart = txn.read("cart", customer, "cart")
        order_key = customer + f"-{seq:06d}".encode()  # entity group: same tablet
        txn.write(
            "orders", order_key,
            "order", {"lines": cart["contents"], "status": b"confirmed"},
        )
        txn.commit()
        placed += 1
    print(f"placed {placed} orders")

    # ---- 2. two shoppers race for the last items: one aborts, retries -------
    def buy(txn, amount: int) -> None:
        count = int(txn.read("stock", hot_item, "inv")["count"])
        txn.write("stock", hot_item, "inv", {"count": str(count - amount).encode()})

    t1, t2 = db.begin(), db.begin()
    buy(t1, 10)
    buy(t2, 25)
    t1.commit()
    try:
        t2.commit()
    except TransactionAborted as exc:
        print(f"conflicting checkout aborted ({exc}); retrying")
        retry = db.txn_manager.restart(t2)
        buy(retry, 25)
        retry.commit()
    remaining = int(db.get("stock", hot_item, "inv")["count"])
    print(f"stock after both checkouts: {remaining} (100 - 10 - 25)")

    # ---- 3. checkpoint, crash a server, recover -----------------------------
    db.checkpoint_all()
    for seq, customer in enumerate(customers[:10]):  # post-checkpoint tail
        db.put(
            "orders", customer + f"-late{seq:02d}".encode(),
            {"order": {"lines": b"rush order", "status": b"confirmed"}},
        )
    victim = db.cluster.servers[0]
    tablets = list(victim.tablets.values())
    victim.crash()
    print(f"killed {victim.name}; its memory (indexes, cache) is gone")

    victim.restart()
    for tablet in tablets:
        victim.assign_tablet(tablet)
    report = recover_server(victim, db.cluster.checkpoints[victim.name])
    print(
        f"recovered from checkpoint (lsn {report.checkpoint_lsn}) + "
        f"{report.records_scanned} tail records in {report.seconds:.4f} "
        f"simulated seconds"
    )

    # Every confirmed order is still there.
    surviving = sum(
        1
        for server in db.cluster.servers
        for _ in server.full_scan("orders", "order")
    )
    print(f"orders readable after recovery: {surviving} (placed {placed + 10})")
    assert surviving == placed + 10


if __name__ == "__main__":
    main()
