"""Quickstart: a LogBase cluster in a few lines.

Run with ``python examples/quickstart.py``.  Creates a 3-node cluster,
defines a table with two column groups, writes and reads records, runs a
snapshot-isolated transaction, reads a historical version, and shows the
simulated I/O accounting.
"""

from repro import ColumnGroup, LogBase, TableSchema


def main() -> None:
    # A 3-node cluster: each node runs a tablet server plus a DFS datanode;
    # the log is 3-way replicated across them.
    db = LogBase(n_nodes=3)

    # Relational schema with column groups (§3.1-3.2): columns that are
    # accessed together share a group and a physical partition.
    db.create_table(
        TableSchema(
            "users",
            "user_id",
            (
                ColumnGroup("profile", ("name", "email")),
                ColumnGroup("activity", ("last_login",)),
            ),
        )
    )

    # Single-record writes go straight to the log (one I/O, §3.6.1).
    alice = b"000000000042"
    db.put(
        "users",
        alice,
        {
            "profile": {"name": b"Alice", "email": b"alice@example.com"},
            "activity": {"last_login": b"2026-07-01"},
        },
    )
    print("profile:", db.get("users", alice, "profile"))

    # Updates create new versions; old ones stay readable in the log.
    first_version = db.put(
        "users", alice, {"activity": {"last_login": b"2026-07-05"}}
    )
    db.put("users", alice, {"activity": {"last_login": b"2026-07-06"}})
    print("latest login:", db.get("users", alice, "activity"))
    print(
        "as of ts", first_version, ":",
        db.get("users", alice, "activity", as_of=first_version),
    )

    # Multi-record transactions run under snapshot isolation (§3.7).
    bob = b"000000000043"
    txn = db.begin()
    txn.write("users", bob, "profile", {"name": b"Bob", "email": b"bob@example.com"})
    txn.write("users", bob, "activity", {"last_login": b"never"})
    commit_ts = txn.commit()
    print("transaction committed at", commit_ts)

    # Range scans return the latest version per key, in key order.
    rows = db.scan("users", "profile", b"000000000000", b"000000000099")
    print("scan:", [(key, row["name"]) for key, row in rows])

    # Tuple reconstruction collects every column group by primary key.
    print("whole row:", db.get_row("users", bob))

    # Everything above was charged to the simulated device models.
    print("simulated cluster seconds:", round(db.cluster.elapsed_makespan(), 6))
    print("cluster I/O counters:", db.cluster.total_counters())


if __name__ == "__main__":
    main()
