"""Extensions tour: query engine, secondary indexes, elastic scaling.

The paper lists "efficient secondary indexes and query processing" as
future work (§5) and elasticity as a core desideratum (§1); this
reproduction implements all three.  The example builds an orders table,
queries it through the planner (watch the access path change as indexes
appear), and then grows and shrinks the cluster online.

Run with ``python examples/analytics_and_scaling.py``.
"""

import random

from repro import (
    And,
    ColumnGroup,
    Eq,
    LogBase,
    LogBaseConfig,
    QueryEngine,
    Range,
    TableSchema,
)


def main() -> None:
    db = LogBase(n_nodes=3, config=LogBaseConfig(segment_size=512 * 1024))
    db.create_table(
        TableSchema(
            "orders",
            "order_id",
            (
                ColumnGroup("head", ("status", "region")),
                ColumnGroup("amounts", ("total",)),
            ),
        ),
        tablets_per_server=2,
    )

    rng = random.Random(3)
    regions = [b"apac", b"emea", b"amer"]
    statuses = [b"open", b"shipped", b"returned"]
    for i in range(400):
        key = str(rng.randrange(2_000_000_000)).zfill(12).encode()
        db.put(
            "orders",
            key,
            {
                "head": {"status": statuses[i % 3], "region": regions[i % 3]},
                "amounts": {"total": str(rng.randrange(10, 500)).zfill(4).encode()},
            },
        )
    print("loaded 400 orders")

    engine = QueryEngine(db)

    # ---- 1. planner picks access paths ---------------------------------------
    query = engine.query("orders").where(Eq("status", b"returned")).select("region")
    print("without index :", query.explain().describe())
    engine.create_secondary_index("orders", "status")
    query = engine.query("orders").where(Eq("status", b"returned")).select("region")
    print("with index    :", query.explain().describe())
    print("returned orders:", query.count())

    # ---- 2. combined predicates + aggregation --------------------------------
    big_apac = engine.query("orders").where(
        And(Eq("region", b"apac"), Range("total", b"0400", b"0500"))
    )
    print("big APAC orders:", big_apac.count())
    by_region = engine.query("orders").aggregate("total", group_by="region")
    print("revenue by region:",
          {k.decode(): int(v) for k, v in by_region["sum"].items()})

    # ---- 3. elastic scale-out --------------------------------------------------
    master = db.cluster.master
    def owners() -> dict[str, int]:
        counts: dict[str, int] = {}
        for tablet in master.tablets("orders"):
            owner = master.locate("orders", tablet.key_range.start or b"0")[0]
            counts[owner] = counts.get(owner, 0) + 1
        return counts

    print("tablets per server before:", owners())
    new_server = db.cluster.add_node()   # provision + rebalance online
    print(f"added {new_server.name}; tablets per server now:", owners())
    assert engine.query("orders").count() == 400  # nothing lost in the moves

    # ---- 4. elastic scale-back ---------------------------------------------------
    db.cluster.remove_node(db.cluster.servers[0].name)
    print("decommissioned one server; tablets per server now:", owners())
    assert engine.query("orders").count() == 400
    print("all 400 orders still queryable after scale-out and scale-back")


if __name__ == "__main__":
    main()
