"""Clickstream logging: user-activity events with workload-driven
vertical partitioning (§3.2) and analytical scans (§3.6.4).

High-volume web sites log every visit and ad click; the dashboard
workload reads only a couple of narrow columns, so the partitioner splits
them away from the bulky payload.  The example derives the column groups
from a query trace, ingests events, runs an aggregate over one group, and
shows how much I/O the vertical split saves.

Run with ``python examples/clickstream_analytics.py``.
"""

import random

from repro import (
    ColumnGroup,
    LogBase,
    LogBaseConfig,
    QueryTrace,
    TableSchema,
    VerticalPartitioner,
)


def main() -> None:
    # ---- 1. derive column groups from the query workload -------------------
    column_widths = {
        "url": 120,
        "referrer": 120,
        "user_agent": 300,
        "ad_id": 8,
        "revenue": 8,
    }
    trace = [
        # The revenue dashboard fires constantly and touches two thin columns.
        QueryTrace(frozenset({"ad_id", "revenue"}), frequency=1000),
        # Sessions debugging occasionally reads the full event.
        QueryTrace(frozenset(column_widths), frequency=5),
    ]
    partitioner = VerticalPartitioner(column_widths)
    schema = partitioner.build_schema("clicks", "event_id", trace)
    print("chosen column groups:")
    for group in schema.groups:
        print(f"  {group.name}: {', '.join(group.columns)}")
    billing_group = schema.group_of_column("revenue").name
    assert schema.group_of_column("ad_id").name == billing_group

    # ---- 2. ingest the click stream ----------------------------------------
    db = LogBase(n_nodes=3, config=LogBaseConfig(segment_size=512 * 1024))
    db.create_table(schema)
    rng = random.Random(99)
    n_events = 1500
    for i in range(n_events):
        key = str(rng.randrange(2_000_000_000)).zfill(12).encode()
        row = {
            billing_group: {
                "ad_id": str(rng.randrange(50)).encode(),
                "revenue": str(rng.randrange(1, 20)).encode(),
            },
        }
        fat_group = next(g for g in schema.group_names if g != billing_group)
        row[fat_group] = {
            # Realistically sized payloads (the widths the partitioner
            # reasoned about): long URLs and user-agent strings.
            column: (bytes(column, "ascii") + b"-" + str(i).encode()).ljust(
                column_widths[column], b"."
            )
            for column in schema.group(fat_group).columns
        }
        db.put("clicks", key, row)
    print(f"ingested {n_events} events in "
          f"{db.cluster.elapsed_makespan():.4f} simulated seconds")

    # ---- 3. compact so each group's data is clustered ------------------------
    # With the single log per server, a group scan would otherwise read the
    # whole log; compaction sorts the log into per-group segments and the
    # segment metadata map lets scans skip unrelated groups (§3.6.5).
    db.compact_all()

    # ---- 4. the dashboard aggregate reads ONE group -------------------------
    counters_before = db.cluster.total_counters().get("disk.bytes_read", 0)
    revenue_by_ad: dict[bytes, int] = {}
    for server in db.cluster.servers:
        for _, _, value in server.full_scan("clicks", billing_group):
            from repro.core.schema import decode_group_value

            columns = decode_group_value(value)
            ad = columns["ad_id"]
            revenue_by_ad[ad] = revenue_by_ad.get(ad, 0) + int(columns["revenue"])
    narrow_bytes = db.cluster.total_counters().get("disk.bytes_read", 0) - counters_before
    top = sorted(revenue_by_ad.items(), key=lambda kv: -kv[1])[:3]
    print("top ads by revenue:", [(ad.decode(), rev) for ad, rev in top])

    # ---- 5. compare with scanning the fat group too -------------------------
    counters_before = db.cluster.total_counters().get("disk.bytes_read", 0)
    for server in db.cluster.servers:
        for group in schema.group_names:
            for _ in server.full_scan("clicks", group):
                pass
    full_bytes = db.cluster.total_counters().get("disk.bytes_read", 0) - counters_before
    print(
        f"dashboard scan read {narrow_bytes:,.0f} bytes; a full-row scan "
        f"reads {full_bytes:,.0f} — vertical partitioning saved "
        f"{100 * (1 - narrow_bytes / full_bytes):.0f}% of the I/O"
    )


if __name__ == "__main__":
    main()
