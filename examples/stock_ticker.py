"""Stock ticker: the paper's motivating write-heavy financial workload.

A market feed appends thousands of trades (writes dominate reads by far);
analysts then run multiversion queries over the history — "finding the
trend of stock trading" (§1) — without any extra versioning machinery,
because the log keeps every version.  A snapshot-isolated transfer moves
shares between two accounts atomically.

Run with ``python examples/stock_ticker.py``.
"""

import random

from repro import ColumnGroup, LogBase, LogBaseConfig, TableSchema

TICKERS = [b"ACME", b"GLOBO", b"INITECH", b"UMBRL"]


def ticker_key(symbol: bytes) -> bytes:
    return symbol.ljust(12, b"_")


def main() -> None:
    db = LogBase(n_nodes=3, config=LogBaseConfig(segment_size=256 * 1024))
    db.create_table(
        TableSchema("quotes", "symbol", (ColumnGroup("px", ("price", "volume")),))
    )
    db.create_table(
        TableSchema("positions", "account", (ColumnGroup("pos", ("shares",)),))
    )

    # ---- 1. the firehose: a write-heavy quote stream -----------------------
    rng = random.Random(7)
    prices = {symbol: 100.0 for symbol in TICKERS}
    history: dict[bytes, list[int]] = {symbol: [] for symbol in TICKERS}
    for _ in range(2000):
        symbol = rng.choice(TICKERS)
        prices[symbol] *= 1 + rng.uniform(-0.01, 0.0102)
        version = db.put(
            "quotes",
            ticker_key(symbol),
            {"px": {
                "price": f"{prices[symbol]:.2f}".encode(),
                "volume": str(rng.randrange(1, 500)).encode(),
            }},
        )
        history[symbol].append(version)
    load_seconds = db.cluster.elapsed_makespan()
    print(f"ingested 2000 quotes in {load_seconds:.4f} simulated seconds "
          f"({2000 / load_seconds:,.0f} quotes/sec)")

    # ---- 2. multiversion trend analysis ------------------------------------
    symbol = TICKERS[0]
    versions = history[symbol]
    checkpoints = [versions[i] for i in range(0, len(versions), max(1, len(versions) // 8))]
    trend = [
        float(db.get("quotes", ticker_key(symbol), "px", as_of=ts)["price"])
        for ts in checkpoints
    ]
    print(f"{symbol.decode()} trend over time:",
          " -> ".join(f"{p:.2f}" for p in trend))

    # ---- 3. atomic share transfer under snapshot isolation ------------------
    fund_a, fund_b = b"000000000001", b"000000000002"
    db.put("positions", fund_a, {"pos": {"shares": b"1000"}})
    db.put("positions", fund_b, {"pos": {"shares": b"200"}})

    txn = db.begin()
    a_shares = int(txn.read("positions", fund_a, "pos")["shares"])
    b_shares = int(txn.read("positions", fund_b, "pos")["shares"])
    moved = 150
    txn.write("positions", fund_a, "pos", {"shares": str(a_shares - moved).encode()})
    txn.write("positions", fund_b, "pos", {"shares": str(b_shares + moved).encode()})
    txn.commit()
    total = int(db.get("positions", fund_a, "pos")["shares"]) + int(
        db.get("positions", fund_b, "pos")["shares"]
    )
    print(f"transferred {moved} shares; total conserved: {total} == 1200")

    # ---- 4. compaction reclaims obsolete versions ---------------------------
    before = sum(server.data_bytes() for server in db.cluster.servers)
    for server in db.cluster.servers:
        server.config.max_versions = 1  # keep only the latest quote
    db.compact_all()
    after = sum(server.data_bytes() for server in db.cluster.servers)
    print(f"compaction shrank the log from {before:,} to {after:,} bytes")
    print("latest price still readable:",
          db.get("quotes", ticker_key(symbol), "px")["price"].decode())


if __name__ == "__main__":
    main()
