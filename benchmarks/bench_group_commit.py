"""Group-commit fan-in sweep: one replication round trip per group.

Runs the concurrent-client put workload
(:func:`repro.bench.concurrent.run_concurrent_puts`) on a single-server
3-node LogBase with ``LogBaseConfig.with_group_commit()`` at client
fan-ins of 1, 8 and 64, plus a gate-off synchronous arm as the seed
reference.  Every arm writes the same number of records; the sweep shows
the commit coordinator collapsing DFS replication round trips from one
per committed op toward one per group as concurrent submissions pile
into each group window.

Reports per-arm commit throughput, commit latency p50/p99, mean group
fan-in, and DFS append round trips per committed op, then appends a run
entry to ``BENCH_group_commit.json`` at the repo root so the trajectory
is tracked across commits.

Run directly (``python benchmarks/bench_group_commit.py [--smoke]``) or
via pytest, which asserts the acceptance bars: fan-in 64 throughput
>= 5x the fan-in-1 baseline, round trips per committed op <= 0.1 at
fan-in 64 and < 0.5 at fan-in 8, and zero failed commits.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from conftest import RECORD_SIZE
from repro.bench.adapters import LogBaseAdapter, make_logbase
from repro.bench.concurrent import run_concurrent_puts
from repro.config import LogBaseConfig
from repro.sim.metrics import (
    COMMIT_ACKS_DEFERRED,
    COMMIT_GROUP_FANIN,
    COMMIT_GROUPS,
    DFS_APPEND_ROUND_TRIPS,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_group_commit.json"

FANINS = (1, 8, 64)
DEFAULT_OPS = 1024
SMOKE_OPS = 256


def build_adapter(ops: int, *, group_commit: bool) -> LogBaseAdapter:
    """A single-server 3-node LogBase (the §4.2 micro-benchmark
    deployment) sized so the whole phase stays in one segment regime."""
    total = max(ops * RECORD_SIZE, 64 * 1024)
    settings = dict(segment_size=max(total // 4, 64 * 1024), heap_bytes=8 * total)
    config = (
        LogBaseConfig.with_group_commit(**settings)
        if group_commit
        else LogBaseConfig(**settings)
    )
    return make_logbase(
        3,
        records_per_node=ops,
        record_size=RECORD_SIZE,
        config=config,
        single_server=True,
    )


def run_arm(ops: int, fanin: int, *, group_commit: bool = True) -> dict:
    """One fresh-cluster arm of the sweep."""
    adapter = build_adapter(ops, group_commit=group_commit)
    counters_before = adapter.cluster.total_counters()
    result = run_concurrent_puts(
        adapter, n_clients=fanin, n_ops=ops, value=b"x" * RECORD_SIZE
    )
    counters = adapter.cluster.total_counters()
    round_trips = counters.get(DFS_APPEND_ROUND_TRIPS, 0.0) - counters_before.get(
        DFS_APPEND_ROUND_TRIPS, 0.0
    )
    groups = counters.get(COMMIT_GROUPS, 0.0)
    fanin_sum = counters.get(COMMIT_GROUP_FANIN, 0.0)
    return {
        "fanin": fanin,
        "group_commit": group_commit,
        "ops": ops,
        "acked": result.acked,
        "failed": result.failed,
        "makespan_seconds": result.makespan,
        "throughput": result.throughput,
        "commit_p50_ms": 1000.0 * result.percentile(0.50),
        "commit_p99_ms": 1000.0 * result.percentile(0.99),
        "groups": groups,
        "mean_group_fanin": fanin_sum / groups if groups else 0.0,
        "acks_deferred": counters.get(COMMIT_ACKS_DEFERRED, 0.0),
        "round_trips": round_trips,
        "round_trips_per_op": round_trips / result.acked if result.acked else 0.0,
    }


def run_experiment(ops: int = DEFAULT_OPS) -> dict:
    """The fan-in sweep plus the gate-off synchronous reference arm."""
    results: dict = {"ops": ops, "record_size": RECORD_SIZE, "arms": []}
    results["arms"].append(run_arm(ops, 1, group_commit=False))
    for fanin in FANINS:
        results["arms"].append(run_arm(ops, fanin))
    by_fanin = {a["fanin"]: a for a in results["arms"] if a["group_commit"]}
    baseline = by_fanin[1]
    results["speedup_64_vs_1"] = (
        by_fanin[64]["throughput"] / baseline["throughput"]
        if baseline["throughput"]
        else 0.0
    )
    return results


def format_report(results: dict) -> str:
    lines = [
        f"Group-commit fan-in sweep ({results['ops']} puts x "
        f"{results['record_size']} B, single-server 3-node cluster)",
        f"{'arm':<14} {'acked':>6} {'thr op/s':>10} {'p50 ms':>8} {'p99 ms':>8} "
        f"{'groups':>7} {'fan-in':>7} {'rt/op':>7}",
    ]
    for arm in results["arms"]:
        label = f"fanin={arm['fanin']}" + ("" if arm["group_commit"] else " (off)")
        lines.append(
            f"{label:<14} {arm['acked']:>6d} {arm['throughput']:>10.0f} "
            f"{arm['commit_p50_ms']:>8.2f} {arm['commit_p99_ms']:>8.2f} "
            f"{arm['groups']:>7.0f} {arm['mean_group_fanin']:>7.1f} "
            f"{arm['round_trips_per_op']:>7.3f}"
        )
    lines.append(f"throughput speedup, fan-in 64 vs fan-in 1: {results['speedup_64_vs_1']:.1f}x")
    return "\n".join(lines)


def append_trajectory(results: dict) -> None:
    history = []
    if TRAJECTORY.exists():
        history = json.loads(TRAJECTORY.read_text())
    history.append({"timestamp": time.time(), **results})
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


def check_acceptance(results: dict) -> list[str]:
    """The acceptance bars; returns a list of violations (empty = pass)."""
    failures = []
    by_fanin = {a["fanin"]: a for a in results["arms"] if a["group_commit"]}
    for arm in results["arms"]:
        if arm["failed"] or arm["acked"] != arm["ops"]:
            failures.append(
                f"fanin={arm['fanin']}: {arm['failed']} failed, "
                f"{arm['acked']}/{arm['ops']} acked"
            )
    if results["speedup_64_vs_1"] < 5.0:
        failures.append(
            f"expected >= 5x throughput at fan-in 64 vs fan-in 1, got "
            f"{results['speedup_64_vs_1']:.1f}x"
        )
    if by_fanin[64]["round_trips_per_op"] > 0.1:
        failures.append(
            f"fan-in 64: {by_fanin[64]['round_trips_per_op']:.3f} DFS round "
            f"trips per committed op (allowed: <= 0.1)"
        )
    if by_fanin[8]["round_trips_per_op"] >= 0.5:
        failures.append(
            f"fan-in 8: {by_fanin[8]['round_trips_per_op']:.3f} DFS round "
            f"trips per committed op (allowed: < 0.5)"
        )
    return failures


# -- pytest entry point -----------------------------------------------------------


def test_group_commit_fanin():
    results = run_experiment(ops=SMOKE_OPS)
    failures = check_acceptance(results)
    assert not failures, "; ".join(failures)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument("--ops", type=int, default=None)
    args = parser.parse_args()
    ops = args.ops if args.ops is not None else (SMOKE_OPS if args.smoke else DEFAULT_OPS)
    if ops < max(FANINS):
        parser.error(f"--ops must be >= {max(FANINS)}")
    results = run_experiment(ops=ops)
    print(format_report(results))
    if not args.smoke:  # smoke runs (CI) must not pollute the trajectory
        append_trajectory(results)
        print(f"\ntrajectory appended to {TRAJECTORY}")
    failures = check_acceptance(results)
    if failures:
        raise SystemExit("ACCEPTANCE FAILED: " + "; ".join(failures))
    print("acceptance bars met")


if __name__ == "__main__":
    main()
