"""Figure 7 — random reads without cache: LogBase beats HBase.

LogBase's dense in-memory index resolves a cold point read with a single
seek directly to the record in the log.  HBase must consult sparse block
indexes across its data files and fetch a whole 64 KB block per probe.
"""

from conftest import READ_COUNTS, load_keys_single_server, micro_pair
from repro.bench.runner import run_random_reads

LOADED = 4000  # paper: 1 M records loaded before the read phase


def run_experiment() -> dict[str, dict[int, float]]:
    logbase, hbase = micro_pair(LOADED)
    lb_keys, _ = load_keys_single_server(logbase, LOADED)
    hb_keys, _ = load_keys_single_server(hbase, LOADED)
    series: dict[str, dict[int, float]] = {"LogBase": {}, "HBase": {}}
    for n_reads in READ_COUNTS:
        series["LogBase"][n_reads] = run_random_reads(
            logbase, lb_keys, n_reads, cold=True
        )
        series["HBase"][n_reads] = run_random_reads(hbase, hb_keys, n_reads, cold=True)
    return series


def test_fig07_random_read_nocache(benchmark, report_series):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report_series(
        "fig07",
        "Figure 7: Random Read without Cache (simulated sec)",
        "reads",
        series,
    )
    for n_reads in READ_COUNTS:
        lb, hb = series["LogBase"][n_reads], series["HBase"][n_reads]
        assert lb < hb, f"LogBase must win cold reads at {n_reads}: {lb} vs {hb}"
    # Read cost scales with the number of reads.
    assert series["HBase"][READ_COUNTS[-1]] > series["HBase"][READ_COUNTS[0]]
