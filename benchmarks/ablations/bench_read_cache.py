"""Ablation — read-buffer size and replacement policy (§3.6.2).

The read buffer is "only an optional component whose existence and size
are configurable", with a pluggable replacement strategy.  This sweep
measures Zipfian read hit rates with no cache, a small LRU, a large LRU,
and FIFO at the small size.
"""

import pathlib

from repro.bench.report import format_table
from repro.bench.zipfian import ZipfianGenerator
from repro.config import LogBaseConfig
from repro.core.cluster import LogBaseCluster
from repro.core.client import Client
from repro.core.read_cache import ReadCache
from repro.core.schema import ColumnGroup, TableSchema
from repro.util.lru import FIFOPolicy

SCHEMA = TableSchema("t", "id", (ColumnGroup("g", ("v",)),))
N_RECORDS = 1500
N_READS = 3000
SMALL = 100 * 1024   # ~100 cached records
LARGE = 1024 * 1024  # ~1000 cached records


def _run(cache_bytes: int | None, policy=None) -> tuple[float, float]:
    """Returns (mean read ms, hit rate)."""
    config = LogBaseConfig(
        segment_size=512 * 1024, read_cache_enabled=cache_bytes is not None
    )
    cluster = LogBaseCluster(3, config)
    cluster.create_table(SCHEMA)
    if cache_bytes is not None:
        for server in cluster.servers:
            server.read_cache = ReadCache(cache_bytes, policy=policy() if policy else None)
    client = Client(cluster.master, cluster.machines[0])
    keys = [str(i * 1_333_337).zfill(12).encode() for i in range(N_RECORDS)]
    for key in keys:
        client.put_raw("t", key, "g", b"x" * 1000)
    # Writes warmed the cache; clear so the read phase starts cold.
    for server in cluster.servers:
        if server.read_cache is not None:
            server.read_cache.clear()
        server.machine.disk.invalidate_head()
    chooser = ZipfianGenerator(len(keys), 1.0, seed=11)
    total = 0.0
    for _ in range(N_READS):
        client.get_raw("t", keys[chooser.next()], "g")
        total += client.last_op_seconds
    hits = sum(s.read_cache.hits for s in cluster.servers if s.read_cache)
    misses = sum(s.read_cache.misses for s in cluster.servers if s.read_cache)
    hit_rate = hits / (hits + misses) if hits + misses else 0.0
    return 1000 * total / N_READS, hit_rate


def run_experiment() -> dict[str, tuple[float, float]]:
    return {
        "no cache": _run(None),
        "LRU small": _run(SMALL),
        "LRU large": _run(LARGE),
        "FIFO small": _run(SMALL, FIFOPolicy),
    }


def test_read_cache_ablation(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [[name, ms, rate] for name, (ms, rate) in results.items()]
    table = format_table(
        "Ablation: read buffer (Zipfian reads, mean latency / hit rate)",
        ["config", "read ms", "hit rate"],
        rows,
    )
    print("\n" + table)
    out = pathlib.Path(__file__).parents[1] / "results"
    out.mkdir(exist_ok=True)
    (out / "ablation_read_cache.txt").write_text(table + "\n")
    # Any cache beats none; bigger LRU beats smaller; LRU >= FIFO on a
    # Zipfian (recency-friendly) workload.
    assert results["LRU small"][0] < results["no cache"][0]
    assert results["LRU large"][0] < results["LRU small"][0]
    assert results["LRU small"][1] >= results["FIFO small"][1] * 0.95
