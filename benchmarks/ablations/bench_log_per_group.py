"""Ablation — single log per server vs. one log per column group (§3.4).

The paper weighs two log layouts: one log instance per server (chosen,
for sustained write throughput and fewer DFS connections) vs. one log per
column group (better data locality: a group scan touches only its own
log).  This bench quantifies both sides at the LogRepository level:

* scan cost of ONE group's data, and
* total write cost of a mixed-group write stream.
"""

import pathlib

from repro.bench.report import format_table
from repro.dfs.filesystem import DFS
from repro.sim.machine import Machine
from repro.wal.record import LogRecord, RecordType
from repro.wal.repository import LogRepository

N_GROUPS = 4
RECORDS_PER_GROUP = 512


def _record(group: str, i: int) -> LogRecord:
    return LogRecord(
        record_type=RecordType.WRITE,
        table="t",
        tablet="t#0",
        key=f"k{i:06d}".encode(),
        group=group,
        timestamp=i + 1,
        value=b"x" * 1000,
    )


def _cluster():
    machines = [Machine(f"n{i}", rack=f"rack-{i % 2}") for i in range(3)]
    return machines, DFS(machines, replication=3)


def run_experiment() -> dict[str, dict[str, float]]:
    results: dict[str, dict[str, float]] = {}

    # --- single shared log -------------------------------------------------
    machines, dfs = _cluster()
    shared = LogRepository(dfs, machines[0], "/single")
    write_start = machines[0].clock.now
    for i in range(RECORDS_PER_GROUP):
        for g in range(N_GROUPS):  # groups interleave in one log
            shared.append(_record(f"g{g}", i))
    write_cost = machines[0].clock.now - write_start
    machines[0].disk.invalidate_head()
    scan_start = machines[0].clock.now
    g0_rows = sum(
        1
        for file_no in shared.segments()
        for _, record in shared.scan_segment(file_no)
        if record.group == "g0"
    )
    scan_cost = machines[0].clock.now - scan_start
    results["single log"] = {"write": write_cost, "scan one group": scan_cost}
    assert g0_rows == RECORDS_PER_GROUP

    # --- one log per column group -------------------------------------------
    machines, dfs = _cluster()
    per_group = [
        LogRepository(dfs, machines[0], f"/group-{g}") for g in range(N_GROUPS)
    ]
    write_start = machines[0].clock.now
    for i in range(RECORDS_PER_GROUP):
        for g in range(N_GROUPS):
            per_group[g].append(_record(f"g{g}", i))
    write_cost = machines[0].clock.now - write_start
    machines[0].disk.invalidate_head()
    scan_start = machines[0].clock.now
    g0_rows = sum(
        1
        for file_no in per_group[0].segments()
        for _, record in per_group[0].scan_segment(file_no)
    )
    scan_cost = machines[0].clock.now - scan_start
    results["log per group"] = {"write": write_cost, "scan one group": scan_cost}
    assert g0_rows == RECORDS_PER_GROUP
    return results


def test_log_per_group_tradeoff(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [name, costs["write"], costs["scan one group"]]
        for name, costs in results.items()
    ]
    table = format_table(
        "Ablation: single log vs log per column group (simulated sec)",
        ["layout", "write cost", "scan one group"],
        rows,
    )
    print("\n" + table)
    out = pathlib.Path(__file__).parents[1] / "results"
    out.mkdir(exist_ok=True)
    (out / "ablation_log_per_group.txt").write_text(table + "\n")
    # The paper's trade-off, reproduced: per-group logs scan one group
    # cheaper (they read 1/N of the bytes)...
    assert (
        results["log per group"]["scan one group"]
        < results["single log"]["scan one group"]
    )
    # ...but the write path does not get cheaper (same bytes, more files),
    # which is why LogBase picks the single log and recovers locality via
    # compaction instead.
    assert results["log per group"]["write"] >= results["single log"]["write"] * 0.95
