"""Ablation — compaction frequency vs. range-scan latency (§3.6.5).

"LogBase can support efficient range scan queries ... if the log
compaction operation is performed at regular times."  This sweeps how
much un-compacted tail has accumulated since the last compaction and
measures the range-scan latency degradation.
"""

import pathlib
import random

from repro.bench.report import format_table
from repro.config import LogBaseConfig
from repro.core.cluster import LogBaseCluster
from repro.core.client import Client
from repro.core.schema import ColumnGroup, TableSchema

SCHEMA = TableSchema("t", "id", (ColumnGroup("g", ("v",)),))
BASE_RECORDS = 1200
TAIL_FRACTIONS = [0.0, 0.25, 0.5, 1.0]  # un-compacted tail relative to base
RANGE_TUPLES = 64
REPEATS = 6


def _scan_latency(server, keys: list[bytes], seed: int) -> float:
    rng = random.Random(seed)
    total = 0.0
    for _ in range(REPEATS):
        start_idx = rng.randrange(len(keys) - RANGE_TUPLES)
        if server.read_cache is not None:
            server.read_cache.clear()
        server.machine.disk.invalidate_head()
        before = server.machine.clock.now
        list(
            server.range_scan(
                "t", "g", keys[start_idx], keys[start_idx + RANGE_TUPLES]
            )
        )
        total += server.machine.clock.now - before
    return 1000 * total / REPEATS


def run_experiment() -> dict[float, float]:
    results: dict[float, float] = {}
    for tail_fraction in TAIL_FRACTIONS:
        cluster = LogBaseCluster(3, LogBaseConfig(segment_size=1 << 20))
        cluster.create_table(SCHEMA, only_servers=[cluster.servers[0].name])
        client = Client(cluster.master, cluster.machines[0])
        server = cluster.servers[0]
        keys = sorted(
            str(v).zfill(12).encode()
            for v in random.Random(3).sample(range(2_000_000_000), BASE_RECORDS)
        )
        shuffled = list(keys)
        random.Random(4).shuffle(shuffled)
        n_tail = int(BASE_RECORDS * tail_fraction / (1 + tail_fraction))
        base, tail = shuffled[: BASE_RECORDS - n_tail], shuffled[BASE_RECORDS - n_tail :]
        for key in base:
            client.put_raw("t", key, "g", b"x" * 500)
        server.compact()  # the last regular compaction
        for key in tail:  # updates arriving since
            client.put_raw("t", key, "g", b"x" * 500)
        results[tail_fraction] = _scan_latency(server, keys, seed=9)
    return results


def test_compaction_interval(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [[f"{frac:.2f}", ms] for frac, ms in results.items()]
    table = format_table(
        f"Ablation: un-compacted tail vs range-scan latency ({RANGE_TUPLES} tuples)",
        ["tail fraction", "scan ms"],
        rows,
    )
    print("\n" + table)
    out = pathlib.Path(__file__).parents[1] / "results"
    out.mkdir(exist_ok=True)
    (out / "ablation_compaction_interval.txt").write_text(table + "\n")
    # Freshly compacted scans are fastest; latency grows with the tail.
    assert results[0.0] < results[0.5]
    assert results[0.5] < results[1.0] * 1.05
    assert results[1.0] > 2 * results[0.0]
