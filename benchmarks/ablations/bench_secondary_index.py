"""Ablation — secondary-index lookups vs filtered full scans (§5 extension).

The paper lists secondary indexes as future work; this reproduction
implements them, and this bench quantifies the payoff: an equality query
on a non-key column via the secondary index against the same query as a
filtered full scan, across selectivities.
"""

import pathlib
import random

from repro import ColumnGroup, LogBase, LogBaseConfig, TableSchema
from repro.bench.report import format_table
from repro.query import Eq, QueryEngine

N_RECORDS = 1200
CARDINALITIES = [4, 40, 400]  # distinct values -> selectivity 1/4 .. 1/400


def _build(cardinality: int):
    db = LogBase(3, LogBaseConfig(segment_size=512 * 1024))
    db.create_table(
        TableSchema("events", "id", (ColumnGroup("g", ("category", "payload")),))
    )
    rng = random.Random(5)
    for i in range(N_RECORDS):
        key = str(rng.randrange(2_000_000_000)).zfill(12).encode()
        db.put(
            "events",
            key,
            {"g": {
                "category": str(i % cardinality).zfill(4).encode(),
                "payload": b"x" * 400,
            }},
        )
    return db, QueryEngine(db)


def _query_cost(db, engine, use_index: bool) -> float:
    for server in db.cluster.servers:
        if server.read_cache is not None:
            server.read_cache.clear()
        server.machine.disk.invalidate_head()
    before = sum(m.clock.now for m in db.cluster.machines)
    query = engine.query("events").where(Eq("category", b"0001")).select("payload")
    rows = query.run()
    assert rows, "query must match something"
    plan = query.explain().access_path
    assert plan == ("secondary-lookup" if use_index else "full-scan")
    return sum(m.clock.now for m in db.cluster.machines) - before


def run_experiment() -> dict[int, tuple[float, float]]:
    results = {}
    for cardinality in CARDINALITIES:
        db, engine = _build(cardinality)
        scan_cost = _query_cost(db, engine, use_index=False)
        engine.create_secondary_index("events", "category")
        index_cost = _query_cost(db, engine, use_index=True)
        results[cardinality] = (scan_cost, index_cost)
    return results


def test_secondary_index_vs_full_scan(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [card, f"1/{card}", scan, index, scan / index]
        for card, (scan, index) in results.items()
    ]
    table = format_table(
        "Ablation: secondary index vs filtered full scan (simulated sec)",
        ["cardinality", "selectivity", "full scan", "2ndary index", "speedup"],
        rows,
    )
    print("\n" + table)
    out = pathlib.Path(__file__).parents[1] / "results"
    out.mkdir(exist_ok=True)
    (out / "ablation_secondary_index.txt").write_text(table + "\n")
    for cardinality, (scan_cost, index_cost) in results.items():
        assert index_cost < scan_cost, f"index must win at cardinality {cardinality}"
    # The more selective the predicate, the bigger the index advantage.
    speedups = [scan / index for _, (scan, index) in sorted(results.items())]
    assert speedups[-1] > speedups[0]
