"""Ablation — archival tier for aged versions (LHAM-inspired, §2.3).

Moving old sorted segments to cold storage frees hot-tier capacity; the
price is that historical reads against archived versions pay cold-disk
I/O plus a network hop.  This bench quantifies both sides.
"""

import pathlib

from repro import ColumnGroup, LogBase, LogBaseConfig, TableSchema
from repro.bench.report import format_table
from repro.wal.archive import ColdStorage, LogArchiver

N_KEYS = 200
VERSIONS = 4


def run_experiment() -> dict[str, float]:
    db = LogBase(3, LogBaseConfig(segment_size=256 * 1024))
    db.create_table(
        TableSchema("t", "k", (ColumnGroup("g", ("v",)),)),
        only_servers=[db.cluster.servers[0].name],
    )
    server = db.cluster.servers[0]
    keys = [str(i * 8_999_993).zfill(12).encode() for i in range(N_KEYS)]
    old_versions: list[tuple[bytes, int]] = []
    for round_no in range(VERSIONS):
        for key in keys:
            ts = server.write("t", key, {"g": b"x" * 500})
            if round_no == 0:
                old_versions.append((key, ts))
    server.compact()
    cutoff = old_versions[-1][1] + 1  # NB: every sorted segment qualifies
    hot_before = server.log.total_bytes()

    def historical_read_cost() -> float:
        server.read_cache.clear()
        server.machine.disk.invalidate_head()
        before = server.machine.clock.now
        for key, ts in old_versions[:40]:
            server.read("t", key, "g", as_of=ts)
        return server.machine.clock.now - before

    cost_hot = historical_read_cost()
    cold = ColdStorage(n_nodes=2, network=db.cluster.machines[0].network)
    report = LogArchiver(server.log, cold).archive_older_than(10**9)
    server.log._readers.clear()
    cost_cold = historical_read_cost()
    return {
        "hot bytes before": hot_before,
        "hot bytes after": server.log.total_bytes(),
        "cold bytes": cold.stored_bytes(),
        "segments moved": report.segments_moved,
        "40 historical reads, hot (s)": cost_hot,
        "40 historical reads, archived (s)": cost_cold,
    }


def test_archival_tradeoff(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [[name, value] for name, value in results.items()]
    table = format_table(
        "Ablation: archival tier (hot capacity vs historical-read cost)",
        ["metric", "value"],
        rows,
    )
    print("\n" + table)
    out = pathlib.Path(__file__).parents[1] / "results"
    out.mkdir(exist_ok=True)
    (out / "ablation_archival.txt").write_text(table + "\n")
    # Archival freed hot capacity...
    assert results["hot bytes after"] < results["hot bytes before"] * 0.5
    assert results["cold bytes"] > 0
    # ...at a read-cost premium for archived history.
    assert (
        results["40 historical reads, archived (s)"]
        > results["40 historical reads, hot (s)"]
    )
