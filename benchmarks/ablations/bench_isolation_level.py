"""Ablation — snapshot isolation vs strict serializability (§3.7.1).

"If strict serializability is required, read locks also need to be
acquired by transactions, but that will affect transaction performance as
read locks block the writes and void the advantage of snapshot
isolation."  This bench runs the same contended read-modify-write
workload under both modes and reports commit cost and abort rate.
"""

import pathlib
import random

from repro import ColumnGroup, LogBase, LogBaseConfig, TableSchema, TransactionAborted
from repro.bench.report import format_table
from repro.txn.mvocc import TransactionManager

N_PAIRS = 150
HOT_KEYS = 12


def _run(serializable: bool) -> tuple[float, float]:
    """Returns (mean commit ms over committed txns, abort rate)."""
    db = LogBase(3, LogBaseConfig(segment_size=512 * 1024))
    db.create_table(TableSchema("t", "k", (ColumnGroup("g", ("v",)),)))
    db.txn_manager = TransactionManager(
        db.cluster.master, db.cluster.tso, db.cluster.coordination,
        serializable=serializable,
    )
    keys = [str(i * 9_000_001).zfill(12).encode() for i in range(HOT_KEYS)]
    for key in keys:
        db.put("t", key, {"g": {"v": b"0"}})
    rng = random.Random(23)
    clock_before = sum(m.clock.now for m in db.cluster.machines)
    committed = 0
    for _ in range(N_PAIRS):
        a, b = rng.sample(keys, 2)
        # Two concurrent read-modify-write transactions over a hot pair:
        # t1 reads both and writes one; t2 reads both and writes the other.
        t1, t2 = db.begin(), db.begin()
        for txn in (t1, t2):
            txn.read("t", a, "g")
            txn.read("t", b, "g")
        t1.write("t", a, "g", {"v": b"1"})
        t2.write("t", b, "g", {"v": b"2"})
        for txn in (t1, t2):
            try:
                txn.commit()
                committed += 1
            except TransactionAborted:
                pass
    elapsed = sum(m.clock.now for m in db.cluster.machines) - clock_before
    manager = db.txn_manager
    return 1000 * elapsed / max(committed, 1), manager.abort_rate


def run_experiment() -> dict[str, tuple[float, float]]:
    return {
        "snapshot isolation": _run(False),
        "strict serializable": _run(True),
    }


def test_isolation_level_cost(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [name, cost, rate] for name, (cost, rate) in results.items()
    ]
    table = format_table(
        "Ablation: isolation level under contention (150 txn pairs)",
        ["mode", "ms per committed txn", "abort rate"],
        rows,
    )
    print("\n" + table)
    out = pathlib.Path(__file__).parents[1] / "results"
    out.mkdir(exist_ok=True)
    (out / "ablation_isolation_level.txt").write_text(table + "\n")
    si_cost, si_aborts = results["snapshot isolation"]
    ser_cost, ser_aborts = results["strict serializable"]
    # SI: disjoint write sets never conflict -> zero aborts here.
    assert si_aborts == 0.0
    # Serializable mode pays: overlapping read sets now abort.
    assert ser_aborts > 0.3
    # ...and the per-commit cost is no better than SI's.
    assert ser_cost >= si_cost * 0.9
