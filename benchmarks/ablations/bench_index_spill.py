"""Ablation — in-memory B-link index vs. LSM spill (§3.5, §4.6).

"LogBase can employ a similar method to LSM-tree for merging out part of
the in-memory indexes into disks" when tablet-server memory is scarce.
This measures the trade directly on one server: resident index memory vs.
cold point-read latency, B-link against LSM.
"""

import pathlib
import random

from repro.bench.report import format_table
from repro.config import LogBaseConfig
from repro.core.cluster import LogBaseCluster
from repro.core.client import Client
from repro.core.schema import ColumnGroup, TableSchema

SCHEMA = TableSchema("t", "id", (ColumnGroup("g", ("v",)),))
N_RECORDS = 2500
N_READS = 120


def _run(index_kind: str) -> tuple[float, float]:
    """Returns (index memory bytes, mean cold read ms)."""
    config = LogBaseConfig(segment_size=1 << 20, index_kind=index_kind)
    cluster = LogBaseCluster(3, config)
    cluster.create_table(SCHEMA, only_servers=[cluster.servers[0].name])
    server = cluster.servers[0]
    if index_kind == "lsm":
        for index in server.indexes().values():
            index._memtable_limit = 24 * 64  # spill aggressively
    client = Client(cluster.master, cluster.machines[0])
    keys = [str(i * 799_999).zfill(12).encode() for i in range(N_RECORDS)]
    for key in keys:
        client.put_raw("t", key, "g", b"x" * 1000)
    # Measure per-entry index residency: the LSM block cache is a fixed
    # configured budget (8 MB), not state that grows with the index, so
    # drain it before comparing footprints.
    for index in server.indexes().values():
        cache = getattr(index, "_block_cache", None)
        if cache is not None:
            cache.clear()
    memory = server.index_memory_bytes()
    rng = random.Random(21)
    total = 0.0
    for _ in range(N_READS):
        if server.read_cache is not None:
            server.read_cache.clear()
        for index in server.indexes().values():
            cache = getattr(index, "_block_cache", None)
            if cache is not None:
                cache.clear()
        server.machine.disk.invalidate_head()
        client.get_raw("t", keys[rng.randrange(len(keys))], "g")
        total += client.last_op_seconds
    return memory, 1000 * total / N_READS


def run_experiment() -> dict[str, tuple[float, float]]:
    return {"B-link (in-memory)": _run("blink"), "LSM (spilled)": _run("lsm")}


def test_index_spill_tradeoff(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [name, memory / 1024, latency]
        for name, (memory, latency) in results.items()
    ]
    table = format_table(
        "Ablation: index memory vs cold read latency",
        ["index", "resident KiB", "cold read ms"],
        rows,
    )
    print("\n" + table)
    out = pathlib.Path(__file__).parents[1] / "results"
    out.mkdir(exist_ok=True)
    (out / "ablation_index_spill.txt").write_text(table + "\n")
    blink_mem, blink_lat = results["B-link (in-memory)"]
    lsm_mem, lsm_lat = results["LSM (spilled)"]
    # LSM trades memory for read I/O: much smaller residency, slower colds.
    assert lsm_mem < blink_mem / 2
    assert lsm_lat >= blink_lat * 0.95
    # ...but the slowdown stays moderate (the paper's §4.6 conclusion).
    assert lsm_lat < blink_lat * 3
