"""Ablation — group-commit batch size (§3.7.2).

"LogBase further embeds an optimization technique that processes commit
and log records in batches ... to reduce the log persistence cost."
Sweeping the batch size shows the per-record replication round trip
amortizing away.
"""

import pathlib

from repro.bench.report import format_table
from repro.dfs.filesystem import DFS
from repro.sim.machine import Machine
from repro.txn.batch import GroupCommitter
from repro.wal.record import LogRecord, RecordType
from repro.wal.repository import LogRepository

BATCH_SIZES = [1, 4, 16, 64]
N_RECORDS = 2048


def _run(batch_size: int) -> float:
    machines = [Machine(f"n{i}", rack=f"rack-{i % 2}") for i in range(3)]
    dfs = DFS(machines, replication=3)
    repo = LogRepository(dfs, machines[0], "/log")
    committer = GroupCommitter(repo, batch_size)
    for i in range(N_RECORDS):
        committer.submit(
            LogRecord(
                record_type=RecordType.WRITE,
                table="t",
                tablet="t#0",
                key=f"k{i:06d}".encode(),
                group="g",
                timestamp=i + 1,
                value=b"x" * 1000,
            )
        )
    committer.flush()
    return machines[0].clock.now


def run_experiment() -> dict[int, float]:
    return {size: _run(size) for size in BATCH_SIZES}


def test_group_commit_batch_size(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [[size, seconds, N_RECORDS / seconds] for size, seconds in results.items()]
    table = format_table(
        "Ablation: group-commit batch size (2048 x 1KB records)",
        ["batch", "sim sec", "records/sec"],
        rows,
    )
    print("\n" + table)
    out = pathlib.Path(__file__).parents[1] / "results"
    out.mkdir(exist_ok=True)
    (out / "ablation_group_commit.txt").write_text(table + "\n")
    # Larger batches strictly help, with diminishing returns.
    assert results[4] < results[1]
    assert results[16] < results[4]
    assert results[64] <= results[16]
    # The big jump is the first amortization step.
    assert (results[1] - results[4]) > (results[16] - results[64])
