"""Ablation — entity-group key design vs scattered keys (§3.2, §3.7.2).

"By cleverly designing the key of records, all data related to a user
could have the same key prefix ... In this case, executing transactions
is not expensive since the costly two-phase commit can be avoided."
This bench runs the same two-record transactions with co-located keys
(entity groups) and with scattered keys, and measures commit cost and
message counts; it also reports the Schism-style partitioner's advantage
on the scattered trace.
"""

import pathlib
import random

from repro import ColumnGroup, LogBase, LogBaseConfig, TableSchema
from repro.bench.report import format_table
from repro.core.workload_partition import WorkloadPartitioner

N_TXNS = 120


def _fresh_db() -> LogBase:
    db = LogBase(3, LogBaseConfig(segment_size=512 * 1024))
    db.create_table(TableSchema("data", "k", (ColumnGroup("g", ("v",)),)))
    return db


def _run_transactions(db: LogBase, pairs) -> tuple[float, float]:
    """Returns (mean commit seconds, total messages)."""
    msgs_before = sum(m.counters.get("net.messages") for m in db.cluster.machines)
    clock_before = sum(m.clock.now for m in db.cluster.machines)
    for a, b in pairs:
        txn = db.begin()
        txn.write("data", a, "g", {"v": b"1"})
        txn.write("data", b, "g", {"v": b"2"})
        txn.commit()
    elapsed = sum(m.clock.now for m in db.cluster.machines) - clock_before
    msgs = sum(m.counters.get("net.messages") for m in db.cluster.machines) - msgs_before
    return elapsed / len(pairs), msgs


def run_experiment() -> dict[str, tuple[float, float, float]]:
    rng = random.Random(17)
    # Entity-group pairs: second key shares the first's prefix region.
    grouped_pairs = []
    for _ in range(N_TXNS):
        base = rng.randrange(1_900_000_000)
        key = str(base).zfill(12).encode()
        grouped_pairs.append((key, key + b"-sub"))
    # Scattered pairs: two uniformly random keys (usually different tablets).
    scattered_pairs = [
        (
            str(rng.randrange(2_000_000_000)).zfill(12).encode(),
            str(rng.randrange(2_000_000_000)).zfill(12).encode(),
        )
        for _ in range(N_TXNS)
    ]

    db = _fresh_db()
    grouped_cost, grouped_msgs = _run_transactions(db, grouped_pairs)
    db = _fresh_db()
    scattered_cost, scattered_msgs = _run_transactions(db, scattered_pairs)

    # What a Schism-style repartitioning would recover on the scattered
    # trace (advisor only; routing stays range-based in the system).
    trace = [set(pair) for pair in scattered_pairs]
    comparison = WorkloadPartitioner(3).compare(trace)
    return {
        "entity groups": (grouped_cost, grouped_msgs, 0.0),
        "scattered": (
            scattered_cost,
            scattered_msgs,
            comparison["range"].distributed_fraction(trace),
        ),
        "scattered + schism": (
            scattered_cost,
            scattered_msgs,
            comparison["workload-driven"].distributed_fraction(trace),
        ),
    }


def test_entity_groups_avoid_2pc(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [name, 1000 * cost, msgs, frac]
        for name, (cost, msgs, frac) in results.items()
    ]
    table = format_table(
        "Ablation: entity-group keys vs scattered keys (2-record txns)",
        ["key design", "commit ms", "messages", "distributed txn fraction"],
        rows,
    )
    print("\n" + table)
    out = pathlib.Path(__file__).parents[1] / "results"
    out.mkdir(exist_ok=True)
    (out / "ablation_entity_groups.txt").write_text(table + "\n")
    grouped = results["entity groups"]
    scattered = results["scattered"]
    # Entity groups: cheaper commits, fewer messages (no 2PC rounds).
    assert grouped[0] < scattered[0]
    assert grouped[1] < scattered[1]
    # The workload-driven partitioner recovers most co-location.
    assert results["scattered + schism"][2] < scattered[2]