"""Ablation — storage cost-effectiveness (§1).

"Log-only approach also enables cost-effective storage usage since the
system does not need to store two copies of data in both log and data
files."  This bench measures bytes *written* (the I/O bill) and bytes
*retained* (the capacity bill) for the same load on LogBase and HBase —
including HBase after its WAL is trimmed, the steady state where the
double write remains but the double copy does not.
"""

import pathlib

from repro.bench.adapters import make_hbase, make_logbase
from repro.bench.report import format_table
from repro.bench.runner import run_load
from repro.bench.ycsb import YCSBWorkload

RECORDS = 800


def run_experiment() -> dict[str, dict[str, float]]:
    results: dict[str, dict[str, float]] = {}

    workload = YCSBWorkload(records_per_node=RECORDS, record_size=1000)
    logbase = make_logbase(3, records_per_node=RECORDS, single_server=True)
    run_load(logbase, workload)
    written = sum(
        m.counters.get("disk.bytes_written") for m in logbase.cluster.machines
    )
    retained = sum(s.data_bytes() for s in logbase.cluster.servers)
    results["LogBase"] = {"written": written, "retained": retained}

    workload = YCSBWorkload(records_per_node=RECORDS, record_size=1000)
    hbase = make_hbase(3, records_per_node=RECORDS, single_server=True)
    run_load(hbase, workload)
    written = sum(
        m.counters.get("disk.bytes_written") for m in hbase.cluster.machines
    )
    retained = sum(s.data_bytes() for s in hbase.cluster.servers)
    results["HBase"] = {"written": written, "retained": retained}
    for server in hbase.cluster.servers:
        server.trim_wal()
    results["HBase (WAL trimmed)"] = {
        "written": written,
        "retained": sum(s.data_bytes() for s in hbase.cluster.servers),
    }
    return results


def test_storage_footprint(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    logical = 3 * RECORDS * 1000
    rows = [
        [name, vals["written"], vals["written"] / logical,
         vals["retained"], vals["retained"] / logical]
        for name, vals in results.items()
    ]
    table = format_table(
        f"Ablation: storage footprint ({3 * RECORDS} x 1KB records, 3-way replication)",
        ["system", "bytes written", "write amp", "bytes retained", "space amp"],
        rows,
    )
    print("\n" + table)
    out = pathlib.Path(__file__).parents[1] / "results"
    out.mkdir(exist_ok=True)
    (out / "ablation_storage_footprint.txt").write_text(table + "\n")

    lb, hb, hb_trim = (
        results["LogBase"],
        results["HBase"],
        results["HBase (WAL trimmed)"],
    )
    # I/O bill: HBase writes every byte ~twice regardless of trimming.
    assert hb["written"] > 1.8 * lb["written"]
    # Capacity bill: untrimmed HBase retains ~two copies; trimming brings
    # it back near LogBase's single copy.
    assert hb["retained"] > 1.8 * lb["retained"]
    assert hb_trim["retained"] < 1.3 * lb["retained"]
