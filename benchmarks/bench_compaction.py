"""Steady-state compaction churn: incremental size-tiered vs monolithic.

Runs an identical uniform-update churn workload twice on a single-server
3-node LogBase: load a keyspace, then repeat ``rounds`` rounds of random
overwrites followed by ``compact_all()`` — once with the seed monolithic
compaction (every round rewrites the whole log, sorted runs included) and
once with ``LogBaseConfig.with_incremental_compaction()`` (size-tiered
planner: the unsorted tail always compacts, sorted runs only merge when a
tier fills).

Reports cumulative compaction bytes read/written per round and the
rewrite amplification (cumulative compaction writes / cumulative ingest),
then measures post-compaction range scans on both arms to show the
read-path clustering is preserved.  Appends a run entry to
``BENCH_compaction.json`` at the repo root so the amplification
trajectory is tracked across commits.

Run directly (``python benchmarks/bench_compaction.py [--smoke]``) or via
pytest, which asserts the acceptance bars: >= 40 % fewer cumulative
compaction bytes written, and post-compaction scans within 5 % of the
monolithic arm.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import time

from conftest import RECORD_SIZE
from repro.bench.adapters import LogBaseAdapter, make_logbase
from repro.config import LogBaseConfig
from repro.sim.metrics import (
    COMPACTION_BYTES_READ,
    COMPACTION_BYTES_WRITTEN,
    COMPACTION_PLANS,
    LOG_INGEST_BYTES,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_compaction.json"

DEFAULT_RECORDS = 1200
DEFAULT_ROUNDS = 10
SMOKE_RECORDS = 400
SMOKE_ROUNDS = 8  # the acceptance bar requires >= 8 churn rounds
SCANS = 16
RANGE_SIZE = 80  # tuples returned per scan, the Fig. 10 mid-range point


def build_adapter(records: int, *, incremental: bool) -> LogBaseAdapter:
    """A single-server 3-node LogBase with small segments so each churn
    round spills several unsorted tail segments (the steady-state
    regime), with or without incremental compaction."""
    total = max(records * RECORD_SIZE, 64 * 1024)
    settings = dict(segment_size=max(total // 8, 16 * 1024), heap_bytes=4 * total)
    config = (
        LogBaseConfig.with_incremental_compaction(**settings)
        if incremental
        else LogBaseConfig(**settings)
    )
    return make_logbase(
        3,
        records_per_node=records,
        record_size=RECORD_SIZE,
        config=config,
        single_server=True,
    )


def run_churn(
    adapter: LogBaseAdapter, records: int, rounds: int, *, seed: int = 11
) -> dict:
    """Load, then ``rounds`` rounds of uniform overwrites + compaction.

    Returns per-round cumulative compaction I/O and the final rewrite
    amplification (compaction bytes written / ingested bytes).
    """
    rng = random.Random(seed)
    keys = [f"user{i:08d}".encode() for i in range(records)]
    for key in keys:
        adapter.put(0, key, rng.randbytes(RECORD_SIZE))
    updates_per_round = records // 2
    per_round: list[dict] = []
    for _ in range(rounds):
        for _ in range(updates_per_round):
            adapter.put(0, rng.choice(keys), rng.randbytes(RECORD_SIZE))
        adapter.compact_all()
        counters = adapter.cluster.total_counters()
        per_round.append(
            {
                "compaction_bytes_written": counters.get(COMPACTION_BYTES_WRITTEN, 0.0),
                "compaction_bytes_read": counters.get(COMPACTION_BYTES_READ, 0.0),
                "ingest_bytes": counters.get(LOG_INGEST_BYTES, 0.0),
            }
        )
    counters = adapter.cluster.total_counters()
    written = counters.get(COMPACTION_BYTES_WRITTEN, 0.0)
    ingested = counters.get(LOG_INGEST_BYTES, 0.0)
    return {
        "rounds": per_round,
        "compaction_bytes_written": written,
        "compaction_bytes_read": counters.get(COMPACTION_BYTES_READ, 0.0),
        "ingest_bytes": ingested,
        "compaction_plans": counters.get(COMPACTION_PLANS, 0.0),
        "rewrite_amplification": written / ingested if ingested else 0.0,
        "live_segments": sum(
            len(server.log.segments()) for server in adapter.cluster.servers
        ),
    }


def run_scan_phase(
    adapter: LogBaseAdapter, records: int, *, seed: int = 5
) -> dict[str, float]:
    """Cold post-compaction range scans (the Fig. 10 read-path check)."""
    rng = random.Random(seed)
    keys = [f"user{i:08d}".encode() for i in range(records)]
    adapter.drop_caches()
    adapter.reset_clocks()
    simulated = 0.0
    rows = 0
    for _ in range(SCANS):
        start_idx = rng.randrange(max(1, len(keys) - RANGE_SIZE))
        start = keys[start_idx]
        end = keys[min(start_idx + RANGE_SIZE, len(keys) - 1)]
        returned, seconds = adapter.range_scan(0, start, end)
        rows += returned
        simulated += seconds
    return {"rows": rows, "simulated_seconds": simulated}


def run_experiment(records: int = DEFAULT_RECORDS, rounds: int = DEFAULT_ROUNDS) -> dict:
    """The full churn comparison; identical workload seeds per arm."""
    results: dict = {
        "records": records,
        "rounds": rounds,
        "scans": SCANS,
        "range_size": RANGE_SIZE,
    }
    for label, incremental in (("monolithic", False), ("incremental", True)):
        adapter = build_adapter(records, incremental=incremental)
        arm = run_churn(adapter, records, rounds)
        arm["scan"] = run_scan_phase(adapter, records)
        results[label] = arm
    mono = results["monolithic"]
    inc = results["incremental"]
    results["write_reduction"] = (
        1.0 - inc["compaction_bytes_written"] / mono["compaction_bytes_written"]
        if mono["compaction_bytes_written"]
        else 0.0
    )
    results["scan_delta"] = (
        inc["scan"]["simulated_seconds"] / mono["scan"]["simulated_seconds"] - 1.0
        if mono["scan"]["simulated_seconds"]
        else 0.0
    )
    return results


def format_report(results: dict) -> str:
    lines = [
        f"Compaction churn ({results['records']} records, "
        f"{results['rounds']} rounds, "
        f"{results['scans']} scans x {results['range_size']} tuples)",
        f"{'arm':<12} {'cmp MB wr':>10} {'cmp MB rd':>10} {'amp':>6} "
        f"{'plans':>6} {'segs':>5} {'scan s':>8}",
    ]
    for arm in ("monolithic", "incremental"):
        a = results[arm]
        lines.append(
            f"{arm:<12} {a['compaction_bytes_written'] / 1e6:>10.2f} "
            f"{a['compaction_bytes_read'] / 1e6:>10.2f} "
            f"{a['rewrite_amplification']:>6.2f} {a['compaction_plans']:>6.0f} "
            f"{a['live_segments']:>5d} {a['scan']['simulated_seconds']:>8.4f}"
        )
    lines.append(
        f"compaction write reduction: {results['write_reduction']:.0%}  "
        f"scan delta: {results['scan_delta']:+.1%}"
    )
    return "\n".join(lines)


def append_trajectory(results: dict) -> None:
    history = []
    if TRAJECTORY.exists():
        history = json.loads(TRAJECTORY.read_text())
    history.append({"timestamp": time.time(), **results})
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


def check_acceptance(results: dict) -> list[str]:
    """The acceptance bars; returns a list of violations (empty = pass)."""
    failures = []
    mono = results["monolithic"]
    inc = results["incremental"]
    if results["write_reduction"] < 0.40:
        failures.append(
            f"expected >= 40% fewer compaction bytes written, got "
            f"{results['write_reduction']:.0%}"
        )
    if inc["rewrite_amplification"] >= mono["rewrite_amplification"]:
        failures.append(
            f"incremental rewrite amplification "
            f"{inc['rewrite_amplification']:.2f} not strictly below "
            f"monolithic {mono['rewrite_amplification']:.2f}"
        )
    if inc["scan"]["rows"] != mono["scan"]["rows"]:
        failures.append(
            f"scan rows diverged: {inc['scan']['rows']} vs {mono['scan']['rows']}"
        )
    if results["scan_delta"] > 0.05:
        failures.append(
            f"post-compaction scans {results['scan_delta']:+.1%} slower than "
            f"monolithic (allowed: +5%)"
        )
    return failures


# -- pytest entry point -----------------------------------------------------------


def test_compaction_churn():
    results = run_experiment(records=SMOKE_RECORDS, rounds=SMOKE_ROUNDS)
    assert results["incremental"]["ingest_bytes"] == results["monolithic"]["ingest_bytes"]
    failures = check_acceptance(results)
    assert not failures, "; ".join(failures)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument("--records", type=int, default=None)
    parser.add_argument("--rounds", type=int, default=None)
    args = parser.parse_args()
    records = (
        args.records
        if args.records is not None
        else (SMOKE_RECORDS if args.smoke else DEFAULT_RECORDS)
    )
    rounds = (
        args.rounds
        if args.rounds is not None
        else (SMOKE_ROUNDS if args.smoke else DEFAULT_ROUNDS)
    )
    if records < 1 or rounds < 1:
        parser.error("--records and --rounds must be >= 1")
    results = run_experiment(records=records, rounds=rounds)
    print(format_report(results))
    if not args.smoke:  # smoke runs (CI) must not pollute the trajectory
        append_trajectory(results)
        print(f"\ntrajectory appended to {TRAJECTORY}")
    failures = check_acceptance(results)
    if failures:
        raise SystemExit("ACCEPTANCE FAILED: " + "; ".join(failures))
    print("acceptance bars met")


if __name__ == "__main__":
    main()
