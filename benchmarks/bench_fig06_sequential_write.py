"""Figure 6 — sequential write: LogBase outperforms HBase by ~50 %.

Paper setup: insert 250 K/500 K/1 M 1 KB records into one tablet server
over a 3-node HDFS (scaled counts here).  LogBase writes each record once
(the log *is* the data); HBase writes it to the WAL and again through the
memtable flush, so its insert time should be roughly double.
"""

from conftest import MICRO_COUNTS, load_keys_single_server, micro_pair


def run_experiment() -> dict[str, dict[int, float]]:
    series: dict[str, dict[int, float]] = {"LogBase": {}, "HBase": {}}
    for count in MICRO_COUNTS:
        logbase, hbase = micro_pair(count)
        _, lb_seconds = load_keys_single_server(logbase, count)
        _, hb_seconds = load_keys_single_server(hbase, count)
        series["LogBase"][count] = lb_seconds
        series["HBase"][count] = hb_seconds
    return series


def test_fig06_sequential_write(benchmark, report_series):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report_series(
        "fig06",
        "Figure 6: Sequential Write (simulated sec)",
        "tuples",
        series,
    )
    for count in MICRO_COUNTS:
        lb, hb = series["LogBase"][count], series["HBase"][count]
        # Paper: "LogBase outperforms HBase by 50%" (HBase ~2x slower).
        # Fixed per-file costs (flush/compaction seeks) inflate HBase's
        # absolute factor at simulation scale, so the absolute bound is
        # loose and the scale-invariant check below is on the slope.
        assert hb > 1.4 * lb, f"HBase should be ~2x slower at {count}: {hb} vs {lb}"
    # Marginal cost per record (the figure's slope) carries the paper's
    # ~2x factor: constants cancel between dataset sizes.
    lb_slope = series["LogBase"][MICRO_COUNTS[-1]] - series["LogBase"][MICRO_COUNTS[0]]
    hb_slope = series["HBase"][MICRO_COUNTS[-1]] - series["HBase"][MICRO_COUNTS[0]]
    assert lb_slope > 0
    assert 1.4 * lb_slope < hb_slope < 4.0 * lb_slope, (
        f"marginal ratio {hb_slope / lb_slope:.2f} outside the paper's ~2x"
    )
