"""Figure 22 — write/read throughput vs. cluster size: LogBase ≥ LRS.

Both systems scale with nodes; LogBase's in-memory index keeps it ahead
on both operations, with LRS close behind (the paper's conclusion that
spilling indexes via LSM-trees costs little throughput).
"""

from conftest import NODE_COUNTS, RECORD_SIZE, make_logbase, make_lrs
from repro.bench.runner import run_load, run_mixed
from repro.bench.ycsb import YCSBWorkload

RECORDS = 400
OPS = 80


def run_experiment() -> dict[str, dict[int, float]]:
    series: dict[str, dict[int, float]] = {
        "LogBase write": {},
        "LRS write": {},
        "LogBase read": {},
        "LRS read": {},
    }
    for n_nodes in NODE_COUNTS:
        for name, factory in (("LogBase", make_logbase), ("LRS", make_lrs)):
            write_wl = YCSBWorkload(
                records_per_node=RECORDS, record_size=RECORD_SIZE, update_fraction=1.0
            )
            adapter = factory(n_nodes, records_per_node=RECORDS, record_size=RECORD_SIZE)
            load = run_load(adapter, write_wl)
            series[f"{name} write"][n_nodes] = load.throughput
            adapter.reset_clocks()
            read_wl = YCSBWorkload(
                records_per_node=RECORDS, record_size=RECORD_SIZE, update_fraction=0.0
            )
            read_wl._keys = write_wl.keys
            mixed = run_mixed(adapter, read_wl, OPS)
            series[f"{name} read"][n_nodes] = mixed.throughput
    return series


def test_fig22_lrs_scalability(benchmark, report_series):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report_series(
        "fig22",
        "Figure 22: Throughput vs Nodes, LogBase vs LRS (ops/simulated sec)",
        "nodes",
        series,
    )
    for n_nodes in NODE_COUNTS:
        assert (
            series["LogBase write"][n_nodes] >= 0.95 * series["LRS write"][n_nodes]
        ), f"LogBase write should lead at {n_nodes}"
        assert (
            series["LogBase read"][n_nodes] >= 0.95 * series["LRS read"][n_nodes]
        ), f"LogBase read should lead at {n_nodes}"
    # Both systems scale out.
    for label in series:
        assert series[label][NODE_COUNTS[-1]] > 2 * series[label][NODE_COUNTS[0]], label
