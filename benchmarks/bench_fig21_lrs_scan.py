"""Figure 21 — sequential scan: LogBase faster than LRS.

Each scanned record is version-checked against the index; LogBase's
check is an in-memory B-link lookup while LRS may touch LSM runs in the
DFS, so the scan-time version checks cost LRS extra I/O (§4.6).
"""

from conftest import MICRO_COUNTS, RECORD_SIZE, load_keys_single_server, make_lrs, micro_pair
from repro.bench.runner import run_sequential_scan


def run_experiment() -> dict[str, dict[int, float]]:
    series: dict[str, dict[int, float]] = {"LogBase": {}, "LRS": {}}
    for count in MICRO_COUNTS:
        logbase, _ = micro_pair(count)
        lrs = make_lrs(
            3, records_per_node=count, record_size=RECORD_SIZE, single_server=True
        )
        load_keys_single_server(logbase, count)
        load_keys_single_server(lrs, count)
        logbase.drop_caches()
        lrs.drop_caches()
        # LSM block caches also start cold so version checks pay their I/O.
        for server in lrs.cluster.servers:
            for index in server.indexes().values():
                index._block_cache.clear()
        lb_rows, lb_seconds = run_sequential_scan(logbase)
        lrs_rows, lrs_seconds = run_sequential_scan(lrs)
        assert lb_rows == lrs_rows == count
        series["LogBase"][count] = lb_seconds
        series["LRS"][count] = lrs_seconds
    return series


def test_fig21_lrs_sequential_scan(benchmark, report_series):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report_series(
        "fig21",
        "Figure 21: Sequential Scan, LogBase vs LRS (simulated sec)",
        "tuples",
        series,
    )
    for count in MICRO_COUNTS:
        lb, lrs = series["LogBase"][count], series["LRS"][count]
        # "LogBase also achieves higher sequential scan performance than LRS"
        assert lb < lrs, f"LogBase must scan faster at {count}"
