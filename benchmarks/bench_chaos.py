"""Chaos benchmark: fault schedules vs the durability oracle.

Runs every named chaos scenario (``repro.chaos.schedules``) across a
matrix of workload seeds and reports, per run, what the schedule did
(faults fired, servers failed over, replicas repaired) and whether the
durability contract held: every acknowledged write readable after
recovery, no cleanly-aborted write visible, indeterminate commits
atomic.

Unlike the figure benches this is a pass/fail harness, but it is
reported like a benchmark: one row per (scenario, seed) and a trajectory
entry appended to ``BENCH_chaos.json`` at the repo root so durability
coverage is tracked across commits.

Run directly (``python benchmarks/bench_chaos.py [--smoke]``) or via
pytest, which asserts every run passes the oracle.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.chaos import SCHEDULES, run_chaos

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_chaos.json"

DEFAULT_SEEDS = (1, 2, 3, 4, 5)
DEFAULT_OPS = 60
SMOKE_SEEDS = (1, 2)
SMOKE_OPS = 40


def run_experiment(
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    ops: int = DEFAULT_OPS,
    scenarios: tuple[str, ...] | None = None,
) -> dict:
    """The full scenario x seed matrix; returns per-run reports."""
    names = tuple(scenarios) if scenarios is not None else tuple(SCHEDULES)
    runs = []
    for name in names:
        for seed in seeds:
            report = run_chaos(name, seed=seed, ops=ops)
            runs.append(report.to_dict())
    return {
        "ops": ops,
        "seeds": list(seeds),
        "scenarios": list(names),
        "runs": runs,
        "passed": sum(1 for r in runs if r["passed"]),
        "failed": sum(1 for r in runs if not r["passed"]),
    }


def format_report(results: dict) -> str:
    lines = [
        f"Chaos suite ({len(results['scenarios'])} scenarios x "
        f"{len(results['seeds'])} seeds, {results['ops']} ops each)",
        f"{'scenario':<24} {'seed':>4} {'ok':>3} {'acked':>6} {'abrt':>5} "
        f"{'indet':>6} {'faults':>7} {'rescue':>7} {'rerepl':>7}",
    ]
    for run in results["runs"]:
        lines.append(
            f"{run['scenario']:<24} {run['seed']:>4} "
            f"{'y' if run['passed'] else 'N':>3} {run['acked']:>6} "
            f"{run['aborted']:>5} {run['indeterminate']:>6} "
            f"{run['faults_fired']:>7} {run['rescued_ops']:>7} "
            f"{run['rereplicated']:>7}"
        )
        for violation in run["violations"]:
            lines.append(f"    VIOLATION: {violation}")
    lines.append(
        f"durability contract: {results['passed']}/{len(results['runs'])} "
        f"runs passed"
    )
    return "\n".join(lines)


def append_trajectory(results: dict) -> None:
    history = []
    if TRAJECTORY.exists():
        history = json.loads(TRAJECTORY.read_text())
    summary = {
        "timestamp": time.time(),
        "ops": results["ops"],
        "seeds": results["seeds"],
        "scenarios": results["scenarios"],
        "passed": results["passed"],
        "failed": results["failed"],
        "violations": [
            violation
            for run in results["runs"]
            for violation in run["violations"]
        ],
    }
    history.append(summary)
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


# -- pytest entry point -----------------------------------------------------


def test_chaos_matrix():
    results = run_experiment(seeds=(1, 2), ops=40)
    failed = [r for r in results["runs"] if not r["passed"]]
    assert not failed, "\n".join(
        f"{r['scenario']} seed={r['seed']}: {r['violations']}" for r in failed
    )
    # The schedules really disrupted something: crash-point scenarios
    # fired faults, event scenarios re-replicated or failed over.
    by_scenario: dict[str, int] = {}
    for r in results["runs"]:
        by_scenario[r["scenario"]] = by_scenario.get(r["scenario"], 0) + (
            r["faults_fired"]
            + r["rereplicated"]
            + len(r["expired_servers"])
            + len(r["restarted_servers"])
        )
    quiet = [name for name, disruption in by_scenario.items() if disruption == 0]
    assert not quiet, f"scenarios caused no disruption: {quiet}"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small matrix for CI smoke runs"
    )
    parser.add_argument("--ops", type=int, default=None)
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=None, metavar="SEED"
    )
    parser.add_argument(
        "--scenario",
        choices=sorted(SCHEDULES),
        action="append",
        help="run only this scenario (repeatable)",
    )
    args = parser.parse_args()
    seeds = (
        tuple(args.seeds)
        if args.seeds is not None
        else (SMOKE_SEEDS if args.smoke else DEFAULT_SEEDS)
    )
    ops = args.ops if args.ops is not None else (SMOKE_OPS if args.smoke else DEFAULT_OPS)
    if ops < 10:
        parser.error("--ops must be >= 10 (maintenance ops need room)")
    scenarios = tuple(args.scenario) if args.scenario else None
    results = run_experiment(seeds=seeds, ops=ops, scenarios=scenarios)
    print(format_report(results))
    append_trajectory(results)
    print(f"\ntrajectory appended to {TRAJECTORY}")
    if results["failed"]:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
