"""Figure 20 — random reads: LRS slightly slower than LogBase.

A cold LRS read may need LSM index probes (bloom-filtered block reads
from the DFS) before the single log seek, where LogBase resolves the
pointer from memory; LevelDB's buffers keep the overhead moderate.
"""

from conftest import READ_COUNTS, RECORD_SIZE, load_keys_single_server, make_lrs, micro_pair
from repro.bench.runner import run_random_reads

LOADED = 4000


def run_experiment() -> dict[str, dict[int, float]]:
    logbase, _ = micro_pair(LOADED)
    lrs = make_lrs(
        3, records_per_node=LOADED, record_size=RECORD_SIZE, single_server=True
    )
    lb_keys, _ = load_keys_single_server(logbase, LOADED)
    lrs_keys, _ = load_keys_single_server(lrs, LOADED)
    series: dict[str, dict[int, float]] = {"LogBase": {}, "LRS": {}}
    for n_reads in READ_COUNTS:
        series["LogBase"][n_reads] = run_random_reads(
            logbase, lb_keys, n_reads, cold=True
        )
        series["LRS"][n_reads] = run_random_reads(lrs, lrs_keys, n_reads, cold=True)
    return series


def test_fig20_lrs_random_read(benchmark, report_series):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report_series(
        "fig20",
        "Figure 20: Random Read without Cache, LogBase vs LRS (simulated sec)",
        "reads",
        series,
    )
    for n_reads in READ_COUNTS:
        lb, lrs = series["LogBase"][n_reads], series["LRS"][n_reads]
        assert lrs >= lb * 0.95, f"LRS should not beat LogBase at {n_reads}"
        assert lrs < lb * 3.0, f"LRS read overhead should be moderate at {n_reads}"
