"""Figure 18 — recovery time, with vs. without a checkpoint.

Paper setup (scaled): checkpoint taken at 500 MB of data, the server is
killed between 600 MB and 900 MB.  With a checkpoint, recovery reloads
the index files and redoes only the log tail after the checkpoint; without
one, the whole log is scanned.
"""

from repro import LogBase, LogBaseConfig
from repro.bench.adapters import USERTABLE_SCHEMA
from repro.bench.ycsb import make_key
from repro.core.recovery import recover_server

# 10 KB records scale the paper's MB axis at 1:100 (500 records = the
# paper's 500 MB checkpoint threshold) while keeping byte costs — which
# dominate recovery at paper scale — well above fixed seek costs.
CHECKPOINT_AT = 500
KILL_SIZES = [600, 700, 800, 900]
RECORD = b"x" * 10_000


def _run_one(kill_at: int, with_checkpoint: bool) -> float:
    db = LogBase(3, LogBaseConfig(segment_size=256 * 1024))
    db.create_table(USERTABLE_SCHEMA, only_servers=[db.cluster.servers[0].name])
    client = db.client()
    server = db.cluster.servers[0]
    manager = db.cluster.checkpoints[server.name]
    for i in range(kill_at):
        client.put_raw("usertable", make_key(i * 1_000_003), "g", RECORD)
        if with_checkpoint and i == CHECKPOINT_AT:
            manager.write_checkpoint()
    tablets = list(server.tablets.values())
    server.crash()
    server.restart()
    for tablet in tablets:
        server.assign_tablet(tablet)
    report = recover_server(server, manager)
    assert report.used_checkpoint is with_checkpoint
    return report.seconds


def run_experiment() -> dict[str, dict[int, float]]:
    series: dict[str, dict[int, float]] = {"With checkpoint": {}, "Without checkpoint": {}}
    for kill_at in KILL_SIZES:
        series["With checkpoint"][kill_at] = _run_one(kill_at, True)
        series["Without checkpoint"][kill_at] = _run_one(kill_at, False)
    return series


def test_fig18_recovery_time(benchmark, report_series):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report_series(
        "fig18",
        "Figure 18: Recovery Time (simulated sec)",
        "records at kill",
        series,
    )
    for kill_at in KILL_SIZES:
        with_ckpt = series["With checkpoint"][kill_at]
        without = series["Without checkpoint"][kill_at]
        # "recovery with checkpoint is significantly faster than without"
        assert with_ckpt < 0.85 * without, f"checkpoint must speed recovery at {kill_at}"
    # Without a checkpoint, recovery grows with total data; with one, only
    # the post-checkpoint tail matters, so the growth is much gentler.
    growth_without = (
        series["Without checkpoint"][KILL_SIZES[-1]]
        - series["Without checkpoint"][KILL_SIZES[0]]
    )
    growth_with = (
        series["With checkpoint"][KILL_SIZES[-1]]
        - series["With checkpoint"][KILL_SIZES[0]]
    )
    assert growth_without > 0
    assert growth_with <= growth_without * 1.5
