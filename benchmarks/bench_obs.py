"""Observability benchmark: where does LogBase's simulated time go?

Runs a YCSB-style put/get/scan mix on a traced cluster
(``LogBaseConfig.with_tracing``) and holds the trace subsystem to its
acceptance bars: every traced operation's span tree must explain >= 99%
of its end-to-end simulated latency, the per-layer breakdown must sum to
~100% of total latency, and the write path must show the paper's shape —
exactly one sequential log append per put, with the DFS append +
replication pipeline dominating write time (§3.4, §4.2.1).  The retained
traces are exported as Chrome ``trace_event`` JSON to
``benchmarks/results/trace_obs.json`` (loadable in chrome://tracing).

The tracing-off arm runs the identical workload first: its wall-clock,
together with a microbenchmark of the no-op span gate, bounds the cost
of the disabled gate at under 2% — the price every untraced run (seed
figures included) pays for the instrumentation's existence.

Run directly (``python benchmarks/bench_obs.py [--smoke]``) or via
pytest, which asserts all of the above.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import time
import timeit

from repro.config import LogBaseConfig
from repro.core.database import LogBase
from repro.core.schema import ColumnGroup, TableSchema
from repro.obs.analyze import coverage, format_time_report, where_did_time_go
from repro.obs.export import export_chrome_trace
from repro.obs.trace import span, uninstall_tracer
from repro.sim.machine import Machine

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_obs.json"
RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"
TRACE_PATH = RESULTS_DIR / "trace_obs.json"

TABLE = "obs"
GROUP = "g"
SCHEMA = TableSchema(TABLE, "id", (ColumnGroup(GROUP, ("v",)),))

DEFAULT_OPS = 240
SMOKE_OPS = 120
PRELOAD = 10
VALUE_BYTES = 1000
KEY_DOMAIN = 2_000_000_000

COVERAGE_BAR = 0.99
PERCENT_SUM_TOLERANCE = 1.0
DISABLED_OVERHEAD_BAR_PCT = 2.0


def _build_db(*, tracing: bool) -> LogBase:
    settings = {"segment_size": 256 * 1024}
    config = (
        LogBaseConfig.with_tracing(**settings)
        if tracing
        else LogBaseConfig(**settings)
    )
    db = LogBase(n_nodes=3, config=config)
    # The table lives on ts-node-1 while the client runs on node-2, so
    # every operation crosses a real machine boundary.
    db.create_table(SCHEMA, only_servers=["ts-node-1"])
    return db


def _run_workload(db: LogBase, ops: int, seed: int) -> None:
    """Seeded 50/40/10 put/get/scan mix through one remote client."""
    # A dedicated client machine outside the DFS: replication traffic
    # then books against the storage layers, not the client's clock.
    config = db.cluster.config
    client = db.client(
        Machine("client", disk_model=config.disk, network=config.network)
    )
    rng = random.Random(seed)
    value = b"x" * VALUE_BYTES
    keys: list[bytes] = []
    for _ in range(PRELOAD):
        key = b"%012d" % rng.randrange(KEY_DOMAIN)
        client.put_raw(TABLE, key, GROUP, value)
        keys.append(key)
    for _ in range(ops):
        roll = rng.random()
        if roll < 0.5:
            key = b"%012d" % rng.randrange(KEY_DOMAIN)
            client.put_raw(TABLE, key, GROUP, value)
            keys.append(key)
        elif roll < 0.9:
            client.get_raw(TABLE, rng.choice(keys), GROUP)
        else:
            start = rng.choice(keys)
            end = b"%012d" % min(int(start) + KEY_DOMAIN // 40, KEY_DOMAIN)
            client.scan_raw(TABLE, GROUP, start, end)


def _disabled_gate_overhead_pct(db_off: LogBase, span_calls: int, wall_off: float) -> float:
    """Share of the untraced run's wall-clock spent in the no-op span
    gate: (gate checks per run) x (cost of one no-op span() call)."""
    machine = db_off.cluster.machines[0]
    calls = 100_000
    per_call = timeit.timeit(
        lambda: span("log.append", machine), number=calls
    ) / calls
    return 100.0 * (span_calls * per_call) / wall_off if wall_off > 0 else 0.0


def run_experiment(ops: int = DEFAULT_OPS, seed: int = 1) -> dict:
    # Untraced arm first (no tracer has ever been installed): the
    # wall-clock baseline every seed benchmark pays.
    uninstall_tracer()
    started = time.perf_counter()
    db_off = _build_db(tracing=False)
    _run_workload(db_off, ops, seed)
    wall_off = time.perf_counter() - started
    assert db_off.cluster.tracer is None

    started = time.perf_counter()
    db = _build_db(tracing=True)
    _run_workload(db, ops, seed)
    wall_on = time.perf_counter() - started

    tracer = db.cluster.tracer
    roots = tracer.trace_log.traces()
    op_roots = [root for root in roots if root.name.startswith("op.")]
    coverages = [coverage(root) for root in op_roots]
    report = where_did_time_go(roots)

    puts = tracer.trace_log.traces("op.put")
    appends_per_put = sorted({len(root.find("log.append")) for root in puts})
    put_layers = where_did_time_go(puts)["layer_percent"]
    put_dominant = max(put_layers, key=put_layers.get) if put_layers else None

    RESULTS_DIR.mkdir(exist_ok=True)
    chrome_events = export_chrome_trace(tracer, str(TRACE_PATH))
    time_report = format_time_report(tracer)

    span_calls = tracer.spans_started
    open_spans = tracer.open_spans
    uninstall_tracer()
    gate_pct = _disabled_gate_overhead_pct(db_off, span_calls, wall_off)

    return {
        "ops": ops,
        "seed": seed,
        "traces": len(roots),
        "op_traces": len(op_roots),
        "spans": span_calls,
        "open_spans": open_spans,
        "min_coverage": min(coverages) if coverages else 0.0,
        "mean_coverage": report["coverage"],
        "percent_sum": report["percent_sum"],
        "layer_percent": report["layer_percent"],
        "appends_per_put": appends_per_put,
        "put_layer_percent": put_layers,
        "put_dominant_layer": put_dominant,
        "chrome_events": chrome_events,
        "chrome_trace": str(TRACE_PATH.relative_to(REPO_ROOT)),
        "wall_off_seconds": wall_off,
        "wall_on_seconds": wall_on,
        "tracing_overhead_pct": (
            100.0 * (wall_on - wall_off) / wall_off if wall_off > 0 else 0.0
        ),
        "disabled_gate_overhead_pct": gate_pct,
        "time_report": time_report,
    }


def check(results: dict) -> list[str]:
    """The acceptance bars; returns a list of failures (empty = pass)."""
    failures = []
    if results["open_spans"] != 0:
        failures.append(f"{results['open_spans']} spans never closed")
    if results["min_coverage"] < COVERAGE_BAR:
        failures.append(
            f"worst op coverage {results['min_coverage']:.4f} "
            f"< {COVERAGE_BAR}: some charged time escaped the span tree"
        )
    if abs(results["percent_sum"] - 100.0) > PERCENT_SUM_TOLERANCE:
        failures.append(
            f"layer percentages sum to {results['percent_sum']:.2f}%, "
            f"not ~100%"
        )
    if results["appends_per_put"] != [1]:
        failures.append(
            f"puts performed {results['appends_per_put']} log appends, "
            f"expected exactly one sequential append each"
        )
    if results["put_dominant_layer"] != "dfs":
        failures.append(
            f"write latency dominated by {results['put_dominant_layer']!r}, "
            f"expected the dfs append+replication pipeline"
        )
    if results["chrome_events"] <= 0:
        failures.append("chrome trace export produced no events")
    if results["disabled_gate_overhead_pct"] >= DISABLED_OVERHEAD_BAR_PCT:
        failures.append(
            f"disabled-gate overhead "
            f"{results['disabled_gate_overhead_pct']:.2f}% >= "
            f"{DISABLED_OVERHEAD_BAR_PCT}% of the untraced run"
        )
    return failures


def format_report(results: dict) -> str:
    lines = [
        f"Observability suite ({results['ops']} ops, seed {results['seed']}): "
        f"{results['traces']} traces, {results['spans']} spans",
        "",
        results["time_report"],
        "",
        f"coverage: min {results['min_coverage']:.4f}, "
        f"mean {results['mean_coverage']:.4f} (bar {COVERAGE_BAR})",
        f"layer percent sum: {results['percent_sum']:.2f}%",
        f"write path: {results['appends_per_put']} log append(s)/put, "
        f"dominated by {results['put_dominant_layer']} "
        f"({results['put_layer_percent'].get('dfs', 0.0):.1f}% of put latency)",
        f"chrome trace: {results['chrome_events']} events -> "
        f"{results['chrome_trace']}",
        f"wall-clock: {results['wall_off_seconds']:.2f}s untraced, "
        f"{results['wall_on_seconds']:.2f}s traced "
        f"({results['tracing_overhead_pct']:+.1f}%)",
        f"disabled-gate overhead: "
        f"{results['disabled_gate_overhead_pct']:.3f}% of the untraced run "
        f"(bar {DISABLED_OVERHEAD_BAR_PCT}%)",
    ]
    return "\n".join(lines)


def append_trajectory(results: dict) -> None:
    history = []
    if TRAJECTORY.exists():
        history = json.loads(TRAJECTORY.read_text())
    summary = {key: value for key, value in results.items() if key != "time_report"}
    summary["timestamp"] = time.time()
    history.append(summary)
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


# -- pytest entry point -----------------------------------------------------


def test_obs_suite():
    results = run_experiment(ops=SMOKE_OPS)
    failures = check(results)
    assert not failures, "\n".join(failures)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="smaller workload for CI smoke runs"
    )
    parser.add_argument("--ops", type=int, default=None)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()
    ops = args.ops if args.ops is not None else (SMOKE_OPS if args.smoke else DEFAULT_OPS)
    results = run_experiment(ops=ops, seed=args.seed)
    print(format_report(results))
    append_trajectory(results)
    print(f"\ntrajectory appended to {TRAJECTORY}")
    failures = check(results)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        raise SystemExit(1)


if __name__ == "__main__":
    main()
