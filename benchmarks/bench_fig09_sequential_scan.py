"""Figure 9 — sequential scan: LogBase slightly slower than HBase.

LogBase scans log files whose entries carry extra log metadata (table,
tablet, group per entry) while HBase scans leaner data files, so LogBase
pays a modest byte overhead on full scans.
"""

from conftest import MICRO_COUNTS, load_keys_single_server, micro_pair
from repro.bench.runner import run_sequential_scan


def run_experiment() -> dict[str, dict[int, float]]:
    series: dict[str, dict[int, float]] = {"LogBase": {}, "HBase": {}}
    for count in MICRO_COUNTS:
        logbase, hbase = micro_pair(count)
        load_keys_single_server(logbase, count)
        load_keys_single_server(hbase, count)
        # Merge HBase stores to one file each, matching LogBase's single
        # log segment: at paper scale (64 MB files over 1 GB/node) per-file
        # seeks amortize away, so equal file counts isolate the per-entry
        # byte overhead Figure 9 is about.
        for server in hbase.cluster.servers:
            for store in list(server._sstables):
                server.minor_compact(store)
        # Cold *data*: drop record/block caches and park the disk heads,
        # but keep file-open metadata (SSTable index blocks) resident —
        # a table scan opens each file once either way.  What Figure 9
        # isolates is the per-entry log metadata LogBase carries.
        logbase.drop_caches()
        for server in hbase.cluster.servers:
            server.block_cache.clear()
        for machine in hbase.cluster.machines:
            machine.disk.invalidate_head()
        lb_rows, lb_seconds = run_sequential_scan(logbase)
        hb_rows, hb_seconds = run_sequential_scan(hbase)
        assert lb_rows == hb_rows == count
        series["LogBase"][count] = lb_seconds
        series["HBase"][count] = hb_seconds
    return series


def test_fig09_sequential_scan(benchmark, report_series):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report_series(
        "fig09",
        "Figure 9: Sequential Scan (simulated sec)",
        "tuples",
        series,
    )
    for count in MICRO_COUNTS:
        lb, hb = series["LogBase"][count], series["HBase"][count]
        # Paper: "slightly slower" — LogBase within ~2x but not faster by much.
        assert lb > 0.8 * hb, f"LogBase should not be much faster at {count}"
        assert lb < 3.0 * hb, f"LogBase should be only slightly slower at {count}"
    assert series["LogBase"][MICRO_COUNTS[-1]] > series["LogBase"][MICRO_COUNTS[0]]
