"""Hot-path read benchmark: the read pipeline vs the seed read path.

Runs the Figure 10-style experiment — warm range scans over a
shuffle-loaded (unclustered) single-server log — twice with identical
seeds: once with the seed configuration (no block cache, per-pointer
reads, no prefetch) and once with ``LogBaseConfig.with_read_pipeline()``
(per-machine block cache + pointer-coalesced batch reads + scan
prefetch).  Unlike the figure benches, caches are *not* dropped between
scans: the point is the steady-state cost of repeated reads over a warm
working set.

Reports simulated disk seeks, simulated seconds, and Python wall-clock
per phase (uncompacted and compacted log), and appends a run entry to
``BENCH_read_pipeline.json`` at the repo root so the seek-reduction
trajectory is tracked across commits.

Run directly (``python benchmarks/bench_hotpath_read.py [--smoke]``) or
via pytest, which asserts the >= 2x seek-reduction acceptance bar.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import time

from conftest import RECORD_SIZE, load_keys_single_server
from repro.bench.adapters import LogBaseAdapter, make_logbase
from repro.config import LogBaseConfig

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_read_pipeline.json"

DEFAULT_RECORDS = 2000
DEFAULT_SCANS = 24
SMOKE_RECORDS = 600
SMOKE_SCANS = 8
RANGE_SIZE = 80  # tuples returned per scan, the Fig. 10 mid-range point

PHASE_COUNTERS = {
    "disk_seeks": "disk.seeks",
    "disk_bytes_read": "disk.bytes_read",
    "blockcache_hits": "blockcache.hits",
    "blockcache_misses": "blockcache.misses",
    "read_many_records": "log.read_many.records",
    "read_many_spans": "log.read_many.spans",
}


def build_adapter(records: int, *, pipeline: bool) -> LogBaseAdapter:
    """A single-server 3-node LogBase, segment size scaled to the dataset
    (as in ``micro_pair``), with or without the read pipeline."""
    total = max(records * RECORD_SIZE, 64 * 1024)
    config = (
        LogBaseConfig.with_read_pipeline(segment_size=total * 2)
        if pipeline
        else LogBaseConfig(segment_size=total * 2)
    )
    return make_logbase(
        3,
        records_per_node=records,
        record_size=RECORD_SIZE,
        config=config,
        single_server=True,
    )


def run_scan_phase(
    adapter: LogBaseAdapter,
    keys: list[bytes],
    *,
    scans: int,
    seed: int = 5,
) -> dict[str, float]:
    """``scans`` warm range scans (caches are kept between scans)."""
    rng = random.Random(seed)
    adapter.reset_clocks()
    before = adapter.cluster.total_counters()
    wall_start = time.perf_counter()
    simulated = 0.0
    rows = 0
    for _ in range(scans):
        start_idx = rng.randrange(max(1, len(keys) - RANGE_SIZE))
        start = keys[start_idx]
        end = keys[min(start_idx + RANGE_SIZE, len(keys) - 1)]
        returned, seconds = adapter.range_scan(0, start, end)
        rows += returned
        simulated += seconds
    wall = time.perf_counter() - wall_start
    after = adapter.cluster.total_counters()
    phase = {
        name: after.get(counter, 0.0) - before.get(counter, 0.0)
        for name, counter in PHASE_COUNTERS.items()
    }
    phase.update(rows=rows, simulated_seconds=simulated, wall_seconds=wall)
    return phase


def run_experiment(
    records: int = DEFAULT_RECORDS, scans: int = DEFAULT_SCANS
) -> dict:
    """The full on/off comparison; identical workload seeds per arm."""
    results: dict = {"records": records, "scans": scans, "range_size": RANGE_SIZE}
    for label, pipeline in (("baseline", False), ("pipeline", True)):
        adapter = build_adapter(records, pipeline=pipeline)
        # Random arrival order leaves the log unclustered (Fig. 10 setup).
        keys, _ = load_keys_single_server(adapter, records, shuffle=True)
        adapter.drop_caches()
        arm = {"uncompacted": run_scan_phase(adapter, keys, scans=scans)}
        adapter.compact_all()
        adapter.drop_caches()
        arm["compacted"] = run_scan_phase(adapter, keys, scans=scans)
        results[label] = arm
    for phase in ("uncompacted", "compacted"):
        base = results["baseline"][phase]["disk_seeks"]
        piped = results["pipeline"][phase]["disk_seeks"]
        results[f"seek_reduction_{phase}"] = base / piped if piped else float("inf")
    return results


def format_report(results: dict) -> str:
    lines = [
        f"Hot-path read pipeline ({results['records']} records, "
        f"{results['scans']} scans x {results['range_size']} tuples)",
        f"{'phase':<14} {'arm':<10} {'seeks':>8} {'sim s':>10} "
        f"{'wall s':>8} {'bc hit%':>8} {'spans':>7}",
    ]
    for phase in ("uncompacted", "compacted"):
        for arm in ("baseline", "pipeline"):
            p = results[arm][phase]
            lookups = p["blockcache_hits"] + p["blockcache_misses"]
            hit_rate = p["blockcache_hits"] / lookups if lookups else 0.0
            lines.append(
                f"{phase:<14} {arm:<10} {p['disk_seeks']:>8.0f} "
                f"{p['simulated_seconds']:>10.4f} {p['wall_seconds']:>8.3f} "
                f"{hit_rate:>8.0%} {p['read_many_spans']:>7.0f}"
            )
        lines.append(
            f"{phase:<14} seek reduction: "
            f"{results[f'seek_reduction_{phase}']:.1f}x"
        )
    return "\n".join(lines)


def append_trajectory(results: dict) -> None:
    history = []
    if TRAJECTORY.exists():
        history = json.loads(TRAJECTORY.read_text())
    history.append({"timestamp": time.time(), **results})
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


# -- pytest entry point -----------------------------------------------------------


def test_hotpath_read_pipeline():
    results = run_experiment(records=800, scans=10)
    for phase in ("uncompacted", "compacted"):
        base = results["baseline"][phase]
        piped = results["pipeline"][phase]
        # Same workload, same answers.
        assert piped["rows"] == base["rows"]
        # Never worse than the seed path, even on a clustered log.
        assert piped["disk_seeks"] <= base["disk_seeks"]
        assert piped["simulated_seconds"] < base["simulated_seconds"]
        # Coalescing really engaged: many records per span read.
        assert 0 < piped["read_many_spans"] < piped["read_many_records"]
    # The acceptance bar: warm scans over the unclustered log pay at
    # least 2x fewer simulated seeks with the pipeline on.
    assert results["seek_reduction_uncompacted"] >= 2.0, (
        f"expected >=2x seek reduction, got "
        f"{results['seek_reduction_uncompacted']:.2f}x"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument("--records", type=int, default=None)
    parser.add_argument("--scans", type=int, default=None)
    args = parser.parse_args()
    records = (
        args.records
        if args.records is not None
        else (SMOKE_RECORDS if args.smoke else DEFAULT_RECORDS)
    )
    scans = (
        args.scans
        if args.scans is not None
        else (SMOKE_SCANS if args.smoke else DEFAULT_SCANS)
    )
    if records < 1 or scans < 1:
        parser.error("--records and --scans must be >= 1")
    results = run_experiment(records=records, scans=scans)
    print(format_report(results))
    append_trajectory(results)
    print(f"\ntrajectory appended to {TRAJECTORY}")


if __name__ == "__main__":
    main()
