"""Figure 15 — TPC-W transaction latency across mixes and cluster sizes.

Browsing and shopping mixes (mostly read-only transactions that always
commit without conflict checks) stay flat and low; the ordering mix pays
for more update commits (locking, validation, log persistence).
"""

from conftest import emit
from repro import LogBase, LogBaseConfig
from repro.bench.report import format_series
from repro.bench.tpcw import TPCW_MIXES, TPCWWorkload
from repro.bench.tpcw_runner import run_tpcw

NODE_COUNTS = [3, 6, 12, 24]
ENTITIES_PER_NODE = 60
TXNS_PER_NODE = 40

_cache: dict = {}


def tpcw_suite() -> dict:
    """One TPC-W run per (mix, nodes); shared with Figure 16."""
    if _cache:
        return _cache
    for mix in TPCW_MIXES:
        for n_nodes in NODE_COUNTS:
            db = LogBase(n_nodes, LogBaseConfig(segment_size=256 * 1024))
            workload = TPCWWorkload(
                products_per_node=ENTITIES_PER_NODE,
                customers_per_node=ENTITIES_PER_NODE,
                mix=mix,
            )
            db.cluster.reset_clocks()
            _cache[(mix, n_nodes)] = run_tpcw(db, workload, TXNS_PER_NODE)
    return _cache


def run_experiment() -> dict[str, dict[int, float]]:
    suite = tpcw_suite()
    return {
        f"{mix} mix": {n: suite[(mix, n)].mean_latency_ms for n in NODE_COUNTS}
        for mix in TPCW_MIXES
    }


def test_fig15_tpcw_latency(benchmark, report_series):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report_series(
        "fig15",
        "Figure 15: TPC-W Transaction Latency (simulated ms)",
        "nodes",
        series,
    )
    for n_nodes in NODE_COUNTS:
        browsing = series["browsing mix"][n_nodes]
        ordering = series["ordering mix"][n_nodes]
        # More update transactions -> higher mean latency.
        assert ordering > browsing, f"ordering must cost more at {n_nodes} nodes"
    # Near-flat latency under scale-out for the read-dominated mixes.
    for mix in ("browsing mix", "shopping mix"):
        points = series[mix]
        assert max(points.values()) < 4 * min(points.values()), mix
