"""Read-replica sweep: scale a read-mostly workload off the shared log.

One tablet server owns every tablet (the paper's single-writer hot spot)
while 0, 1, or 3 log-shipping followers tail its log segments straight
from the replicated DFS and serve bounded-staleness reads.  A YCSB-style
95/5 Zipfian read/write mix over the preloaded keyset runs against each
arm on a fresh cluster; the clients spread reads across the follower
rotation (owner included) and fall back to the owner whenever a replica
lags past its bound.

The workload is open-loop: a pool of client machines *outside* the
cluster issues the operations, so throughput is the cluster's serving
capacity — ops divided by the cluster makespan, which covers every
server machine and therefore charges the follower tail work against the
speedup instead of hiding it.  (A closed loop with one in-cluster client
measures the client's round-trip budget, the same in every arm.)

Reported per arm: simulated throughput, the share of reads the replicas
served, and the replica lag histogram.  The seeded replica chaos matrix
(:mod:`repro.chaos.replica`) runs alongside and must be green with zero
staleness violations.

Appends a run entry to ``BENCH_replicas.json`` at the repo root.

Run directly (``python benchmarks/bench_replicas.py [--smoke]``) or via
pytest, which asserts the acceptance bars: 3-follower throughput at
least 2.5x the owner-only baseline, 100% availability, and a green
chaos matrix with zero staleness violations.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import time

from repro.chaos import REPLICA_SCENARIOS, run_replica_chaos
from repro.config import LogBaseConfig
from repro.core.database import LogBase
from repro.core.schema import ColumnGroup, TableSchema
from repro.errors import LogBaseError
from repro.sim.machine import Machine

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_replicas.json"

TABLE = "reads"
GROUP = "g"
SCHEMA = TableSchema(TABLE, "id", (ColumnGroup(GROUP, ("v",)),))
KEY_WIDTH = 8
KEY_DOMAIN = 100_000
RECORD_SIZE = 200
ZIPF_EXPONENT = 2  # key = domain * u^2: skewed but not single-key
READ_FRACTION = 0.95
N_NODES = 5  # owner + 3 follower slots + a client-side node

FOLLOWER_ARMS = (0, 1, 3)
SIZES = (1200,)
SMOKE_SIZES = (300,)
PRELOAD = 400
SEED = 23
HEARTBEAT_EVERY = 25
N_CLIENTS = 4  # open-loop client pool, on machines outside the cluster


def _config(followers: int) -> LogBaseConfig:
    # The read buffer is disabled to model the paper's disk-resident
    # working sets (1 GB/node against a far smaller cache share): at
    # simulation scale the whole keyset would sit in the default cache
    # and *no* amount of serving capacity — replicas included — would
    # matter.  With it off, every read pays its DFS fetch on whichever
    # machine serves it, which is exactly the cost replicas spread.
    # Full replication keeps each follower tailing its *local* log
    # replica (the LogBase deployment the paper assumes: the log lives in
    # the shared DFS, so scaling reads means placing a replica where the
    # reader runs); with the default 3-way factor the followers without a
    # local copy would funnel through one datanode and bottleneck there.
    return LogBaseConfig.with_read_replicas(
        segment_size=64 * 1024,
        replicas_per_tablet=followers,
        read_cache_enabled=False,
        replication=N_NODES,
    )


def _zipf_key(rng: random.Random) -> bytes:
    return str(int(KEY_DOMAIN * (rng.random() ** ZIPF_EXPONENT))).zfill(
        KEY_WIDTH
    ).encode()


def run_arm(followers: int, ops: int) -> dict:
    config = _config(followers)
    db = LogBase(n_nodes=N_NODES, config=config)
    db.create_table(
        SCHEMA,
        tablets_per_server=1,
        key_domain=KEY_DOMAIN,
        key_width=KEY_WIDTH,
        only_servers=["ts-node-0"],
    )
    clients = [
        db.client(
            Machine(
                f"client-{i}",
                rack="rack-client",
                disk_model=config.disk,
                network=config.network,
            )
        )
        for i in range(N_CLIENTS)
    ]
    rng = random.Random(SEED)
    written: set[bytes] = set()
    for i in range(PRELOAD):
        key = _zipf_key(rng)
        clients[i % N_CLIENTS].put_raw(
            TABLE, key, GROUP, b"%0*d" % (RECORD_SIZE, i)
        )
        written.add(key)
    keyset = sorted(written)
    # Place the followers and let them catch up on the preload before the
    # measured phase starts.
    db.cluster.heartbeat()
    db.cluster.heartbeat()
    db.cluster.reset_clocks()

    attempted = failed = 0
    for i in range(ops):
        if i % HEARTBEAT_EVERY == 0:
            db.cluster.heartbeat()  # lease renewal + follower tail passes
        key = keyset[int(len(keyset) * (rng.random() ** ZIPF_EXPONENT))]
        client = clients[i % N_CLIENTS]
        attempted += 1
        try:
            if rng.random() < READ_FRACTION:
                client.get_raw(TABLE, key, GROUP)
            else:
                client.put_raw(
                    TABLE, key, GROUP, b"%0*d" % (RECORD_SIZE, attempted)
                )
        except LogBaseError:
            failed += 1
    makespan = db.cluster.elapsed_makespan()
    counters = db.cluster.total_counters()
    hist = db.cluster.replica_lag_histogram
    reads = int(attempted * READ_FRACTION)
    replica_served = int(counters.get("replica.reads_served", 0))
    return {
        "followers": followers,
        "ops": ops,
        "preload": PRELOAD,
        "makespan_seconds": makespan,
        "throughput_ops_per_sec": ops / makespan if makespan else 0.0,
        "availability": 1.0 - failed / attempted if attempted else 1.0,
        "ops_failed": failed,
        "replica_reads_served": replica_served,
        "replica_read_share": replica_served / reads if reads else 0.0,
        "replica_redirects": int(counters.get("replica.redirects", 0)),
        "replica_tail_batches": int(counters.get("replica.tail_batches", 0)),
        "replica_lag_p50": hist.percentile(0.50) if hist is not None else 0.0,
        "replica_lag_p99": hist.percentile(0.99) if hist is not None else 0.0,
    }


def run_chaos_matrix(seed: int = 1) -> list[dict]:
    matrix = []
    for scenario in sorted(REPLICA_SCENARIOS):
        report = run_replica_chaos(scenario, seed=seed)
        matrix.append(
            {
                "scenario": scenario,
                "passed": report.passed,
                "violations": report.violations,
                "staleness_violations": report.staleness_violations,
                "follower_reads_ok": report.follower_reads_ok,
                "lag_rejections": report.lag_rejections,
            }
        )
    return matrix


def run_experiment(sizes=SIZES) -> dict:
    results: dict = {
        "record_size": RECORD_SIZE,
        "zipf_exponent": ZIPF_EXPONENT,
        "read_fraction": READ_FRACTION,
        "curve": [],
        "chaos_matrix": run_chaos_matrix(),
    }
    for ops in sizes:
        for followers in FOLLOWER_ARMS:
            results["curve"].append(run_arm(followers, ops))
    return results


def format_report(results: dict) -> str:
    lines = [
        f"Read-replica sweep ({int(results['read_fraction'] * 100)}/"
        f"{100 - int(results['read_fraction'] * 100)} zipf "
        f"u^{results['zipf_exponent']}, {results['record_size']} B records)",
        f"{'followers':>9} {'ops':>5} {'ops/s':>9} {'speedup':>8} "
        f"{'replica share':>13} {'lag p99 s':>10} {'avail':>7}",
    ]
    by_ops: dict[int, dict[int, dict]] = {}
    for point in results["curve"]:
        by_ops.setdefault(point["ops"], {})[point["followers"]] = point
    for ops, arms in by_ops.items():
        base = arms.get(0)
        for followers, point in sorted(arms.items()):
            speedup = (
                point["throughput_ops_per_sec"]
                / base["throughput_ops_per_sec"]
                if base and base["throughput_ops_per_sec"]
                else 0.0
            )
            lines.append(
                f"{followers:>9d} {ops:>5d} "
                f"{point['throughput_ops_per_sec']:>9.1f} {speedup:>7.2f}x "
                f"{point['replica_read_share']:>12.1%} "
                f"{point['replica_lag_p99']:>10.4f} "
                f"{point['availability']:>6.1%}"
            )
    chaos_ok = sum(1 for c in results["chaos_matrix"] if c["passed"])
    lines.append(
        f"chaos matrix: {chaos_ok}/{len(results['chaos_matrix'])} scenarios "
        "green, zero staleness violations required"
    )
    return "\n".join(lines)


def append_trajectory(results: dict) -> None:
    history = []
    if TRAJECTORY.exists():
        history = json.loads(TRAJECTORY.read_text())
    history.append({"timestamp": time.time(), **results})
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


def check_acceptance(results: dict) -> list[str]:
    """The acceptance bars; returns a list of violations (empty = pass)."""
    failures = []
    by_ops: dict[int, dict[int, dict]] = {}
    for point in results["curve"]:
        by_ops.setdefault(point["ops"], {})[point["followers"]] = point
        tag = f"followers={point['followers']}/ops={point['ops']}"
        if point["availability"] < 1.0:
            failures.append(
                f"{tag}: availability {point['availability']:.2%} "
                f"({point['ops_failed']} ops failed)"
            )
        if point["followers"] > 0 and point["replica_reads_served"] == 0:
            failures.append(f"{tag}: no read was served by a replica")
    for ops, arms in by_ops.items():
        base = arms.get(0)
        three = arms.get(3)
        if base is None or three is None:
            continue
        speedup = (
            three["throughput_ops_per_sec"] / base["throughput_ops_per_sec"]
            if base["throughput_ops_per_sec"]
            else 0.0
        )
        if speedup < 2.5:
            failures.append(
                f"ops={ops}: 3-follower speedup {speedup:.2f}x below the "
                "2.5x bar"
            )
    for entry in results["chaos_matrix"]:
        if not entry["passed"]:
            failures.append(
                f"chaos {entry['scenario']}: "
                + "; ".join(
                    entry["violations"] + entry["staleness_violations"]
                )
            )
        if entry["staleness_violations"]:
            failures.append(
                f"chaos {entry['scenario']}: staleness invariant violated"
            )
    return failures


# -- pytest entry point -----------------------------------------------------------


def test_replica_sweep():
    results = run_experiment(sizes=SMOKE_SIZES)
    failures = check_acceptance(results)
    assert not failures, "; ".join(failures)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small sizes for CI smoke runs"
    )
    args = parser.parse_args()
    sizes = SMOKE_SIZES if args.smoke else SIZES
    results = run_experiment(sizes=sizes)
    print(format_report(results))
    if not args.smoke:  # smoke runs (CI) must not pollute the trajectory
        append_trajectory(results)
        print(f"\ntrajectory appended to {TRAJECTORY}")
    failures = check_acceptance(results)
    if failures:
        raise SystemExit("ACCEPTANCE FAILED: " + "; ".join(failures))
    print("acceptance bars met")


if __name__ == "__main__":
    main()
