"""Gray-failure benchmark: limping nodes vs the resilience layer.

Runs every gray chaos scenario (``repro.chaos.gray``) across a matrix of
workload seeds with the gray-resilience layer on, and — for the limping-
replica scenarios — an unmitigated control arm under the *same* fault
plan, so the report can quantify what deadlines, hedged reads, circuit
breakers and admission control buy: the read tail (p50/p99/max), hedge
win rates, breaker trips and admission sheds, with the durability oracle
still judging every run.

Like ``bench_chaos`` this is a pass/fail harness reported like a
benchmark: one row per (scenario, seed, arm) and a trajectory entry
appended to ``BENCH_gray.json`` at the repo root.  The headline metric
is tail-latency improvement — the mitigated arm must cut p99 read
latency by at least 30% under a limping home replica.

Run directly (``python benchmarks/bench_gray.py [--smoke]``) or via
pytest, which asserts the oracle and the improvement bar.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.chaos import GRAY_SCHEDULES, run_gray

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_gray.json"

DEFAULT_SEEDS = (1, 2, 3)
DEFAULT_OPS = 60
SMOKE_SEEDS = (1,)
SMOKE_OPS = 60  # gray events are indexed up to op ~50; keep them firing

#: scenarios whose fault is a limping replica on the read path — the
#: ones where an unmitigated control arm shows the full latency tail.
COMPARE_SCENARIOS = ("limp-datanode-mid-scan", "hedge-under-limp")

#: required p99 read-latency improvement of the mitigated arm.
P99_IMPROVEMENT_BAR = 0.30


def run_experiment(
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    ops: int = DEFAULT_OPS,
    scenarios: tuple[str, ...] | None = None,
) -> dict:
    """The scenario x seed matrix plus mitigated-vs-control comparisons."""
    names = tuple(scenarios) if scenarios is not None else tuple(GRAY_SCHEDULES)
    runs = []
    comparisons = []
    for name in names:
        for seed in seeds:
            mitigated = run_gray(name, seed=seed, ops=ops)
            row = mitigated.to_dict()
            row["arm"] = "resilient"
            runs.append(row)
            if name not in COMPARE_SCENARIOS:
                continue
            control = run_gray(name, seed=seed, ops=ops, resilience=False)
            ctl_row = control.to_dict()
            ctl_row["arm"] = "control"
            runs.append(ctl_row)
            improvement = (
                1.0 - mitigated.read_p99 / control.read_p99
                if control.read_p99 > 0
                else 0.0
            )
            comparisons.append(
                {
                    "scenario": name,
                    "seed": seed,
                    "p99_resilient": mitigated.read_p99,
                    "p99_control": control.read_p99,
                    "p99_improvement": improvement,
                }
            )
    return {
        "ops": ops,
        "seeds": list(seeds),
        "scenarios": list(names),
        "runs": runs,
        "comparisons": comparisons,
        "passed": sum(1 for r in runs if r["passed"]),
        "failed": sum(1 for r in runs if not r["passed"]),
    }


def format_report(results: dict) -> str:
    lines = [
        f"Gray-failure suite ({len(results['scenarios'])} scenarios x "
        f"{len(results['seeds'])} seeds, {results['ops']} ops each)",
        f"{'scenario':<24} {'seed':>4} {'arm':>9} {'ok':>3} "
        f"{'p50':>8} {'p99':>8} {'hedge':>9} {'trips':>5} "
        f"{'sheds':>5} {'ddl':>4}",
    ]
    for run in results["runs"]:
        hedge = f"{run['hedges_fired']}/{run['hedge_wins']}"
        lines.append(
            f"{run['scenario']:<24} {run['seed']:>4} {run['arm']:>9} "
            f"{'y' if run['passed'] else 'N':>3} "
            f"{run['read_p50']:>8.4f} {run['read_p99']:>8.4f} "
            f"{hedge:>9} {run['breaker_trips']:>5} "
            f"{run['admission_sheds']:>5} {run['deadline_exceeded']:>4}"
        )
        for violation in run["violations"]:
            lines.append(f"    VIOLATION: {violation}")
    for cmp in results["comparisons"]:
        lines.append(
            f"p99 under {cmp['scenario']} seed={cmp['seed']}: "
            f"{cmp['p99_control']:.4f}s unmitigated -> "
            f"{cmp['p99_resilient']:.4f}s resilient "
            f"({cmp['p99_improvement']:.0%} better)"
        )
    lines.append(
        f"durability contract: {results['passed']}/{len(results['runs'])} "
        f"runs passed"
    )
    return "\n".join(lines)


def append_trajectory(results: dict) -> None:
    history = []
    if TRAJECTORY.exists():
        history = json.loads(TRAJECTORY.read_text())
    summary = {
        "timestamp": time.time(),
        "ops": results["ops"],
        "seeds": results["seeds"],
        "scenarios": results["scenarios"],
        "passed": results["passed"],
        "failed": results["failed"],
        "comparisons": results["comparisons"],
        "violations": [
            violation
            for run in results["runs"]
            for violation in run["violations"]
        ],
    }
    history.append(summary)
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


# -- pytest entry point -----------------------------------------------------


def test_gray_matrix():
    results = run_experiment(seeds=(1, 2), ops=60)
    failed = [r for r in results["runs"] if not r["passed"]]
    assert not failed, "\n".join(
        f"{r['scenario']} seed={r['seed']} arm={r['arm']}: {r['violations']}"
        for r in failed
    )
    # Every schedule exercised its mechanism on at least one seed.
    by_scenario: dict[str, int] = {}
    for r in results["runs"]:
        if r["arm"] != "resilient":
            continue
        by_scenario[r["scenario"]] = by_scenario.get(r["scenario"], 0) + (
            r["hedges_fired"]
            + r["breaker_trips"]
            + r["admission_sheds"]
            + r["deadline_exceeded"]
        )
    quiet = [name for name, activity in by_scenario.items() if activity == 0]
    assert not quiet, f"gray mechanisms never engaged: {quiet}"
    # The headline: mitigation cuts the limping-replica read tail.
    for cmp in results["comparisons"]:
        assert cmp["p99_improvement"] >= P99_IMPROVEMENT_BAR, (
            f"{cmp['scenario']} seed={cmp['seed']}: p99 improved only "
            f"{cmp['p99_improvement']:.0%} "
            f"({cmp['p99_control']:.4f}s -> {cmp['p99_resilient']:.4f}s)"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small matrix for CI smoke runs"
    )
    parser.add_argument("--ops", type=int, default=None)
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=None, metavar="SEED"
    )
    parser.add_argument(
        "--scenario",
        choices=sorted(GRAY_SCHEDULES),
        action="append",
        help="run only this scenario (repeatable)",
    )
    args = parser.parse_args()
    seeds = (
        tuple(args.seeds)
        if args.seeds is not None
        else (SMOKE_SEEDS if args.smoke else DEFAULT_SEEDS)
    )
    ops = args.ops if args.ops is not None else (SMOKE_OPS if args.smoke else DEFAULT_OPS)
    if ops < 10:
        parser.error("--ops must be >= 10 (maintenance ops need room)")
    scenarios = tuple(args.scenario) if args.scenario else None
    results = run_experiment(seeds=seeds, ops=ops, scenarios=scenarios)
    print(format_report(results))
    append_trajectory(results)
    print(f"\ntrajectory appended to {TRAJECTORY}")
    if results["failed"]:
        raise SystemExit(1)
    short = [
        c for c in results["comparisons"]
        if c["p99_improvement"] < P99_IMPROVEMENT_BAR
    ]
    if short:
        print(f"p99 improvement below {P99_IMPROVEMENT_BAR:.0%} bar: {short}")
        raise SystemExit(1)


if __name__ == "__main__":
    main()
