"""Figure 13 — update latency: flat with scale, LogBase below HBase.

LogBase's update is one sequential log append; HBase additionally runs
memstore maintenance and stalls whole writes behind synchronous memstore
flushes, raising its mean update latency.
"""

from conftest import NODE_COUNTS, ycsb_scalability_suite


def run_experiment() -> dict[str, dict[int, float]]:
    suite = ycsb_scalability_suite()
    series: dict[str, dict[int, float]] = {}
    for system in ("LogBase", "HBase"):
        for mix in (0.75, 0.95):
            label = f"{system} {int(mix * 100)}% update"
            series[label] = {
                n: suite[(system, mix, n)].mean_update_ms for n in NODE_COUNTS
            }
    return series


def test_fig13_update_latency(benchmark, report_series):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report_series(
        "fig13",
        "Figure 13: Update Latency (simulated ms)",
        "nodes",
        series,
    )
    for n_nodes in NODE_COUNTS:
        for mix in (75, 95):
            lb = series[f"LogBase {mix}% update"][n_nodes]
            hb = series[f"HBase {mix}% update"][n_nodes]
            assert lb < hb, f"LogBase update latency must be lower at {n_nodes}"
            # Sub-millisecond log appends, as in the paper's 0.05-0.25 ms.
            assert lb < 2.0
    # Flat latency under scale-out (elastic scaling property).
    for label, points in series.items():
        assert max(points.values()) < 4 * max(min(points.values()), 1e-6), label
