"""Figure 11 — YCSB parallel data loading: LogBase takes ~half HBase's time.

One benchmark client per node loads records in parallel; the insert time
stays roughly flat as nodes (and data) scale together, and LogBase's
single write per record keeps it at about half of HBase throughout.
"""

from conftest import NODE_COUNTS, RECORD_SIZE, make_hbase, make_logbase
from repro.bench.runner import run_load
from repro.bench.ycsb import YCSBWorkload

# More records per node than the mixed-phase suite: the load benchmark's
# flat-scaling claim needs per-server batches large enough that the fixed
# per-flush cost amortizes (as it does at the paper's 1 M records/node).
LOAD_RECORDS = 600


def run_experiment() -> dict[str, dict[int, float]]:
    series: dict[str, dict[int, float]] = {"LogBase": {}, "HBase": {}}
    for n_nodes in NODE_COUNTS:
        for name, factory in (("LogBase", make_logbase), ("HBase", make_hbase)):
            workload = YCSBWorkload(
                records_per_node=LOAD_RECORDS, record_size=RECORD_SIZE
            )
            adapter = factory(
                n_nodes, records_per_node=LOAD_RECORDS, record_size=RECORD_SIZE
            )
            series[name][n_nodes] = run_load(adapter, workload).seconds
    return series


def test_fig11_ycsb_load(benchmark, report_series):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report_series(
        "fig11",
        "Figure 11: YCSB Insert Time (simulated sec)",
        "nodes",
        series,
    )
    for n_nodes in NODE_COUNTS:
        lb, hb = series["LogBase"][n_nodes], series["HBase"][n_nodes]
        # "only spends about half of the time to insert data"
        assert hb > 1.4 * lb, f"HBase should take ~2x at {n_nodes} nodes"
    # Elastic scaling: per-node work constant, so load time stays ~flat.
    lb_small, lb_large = series["LogBase"][NODE_COUNTS[0]], series["LogBase"][NODE_COUNTS[-1]]
    assert lb_large < 2.5 * lb_small
