"""Recovery-time sweep: parallel hot-first redo vs the sequential scan.

For each log size the same workload runs twice on fresh single-server
3-node clusters — once with the ``fast_recovery`` gate off (the seed's
sequential checkpoint+redo path) and once with it on (redo partitioned
across virtual workers, tablets brought up hottest-first and served as
each completes).  A checkpoint lands at the quarter mark so both arms
reload indexes *and* redo a long tail, the workload heats one tablet so
the hot-first ordering has a signal, then the server is crashed and
restarted through recovery.

Reports recovery seconds per arm (simulated: machine-clock delta for
sequential, worker-fleet makespan for parallel), the time until the
*hot* tablet serves again, and cross-arm parity of the recovery reports
and index state (the parallel path must rebuild exactly the sequential
result).  Appends a run entry to ``BENCH_recovery.json`` at the repo
root.

Run directly (``python benchmarks/bench_recovery.py [--smoke]``) or via
pytest, which asserts the acceptance bars: parallel recovery beats
sequential at every size, the hot tablet serves measurably before full
recovery completes, and both arms apply identical record counts and
index contents.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import time

from conftest import RECORD_SIZE
from repro.config import LogBaseConfig
from repro.core.database import LogBase
from repro.core.schema import ColumnGroup, TableSchema
from repro.errors import TabletNotFound

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_recovery.json"

TABLE = "recov"
GROUP = "g"
SCHEMA = TableSchema(TABLE, "id", (ColumnGroup(GROUP, ("v",)),))
SERVER = "ts-node-0"
KEY_WIDTH = 8
KEY_DOMAIN = 100_000
TABLETS = 12
WORKERS = 4

SIZES = (512, 1024, 2048)
SMOKE_SIZES = (256,)
SEED = 7


def run_workload(db: LogBase, ops: int) -> tuple[list[bytes], bytes]:
    """The deterministic load both arms replay: writes with a checkpoint
    at the quarter mark (long redo tail), then reads that heat one key's
    tablet.  Returns (keys written, hot key)."""
    rng = random.Random(SEED)
    keys = [
        str(v).zfill(KEY_WIDTH).encode()
        for v in rng.sample(range(KEY_DOMAIN), ops)
    ]
    client = db.client(db.cluster.machines[-1])
    for i, key in enumerate(keys):
        client.put_raw(TABLE, key, GROUP, b"x" * RECORD_SIZE)
        if i == ops // 4:
            db.cluster.checkpoints[SERVER].write_checkpoint()
    hot_key = keys[0]
    # Enough reads that the hot tablet's heat clears the write-count
    # variance across tablets by a wide margin.
    for _ in range(max(64, ops // 8)):
        client.get_raw(TABLE, hot_key, GROUP)
    db.cluster.heartbeat()  # snapshot heat into the master-side view
    return keys, hot_key


def index_signature(db: LogBase, keys: list[bytes]) -> set:
    """(key, timestamp) of every index entry — the recovery-rebuilt state
    the two arms must agree on (pointers differ by construction)."""
    server = db.cluster.server_by_name(SERVER)
    signature = set()
    for key in keys:
        try:
            index = server.index_for(TABLE, key, GROUP)
        except TabletNotFound:
            continue
        for entry in index.versions(key):
            signature.add((key, entry.timestamp))
    return signature


def run_arm(ops: int, *, fast: bool) -> tuple[dict, set]:
    """One fresh-cluster crash/recover arm.  Only the ``fast_recovery``
    gate differs between arms — shared knobs stay at seed defaults so the
    cost models are identical and the seconds are comparable."""
    config = LogBaseConfig(
        segment_size=32 * 1024,
        fast_recovery=fast,
        recovery_workers=WORKERS,
    )
    db = LogBase(n_nodes=3, config=config)
    db.create_table(
        SCHEMA,
        tablets_per_server=TABLETS,
        key_domain=KEY_DOMAIN,
        key_width=KEY_WIDTH,
        only_servers=[SERVER],
    )
    keys, hot_key = run_workload(db, ops)
    hot_tablet = str(db.cluster.master.locate(TABLE, hot_key)[1].tablet_id)
    db.cluster.kill_node(SERVER)
    report = db.cluster.restart_server(SERVER)
    first_hot = (
        report.tablet_ready.get(hot_tablet, report.seconds)
        if report.parallel
        else report.seconds  # sequential serves nothing until the end
    )
    arm = {
        "fast_recovery": fast,
        "ops": ops,
        "recovery_seconds": report.seconds,
        "first_hot_ready_seconds": first_hot,
        "hot_tablet": hot_tablet,
        "records_scanned": report.records_scanned,
        "writes_applied": report.writes_applied,
        "deletes_applied": report.deletes_applied,
        "uncommitted_ignored": report.uncommitted_ignored,
        "used_checkpoint": report.used_checkpoint,
        "tablets_recovered": report.tablets_recovered,
    }
    return arm, index_signature(db, keys)


def run_experiment(sizes=SIZES) -> dict:
    results: dict = {
        "record_size": RECORD_SIZE,
        "tablets": TABLETS,
        "workers": WORKERS,
        "curve": [],
    }
    for ops in sizes:
        sequential, seq_signature = run_arm(ops, fast=False)
        parallel, par_signature = run_arm(ops, fast=True)
        point = {
            "ops": ops,
            "sequential": sequential,
            "parallel": parallel,
            "speedup": (
                sequential["recovery_seconds"] / parallel["recovery_seconds"]
                if parallel["recovery_seconds"]
                else 0.0
            ),
            "index_state_identical": seq_signature == par_signature,
        }
        results["curve"].append(point)
    return results


def format_report(results: dict) -> str:
    lines = [
        f"Recovery sweep ({results['tablets']} tablets, "
        f"{results['workers']} workers, {results['record_size']} B records)",
        f"{'ops':>6} {'seq s':>9} {'par s':>9} {'speedup':>8} "
        f"{'first-hot s':>12} {'state':>6}",
    ]
    for point in results["curve"]:
        lines.append(
            f"{point['ops']:>6d} "
            f"{point['sequential']['recovery_seconds']:>9.4f} "
            f"{point['parallel']['recovery_seconds']:>9.4f} "
            f"{point['speedup']:>7.1f}x "
            f"{point['parallel']['first_hot_ready_seconds']:>12.4f} "
            f"{'same' if point['index_state_identical'] else 'DIFF':>6}"
        )
    return "\n".join(lines)


def append_trajectory(results: dict) -> None:
    history = []
    if TRAJECTORY.exists():
        history = json.loads(TRAJECTORY.read_text())
    history.append({"timestamp": time.time(), **results})
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


def check_acceptance(results: dict) -> list[str]:
    """The acceptance bars; returns a list of violations (empty = pass)."""
    failures = []
    for point in results["curve"]:
        ops = point["ops"]
        sequential, parallel = point["sequential"], point["parallel"]
        if parallel["recovery_seconds"] >= sequential["recovery_seconds"]:
            failures.append(
                f"ops={ops}: parallel {parallel['recovery_seconds']:.4f}s did "
                f"not beat sequential {sequential['recovery_seconds']:.4f}s"
            )
        if (
            parallel["first_hot_ready_seconds"]
            > 0.9 * parallel["recovery_seconds"]
        ):
            failures.append(
                f"ops={ops}: hot tablet ready at "
                f"{parallel['first_hot_ready_seconds']:.4f}s, not measurably "
                f"before full recovery at {parallel['recovery_seconds']:.4f}s"
            )
        for field in (
            "writes_applied",
            "deletes_applied",
            "uncommitted_ignored",
            "records_scanned",
        ):
            if sequential[field] != parallel[field]:
                failures.append(
                    f"ops={ops}: {field} diverged "
                    f"({sequential[field]} vs {parallel[field]})"
                )
        if not point["index_state_identical"]:
            failures.append(f"ops={ops}: recovered index state diverged")
    return failures


# -- pytest entry point -----------------------------------------------------------


def test_recovery_sweep():
    results = run_experiment(sizes=SMOKE_SIZES)
    failures = check_acceptance(results)
    assert not failures, "; ".join(failures)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small sizes for CI smoke runs"
    )
    args = parser.parse_args()
    sizes = SMOKE_SIZES if args.smoke else SIZES
    results = run_experiment(sizes=sizes)
    print(format_report(results))
    if not args.smoke:  # smoke runs (CI) must not pollute the trajectory
        append_trajectory(results)
        print(f"\ntrajectory appended to {TRAJECTORY}")
    failures = check_acceptance(results)
    if failures:
        raise SystemExit("ACCEPTANCE FAILED: " + "; ".join(failures))
    print("acceptance bars met")


if __name__ == "__main__":
    main()
