"""Shared benchmark infrastructure.

Every ``bench_figXX_*`` module reproduces one figure from the paper's
evaluation (§4).  Record counts are scaled down from the paper's 1 M/node
(the cost model charges true bytes, so shapes are preserved); all reported
numbers are **simulated seconds** from the device models, not Python
wall-clock.  Each bench prints the same series the paper plots and asserts
its qualitative shape, and results are also written to
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.adapters import make_hbase, make_logbase, make_lrs
from repro.bench.report import format_series, format_table
from repro.bench.runner import run_load, run_mixed
from repro.bench.ycsb import YCSBWorkload

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Scaled-down experiment sizes (paper scale in comments).
MICRO_COUNTS = [1000, 2000, 4000]          # 250 K / 500 K / 1 M tuples
READ_COUNTS = [50, 100, 200, 400]          # 0.5 K / 1 K / 2 K / 4 K reads
CACHED_READ_COUNTS = [30, 60, 100, 150, 200]   # 300 .. 2 K reads
RANGE_SIZES = [20, 40, 80, 160]            # tuples per range scan
NODE_COUNTS = [3, 6, 12, 24]               # cluster sizes
DIST_RECORDS = 150                         # records per node (1 M in paper)
DIST_OPS = 100                             # mixed ops per node (5 000 in paper)
RECORD_SIZE = 1000                         # 1 KB records, unscaled


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def report():
    """(name, title, headers, rows) -> prints + persists a table."""

    def _report(name: str, title: str, headers: list[str], rows: list[list]) -> None:
        emit(name, format_table(title, headers, rows))

    return _report


@pytest.fixture
def report_series():
    """(name, title, x_label, series) -> prints + persists a series table."""

    def _report(name: str, title: str, x_label: str, series: dict) -> None:
        emit(name, format_series(title, x_label, series))

    return _report


# ---------------------------------------------------------------------------
# Shared YCSB scalability suite (Figures 12, 13 and 14 plot one run).
# ---------------------------------------------------------------------------

_ycsb_cache: dict = {}


def ycsb_scalability_suite() -> dict:
    """Run the mixed YCSB experiment once per (system, nodes, mix) and
    cache it for the three figures that report it."""
    if _ycsb_cache:
        return _ycsb_cache
    for system, factory in (("LogBase", make_logbase), ("HBase", make_hbase)):
        for update_fraction in (0.75, 0.95):
            for n_nodes in NODE_COUNTS:
                workload = YCSBWorkload(
                    records_per_node=DIST_RECORDS,
                    record_size=RECORD_SIZE,
                    update_fraction=update_fraction,
                )
                adapter = factory(
                    n_nodes, records_per_node=DIST_RECORDS, record_size=RECORD_SIZE
                )
                run_load(adapter, workload)
                adapter.reset_clocks()
                result = run_mixed(adapter, workload, DIST_OPS)
                _ycsb_cache[(system, update_fraction, n_nodes)] = result
    return _ycsb_cache


def micro_pair(records: int):
    """A (LogBase, HBase) pair of 3-node clusters for micro-benchmarks,
    with every tablet pinned to a single server as in §4.2.

    The LogBase segment size is scaled to the dataset (as the paper's
    64 MB segments are to its 1 GB/node datasets) so per-segment seek
    counts stay comparable with HBase's file counts at simulation scale.
    """
    from repro.config import LogBaseConfig

    total = max(records * RECORD_SIZE, 64 * 1024)
    lb = make_logbase(
        3,
        records_per_node=records,
        record_size=RECORD_SIZE,
        config=LogBaseConfig(segment_size=total * 2),
        single_server=True,
    )
    hb = make_hbase(
        3,
        records_per_node=records,
        record_size=RECORD_SIZE,
        single_server=True,
        scaled_cache=False,  # §4.2 uses the paper's default heap settings
    )
    return lb, hb


def load_keys_single_server(adapter, n_records: int, seed: int = 42, *, shuffle: bool = False):
    """Insert ``n_records`` via node 0.

    ``shuffle=False`` inserts in sorted key order (the §4.2.1 sequential
    write benchmark); ``shuffle=True`` randomizes arrival order, which is
    what leaves the log unclustered for the Figure 10 range scans.
    Returns (sorted keys, simulated load seconds)."""
    import random

    workload = YCSBWorkload(
        records_per_node=n_records, record_size=RECORD_SIZE, seed=seed
    )
    keys = workload.load_keys(1)
    order = list(keys)
    if shuffle:
        random.Random(seed).shuffle(order)
    value = workload.value()
    before = adapter.makespan()
    batch = 64
    for start in range(0, len(order), batch):
        adapter.put_many(0, [(key, value) for key in order[start : start + batch]])
    adapter.finish_load()
    return keys, adapter.makespan() - before
