"""Figure 8 — random reads with cache: the gap narrows.

With warm caches and a Zipfian access pattern most reads hit memory in
both systems, so LogBase's advantage shrinks relative to Figure 7 (but
does not invert).
"""

from conftest import CACHED_READ_COUNTS, load_keys_single_server, micro_pair
from repro.bench.runner import run_random_reads

LOADED = 2000


def run_experiment() -> dict[str, dict[int, float]]:
    logbase, hbase = micro_pair(LOADED)
    lb_keys, _ = load_keys_single_server(logbase, LOADED)
    hb_keys, _ = load_keys_single_server(hbase, LOADED)
    # Warm both caches with one Zipfian pass.
    run_random_reads(logbase, lb_keys, 200, cold=False)
    run_random_reads(hbase, hb_keys, 200, cold=False)
    series: dict[str, dict[int, float]] = {"LogBase": {}, "HBase": {}}
    for n_reads in CACHED_READ_COUNTS:
        series["LogBase"][n_reads] = run_random_reads(
            logbase, lb_keys, n_reads, cold=False, seed=n_reads
        )
        series["HBase"][n_reads] = run_random_reads(
            hbase, hb_keys, n_reads, cold=False, seed=n_reads
        )
    return series


def test_fig08_random_read_cache(benchmark, report_series):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report_series(
        "fig08",
        "Figure 8: Random Read with Cache (simulated sec)",
        "reads",
        series,
    )
    biggest = CACHED_READ_COUNTS[-1]
    lb, hb = series["LogBase"][biggest], series["HBase"][biggest]
    # LogBase still at least matches HBase...
    assert lb <= hb * 1.1
    # ...but the cached gap is far smaller than the Figure 7 cold gap
    # (where HBase pays a block fetch per read).
    if lb > 0:
        assert hb / lb < 20
