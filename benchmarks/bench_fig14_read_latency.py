"""Figure 14 — read latency: flat with scale, LogBase below HBase.

With the large distributed key space the block cache helps HBase less
(§4.3), while LogBase's in-memory index turns a cache miss into a single
log seek.
"""

from conftest import NODE_COUNTS, ycsb_scalability_suite


def run_experiment() -> dict[str, dict[int, float]]:
    suite = ycsb_scalability_suite()
    series: dict[str, dict[int, float]] = {}
    for system in ("LogBase", "HBase"):
        for mix in (0.75, 0.95):
            label = f"{system} {int(mix * 100)}% update"
            series[label] = {
                n: suite[(system, mix, n)].mean_read_ms for n in NODE_COUNTS
            }
    return series


def test_fig14_read_latency(benchmark, report_series):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report_series(
        "fig14",
        "Figure 14: Read Latency (simulated ms)",
        "nodes",
        series,
    )
    for n_nodes in NODE_COUNTS:
        for mix in (75, 95):
            lb = series[f"LogBase {mix}% update"][n_nodes]
            hb = series[f"HBase {mix}% update"][n_nodes]
            assert lb < hb, f"LogBase read latency must be lower at {n_nodes} nodes"
