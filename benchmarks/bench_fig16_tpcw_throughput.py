"""Figure 16 — TPC-W transaction throughput scales with cluster size.

Browsing and shopping mixes scale near-linearly (read-only transactions
commit without conflict checks); browsing > shopping > ordering at every
cluster size.
"""

from bench_fig15_tpcw_latency import NODE_COUNTS, tpcw_suite
from repro.bench.tpcw import TPCW_MIXES


def run_experiment() -> dict[str, dict[int, float]]:
    suite = tpcw_suite()
    return {
        f"{mix} mix": {n: suite[(mix, n)].throughput for n in NODE_COUNTS}
        for mix in TPCW_MIXES
    }


def test_fig16_tpcw_throughput(benchmark, report_series):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report_series(
        "fig16",
        "Figure 16: TPC-W Transaction Throughput (TPS, simulated)",
        "nodes",
        series,
    )
    for n_nodes in NODE_COUNTS:
        browsing = series["browsing mix"][n_nodes]
        shopping = series["shopping mix"][n_nodes]
        ordering = series["ordering mix"][n_nodes]
        assert browsing > shopping > ordering, f"mix ordering broken at {n_nodes}"
    # Scalability: browsing throughput grows substantially from 3 to 24.
    browsing = series["browsing mix"]
    assert browsing[NODE_COUNTS[-1]] > 3 * browsing[NODE_COUNTS[0]]
