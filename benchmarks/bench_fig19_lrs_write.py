"""Figure 19 — sequential write: LRS only slightly slower than LogBase.

LRS shares LogBase's log-only write path; the extra cost is the LSM-tree
index spilling sorted runs to the DFS (memtable flushes and merges),
which the paper finds to be a modest overhead.
"""

from conftest import MICRO_COUNTS, RECORD_SIZE, load_keys_single_server, make_lrs, micro_pair


def run_experiment() -> dict[str, dict[int, float]]:
    series: dict[str, dict[int, float]] = {"LogBase": {}, "LRS": {}}
    for count in MICRO_COUNTS:
        logbase, _ = micro_pair(count)
        lrs = make_lrs(
            3, records_per_node=count, record_size=RECORD_SIZE, single_server=True
        )
        _, lb_seconds = load_keys_single_server(logbase, count)
        _, lrs_seconds = load_keys_single_server(lrs, count)
        series["LogBase"][count] = lb_seconds
        series["LRS"][count] = lrs_seconds
    return series


def test_fig19_lrs_sequential_write(benchmark, report_series):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report_series(
        "fig19",
        "Figure 19: Sequential Write, LogBase vs LRS (simulated sec)",
        "tuples",
        series,
    )
    for count in MICRO_COUNTS:
        lb, lrs = series["LogBase"][count], series["LRS"][count]
        # "only slightly lower than that of LogBase"
        assert lrs >= lb * 0.95, f"LRS should not beat LogBase at {count}"
        assert lrs < lb * 2.0, f"LRS overhead should be modest at {count}"
