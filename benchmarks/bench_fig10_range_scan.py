"""Figure 10 — range scans: LogBase loses before compaction, wins after.

Before compaction a range scan follows index pointers scattered through
the log (one random read per tuple).  After compaction the log is sorted
and clustered by key, so the same pointers read sequentially — and the
dense in-memory index locates the first block faster than HBase's sparse
index, making compacted LogBase the fastest of the three lines.
"""

from conftest import RANGE_SIZES, load_keys_single_server, micro_pair
from repro.bench.runner import run_range_scans

LOADED = 2000


def run_experiment() -> dict[str, dict[int, float]]:
    logbase, hbase = micro_pair(LOADED)
    # Random arrival order: the log is unclustered until compaction runs.
    lb_keys, _ = load_keys_single_server(logbase, LOADED, shuffle=True)
    hb_keys, _ = load_keys_single_server(hbase, LOADED, shuffle=True)
    series: dict[str, dict[int, float]] = {}
    series["LogBase before compaction"] = {
        size: 1000 * latency
        for size, latency in run_range_scans(logbase, lb_keys, RANGE_SIZES).items()
    }
    logbase.compact_all()
    series["LogBase after compaction"] = {
        size: 1000 * latency
        for size, latency in run_range_scans(logbase, lb_keys, RANGE_SIZES).items()
    }
    series["HBase"] = {
        size: 1000 * latency
        for size, latency in run_range_scans(hbase, hb_keys, RANGE_SIZES).items()
    }
    return series


def test_fig10_range_scan(benchmark, report_series):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report_series(
        "fig10",
        "Figure 10: Range Scan Latency (simulated ms)",
        "tuples",
        series,
    )
    for size in RANGE_SIZES:
        before = series["LogBase before compaction"][size]
        after = series["LogBase after compaction"][size]
        hbase = series["HBase"][size]
        # Pre-compaction LogBase pays scattered random reads: worst line.
        assert before > hbase, f"uncompacted LogBase should lose at {size}"
        # Compaction clusters the data: now at least competitive with HBase.
        assert after < before, f"compaction must help at {size}"
        assert after <= hbase * 1.2, f"compacted LogBase should win at {size}"
    # Larger ranges cost more for the scattered case.
    assert (
        series["LogBase before compaction"][RANGE_SIZES[-1]]
        > series["LogBase before compaction"][RANGE_SIZES[0]]
    )
