"""Monitoring-plane benchmark: detection latency and enabled-gate overhead.

Two halves, both pass/fail bars reported like a benchmark:

* **Detection oracle** (``repro.chaos.detection``): every seeded fault
  schedule across the gray, migration, recovery, and replica chaos
  families must fire its matching alert within the family's simulated-
  time budget, while the clean twin of each run — same seeded cluster,
  same config, no fault — must raise zero alerts.  The report shows the
  measured detection latency per (family, scenario).
* **Overhead bound**: a monitored cluster at the default production
  scrape cadence (``monitor_scrape_interval``) must cost less than
  :data:`OVERHEAD_BOUND` extra wall-clock time on a write/read workload
  versus the identical cluster with the gate off (min-of-N timing on
  both arms to shed scheduler noise).

One row per oracle entry and a trajectory entry appended to
``BENCH_monitoring.json`` at the repo root.  Run directly
(``python benchmarks/bench_monitoring.py [--smoke]``) or via pytest.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import time

from repro.chaos.detection import (
    DETECTION_BUDGETS,
    EXPECTED_ALERTS,
    detection_matrix,
)
from repro.chaos.runner import GROUP, KEY_DOMAIN, KEY_WIDTH, SCHEMA, TABLE
from repro.config import LogBaseConfig
from repro.core.database import LogBase

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_monitoring.json"

#: maximum tolerated wall-clock overhead of the enabled gate.
OVERHEAD_BOUND = 0.05

#: overhead workload size / timing repetitions (min-of-N per arm).
OVERHEAD_OPS = 400
OVERHEAD_REPEATS = 5
SMOKE_OVERHEAD_REPEATS = 3

#: smoke subset: one scenario per family, covering every alert shape
#: (gauge threshold, counter delta, SLO burn / staleness).
SMOKE_SCENARIOS = (
    ("gray", "limp-datanode-mid-scan"),
    ("migration", "partition-old-owner"),
    ("recovery", "crash-during-recovery"),
    ("replica", "stale-follower-reads"),
)


def _overhead_workload(monitoring: bool, ops: int, seed: int) -> float:
    """Wall-clock seconds for the standard write/read loop with the
    monitoring gate on or off (everything else identical)."""
    config = LogBaseConfig.with_fault_tolerance(
        segment_size=64 * 1024, monitoring=monitoring
    )
    db = LogBase(n_nodes=4, config=config)
    db.create_table(SCHEMA, tablets_per_server=2)
    rng = random.Random(seed)
    keys = [
        str(v).zfill(KEY_WIDTH).encode()
        for v in rng.sample(range(KEY_DOMAIN), ops)
    ]
    client = db.client(db.cluster.machines[-1])
    start = time.perf_counter()
    for i, key in enumerate(keys):
        client.put_raw(TABLE, key, GROUP, b"v" * 64)
        if i % 3 == 0:
            client.get_raw(TABLE, keys[rng.randrange(i + 1)], GROUP)
        db.cluster.heartbeat()
    wall = time.perf_counter() - start
    if db.cluster.monitor is not None:
        db.cluster.monitor.close()
    return wall


def measure_overhead(
    ops: int = OVERHEAD_OPS,
    repeats: int = OVERHEAD_REPEATS,
    seed: int = 1,
) -> dict:
    """Min-of-N wall clock for both arms and the relative overhead."""
    off = min(_overhead_workload(False, ops, seed) for _ in range(repeats))
    on = min(_overhead_workload(True, ops, seed) for _ in range(repeats))
    return {
        "ops": ops,
        "repeats": repeats,
        "wall_off_seconds": off,
        "wall_on_seconds": on,
        "overhead": on / off - 1.0 if off > 0 else 0.0,
        "bound": OVERHEAD_BOUND,
    }


def run_experiment(seed: int = 1, *, smoke: bool = False) -> dict:
    """Detection matrix (full or smoke subset) plus the overhead bound."""
    scenarios = SMOKE_SCENARIOS if smoke else tuple(EXPECTED_ALERTS)
    detections = detection_matrix(seed, scenarios=scenarios)
    overhead = measure_overhead(
        repeats=SMOKE_OVERHEAD_REPEATS if smoke else OVERHEAD_REPEATS,
        seed=seed,
    )
    rows = [d.to_dict() for d in detections]
    return {
        "seed": seed,
        "smoke": smoke,
        "budgets": dict(DETECTION_BUDGETS),
        "detections": rows,
        "overhead": overhead,
        "passed": sum(1 for r in rows if r["passed"]),
        "failed": sum(1 for r in rows if not r["passed"]),
    }


def check(results: dict) -> list[str]:
    """Every bar this benchmark holds; empty means green."""
    problems = []
    for row in results["detections"]:
        tag = f"{row['family']}/{row['scenario']}"
        if not row["run_passed"]:
            problems.append(f"{tag}: underlying chaos contract violated")
        if row["detection_latency"] is None:
            problems.append(
                f"{tag}: expected alert {row['expected_alert']!r} never "
                f"fired (fired: {row['fired']})"
            )
        elif row["detection_latency"] > row["budget"]:
            problems.append(
                f"{tag}: detection took {row['detection_latency']:.4f}s "
                f"simulated, budget {row['budget']:.2f}s"
            )
        if row["clean_alerts"]:
            problems.append(
                f"{tag}: clean twin raised "
                f"{[a['alert'] for a in row['clean_alerts']]}"
            )
    overhead = results["overhead"]
    if overhead["overhead"] >= overhead["bound"]:
        problems.append(
            f"monitoring overhead {overhead['overhead']:.1%} >= "
            f"{overhead['bound']:.0%} bound "
            f"({overhead['wall_off_seconds']:.3f}s off -> "
            f"{overhead['wall_on_seconds']:.3f}s on)"
        )
    return problems


def format_report(results: dict) -> str:
    lines = [
        f"Monitoring plane ({len(results['detections'])} fault schedules, "
        f"seed {results['seed']})",
        f"{'family':<10} {'scenario':<30} {'expected alert':<20} "
        f"{'latency':>8} {'budget':>7} {'clean':>5} {'ok':>3}",
    ]
    for row in results["detections"]:
        latency = (
            f"{row['detection_latency']:.4f}"
            if row["detection_latency"] is not None
            else "never"
        )
        lines.append(
            f"{row['family']:<10} {row['scenario']:<30} "
            f"{row['expected_alert']:<20} {latency:>8} "
            f"{row['budget']:>7.2f} {len(row['clean_alerts']):>5} "
            f"{'y' if row['passed'] else 'N':>3}"
        )
    overhead = results["overhead"]
    lines.append(
        f"enabled-gate overhead: {overhead['overhead']:.2%} "
        f"(bound {overhead['bound']:.0%}; "
        f"{overhead['wall_off_seconds'] * 1000:.1f}ms off -> "
        f"{overhead['wall_on_seconds'] * 1000:.1f}ms on, "
        f"{overhead['ops']} ops, min of {overhead['repeats']})"
    )
    problems = check(results)
    lines.append(
        "all bars green"
        if not problems
        else "BARS FAILED:\n  " + "\n  ".join(problems)
    )
    return "\n".join(lines)


def append_trajectory(results: dict) -> None:
    history = []
    if TRAJECTORY.exists():
        history = json.loads(TRAJECTORY.read_text())
    history.append(
        {
            "timestamp": time.time(),
            "seed": results["seed"],
            "smoke": results["smoke"],
            "passed": results["passed"],
            "failed": results["failed"],
            "overhead": results["overhead"],
            "detections": [
                {
                    "family": r["family"],
                    "scenario": r["scenario"],
                    "expected_alert": r["expected_alert"],
                    "detection_latency": r["detection_latency"],
                    "passed": r["passed"],
                }
                for r in results["detections"]
            ],
            "problems": check(results),
        }
    )
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


# -- pytest entry point -----------------------------------------------------


def test_monitoring_detection_and_overhead():
    results = run_experiment(smoke=True)
    problems = check(results)
    assert not problems, "\n".join(problems)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one scenario per family + fewer overhead repeats",
    )
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()
    results = run_experiment(seed=args.seed, smoke=args.smoke)
    print(format_report(results))
    append_trajectory(results)
    print(f"\ntrajectory appended to {TRAJECTORY}")
    if check(results):
        raise SystemExit(1)


if __name__ == "__main__":
    main()
