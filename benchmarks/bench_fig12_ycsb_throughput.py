"""Figure 12 — YCSB mixed throughput vs. cluster size.

Both systems scale near-linearly; the 95 %-update mix outruns the 75 %
mix (writes are cheaper than reads in both systems); LogBase beats HBase
at every point.
"""

from conftest import NODE_COUNTS, ycsb_scalability_suite


def run_experiment() -> dict[str, dict[int, float]]:
    suite = ycsb_scalability_suite()
    series: dict[str, dict[int, float]] = {}
    for system in ("LogBase", "HBase"):
        for mix in (0.75, 0.95):
            label = f"{system} {int(mix * 100)}% update"
            series[label] = {
                n: suite[(system, mix, n)].throughput for n in NODE_COUNTS
            }
    return series


def test_fig12_mixed_throughput(benchmark, report_series):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report_series(
        "fig12",
        "Figure 12: Mixed Throughput (ops per simulated sec)",
        "nodes",
        series,
    )
    for n_nodes in NODE_COUNTS:
        for mix in (75, 95):
            lb = series[f"LogBase {mix}% update"][n_nodes]
            hb = series[f"HBase {mix}% update"][n_nodes]
            assert lb > hb, f"LogBase must lead at {n_nodes} nodes, {mix}% mix"
        # Higher update share -> higher throughput (10 % tolerance per
        # point for cache noise at simulation scale).
        for system in ("LogBase", "HBase"):
            assert (
                series[f"{system} 95% update"][n_nodes]
                > 0.9 * series[f"{system} 75% update"][n_nodes]
            )
    # In aggregate the 95 % mix strictly outruns the 75 % mix.
    for system in ("LogBase", "HBase"):
        assert sum(series[f"{system} 95% update"].values()) > sum(
            series[f"{system} 75% update"].values()
        )
    # Scalability: throughput grows substantially from 3 to 24 nodes.
    lb95 = series["LogBase 95% update"]
    assert lb95[NODE_COUNTS[-1]] > 3 * lb95[NODE_COUNTS[0]]
