"""Figure 17 — checkpoint cost: writing is cheaper than reloading.

The paper's explanation: HDFS is optimized for high write throughput, so
persisting the in-memory indexes costs less than reading the index files
back — useful because checkpoints are written far more often than loaded.
Index sizes are scaled from the thresholds the paper varies
(250 MB/500 MB/1 GB of 1 KB records = 250 K/500 K/1 M index entries,
scaled by 10x here).
"""

from repro import LogBase, LogBaseConfig
from repro.bench.adapters import USERTABLE_SCHEMA
from repro.bench.ycsb import make_key
from repro.wal.record import LogPointer

ENTRY_COUNTS = [25_000, 50_000, 100_000]  # 250 MB / 500 MB / 1 GB of data


def _populate_index(server, n_entries: int) -> None:
    """Fill the server's index directly (the checkpoint cost depends only
    on index size, not on how the data got there)."""
    index = server.index_for("usertable", make_key(0), "g")
    for i in range(n_entries):
        index.insert(make_key(i * 17), i + 1, LogPointer(1, i * 1060, 1060))


def run_experiment() -> dict[str, dict[int, float]]:
    series: dict[str, dict[int, float]] = {"Write checkpoint": {}, "Reload checkpoint": {}}
    for n_entries in ENTRY_COUNTS:
        db = LogBase(3, LogBaseConfig())
        db.create_table(USERTABLE_SCHEMA, only_servers=[db.cluster.servers[0].name])
        server = db.cluster.servers[0]
        manager = db.cluster.checkpoints[server.name]
        _populate_index(server, n_entries)

        before = server.machine.clock.now
        manager.write_checkpoint()
        series["Write checkpoint"][n_entries] = server.machine.clock.now - before

        tablets = list(server.tablets.values())
        server.crash()
        server.restart()
        for tablet in tablets:
            server.assign_tablet(tablet)
        before = server.machine.clock.now
        manager.load_checkpoint()
        series["Reload checkpoint"][n_entries] = server.machine.clock.now - before
    return series


def test_fig17_checkpoint_cost(benchmark, report_series):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report_series(
        "fig17",
        "Figure 17: Checkpoint Cost (simulated sec)",
        "index entries",
        series,
    )
    for n_entries in ENTRY_COUNTS:
        write = series["Write checkpoint"][n_entries]
        reload = series["Reload checkpoint"][n_entries]
        # "LogBase takes less time to write a checkpoint than to reload"
        assert write < reload, f"write must beat reload at {n_entries}"
    # Cost grows with the amount of indexed data.
    assert series["Write checkpoint"][ENTRY_COUNTS[-1]] > series["Write checkpoint"][ENTRY_COUNTS[0]]
    assert series["Reload checkpoint"][ENTRY_COUNTS[-1]] > series["Reload checkpoint"][ENTRY_COUNTS[0]]
