"""Elasticity sweep: live migration under a skewed workload.

Two elastic events run against a Zipfian write/read mix on fresh
clusters, with client operations interleaved between every migration
phase (prepare / catch-up / flip) so writes keep landing on the source
mid-handoff and become the flip delta:

* **add-node** — a server joins mid-workload and the hottest tablets
  migrate onto it live;
* **drain-node** — a server is emptied live (every tablet migrated away)
  and retired.

For each event the sweep reports the flip windows (the only
client-visible unavailability: p50/p99 from the ``latency.migration.flip``
histogram), the delta records replayed inside those windows, and
availability — the fraction of interleaved client operations that
succeeded (retries included; the retryable ``TabletMigratingError`` plus
route-cache invalidation must make that 100%).  A final pass re-reads
every written key.  The seeded migration chaos matrix
(:mod:`repro.chaos.migration`) runs alongside and must be green.

Appends a run entry to ``BENCH_migration.json`` at the repo root.

Run directly (``python benchmarks/bench_migration.py [--smoke]``) or via
pytest, which asserts the acceptance bars: flip p99 within the
configured ``migration_flip_budget``, 100% availability, zero lost
writes, and a green chaos matrix.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import time

from repro.chaos import MIGRATION_SCENARIOS, run_migration_chaos
from repro.config import LogBaseConfig
from repro.core.database import LogBase
from repro.core.schema import ColumnGroup, TableSchema
from repro.errors import LogBaseError

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_migration.json"

TABLE = "elastic"
GROUP = "g"
SCHEMA = TableSchema(TABLE, "id", (ColumnGroup(GROUP, ("v",)),))
KEY_WIDTH = 8
KEY_DOMAIN = 100_000
RECORD_SIZE = 200
ZIPF_EXPONENT = 3  # key = domain * u^3: ~89% of traffic in the first tablet

SIZES = (400, 800)
SMOKE_SIZES = (160,)
SEED = 11
OPS_PER_PHASE = 12  # client ops interleaved between migration phases


def _config() -> LogBaseConfig:
    return LogBaseConfig.with_live_migration(segment_size=32 * 1024)


def _zipf_key(rng: random.Random) -> bytes:
    return str(int(KEY_DOMAIN * (rng.random() ** ZIPF_EXPONENT))).zfill(
        KEY_WIDTH
    ).encode()


class _Workload:
    """A seeded Zipfian write/read mix with availability accounting.

    Ticks the cluster heartbeat every ``HEARTBEAT_EVERY`` operations —
    the continuous background pass a real deployment runs, and the
    mechanism that renews ownership leases (a lease TTL is a few
    heartbeat periods; without the ticks every lease in the cluster
    would lapse and fence its owner)."""

    HEARTBEAT_EVERY = 20

    def __init__(self, db: LogBase, rng: random.Random) -> None:
        self.db = db
        self.client = db.client(db.cluster.machines[0])
        self.rng = rng
        self.written: dict[bytes, bytes] = {}
        self.attempted = 0
        self.failed = 0

    def run(self, ops: int) -> None:
        for _ in range(ops):
            if self.attempted % self.HEARTBEAT_EVERY == 0:
                self.db.cluster.heartbeat()
            key = _zipf_key(self.rng)
            self.attempted += 1
            try:
                if self.written and self.rng.random() < 0.3:
                    self.client.get_raw(TABLE, key, GROUP)
                else:
                    value = b"%08d" % self.rng.randrange(10**8)
                    self.client.put_raw(TABLE, key, GROUP, value)
                    self.written[key] = value
            except LogBaseError:
                self.failed = self.failed + 1

    @property
    def availability(self) -> float:
        return 1.0 - self.failed / self.attempted if self.attempted else 1.0


def _interleaved_migrate(db: LogBase, workload: _Workload, tablet_id, target):
    """One live migration with client ops running between its phases."""
    steps, ctx = db.cluster.migrator.phases(tablet_id, target)
    for _name, step in steps:
        workload.run(OPS_PER_PHASE)
        step()
    workload.run(OPS_PER_PHASE)
    return ctx["report"]


def _hot_tablets(db: LogBase, server: str) -> list[str]:
    """The server's tablets, hottest first (master-side heat snapshot)."""
    db.cluster.heartbeat()
    heat = db.cluster.tablet_heat
    assignments = db.cluster.master.catalog.assignments
    owned = [t for t, owner in assignments.items() if owner == server]
    return sorted(owned, key=lambda t: heat.get(t, 0.0), reverse=True)


def run_arm(ops: int, *, event: str) -> dict:
    db = LogBase(n_nodes=3, config=_config())
    db.create_table(
        SCHEMA, tablets_per_server=2, key_domain=KEY_DOMAIN, key_width=KEY_WIDTH
    )
    rng = random.Random(SEED)
    workload = _Workload(db, rng)
    workload.run(ops)

    migrations = []
    if event == "add-node":
        new_server = db.cluster.add_node(rebalance=False)
        # Move the two hottest tablets onto the fresh server, live.
        db.cluster.heartbeat()
        heat_order = sorted(
            db.cluster.master.catalog.assignments,
            key=lambda t: db.cluster.tablet_heat.get(t, 0.0),
            reverse=True,
        )
        for tablet_id in heat_order[:2]:
            migrations.append(
                _interleaved_migrate(db, workload, tablet_id, new_server.name)
            )
    elif event == "drain-node":
        victim = "ts-node-0"
        others = [s.name for s in db.cluster.servers if s.name != victim]
        for i, tablet_id in enumerate(_hot_tablets(db, victim)):
            migrations.append(
                _interleaved_migrate(
                    db, workload, tablet_id, others[i % len(others)]
                )
            )
        db.cluster.server_by_name(victim).serving = False
    else:
        raise ValueError(event)

    workload.run(ops // 4)  # post-event traffic on the new topology
    hist = db.cluster.migrator.flip_histogram
    lost = 0
    verifier = db.client(db.cluster.machines[1])
    for i, (key, value) in enumerate(workload.written.items()):
        if i % _Workload.HEARTBEAT_EVERY == 0:
            db.cluster.heartbeat()  # keep leases renewed while verifying
        if verifier.get_raw(TABLE, key, GROUP) != value:
            lost += 1
    return {
        "event": event,
        "ops": ops,
        "migrations": len(migrations),
        "records_caught_up": sum(m.records_caught_up for m in migrations),
        "delta_records": sum(m.delta_records for m in migrations),
        "flip_p50_seconds": hist.percentile(0.50),
        "flip_p99_seconds": hist.percentile(0.99),
        "flip_budget_seconds": db.cluster.config.migration_flip_budget,
        "ops_attempted": workload.attempted,
        "ops_failed": workload.failed,
        "availability": workload.availability,
        "keys_written": len(workload.written),
        "keys_lost": lost,
        "client_retries": int(
            db.cluster.total_counters().get("client.retries", 0)
        ),
    }


def run_chaos_matrix(seed: int = 1) -> list[dict]:
    matrix = []
    for scenario in sorted(MIGRATION_SCENARIOS):
        report = run_migration_chaos(scenario, seed=seed)
        matrix.append(
            {
                "scenario": scenario,
                "passed": report.passed,
                "violations": report.violations,
                "faults_fired": report.faults_fired,
            }
        )
    return matrix


def run_experiment(sizes=SIZES) -> dict:
    results: dict = {
        "record_size": RECORD_SIZE,
        "zipf_exponent": ZIPF_EXPONENT,
        "curve": [],
        "chaos_matrix": run_chaos_matrix(),
    }
    for ops in sizes:
        for event in ("add-node", "drain-node"):
            results["curve"].append(run_arm(ops, event=event))
    return results


def format_report(results: dict) -> str:
    lines = [
        f"Elasticity sweep (zipf u^{results['zipf_exponent']}, "
        f"{results['record_size']} B records)",
        f"{'event':>12} {'ops':>5} {'migs':>5} {'delta':>6} "
        f"{'flip p99 s':>11} {'avail':>7} {'lost':>5}",
    ]
    for point in results["curve"]:
        lines.append(
            f"{point['event']:>12} {point['ops']:>5d} "
            f"{point['migrations']:>5d} {point['delta_records']:>6d} "
            f"{point['flip_p99_seconds']:>11.4f} "
            f"{point['availability']:>6.1%} {point['keys_lost']:>5d}"
        )
    chaos_ok = sum(1 for c in results["chaos_matrix"] if c["passed"])
    lines.append(
        f"chaos matrix: {chaos_ok}/{len(results['chaos_matrix'])} scenarios green"
    )
    return "\n".join(lines)


def append_trajectory(results: dict) -> None:
    history = []
    if TRAJECTORY.exists():
        history = json.loads(TRAJECTORY.read_text())
    history.append({"timestamp": time.time(), **results})
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


def check_acceptance(results: dict) -> list[str]:
    """The acceptance bars; returns a list of violations (empty = pass)."""
    failures = []
    for point in results["curve"]:
        tag = f"{point['event']}/ops={point['ops']}"
        if point["migrations"] < 1:
            failures.append(f"{tag}: no live migration ran")
        if point["flip_p99_seconds"] > point["flip_budget_seconds"]:
            failures.append(
                f"{tag}: flip p99 {point['flip_p99_seconds']:.4f}s over the "
                f"{point['flip_budget_seconds']:.1f}s budget"
            )
        if point["availability"] < 1.0:
            failures.append(
                f"{tag}: availability {point['availability']:.2%} "
                f"({point['ops_failed']} of {point['ops_attempted']} ops failed)"
            )
        if point["keys_lost"]:
            failures.append(f"{tag}: {point['keys_lost']} acked writes lost")
    for entry in results["chaos_matrix"]:
        if not entry["passed"]:
            failures.append(
                f"chaos {entry['scenario']}: {'; '.join(entry['violations'])}"
            )
    return failures


# -- pytest entry point -----------------------------------------------------------


def test_migration_sweep():
    results = run_experiment(sizes=SMOKE_SIZES)
    failures = check_acceptance(results)
    assert not failures, "; ".join(failures)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small sizes for CI smoke runs"
    )
    args = parser.parse_args()
    sizes = SMOKE_SIZES if args.smoke else SIZES
    results = run_experiment(sizes=sizes)
    print(format_report(results))
    if not args.smoke:  # smoke runs (CI) must not pollute the trajectory
        append_trajectory(results)
        print(f"\ntrajectory appended to {TRAJECTORY}")
    failures = check_acceptance(results)
    if failures:
        raise SystemExit("ACCEPTANCE FAILED: " + "; ".join(failures))
    print("acceptance bars met")


if __name__ == "__main__":
    main()
