"""LogBase reproduction: a scalable log-structured database system.

Reproduces Vo et al., *LogBase: A Scalable Log-structured Database System
in the Cloud*, PVLDB 5(10), 2012 — the log-only storage architecture, its
in-memory multiversion indexes, snapshot-isolated transactions, and the
full simulated substrate (DFS, coordination service) plus both evaluation
baselines (an HBase-style WAL+Data store and the LRS log-structured
record store).

Public entry points:

* :class:`LogBase` — the database facade (cluster + transactions).
* :class:`LogBaseConfig` — deployment knobs.
* :class:`TableSchema` / :class:`ColumnGroup` — schema definition.
* :mod:`repro.baselines` — the comparison systems.
* :mod:`repro.bench` — YCSB/TPC-W workloads and the experiment harness.
"""

from repro.config import LogBaseConfig
from repro.core.database import LogBase
from repro.core.cluster import LogBaseCluster
from repro.core.schema import ColumnGroup, TableSchema
from repro.core.partition import KeyRange, QueryTrace, VerticalPartitioner
from repro.core.workload_partition import WorkloadPartitioner
from repro.errors import LogBaseError, TransactionAborted, ValidationConflict
from repro.query import And, Eq, QueryEngine, Range

__version__ = "1.0.0"

__all__ = [
    "LogBase",
    "LogBaseCluster",
    "LogBaseConfig",
    "TableSchema",
    "ColumnGroup",
    "KeyRange",
    "QueryTrace",
    "VerticalPartitioner",
    "WorkloadPartitioner",
    "QueryEngine",
    "Eq",
    "Range",
    "And",
    "LogBaseError",
    "TransactionAborted",
    "ValidationConflict",
    "__version__",
]
