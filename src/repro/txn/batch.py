"""Cross-operation group commit (§3.7.2 optimization).

"LogBase further embeds an optimization technique that processes commit
and log records in batches, instead of individual log writes, in order to
reduce the log persistence cost and therefore improve write throughput."

:class:`GroupCommitter` buffers encoded records from multiple operations
and flushes them with one DFS append when the batch fills (or on demand),
amortizing the synchronous-replication round trip.  The batch-size
ablation benchmark sweeps ``batch_size`` to show the effect.
"""

from __future__ import annotations

from repro.wal.record import LogPointer, LogRecord
from repro.wal.repository import LogRepository


class GroupCommitter:
    """Batches log appends for one repository."""

    def __init__(self, repository: LogRepository, batch_size: int = 16) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self._repo = repository
        self._batch_size = batch_size
        self._buffer: list[LogRecord] = []
        self._futures: list[list] = []
        self.flushes = 0

    @property
    def pending(self) -> int:
        """Records waiting for the next flush."""
        return len(self._buffer)

    def submit(self, record: LogRecord) -> list:
        """Queue ``record``; returns a one-element future list that flush
        fills with the (pointer, stamped record) pair."""
        future: list = []
        self._buffer.append(record)
        self._futures.append(future)
        if len(self._buffer) >= self._batch_size:
            self.flush()
        return future

    def flush(self) -> list[tuple[LogPointer, LogRecord]]:
        """Durably append everything buffered in one log batch."""
        if not self._buffer:
            return []
        appended = self._repo.append_batch(self._buffer)
        for future, pair in zip(self._futures, appended):
            future.append(pair)
        self._buffer = []
        self._futures = []
        self.flushes += 1
        return appended
