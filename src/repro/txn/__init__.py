"""Transaction management (§3.7): MVOCC with snapshot isolation.

Read-only transactions run against a consistent snapshot and always
commit; update transactions validate against concurrently committed
writers under per-record write locks ("first-committer-wins"), take their
commit timestamp from the global timestamp oracle, and persist all writes
plus a commit record in one log batch.  Transactions spanning tablet
servers fall back to two-phase commit.
"""

from repro.txn.transaction import Transaction, TxnStatus
from repro.txn.mvocc import TransactionManager
from repro.txn.twopc import TwoPhaseCoordinator
from repro.txn.batch import GroupCommitter

__all__ = [
    "Transaction",
    "TxnStatus",
    "TransactionManager",
    "TwoPhaseCoordinator",
    "GroupCommitter",
]
