"""Multiversion optimistic concurrency control (§3.7.1).

The hybrid scheme: transactions execute a read phase against a snapshot,
then — for update transactions — a validation phase under per-record
write locks taken through the distributed lock manager in key order
(deadlock-free pre-claiming), and finally a write phase that persists
every write plus the commit record in one log batch.  Validation checks
that no record in the write set was committed past the version the
transaction observed: "first-committer-wins", which yields snapshot
isolation (Guarantee 2).

Deviation noted for the simulation: the paper's protocol *re-executes the
read phase and keeps retrying* when a lock is unavailable, because the
conflicting transaction runs on another thread and will finish.  In this
deterministic single-threaded simulation the conflicting transaction
cannot progress while we spin, so an unavailable lock aborts the
transaction immediately (the caller may restart it, which is what the
paper's retry amounts to).
"""

from __future__ import annotations

import itertools

from repro.coordination.locks import DistributedLockManager
from repro.coordination.tso import TimestampOracle
from repro.coordination.znodes import CoordinationService, Session
from repro.core.master import Master
from repro.errors import LogBaseError, TransactionAborted, ValidationConflict
from repro.obs.trace import root_span, span
from repro.sim.failure import CP_TXN_POST_COMMIT, CP_TXN_PRE_COMMIT, crash_point
from repro.sim.metrics import SPAN_TXN_COMMIT
from repro.txn.transaction import Slot, Transaction, TxnStatus
from repro.txn.twopc import TwoPhaseCoordinator
from repro.wal.record import LogRecord, RecordType, commit_record


def lock_name(slot: Slot) -> str:
    """Canonical lock name for a (table, key, group) slot."""
    table, key, group = slot
    return f"{table}.{group}.{key.hex()}"


class TransactionManager:
    """Coordinates transactions over the cluster's tablet servers.

    Args:
        serializable: opt into strict serializability (§3.7.1's optional
            mode): validation additionally takes read locks and checks the
            whole read set, closing the write-skew anomaly at the cost the
            paper describes — read locks now conflict with writers.
        tracing: open a (root-capable) span around each commit's write
            phase; requires the cluster's tracer to record anything.
    """

    def __init__(
        self,
        master: Master,
        tso: TimestampOracle,
        coordination: CoordinationService,
        *,
        serializable: bool = False,
        tracing: bool = False,
    ) -> None:
        self._master = master
        self._tso = tso
        self._coordination = coordination
        self.tracing = tracing
        self._locks = DistributedLockManager(coordination)
        self._txn_ids = itertools.count(1)
        self._sessions: dict[int, Session] = {}
        self.serializable = serializable
        self.commits = 0
        self.aborts = 0
        self.read_only_commits = 0

    # -- lifecycle -------------------------------------------------------------------

    def begin(self) -> Transaction:
        """Start a transaction on the current snapshot."""
        txn_id = next(self._txn_ids)
        txn = Transaction(
            txn_id=txn_id, read_ts=self._tso.read_timestamp(), manager=self
        )
        self._sessions[txn_id] = self._coordination.connect(f"txn-{txn_id}")
        return txn

    def abort(self, txn: Transaction) -> None:
        """Abort ``txn``: release its locks and discard buffered writes."""
        self._release_locks(txn)
        txn.status = TxnStatus.ABORTED
        self.aborts += 1

    def restart(self, txn: Transaction) -> Transaction:
        """Begin a fresh attempt of an aborted transaction (paper: failed
        validation restarts the transaction)."""
        fresh = self.begin()
        fresh.restarts = txn.restarts + 1
        return fresh

    # -- read phase ---------------------------------------------------------------------

    def read(self, txn: Transaction, table: str, key: bytes, group: str) -> bytes | None:
        """Snapshot read; records the observed version for validation."""
        slot: Slot = (table, key, group)
        if slot in txn.writes:
            return txn.writes[slot]
        server_name, _ = self._master.locate(table, key)
        server = self._master.server(server_name)
        result = server.read(table, key, group, as_of=txn.read_ts - 1)
        observed = 0 if result is None else result[0]
        txn.read_versions.setdefault(slot, observed)
        return None if result is None else result[1]

    def scan(
        self,
        txn: Transaction,
        table: str,
        group: str,
        start_key: bytes,
        end_key: bytes,
    ) -> list[tuple[bytes, bytes]]:
        """Snapshot range scan overlaid with the transaction's own writes."""
        merged: dict[bytes, bytes | None] = {}
        for server_name, tablet in self._master.locations(table):
            if end_key <= tablet.key_range.start:
                continue
            if tablet.key_range.end is not None and tablet.key_range.end <= start_key:
                continue
            server = self._master.server(server_name)
            for key, _, value in server.range_scan(
                table, group, start_key, end_key, as_of=txn.read_ts - 1
            ):
                merged[key] = value
        for (slot_table, key, slot_group), value in txn.writes.items():
            if slot_table == table and slot_group == group and start_key <= key < end_key:
                merged[key] = value
        return [
            (key, value) for key, value in sorted(merged.items()) if value is not None
        ]

    def stage_write(
        self, txn: Transaction, table: str, key: bytes, group: str, value: bytes | None
    ) -> None:
        """Buffer a write; records the current version if the slot was not
        read first (no blind writes enter validation unchecked)."""
        slot: Slot = (table, key, group)
        if slot not in txn.read_versions:
            server_name, _ = self._master.locate(table, key)
            server = self._master.server(server_name)
            current = server.read_version_timestamp(table, key, group)
            txn.read_versions[slot] = current if current is not None else 0
        txn.writes[slot] = value

    # -- validation + write phase (commit) --------------------------------------------------

    def commit(self, txn: Transaction) -> int:
        """Validate and commit ``txn``; returns its commit timestamp."""
        if txn.is_read_only:
            # Read-only transactions "always commit successfully" (§3.7.1).
            txn.status = TxnStatus.COMMITTED
            txn.commit_ts = txn.read_ts
            self.read_only_commits += 1
            self._cleanup_session(txn)
            return txn.read_ts

        self._acquire_locks(txn)
        try:
            self._validate(txn)
            commit_ts = self._tso.next_timestamp()
            self._write_phase(txn, commit_ts)
        except TransactionAborted:
            self._release_locks(txn)
            txn.status = TxnStatus.ABORTED
            self.aborts += 1
            raise
        except LogBaseError as exc:
            # A participant failed mid-commit (e.g. server down): the
            # transaction aborts; any prepared-but-uncommitted writes stay
            # invisible and vanish at compaction.
            self._release_locks(txn)
            txn.status = TxnStatus.ABORTED
            self.aborts += 1
            raise TransactionAborted(f"commit failed: {exc}") from exc
        self._release_locks(txn)
        txn.status = TxnStatus.COMMITTED
        txn.commit_ts = commit_ts
        self.commits += 1
        self._cleanup_session(txn)
        return commit_ts

    def _holder(self, txn: Transaction) -> str:
        return f"txn-{txn.txn_id}"

    def _lock_slots(self, txn: Transaction) -> list:
        """Slots to lock at validation: the write set, plus the read set
        under strict serializability (read locks, §3.7.1)."""
        slots = set(txn.writes)
        if self.serializable:
            slots |= set(txn.read_versions)
        return sorted(slots, key=lock_name)

    def _acquire_locks(self, txn: Transaction) -> None:
        """Take validation locks in canonical key order (deadlock
        avoidance: every transaction requests locks in the same sequence,
        §3.7.1)."""
        session = self._sessions[txn.txn_id]
        for slot in self._lock_slots(txn):
            if not self._locks.try_acquire(session, lock_name(slot), self._holder(txn)):
                raise TransactionAborted(
                    f"lock on {lock_name(slot)} held by "
                    f"{self._locks.holder(lock_name(slot))}"
                )

    def _release_locks(self, txn: Transaction) -> None:
        session = self._sessions.get(txn.txn_id)
        if session is None or session.expired:
            return
        holder = self._holder(txn)
        for slot in self._lock_slots(txn):
            if self._locks.holder(lock_name(slot)) == holder:
                self._locks.release(session, lock_name(slot), holder)

    def _cleanup_session(self, txn: Transaction) -> None:
        session = self._sessions.pop(txn.txn_id, None)
        if session is not None:
            session.expire()

    def _validate(self, txn: Transaction) -> None:
        """First-committer-wins check: every write-set record must still be
        at the version this transaction observed.  Strict-serializable
        mode extends the check to the whole read set, which turns the
        write-skew cycle into a validation failure."""
        for slot, observed in sorted(txn.read_versions.items(), key=lambda i: i[0]):
            if slot not in txn.writes and not self.serializable:
                continue  # snapshot isolation validates the write set only
            table, key, group = slot
            server_name, _ = self._master.locate(table, key)
            server = self._master.server(server_name)
            current = server.read_version_timestamp(table, key, group)
            current_ts = current if current is not None else 0
            if current_ts != observed:
                raise ValidationConflict(
                    f"{slot}: observed version {observed}, now {current_ts}"
                )

    def _write_phase(self, txn: Transaction, commit_ts: int) -> None:
        """Persist writes + commit record; single-server commits use one
        log batch, multi-server commits run two-phase commit."""
        by_server: dict[str, list[LogRecord]] = {}
        for (table, key, group), value in txn.writes.items():
            server_name, tablet = self._master.locate(table, key)
            record = LogRecord(
                record_type=RecordType.WRITE if value is not None else RecordType.INVALIDATE,
                txn_id=txn.txn_id,
                table=table,
                tablet=str(tablet.tablet_id),
                key=key,
                group=group,
                timestamp=commit_ts,
                value=value,
            )
            by_server.setdefault(server_name, []).append(record)

        # Anchored on the first participant's machine (the manager itself
        # runs on no machine); root-capable so a bare txn workload on a
        # traced cluster still produces traces.
        first_server = self._master.server(next(iter(by_server)))
        scope = (
            root_span(
                SPAN_TXN_COMMIT, first_server.machine,
                txn=txn.txn_id, participants=len(by_server),
            )
            if self.tracing
            else span(
                SPAN_TXN_COMMIT, first_server.machine,
                txn=txn.txn_id, participants=len(by_server),
            )
        )
        with scope:
            if len(by_server) == 1:
                # The common, entity-group-friendly case: no 2PC needed (§3.2).
                (server_name, records), = by_server.items()
                server = self._master.server(server_name)
                crash_point(CP_TXN_PRE_COMMIT, txn=txn.txn_id, server=server_name)
                appended = server.append_transactional(
                    records + [commit_record(txn.txn_id, commit_ts)]
                )
                # The commit record is durable here; a crash before the apply
                # below loses only in-memory state, and redo re-applies it.
                crash_point(CP_TXN_POST_COMMIT, txn=txn.txn_id, server=server_name)
                server.apply_committed(appended)
            else:
                coordinator = TwoPhaseCoordinator(self._master)
                coordinator.execute(txn.txn_id, commit_ts, by_server)

    # -- metrics ---------------------------------------------------------------------------

    @property
    def abort_rate(self) -> float:
        """Fraction of finished update transactions that aborted."""
        finished = self.commits + self.aborts
        return self.aborts / finished if finished else 0.0
