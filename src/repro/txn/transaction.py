"""Transaction handles: read/write sets and lifecycle state.

A transaction's boundary "starts with a Begin command and ends with a
Commit or Abort command" (§3.3).  The handle buffers writes locally
(MVOCC defers all modifications to commit time) and records, for every
record it reads or intends to write, the version timestamp it observed —
the input to commit-time validation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.schema import decode_group_value, encode_group_value
from repro.errors import TransactionStateError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.txn.mvocc import TransactionManager

Slot = tuple[str, bytes, str]  # (table, key, group)


class TxnStatus(enum.Enum):
    """Lifecycle states of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Transaction:
    """One transaction: snapshot timestamp plus read/write sets.

    Attributes:
        txn_id: unique id (also written into log records).
        read_ts: snapshot timestamp; versions with timestamp < read_ts
            are visible to this transaction's reads.
        read_versions: version timestamp observed per slot (0 = absent);
            validation compares these against current versions.
        writes: buffered writes; None value means delete.
    """

    txn_id: int
    read_ts: int
    manager: "TransactionManager"
    status: TxnStatus = TxnStatus.ACTIVE
    read_versions: dict[Slot, int] = field(default_factory=dict)
    writes: dict[Slot, bytes | None] = field(default_factory=dict)
    commit_ts: int | None = None
    restarts: int = 0

    def _require_active(self) -> None:
        if self.status is not TxnStatus.ACTIVE:
            raise TransactionStateError(
                f"transaction {self.txn_id} is {self.status.value}"
            )

    @property
    def is_read_only(self) -> bool:
        """Whether the transaction has buffered no writes."""
        return not self.writes

    def read(self, table: str, key: bytes, group: str) -> dict[str, bytes] | None:
        """Snapshot read of a column group, decoded to column values
        (sees the transaction's own uncommitted writes first)."""
        raw = self.read_raw(table, key, group)
        return None if raw is None else decode_group_value(raw)

    def read_raw(self, table: str, key: bytes, group: str) -> bytes | None:
        """Snapshot read returning the opaque group payload."""
        self._require_active()
        return self.manager.read(self, table, key, group)

    def scan(
        self, table: str, group: str, start_key: bytes, end_key: bytes
    ) -> list[tuple[bytes, bytes]]:
        """Snapshot range scan [start_key, end_key): committed versions as
        of this transaction's snapshot, overlaid with its own buffered
        writes.  Returns (key, raw value) pairs in key order."""
        self._require_active()
        return self.manager.scan(self, table, group, start_key, end_key)

    def write(self, table: str, key: bytes, group: str, columns: dict[str, bytes]) -> None:
        """Buffer an insert/update of column values."""
        self.write_raw(table, key, group, encode_group_value(columns))

    def write_raw(self, table: str, key: bytes, group: str, value: bytes) -> None:
        """Buffer an insert/update with an opaque group payload."""
        self._require_active()
        self.manager.stage_write(self, table, key, group, value)

    def delete(self, table: str, key: bytes, group: str) -> None:
        """Buffer a delete."""
        self._require_active()
        self.manager.stage_write(self, table, key, group, None)

    def commit(self) -> int:
        """Validate and commit; returns the commit timestamp.

        Raises:
            ValidationConflict: on first-committer-wins conflict.
            TransactionAborted: on lock conflict with a concurrent commit.
        """
        self._require_active()
        return self.manager.commit(self)

    def abort(self) -> None:
        """Abort; buffered writes are discarded."""
        self._require_active()
        self.manager.abort(self)
