"""Two-phase commit for the rare multi-server transaction (§3.7.2).

"Since the number of distributed transactions has been reduced at most by
the use of smart data partitioning, the costly two-phase-commit protocol
only happens in the worst case."  Phase one durably appends each
participant's writes (prepare); phase two appends the commit record on
every participant and applies the writes to the indexes.  If any prepare
fails, abort records are appended everywhere — prepared writes without a
commit record are invisible and vanish at the next compaction.
"""

from __future__ import annotations

from repro.core.master import Master
from repro.errors import LogBaseError, TransactionAborted
from repro.wal.record import LogPointer, LogRecord, abort_record, commit_record

_PREPARE_RPC = 0.0004  # two message latencies per phase per participant


class TwoPhaseCoordinator:
    """Coordinates one distributed commit across tablet servers."""

    def __init__(self, master: Master) -> None:
        self._master = master

    def execute(
        self,
        txn_id: int,
        commit_ts: int,
        by_server: dict[str, list[LogRecord]],
    ) -> None:
        """Run both phases.

        Raises:
            TransactionAborted: if any participant fails to prepare; all
                participants then log an abort record.
        """
        prepared: dict[str, list[tuple[LogPointer, LogRecord]]] = {}
        # -- phase 1: prepare (durable append of the writes) ---------------
        for server_name, records in sorted(by_server.items()):
            server = self._master.server(server_name)
            server.machine.clock.advance(_PREPARE_RPC)
            try:
                prepared[server_name] = server.append_transactional(records)
            except LogBaseError as exc:
                self._abort_prepared(txn_id, prepared)
                raise TransactionAborted(
                    f"prepare failed on {server_name}: {exc}"
                ) from exc
        # -- phase 2: commit (commit record everywhere, then apply) --------
        for server_name, appended in prepared.items():
            server = self._master.server(server_name)
            server.machine.clock.advance(_PREPARE_RPC)
            commit_appended = server.append_transactional(
                [commit_record(txn_id, commit_ts)]
            )
            server.apply_committed(appended + commit_appended)

    def _abort_prepared(
        self, txn_id: int, prepared: dict[str, list[tuple[LogPointer, LogRecord]]]
    ) -> None:
        for server_name in prepared:
            server = self._master.server(server_name)
            try:
                server.append_transactional([abort_record(txn_id)])
            except LogBaseError:
                # The participant is down; its uncommitted writes are
                # already invisible and compaction will discard them.
                continue
