"""Concurrent-client workload drivers over the virtual-time scheduler.

The seed harness (:mod:`repro.bench.runner`) issues one operation at a
time, so nothing overlaps in simulated time and the commit coordinator
would only ever see fan-in 1.  These drivers multiplex N logical clients
through :class:`repro.sim.scheduler.ConcurrentScheduler`: each client is
a generator of ops on its own machine, submissions from different
clients land inside the same commit-group window, and the coordinator
collapses them into one DFS replication round trip per group.

Two entry points:

- :func:`run_concurrent_puts` — the fan-in sweep the group-commit
  benchmark measures: N clients × M puts each, returning per-op commit
  latencies and the phase makespan.  With the ``group_commit`` gate off
  it degrades to synchronous queued writes (the fan-in-1-equivalent
  baseline).
- :func:`run_mixed_concurrent` — the YCSB mixed phase (fig11/fig12
  style) with ``workload.concurrency`` logical clients per node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil

from repro.bench.adapters import GROUP, TABLE, LogBaseAdapter
from repro.bench.runner import MixedResult
from repro.bench.ycsb import YCSBWorkload
from repro.core.client import Client
from repro.errors import LogBaseError
from repro.sim.machine import Machine
from repro.sim.scheduler import Advance, ConcurrentScheduler, Invoke, Submit

_REQUEST_OVERHEAD = 64  # matches repro.core.client framing
_ACK_BYTES = 16


@dataclass
class ConcurrentRunResult:
    """Outcome of one concurrent put phase."""

    clients: int
    ops: int
    acked: int = 0
    failed: int = 0
    makespan: float = 0.0
    latencies: list[float] = field(default_factory=list, repr=False)

    @property
    def throughput(self) -> float:
        """Acked commits per simulated second."""
        return self.acked / self.makespan if self.makespan else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the commit latencies."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = min(len(ordered), max(1, ceil(q * len(ordered))))
        return ordered[rank - 1]


def _register_coordinators(scheduler: ConcurrentScheduler, cluster) -> None:
    for server in cluster.servers:
        scheduler.add_coordinator(getattr(server, "commit", None))


def _client_machines(cluster, n_clients: int, prefix: str) -> list[Machine]:
    # Logical clients get their own machines sharing the cluster's
    # network model, so client-side time never contends with server work.
    return [
        Machine(f"{prefix}-{i}", network=cluster.config.network)
        for i in range(n_clients)
    ]


def run_concurrent_puts(
    adapter: LogBaseAdapter,
    *,
    n_clients: int,
    n_ops: int,
    value: bytes = b"x" * 1000,
    table: str = TABLE,
    group: str = GROUP,
) -> ConcurrentRunResult:
    """N logical clients splitting ``n_ops`` puts, overlapped in
    simulated time.

    With the cluster's ``group_commit`` gate on, each put is submitted
    asynchronously and its latency runs from issue to the client
    receiving the group-durability ack.  With the gate off, each put is
    a synchronous queued write against the serving server — one
    replication round trip per op, the seed behaviour — measured with
    the same queue-aware latency definition.
    """
    cluster = adapter.cluster
    master = cluster.master
    grouped = cluster.config.group_commit
    machines = _client_machines(cluster, n_clients, "cc")
    clients = [Client(master, m) for m in machines]
    result = ConcurrentRunResult(clients=n_clients, ops=n_ops)
    base, extra = divmod(n_ops, n_clients)

    def writer(i: int):
        client = clients[i]
        machine = machines[i]
        ops = base + (1 if i < extra else 0)
        for j in range(ops):
            key = b"c%03dk%08d" % (i, j)
            if grouped:
                cell: dict = {}

                def _submit(now, key=key, cell=cell):
                    future, request, ack = client.submit_put_raw(
                        table, key, group, value, arrival=now
                    )
                    cell["issue"] = now
                    cell["ack"] = ack
                    return future

                try:
                    future = yield Submit(_submit)
                except LogBaseError:
                    result.failed += 1
                    continue
                yield Advance(cell["ack"])
                if future.error is None:
                    result.acked += 1
                    result.latencies.append(
                        future.completion_time + cell["ack"] - cell["issue"]
                    )
                else:
                    result.failed += 1
            else:

                def _put(now, key=key):
                    server = master.server(master.locate(table, key)[0])
                    request = machine.network.transfer_cost(
                        len(key) + len(value) + _REQUEST_OVERHEAD,
                        a=machine.name,
                        b=server.machine.name,
                    )
                    ack = machine.network.transfer_cost(
                        _ACK_BYTES, a=server.machine.name, b=machine.name
                    )
                    # Queue-aware: the request reaches the server one
                    # request leg after issue; a busy server (its clock
                    # already past that) makes the op wait its turn.
                    server.machine.clock.advance_to(now + request)
                    server.write(table, key, {group: value})
                    return None, (server.machine.clock.now - now) + ack

                try:
                    _, seconds = yield Invoke(_put)
                except LogBaseError:
                    result.failed += 1
                    continue
                result.acked += 1
                result.latencies.append(seconds)

    scheduler = ConcurrentScheduler()
    _register_coordinators(scheduler, cluster)
    start = cluster.elapsed_makespan()
    for i in range(n_clients):
        scheduler.add_client(writer(i), at=start)
    end = scheduler.run()
    # Any group still open when the last client finished flushes here
    # (its members were parked clients, so normally none remain).
    result.makespan = max(end, cluster.elapsed_makespan()) - start
    return result


def run_mixed_concurrent(
    adapter: LogBaseAdapter, workload: YCSBWorkload, ops_per_node: int
) -> MixedResult:
    """YCSB mixed phase with ``workload.concurrency`` clients per node.

    Reads stay synchronous point reads (queue-aware, like the seed
    driver); updates go through the group-commit submit path when the
    cluster's gate is on, and fall back to synchronous queued writes
    otherwise.  Op streams are deterministic per (node, client).
    """
    cluster = adapter.cluster
    master = cluster.master
    grouped = cluster.config.group_commit
    n_nodes = adapter.n_nodes()
    value = workload.value()
    result = MixedResult(
        system=adapter.name,
        n_nodes=n_nodes,
        update_fraction=workload.update_fraction,
        ops=0,
        seconds=0.0,
    )
    total_clients = n_nodes * workload.concurrency
    machines = _client_machines(cluster, total_clients, "mc")
    clients = [Client(master, m) for m in machines]

    def runner(slot: int, stream):
        client = clients[slot]
        machine = machines[slot]
        for kind, key in stream:
            if kind == "update" and grouped:
                cell: dict = {}

                def _submit(now, key=key, cell=cell):
                    future, request, ack = client.submit_put_raw(
                        TABLE, key, GROUP, value, arrival=now
                    )
                    cell["issue"] = now
                    cell["ack"] = ack
                    return future

                try:
                    future = yield Submit(_submit)
                except LogBaseError:
                    continue
                yield Advance(cell["ack"])
                if future.error is None:
                    result.ops += 1
                    result.update_latencies.append(
                        future.completion_time + cell["ack"] - cell["issue"]
                    )
            else:

                def _sync(now, kind=kind, key=key):
                    server = master.server(master.locate(TABLE, key)[0])
                    size = len(key) + (len(value) if kind == "update" else 0)
                    request = machine.network.transfer_cost(
                        size + _REQUEST_OVERHEAD,
                        a=machine.name,
                        b=server.machine.name,
                    )
                    response = machine.network.transfer_cost(
                        len(value) if kind == "read" else _ACK_BYTES,
                        a=server.machine.name,
                        b=machine.name,
                    )
                    server.machine.clock.advance_to(now + request)
                    if kind == "update":
                        server.write(TABLE, key, {GROUP: value})
                    else:
                        server.read(TABLE, key, GROUP)
                    return None, (server.machine.clock.now - now) + response

                try:
                    _, seconds = yield Invoke(_sync)
                except LogBaseError:
                    continue
                result.ops += 1
                if kind == "update":
                    result.update_latencies.append(seconds)
                else:
                    result.read_latencies.append(seconds)

    scheduler = ConcurrentScheduler()
    _register_coordinators(scheduler, cluster)
    start = cluster.elapsed_makespan()
    slot = 0
    for node in range(n_nodes):
        for stream in workload.operation_streams(ops_per_node, seed_offset=node):
            scheduler.add_client(runner(slot, stream), at=start)
            slot += 1
    end = scheduler.run()
    result.seconds = max(end, cluster.elapsed_makespan()) - start
    return result
