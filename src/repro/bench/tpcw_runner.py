"""TPC-W experiment driver (§4.4, Figures 15-16).

Loads items and customer carts, then stress-tests the system with one
client thread per node continuously submitting transactions:

* browse — read-only: one read of a product's detail group;
* order — update: read the customer's cart, write one row into orders.

Latency of a transaction is the simulated time its execution added across
the cluster (all clocks); throughput is transactions per makespan second.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.tpcw import (
    CART_SCHEMA,
    ITEM_SCHEMA,
    ORDERS_SCHEMA,
    TPCWWorkload,
)
from repro.core.database import LogBase
from repro.errors import TransactionAborted


@dataclass
class TPCWResult:
    """Outcome of one TPC-W run."""

    mix: str
    n_nodes: int
    txns: int
    seconds: float
    latencies: list[float] = field(default_factory=list, repr=False)
    aborts: int = 0

    @property
    def throughput(self) -> float:
        """Committed transactions per simulated second."""
        return self.txns / self.seconds if self.seconds else 0.0

    @property
    def mean_latency_ms(self) -> float:
        """Mean transaction latency in milliseconds."""
        return 1000.0 * sum(self.latencies) / len(self.latencies) if self.latencies else 0.0


def setup_tpcw(db: LogBase, workload: TPCWWorkload) -> tuple[list[bytes], list[bytes]]:
    """Create the TPC-W tables and bulk-load products and carts."""
    db.create_table(ITEM_SCHEMA)
    db.create_table(CART_SCHEMA)
    db.create_table(ORDERS_SCHEMA)
    n_nodes = len(db.cluster.machines)
    products, customers = workload.generate_entities(n_nodes)
    clients = [db.client(m) for m in db.cluster.machines]
    for i, product in enumerate(products):
        clients[i % n_nodes].put(
            "item", product, {"detail": {"title": b"item-" + product, "cost": b"10"}}
        )
    for i, customer in enumerate(customers):
        clients[i % n_nodes].put(
            "cart", customer, {"cart": {"contents": b"cart-of-" + customer}}
        )
    return products, customers


def _total_clock(db: LogBase) -> float:
    return sum(m.clock.now for m in db.cluster.machines)


def run_tpcw(db: LogBase, workload: TPCWWorkload, txns_per_node: int) -> TPCWResult:
    """Execute the mixed transaction phase and collect latency/throughput."""
    products, customers = setup_tpcw(db, workload)
    n_nodes = len(db.cluster.machines)
    result = TPCWResult(mix=workload.mix, n_nodes=n_nodes, txns=0, seconds=0.0)
    makespan_before = db.cluster.elapsed_makespan()
    specs = list(workload.transactions(txns_per_node * n_nodes, products, customers))
    for spec in specs:
        before = _total_clock(db)
        try:
            if spec[0] == "browse":
                txn = db.begin()
                txn.read("item", spec[1], "detail")
                txn.commit()
            else:
                _, customer, seq = spec
                txn = db.begin()
                cart = txn.read("cart", customer, "cart")
                contents = cart["contents"] if cart else b""
                txn.write(
                    "orders",
                    TPCWWorkload.order_key(customer, seq),
                    "order",
                    {"lines": b"order:" + contents},
                )
                txn.commit()
            result.txns += 1
        except TransactionAborted:
            result.aborts += 1
        result.latencies.append(_total_clock(db) - before)
    result.seconds = db.cluster.elapsed_makespan() - makespan_before
    return result
