"""Benchmark workloads and the experiment harness (§4).

Workloads: YCSB (Zipfian key choice, read/update mixes) and TPC-W
(browsing/shopping/ordering transaction mixes), plus the §4.2
micro-benchmarks.  The harness drives any of the three systems (LogBase,
HBase, LRS) through uniform adapters and reports *simulated* seconds —
throughput and latency shapes, not Python wall-clock.
"""

from repro.bench.zipfian import ZipfianGenerator, UniformGenerator
from repro.bench.ycsb import YCSBWorkload
from repro.bench.tpcw import TPCWWorkload, TPCW_MIXES
from repro.bench.adapters import (
    SystemAdapter,
    LogBaseAdapter,
    HBaseAdapter,
    make_logbase,
    make_hbase,
    make_lrs,
)
from repro.bench.runner import (
    LoadResult,
    MixedResult,
    run_load,
    run_mixed,
    run_random_reads,
    run_sequential_scan,
    run_range_scans,
)
from repro.bench.report import format_table, format_series

__all__ = [
    "ZipfianGenerator",
    "UniformGenerator",
    "YCSBWorkload",
    "TPCWWorkload",
    "TPCW_MIXES",
    "SystemAdapter",
    "LogBaseAdapter",
    "HBaseAdapter",
    "make_logbase",
    "make_hbase",
    "make_lrs",
    "LoadResult",
    "MixedResult",
    "run_load",
    "run_mixed",
    "run_random_reads",
    "run_sequential_scan",
    "run_range_scans",
    "format_table",
    "format_series",
]
