"""TPC-W-style webshop workload (§4.4).

"The benchmark characterizes three typical mixes including browsing mix,
shopping mix and ordering mix that have 5%, 20% and 50% update
transactions respectively.  A read-only transaction performs one read
operation to query the details of a product in the item table while an
update transaction executes an order request which bundles one read
operation to retrieve the user's shopping cart and one write operation
into the orders table."

Key design follows the paper's entity-group guidance (§3.2): a customer's
cart key and order keys share the customer prefix, so an order
transaction touches a single tablet and avoids two-phase commit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bench.ycsb import KEY_DOMAIN, make_key
from repro.core.schema import ColumnGroup, TableSchema

TPCW_MIXES = {
    "browsing": 0.05,
    "shopping": 0.20,
    "ordering": 0.50,
}

ITEM_SCHEMA = TableSchema("item", "i_id", (ColumnGroup("detail", ("title", "cost")),))
CART_SCHEMA = TableSchema("cart", "c_id", (ColumnGroup("cart", ("contents",)),))
ORDERS_SCHEMA = TableSchema("orders", "o_id", (ColumnGroup("order", ("lines",)),))


@dataclass
class TPCWWorkload:
    """One TPC-W experiment configuration.

    Attributes:
        products_per_node: items bulk-loaded per node (paper: 1 M, scaled).
        customers_per_node: customers (with carts) loaded per node.
        mix: one of ``browsing``/``shopping``/``ordering``.
        seed: deterministic RNG seed.
    """

    products_per_node: int = 1000
    customers_per_node: int = 1000
    mix: str = "shopping"
    seed: int = 7

    def __post_init__(self) -> None:
        if self.mix not in TPCW_MIXES:
            raise ValueError(f"unknown mix {self.mix!r}")

    @property
    def update_fraction(self) -> float:
        """Share of order (update) transactions in the mix."""
        return TPCW_MIXES[self.mix]

    def generate_entities(self, n_nodes: int) -> tuple[list[bytes], list[bytes]]:
        """(product keys, customer keys) for the bulk-load phase."""
        rng = random.Random(self.seed)
        n_products = self.products_per_node * n_nodes
        n_customers = self.customers_per_node * n_nodes
        products = sorted(
            make_key(v) for v in rng.sample(range(KEY_DOMAIN), n_products)
        )
        customers = sorted(
            make_key(v) for v in rng.sample(range(KEY_DOMAIN), n_customers)
        )
        return products, customers

    @staticmethod
    def order_key(customer_key: bytes, seq: int) -> bytes:
        """Order key sharing the customer's prefix (entity group)."""
        return customer_key + f"-{seq:06d}".encode()

    def transactions(self, n_txns: int, products: list[bytes], customers: list[bytes]):
        """Yield transaction specs: ('browse', product) or
        ('order', customer, order seq)."""
        rng = random.Random(self.seed + 13)
        order_seq = 0
        for _ in range(n_txns):
            if rng.random() < self.update_fraction:
                order_seq += 1
                yield "order", customers[rng.randrange(len(customers))], order_seq
            else:
                yield "browse", products[rng.randrange(len(products))], 0
