"""Command-line experiment runner: ``python -m repro.bench.cli``.

Runs the paper's headline comparisons at a chosen scale without pytest:

* ``load``   — parallel YCSB loading, LogBase vs HBase vs LRS (Figs 6/11/19);
* ``mixed``  — read/update mix throughput + latencies (Figs 12-14);
* ``reads``  — cold random reads (Fig 7);
* ``tpcw``   — TPC-W transaction mixes (Figs 15-16);
* ``stats``  — run a small workload and dump the cluster snapshot.

All numbers are simulated seconds (see DESIGN.md).
"""

from __future__ import annotations

import argparse

from repro.bench.adapters import make_hbase, make_logbase, make_lrs
from repro.bench.report import format_series, format_table
from repro.bench.runner import run_load, run_mixed, run_random_reads
from repro.bench.ycsb import YCSBWorkload

_FACTORIES = {"logbase": make_logbase, "hbase": make_hbase, "lrs": make_lrs}


def _systems(spec: str):
    names = [name.strip() for name in spec.split(",") if name.strip()]
    for name in names:
        if name not in _FACTORIES:
            raise SystemExit(f"unknown system {name!r}; pick from {sorted(_FACTORIES)}")
        yield name, _FACTORIES[name]


def cmd_load(args) -> None:
    rows = []
    for name, factory in _systems(args.systems):
        workload = YCSBWorkload(records_per_node=args.records, record_size=args.size)
        adapter = factory(args.nodes, records_per_node=args.records, record_size=args.size)
        result = run_load(adapter, workload)
        rows.append([name, result.records, result.seconds, result.throughput])
    print(format_table(
        f"Parallel load, {args.nodes} nodes x {args.records} records",
        ["system", "records", "sim sec", "records/sec"],
        rows,
    ))


def cmd_mixed(args) -> None:
    rows = []
    for name, factory in _systems(args.systems):
        workload = YCSBWorkload(
            records_per_node=args.records,
            record_size=args.size,
            update_fraction=args.updates,
        )
        adapter = factory(args.nodes, records_per_node=args.records, record_size=args.size)
        run_load(adapter, workload)
        adapter.reset_clocks()
        result = run_mixed(adapter, workload, args.ops)
        rows.append([
            name, result.ops, result.throughput,
            result.mean_update_ms, result.mean_read_ms,
        ])
    print(format_table(
        f"Mixed workload ({args.updates:.0%} updates), {args.nodes} nodes",
        ["system", "ops", "ops/sec", "update ms", "read ms"],
        rows,
    ))


def cmd_reads(args) -> None:
    rows = []
    for name, factory in _systems(args.systems):
        workload = YCSBWorkload(records_per_node=args.records, record_size=args.size)
        adapter = factory(
            args.nodes,
            records_per_node=args.records,
            record_size=args.size,
            **({"scaled_cache": False} if name == "hbase" else {}),
        )
        run_load(adapter, workload)
        seconds = run_random_reads(adapter, workload.keys, args.ops, cold=True)
        rows.append([name, args.ops, seconds, 1000 * seconds / args.ops])
    print(format_table(
        f"Cold random reads, {args.nodes} nodes",
        ["system", "reads", "sim sec", "ms/read"],
        rows,
    ))


def cmd_tpcw(args) -> None:
    from repro import LogBase, LogBaseConfig
    from repro.bench.tpcw import TPCW_MIXES, TPCWWorkload
    from repro.bench.tpcw_runner import run_tpcw

    series_latency: dict[str, dict[int, float]] = {}
    series_tps: dict[str, dict[int, float]] = {}
    for mix in TPCW_MIXES:
        db = LogBase(args.nodes, LogBaseConfig(segment_size=256 * 1024))
        workload = TPCWWorkload(
            products_per_node=args.records, customers_per_node=args.records, mix=mix
        )
        result = run_tpcw(db, workload, args.ops)
        series_latency.setdefault(f"{mix} ms", {})[args.nodes] = result.mean_latency_ms
        series_tps.setdefault(f"{mix} tps", {})[args.nodes] = result.throughput
    print(format_series("TPC-W latency (ms)", "nodes", series_latency))
    print()
    print(format_series("TPC-W throughput (TPS)", "nodes", series_tps))


def cmd_stats(args) -> None:
    from repro.core.stats import collect_cluster_stats, format_stats

    workload = YCSBWorkload(records_per_node=args.records, record_size=args.size)
    adapter = make_logbase(args.nodes, records_per_node=args.records, record_size=args.size)
    run_load(adapter, workload)
    run_mixed(adapter, workload, args.ops)
    print(format_stats(collect_cluster_stats(adapter.cluster)))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.cli",
        description="LogBase reproduction experiment runner (simulated time)",
    )
    parser.add_argument("--nodes", type=int, default=3, help="cluster size")
    parser.add_argument("--records", type=int, default=300, help="records per node")
    parser.add_argument("--size", type=int, default=1000, help="record bytes")
    parser.add_argument("--ops", type=int, default=100, help="ops/txns per node")
    parser.add_argument(
        "--systems",
        default="logbase,hbase,lrs",
        help="comma-separated systems to compare (logbase,hbase,lrs)",
    )
    parser.add_argument(
        "--updates", type=float, default=0.95, help="update fraction for `mixed`"
    )
    parser.add_argument(
        "command",
        choices=["load", "mixed", "reads", "tpcw", "stats"],
        help="experiment to run",
    )
    return parser


def main(argv: list[str] | None = None) -> None:
    args = build_parser().parse_args(argv)
    {
        "load": cmd_load,
        "mixed": cmd_mixed,
        "reads": cmd_reads,
        "tpcw": cmd_tpcw,
        "stats": cmd_stats,
    }[args.command](args)


if __name__ == "__main__":
    main()
