"""YCSB workload definition (§4.1, §4.3).

Paper parameters: 1 KB records, keys drawn from a domain of 2*10^9,
Zipfian coefficient 1.0, one benchmark client per node, loading 1 M
records per node (scaled down here; record *size* stays 1 KB so the cost
model charges paper-scale bytes), and write-heavy mixes of 95 % and 75 %
updates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.bench.zipfian import ZipfianGenerator

KEY_DOMAIN = 2_000_000_000
KEY_WIDTH = 12


def make_key(value: int) -> bytes:
    """Zero-padded decimal key, sortable as bytes."""
    return str(value).zfill(KEY_WIDTH).encode()


@dataclass
class YCSBWorkload:
    """One YCSB experiment configuration.

    Attributes:
        records_per_node: records loaded per node (paper: 1 M, scaled).
        record_size: value bytes per record (paper: 1 KB).
        update_fraction: share of updates in the mixed phase.
        theta: Zipfian coefficient for key choice (paper: 1.0).
        seed: deterministic RNG seed.
        concurrency: logical clients per node in the mixed phase.  1 —
            the default — keeps the seed one-op-at-a-time driver; above 1
            the runner multiplexes this many clients per node over the
            virtual-time scheduler (requires the ``group_commit`` gate
            for the update path to actually overlap).
    """

    records_per_node: int = 1000
    record_size: int = 1000
    update_fraction: float = 0.95
    theta: float = 1.0
    seed: int = 42
    concurrency: int = 1
    _keys: list[bytes] = field(default_factory=list, repr=False)

    def load_keys(self, n_nodes: int) -> list[bytes]:
        """Generate (and remember) the keys the load phase inserts."""
        rng = random.Random(self.seed)
        total = self.records_per_node * n_nodes
        values = rng.sample(range(KEY_DOMAIN), total)
        self._keys = sorted(make_key(v) for v in values)
        return self._keys

    @property
    def keys(self) -> list[bytes]:
        """Keys inserted by the load phase (after :meth:`load_keys`)."""
        if not self._keys:
            raise RuntimeError("call load_keys() first")
        return self._keys

    def value(self, rng: random.Random | None = None) -> bytes:
        """A record payload of the configured size."""
        if rng is None:
            return b"x" * self.record_size
        return bytes(rng.getrandbits(8) for _ in range(min(16, self.record_size))) + (
            b"x" * max(0, self.record_size - 16)
        )

    def operations(self, n_ops: int, *, seed_offset: int = 0) -> Iterator[tuple[str, bytes]]:
        """Yield ``(op, key)`` pairs for the mixed phase.

        ``op`` is ``"update"`` or ``"read"``; keys are Zipfian-chosen from
        the loaded key set ("an operation ... either reads or updates a
        certain record that has been inserted in the loading phase").
        """
        keys = self.keys
        chooser = ZipfianGenerator(len(keys), self.theta, seed=self.seed + seed_offset)
        rng = random.Random(self.seed + 7919 + seed_offset)
        for _ in range(n_ops):
            key = keys[chooser.next()]
            if rng.random() < self.update_fraction:
                yield "update", key
            else:
                yield "read", key

    def operation_streams(
        self, n_ops: int, *, seed_offset: int = 0
    ) -> list[Iterator[tuple[str, bytes]]]:
        """Split one node's mixed phase across ``concurrency`` logical
        clients.

        Each client gets an independent deterministic Zipfian stream (the
        op count is divided as evenly as possible); with ``concurrency``
        of 1 this is exactly ``[operations(n_ops, seed_offset)]``, so the
        seed stream is unchanged.
        """
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.concurrency == 1:
            return [self.operations(n_ops, seed_offset=seed_offset)]
        base, extra = divmod(n_ops, self.concurrency)
        return [
            self.operations(
                base + (1 if c < extra else 0),
                seed_offset=seed_offset + 104729 * (c + 1),
            )
            for c in range(self.concurrency)
        ]
