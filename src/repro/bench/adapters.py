"""Uniform system adapters so one harness drives all three systems.

An adapter owns a freshly built cluster and exposes per-node put/get/scan
whose return value is the *simulated* seconds the operation took (server
work plus RPC), which is what the paper's latency figures report.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.baselines.hbase.cluster import HBaseCluster
from repro.baselines.hbase.store import HBaseConfig
from repro.baselines.lrs.store import make_lrs_config
from repro.config import LogBaseConfig
from repro.core.client import Client
from repro.core.cluster import LogBaseCluster
from repro.core.schema import ColumnGroup, TableSchema

TABLE = "usertable"
GROUP = "g"

LOAD_BUFFER = 64  # records buffered per (client, server) before a flush

USERTABLE_SCHEMA = TableSchema(TABLE, "key", (ColumnGroup(GROUP, ("field0",)),))


class SystemAdapter(ABC):
    """Per-node operations against one system, reporting simulated time."""

    name: str

    @abstractmethod
    def n_nodes(self) -> int:
        """Cluster size."""

    @abstractmethod
    def put(self, node: int, key: bytes, value: bytes) -> float:
        """Write from client at ``node``; returns simulated seconds."""

    def put_many(self, node: int, pairs: list[tuple[bytes, bytes]]) -> float:
        """Batched write (bulk-load path).  Default: one put per pair."""
        return sum(self.put(node, key, value) for key, value in pairs)

    def put_buffered(self, node: int, key: bytes, value: bytes) -> None:
        """Client write buffer: stage the put; a per-(client, server)
        buffer flushes as one batch when it reaches LOAD_BUFFER records —
        how real bulk-load clients keep loading bandwidth-bound at any
        cluster size.  Default: immediate put."""
        self.put(node, key, value)

    def flush_buffers(self, node: int) -> None:
        """Flush any staged puts for client ``node``."""

    @abstractmethod
    def get(self, node: int, key: bytes) -> tuple[bytes | None, float]:
        """Read from client at ``node``; returns (value, seconds)."""

    @abstractmethod
    def range_scan(self, node: int, start: bytes, end: bytes) -> tuple[int, float]:
        """Range scan; returns (rows returned, seconds)."""

    @abstractmethod
    def full_scan(self) -> tuple[int, float]:
        """Whole-table scan across all servers (parallel segments);
        returns (rows, makespan seconds of the scan phase)."""

    @abstractmethod
    def drop_caches(self) -> None:
        """Empty every read/block cache (cold-read experiments)."""

    @abstractmethod
    def makespan(self) -> float:
        """Max simulated clock over the cluster's machines."""

    @abstractmethod
    def reset_clocks(self) -> None:
        """Zero every clock between phases."""

    def finish_load(self) -> None:
        """Hook after the load phase (HBase flushes memstores here)."""


class LogBaseAdapter(SystemAdapter):
    """Adapter over a LogBase (or LRS — same API) cluster.

    ``single_server=True`` pins every tablet to the first server (the
    §4.2 micro-benchmark deployment: one tablet server, 3-node DFS)."""

    def __init__(
        self,
        cluster: LogBaseCluster,
        name: str = "LogBase",
        single_server: bool = False,
    ) -> None:
        self.name = name
        self.cluster = cluster
        only = [cluster.servers[0].name] if single_server else None
        cluster.create_table(USERTABLE_SCHEMA, only_servers=only)
        self._clients = [Client(cluster.master, m) for m in cluster.machines]
        self._buffers: dict[tuple[int, str], list] = {}

    def n_nodes(self) -> int:
        return len(self.cluster.machines)

    def put(self, node: int, key: bytes, value: bytes) -> float:
        client = self._clients[node]
        client.put_raw(TABLE, key, GROUP, value)
        return client.last_op_seconds

    def _flush_one(self, node: int, name: str) -> float:
        items = self._buffers.pop((node, name), [])
        if not items:
            return 0.0
        machine = self.cluster.machines[node]
        server = self.cluster.master.server(name)
        before = machine.clock.now
        server_before = server.machine.clock.now
        payload = sum(len(k) + len(v[GROUP]) for k, v in items) + 64
        machine.clock.advance(
            machine.network.rpc_cost(payload, 16, local=server.machine is machine)
        )
        server.write_batch(TABLE, items)
        return (machine.clock.now - before) + (server.machine.clock.now - server_before)

    def put_buffered(self, node: int, key: bytes, value: bytes) -> None:
        name, _ = self.cluster.master.locate(TABLE, key)
        buffer = self._buffers.setdefault((node, name), [])
        buffer.append((key, {GROUP: value}))
        if len(buffer) >= LOAD_BUFFER:
            self._flush_one(node, name)

    def flush_buffers(self, node: int) -> None:
        for slot in [s for s in self._buffers if s[0] == node]:
            self._flush_one(node, slot[1])

    def put_many(self, node: int, pairs: list[tuple[bytes, bytes]]) -> float:
        """One buffered batch: stage every pair, then flush this client."""
        spent = 0.0
        for key, value in pairs:
            name, _ = self.cluster.master.locate(TABLE, key)
            self._buffers.setdefault((node, name), []).append((key, {GROUP: value}))
        for slot in [s for s in self._buffers if s[0] == node]:
            spent += self._flush_one(node, slot[1])
        return spent

    def get(self, node: int, key: bytes) -> tuple[bytes | None, float]:
        client = self._clients[node]
        value = client.get_raw(TABLE, key, GROUP)
        return value, client.last_op_seconds

    def _timed_scan(self, op) -> tuple[int, float]:
        """Run ``op(server)`` on every server; phase time is the max of
        the per-server clock deltas (sub-scans execute in parallel)."""
        rows = 0
        slowest = 0.0
        for server in self.cluster.servers:
            before = server.machine.clock.now
            rows += op(server)
            slowest = max(slowest, server.machine.clock.now - before)
        return rows, slowest

    def range_scan(self, node: int, start: bytes, end: bytes) -> tuple[int, float]:
        return self._timed_scan(
            lambda server: sum(1 for _ in server.range_scan(TABLE, GROUP, start, end))
        )

    def full_scan(self) -> tuple[int, float]:
        return self._timed_scan(
            lambda server: sum(1 for _ in server.full_scan(TABLE, GROUP))
        )

    def drop_caches(self) -> None:
        for server in self.cluster.servers:
            if server.read_cache is not None:
                server.read_cache.clear()
        self.cluster.dfs.drop_block_caches()
        for machine in self.cluster.machines:
            machine.disk.invalidate_head()

    def makespan(self) -> float:
        return self.cluster.elapsed_makespan()

    def reset_clocks(self) -> None:
        self.cluster.reset_clocks()

    def compact_all(self) -> None:
        """Run log compaction on every server (Figure 10's second line)."""
        for server in self.cluster.servers:
            server.compact()


class HBaseAdapter(SystemAdapter):
    """Adapter over the HBase baseline cluster."""

    def __init__(self, cluster: HBaseCluster, single_server: bool = False) -> None:
        self.name = "HBase"
        self.cluster = cluster
        only = [cluster.servers[0].name] if single_server else None
        cluster.create_table(USERTABLE_SCHEMA, only_servers=only)
        self._buffers: dict[tuple[int, str], list] = {}

    def n_nodes(self) -> int:
        return len(self.cluster.machines)

    def _timed(self, node: int, server, request: int, response: int, op):
        start = server.machine.clock.now
        result = op()
        client_machine = self.cluster.machines[node]
        rpc = client_machine.network.rpc_cost(
            request, response, local=server.machine is client_machine
        )
        client_machine.clock.advance(rpc)
        return result, (server.machine.clock.now - start) + rpc

    def put(self, node: int, key: bytes, value: bytes) -> float:
        server = self.cluster.server_for(TABLE, key)
        _, seconds = self._timed(
            node, server, len(value) + 64, 16,
            lambda: server.write(TABLE, key, {GROUP: value}),
        )
        return seconds

    def _flush_one(self, node: int, name: str) -> float:
        items = self._buffers.pop((node, name), [])
        if not items:
            return 0.0
        machine = self.cluster.machines[node]
        server = next(s for s in self.cluster.servers if s.name == name)
        before = machine.clock.now
        server_before = server.machine.clock.now
        payload = sum(len(k) + len(v[GROUP]) for k, v in items) + 64
        machine.clock.advance(
            machine.network.rpc_cost(payload, 16, local=server.machine is machine)
        )
        server.write_batch(TABLE, items)
        return (machine.clock.now - before) + (server.machine.clock.now - server_before)

    def put_buffered(self, node: int, key: bytes, value: bytes) -> None:
        server = self.cluster.server_for(TABLE, key)
        buffer = self._buffers.setdefault((node, server.name), [])
        buffer.append((key, {GROUP: value}))
        if len(buffer) >= LOAD_BUFFER:
            self._flush_one(node, server.name)

    def flush_buffers(self, node: int) -> None:
        for slot in [s for s in self._buffers if s[0] == node]:
            self._flush_one(node, slot[1])

    def put_many(self, node: int, pairs: list[tuple[bytes, bytes]]) -> float:
        """One buffered batch: stage every pair, then flush this client."""
        spent = 0.0
        for key, value in pairs:
            server = self.cluster.server_for(TABLE, key)
            self._buffers.setdefault((node, server.name), []).append(
                (key, {GROUP: value})
            )
        for slot in [s for s in self._buffers if s[0] == node]:
            spent += self._flush_one(node, slot[1])
        return spent

    def get(self, node: int, key: bytes) -> tuple[bytes | None, float]:
        server = self.cluster.server_for(TABLE, key)
        result, seconds = self._timed(
            node, server, len(key) + 64, 1024,
            lambda: server.read(TABLE, key, GROUP),
        )
        return (None if result is None else result[1]), seconds

    def _timed_scan(self, op) -> tuple[int, float]:
        rows = 0
        slowest = 0.0
        for server in self.cluster.servers:
            before = server.machine.clock.now
            rows += op(server)
            slowest = max(slowest, server.machine.clock.now - before)
        return rows, slowest

    def range_scan(self, node: int, start: bytes, end: bytes) -> tuple[int, float]:
        return self._timed_scan(
            lambda server: sum(1 for _ in server.range_scan(TABLE, GROUP, start, end))
        )

    def full_scan(self) -> tuple[int, float]:
        return self._timed_scan(
            lambda server: sum(1 for _ in server.full_scan(TABLE, GROUP))
        )

    def drop_caches(self) -> None:
        for server in self.cluster.servers:
            server.block_cache.clear()
            # Cold reads must re-fetch the sparse block indexes from the
            # data files too: "both application data and index blocks need
            # to be fetched from disk-resident files" (§3.5).
            for tables in server._sstables.values():
                for sstable in tables:
                    sstable._index = None
        for machine in self.cluster.machines:
            machine.disk.invalidate_head()

    def makespan(self) -> float:
        return self.cluster.elapsed_makespan()

    def reset_clocks(self) -> None:
        self.cluster.reset_clocks()

    def finish_load(self) -> None:
        self.cluster.flush_all()


def _scaled_logbase_config(records_per_node: int, record_size: int) -> LogBaseConfig:
    """Scale segment size and heap with the experiment.

    The heap is sized so the read cache (20 % of heap, §4.1) holds about
    a fifth of the node's data — matching the paper's regime where "both
    data domain size and experimental data size are large" relative to
    the cache, so distributed reads frequently miss.
    """
    total = max(records_per_node * record_size, 64 * 1024)
    return LogBaseConfig(
        segment_size=max(total // 4, 16 * 1024),
        heap_bytes=total,
    )


def make_logbase(
    n_nodes: int,
    *,
    records_per_node: int = 1000,
    record_size: int = 1000,
    config: LogBaseConfig | None = None,
    single_server: bool = False,
) -> LogBaseAdapter:
    """A fresh LogBase cluster sized for the experiment."""
    cfg = config if config is not None else _scaled_logbase_config(records_per_node, record_size)
    return LogBaseAdapter(LogBaseCluster(n_nodes, cfg), single_server=single_server)


def make_lrs(
    n_nodes: int,
    *,
    records_per_node: int = 1000,
    record_size: int = 1000,
    config: LogBaseConfig | None = None,
    single_server: bool = False,
) -> LogBaseAdapter:
    """A fresh LRS cluster (LogBase architecture, LSM-tree index).

    The LSM memtable is scaled with the experiment so index spills
    actually happen at simulation scale."""
    cfg = config if config is not None else _scaled_logbase_config(records_per_node, record_size)
    cfg = make_lrs_config(cfg)
    cluster = LogBaseCluster(n_nodes, cfg)
    # Scale each LSM memtable so a few flushes (and a merge) happen over
    # the load - proportional to LevelDB's 4 MB buffer against the
    # paper's 1 GB/node datasets.
    per_index = max(records_per_node * 24 // 4, 24 * 16)
    for server in cluster.servers:
        server.config = cfg
        original = server._new_index

        def scaled_new_index(tablet_id, group, _orig=original, _srv=server):
            index = _orig(tablet_id, group)
            index._memtable_limit = per_index
            return index

        server._new_index = scaled_new_index
    return LogBaseAdapter(cluster, name="LRS", single_server=single_server)


def make_hbase(
    n_nodes: int,
    *,
    records_per_node: int = 1000,
    record_size: int = 1000,
    single_server: bool = False,
    scaled_cache: bool = True,
) -> HBaseAdapter:
    """A fresh HBase cluster with the memstore flush size scaled so the
    load phase flushes several times per store (HBase's 64 MB threshold
    never trips at simulation record counts; bytes charged are real
    either way)."""
    config = HBaseConfig()
    per_store = max(records_per_node * record_size // 8, 8 * 1024)
    config.memstore_flush_size = per_store
    config.sstable_block_size = 64 * 1024
    # With ~8 flushes per load, the default threshold of 3 would rewrite
    # the data several times over and exaggerate HBase's write
    # amplification beyond the paper's ~2x; compact once towards the end.
    config.compaction_threshold = 6
    if scaled_cache:
        # Same cache-to-data regime as the LogBase config: the block cache
        # (20 % of heap) holds roughly a fifth of a node's data.  The §4.2
        # micro-benchmarks instead keep the paper's default 4 GB heap
        # (cache larger than the dataset), so they pass scaled_cache=False.
        config.heap_bytes = max(records_per_node * record_size, 64 * 1024)
    return HBaseAdapter(HBaseCluster(n_nodes, config), single_server=single_server)
