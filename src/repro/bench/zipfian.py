"""Key-choice distributions for the YCSB workloads.

The Zipfian generator follows Gray et al.'s rejection-free algorithm as
implemented in YCSB.  The paper sets the Zipfian coefficient to 1.0; the
closed-form constants diverge exactly at 1.0, so (as YCSB itself does) a
value epsilon below is substituted.
"""

from __future__ import annotations

import random


class UniformGenerator:
    """Uniform integer choice over [0, n)."""

    def __init__(self, n: int, seed: int = 0) -> None:
        if n < 1:
            raise ValueError("domain must be non-empty")
        self._n = n
        self._rng = random.Random(seed)

    def next(self) -> int:
        """Next sample."""
        return self._rng.randrange(self._n)

    def resize(self, n: int) -> None:
        """Grow/shrink the domain."""
        self._n = n


class ZipfianGenerator:
    """Zipfian choice over [0, n) with popularity rank = item order.

    Args:
        n: domain size.
        theta: skew; the paper's coefficient 1.0 is clamped to 0.9999.
        seed: RNG seed (deterministic experiments).
        scrambled: hash the rank so popular items spread over the key
            space (YCSB's scrambled-Zipfian, used for load balance).
    """

    def __init__(
        self, n: int, theta: float = 1.0, seed: int = 0, scrambled: bool = True
    ) -> None:
        if n < 1:
            raise ValueError("domain must be non-empty")
        if theta >= 1.0:
            theta = 0.9999
        self._n = n
        self._theta = theta
        self._rng = random.Random(seed)
        self._scrambled = scrambled
        self._zetan = self._zeta(n)
        self._zeta2 = self._zeta(2)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = self._compute_eta()

    def _zeta(self, n: int) -> float:
        return sum(1.0 / (i ** self._theta) for i in range(1, n + 1))

    def _compute_eta(self) -> float:
        return (1 - (2.0 / self._n) ** (1 - self._theta)) / (1 - self._zeta2 / self._zetan)

    def next(self) -> int:
        """Next sample in [0, n)."""
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            rank = 0
        elif uz < 1.0 + 0.5 ** self._theta:
            rank = 1
        else:
            rank = int(self._n * (self._eta * u - self._eta + 1) ** self._alpha)
        rank = min(rank, self._n - 1)
        if not self._scrambled:
            return rank
        # FNV-style scramble to spread the hot set across the domain.
        h = (rank * 0x9E3779B97F4A7C15 + 0x85EBCA6B) & ((1 << 64) - 1)
        return h % self._n
