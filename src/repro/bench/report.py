"""Plain-text reporting: the rows/series the paper's figures plot."""

from __future__ import annotations


def format_table(title: str, headers: list[str], rows: list[list]) -> str:
    """Render an aligned text table."""
    widths = [len(h) for h in headers]
    rendered_rows = []
    for row in rows:
        rendered = [
            f"{cell:.4g}" if isinstance(cell, float) else str(cell) for cell in row
        ]
        rendered_rows.append(rendered)
        for i, cell in enumerate(rendered):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for rendered in rendered_rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(rendered)))
    return "\n".join(lines)


def format_series(title: str, x_label: str, series: dict[str, dict]) -> str:
    """Render {series name: {x: y}} as one table with an x column."""
    xs = sorted({x for points in series.values() for x in points})
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        rows.append([x] + [series[name].get(x, "") for name in series])
    return format_table(title, headers, rows)
