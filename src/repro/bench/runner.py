"""The experiment harness: drives workloads and collects the paper's metrics.

All times are **simulated seconds** from the device cost models; the
harness interleaves the per-node clients round-robin (each node's client
"submits a constant workload", §4.1) and reports:

* load/insert time — makespan of the load phase (Figures 6, 11, 19);
* throughput — total operations / phase makespan (Figures 12, 16, 22);
* latency — mean per-op simulated seconds by op type (Figures 13-15).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.adapters import SystemAdapter
from repro.bench.ycsb import YCSBWorkload

LOAD_BATCH = 64  # records per client write-buffer flush during loading


@dataclass
class LoadResult:
    """Load-phase outcome."""

    system: str
    n_nodes: int
    records: int
    seconds: float

    @property
    def throughput(self) -> float:
        """Inserts per simulated second."""
        return self.records / self.seconds if self.seconds else 0.0


@dataclass
class MixedResult:
    """Mixed-phase outcome."""

    system: str
    n_nodes: int
    update_fraction: float
    ops: int
    seconds: float
    update_latencies: list[float] = field(default_factory=list, repr=False)
    read_latencies: list[float] = field(default_factory=list, repr=False)

    @property
    def throughput(self) -> float:
        """Operations per simulated second."""
        return self.ops / self.seconds if self.seconds else 0.0

    @property
    def mean_update_ms(self) -> float:
        """Mean update latency in milliseconds."""
        lat = self.update_latencies
        return 1000.0 * sum(lat) / len(lat) if lat else 0.0

    @property
    def mean_read_ms(self) -> float:
        """Mean read latency in milliseconds."""
        lat = self.read_latencies
        return 1000.0 * sum(lat) / len(lat) if lat else 0.0


def run_load(adapter: SystemAdapter, workload: YCSBWorkload) -> LoadResult:
    """Load phase: every node's client inserts its share in parallel.

    Keys are dealt round-robin across the per-node clients (parallel
    loading, §4.3).  Clients buffer puts and ship them in batches of
    ``LOAD_BATCH`` — the standard bulk-load path (HBase's client write
    buffer) that makes loading bandwidth-bound rather than paying a
    replication round trip per record.
    """
    n_nodes = adapter.n_nodes()
    keys = workload.load_keys(n_nodes)
    value = workload.value()
    before = adapter.makespan()
    for i, key in enumerate(keys):
        adapter.put_buffered(i % n_nodes, key, value)
    for node in range(n_nodes):
        adapter.flush_buffers(node)
    adapter.finish_load()
    return LoadResult(
        system=adapter.name,
        n_nodes=n_nodes,
        records=len(keys),
        seconds=adapter.makespan() - before,
    )


def run_mixed(
    adapter: SystemAdapter, workload: YCSBWorkload, ops_per_node: int
) -> MixedResult:
    """Mixed phase: per-node clients submit Zipfian read/update streams."""
    n_nodes = adapter.n_nodes()
    value = workload.value()
    streams = [
        workload.operations(ops_per_node, seed_offset=node) for node in range(n_nodes)
    ]
    result = MixedResult(
        system=adapter.name,
        n_nodes=n_nodes,
        update_fraction=workload.update_fraction,
        ops=0,
        seconds=0.0,
    )
    before = adapter.makespan()
    exhausted = [False] * n_nodes
    while not all(exhausted):
        for node, stream in enumerate(streams):
            if exhausted[node]:
                continue
            op = next(stream, None)
            if op is None:
                exhausted[node] = True
                continue
            kind, key = op
            if kind == "update":
                seconds = adapter.put(node, key, value)
                result.update_latencies.append(seconds)
            else:
                _, seconds = adapter.get(node, key)
                result.read_latencies.append(seconds)
            result.ops += 1
    result.seconds = adapter.makespan() - before
    return result


def run_mixed_concurrent(
    adapter: SystemAdapter, workload: YCSBWorkload, ops_per_node: int
) -> MixedResult:
    """Mixed phase with ``workload.concurrency`` logical clients per node
    multiplexed over simulated time (LogBase clusters only: the update
    path uses the group-commit coordinator when the gate is on).

    With ``concurrency`` of 1 this is exactly :func:`run_mixed`, so
    fig11/fig12-style runs opt in per workload.
    """
    if workload.concurrency <= 1:
        return run_mixed(adapter, workload, ops_per_node)
    from repro.bench.concurrent import run_mixed_concurrent as _concurrent

    return _concurrent(adapter, workload, ops_per_node)


def run_random_reads(
    adapter: SystemAdapter,
    keys: list[bytes],
    n_reads: int,
    *,
    cold: bool,
    seed: int = 3,
) -> float:
    """Random point reads; returns phase makespan in seconds.

    ``cold=True`` drops every cache before the phase *and between reads*
    never re-warms (the §4.2.2 "without cache" experiment reads distinct
    uniformly random records, so the cache never helps)."""
    import random as _random

    rng = _random.Random(seed)
    if cold:
        adapter.drop_caches()
        picks = rng.sample(range(len(keys)), min(n_reads, len(keys)))
    else:
        # Warm experiment: Zipfian re-reads hit the cache (§4.2.2 fig 8).
        from repro.bench.zipfian import ZipfianGenerator

        chooser = ZipfianGenerator(len(keys), 1.0, seed=seed)
        picks = [chooser.next() for _ in range(n_reads)]
    total = 0.0
    for pick in picks:
        if cold:
            adapter.drop_caches()
        _, seconds = adapter.get(pick % adapter.n_nodes(), keys[pick])
        total += seconds
    return total


def run_sequential_scan(adapter: SystemAdapter) -> tuple[int, float]:
    """Full-table scan; returns (rows, seconds)."""
    for_scan = adapter.full_scan()
    return for_scan


def run_range_scans(
    adapter: SystemAdapter,
    keys: list[bytes],
    range_sizes: list[int],
    *,
    repeats: int = 8,
    seed: int = 5,
) -> dict[int, float]:
    """Range scans returning ``n`` tuples each; returns mean latency (s)
    per range size (Figure 10's x-axis is tuples returned)."""
    import random as _random

    rng = _random.Random(seed)
    latencies: dict[int, float] = {}
    for size in range_sizes:
        total = 0.0
        for _ in range(repeats):
            start_idx = rng.randrange(max(1, len(keys) - size))
            start = keys[start_idx]
            end = keys[min(start_idx + size, len(keys) - 1)]
            adapter.drop_caches()
            _, seconds = adapter.range_scan(0, start, end)
            total += seconds
        latencies[size] = total / repeats
    return latencies
