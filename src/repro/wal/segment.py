"""Log segments: append-only DFS files holding framed log records.

The log is "an infinite sequential repository which contains contiguous
segments.  Each segment is implemented as a sequential file in HDFS whose
size is also configurable" (§3.4, default 64 MB as in HBase).
"""

from __future__ import annotations

from typing import Iterator

from repro.dfs.filesystem import DFS, DFSReader, DFSWriter
from repro.errors import CorruptLogRecord
from repro.sim.machine import Machine
from repro.wal.record import LogPointer, LogRecord


class LogSegmentWriter:
    """Appends framed records to one segment file."""

    def __init__(self, file_no: int, writer: DFSWriter) -> None:
        self.file_no = file_no
        self._writer = writer

    @property
    def size(self) -> int:
        """Bytes written to the segment so far."""
        return self._writer.length

    @property
    def path(self) -> str:
        """DFS path of the segment file."""
        return self._writer.path

    def append(self, encoded: bytes) -> LogPointer:
        """Durably append one already-encoded record; returns its pointer."""
        offset = self._writer.append(encoded)
        return LogPointer(self.file_no, offset, len(encoded))

    def append_many(self, encoded_records: list[bytes]) -> list[LogPointer]:
        """Durably append a batch with a single DFS append (group commit).

        A batch pays one replication round trip instead of one per record,
        which is the §3.7.2 batching optimization.
        """
        base = self._writer.append(b"".join(encoded_records))
        pointers = []
        offset = base
        for encoded in encoded_records:
            pointers.append(LogPointer(self.file_no, offset, len(encoded)))
            offset += len(encoded)
        return pointers

    def close(self) -> None:
        """Finalize the segment file."""
        self._writer.close()


class LogSegmentReader:
    """Random and sequential reads over one segment file."""

    def __init__(self, file_no: int, reader: DFSReader) -> None:
        self.file_no = file_no
        self._reader = reader

    @property
    def length(self) -> int:
        """Current segment length in bytes."""
        return self._reader.length

    def read_at(self, pointer: LogPointer) -> LogRecord:
        """Decode the record at ``pointer`` (one random DFS read)."""
        raw = self._reader.read(pointer.offset, pointer.size)
        record, _ = LogRecord.decode(raw)
        return record

    def scan(self) -> Iterator[tuple[LogPointer, LogRecord]]:
        """Sequentially decode every record in the segment.

        A torn final record (crash mid-append) terminates the scan cleanly,
        matching recovery semantics: bytes after the last complete frame
        are ignored.
        """
        buf = self._reader.read_all()
        offset = 0
        while offset < len(buf):
            try:
                record, next_offset = LogRecord.decode(buf, offset)
            except CorruptLogRecord:
                return
            yield LogPointer(self.file_no, offset, next_offset - offset), record
            offset = next_offset


def open_segment_reader(
    dfs: DFS, path: str, file_no: int, machine: Machine
) -> LogSegmentReader:
    """Open ``path`` as a segment reader on behalf of ``machine``."""
    return LogSegmentReader(file_no, dfs.open(path, machine))
