"""Log segments: append-only DFS files holding framed log records.

The log is "an infinite sequential repository which contains contiguous
segments.  Each segment is implemented as a sequential file in HDFS whose
size is also configurable" (§3.4, default 64 MB as in HBase).
"""

from __future__ import annotations

from typing import Iterator

from repro.dfs.filesystem import DFS, DFSReader, DFSWriter
from repro.errors import CorruptLogRecord
from repro.sim.machine import Machine
from repro.sim.metrics import SCAN_PREFETCH_WINDOWS
from repro.wal.record import LogPointer, LogRecord


class LogSegmentWriter:
    """Appends framed records to one segment file."""

    def __init__(self, file_no: int, writer: DFSWriter) -> None:
        self.file_no = file_no
        self._writer = writer

    @property
    def size(self) -> int:
        """Bytes written to the segment so far."""
        return self._writer.length

    @property
    def path(self) -> str:
        """DFS path of the segment file."""
        return self._writer.path

    def append(self, encoded: bytes) -> LogPointer:
        """Durably append one already-encoded record; returns its pointer."""
        offset = self._writer.append(encoded)
        return LogPointer(self.file_no, offset, len(encoded))

    def append_many(self, encoded_records: list[bytes]) -> list[LogPointer]:
        """Durably append a batch with a single DFS append (group commit).

        A batch pays one replication round trip instead of one per record,
        which is the §3.7.2 batching optimization.
        """
        base = self._writer.append(b"".join(encoded_records))
        pointers = []
        offset = base
        for encoded in encoded_records:
            pointers.append(LogPointer(self.file_no, offset, len(encoded)))
            offset += len(encoded)
        return pointers

    def close(self) -> None:
        """Finalize the segment file."""
        self._writer.close()


class LogSegmentReader:
    """Random and sequential reads over one segment file.

    Args:
        file_no: segment number (stamped into yielded pointers).
        reader: positional DFS reader over the segment file.
        prefetch_bytes: read-ahead window for :meth:`scan`; 0 reads the
            whole segment in one request (the seed behaviour), a positive
            value streams the scan in windows of this many bytes so long
            segments pay sequential-bandwidth cost with bounded buffering.
    """

    def __init__(
        self, file_no: int, reader: DFSReader, prefetch_bytes: int = 0
    ) -> None:
        self.file_no = file_no
        self._reader = reader
        self._prefetch_bytes = prefetch_bytes

    @property
    def length(self) -> int:
        """Current segment length in bytes."""
        return self._reader.length

    def refresh(self) -> None:
        """Pick up appends that landed after this reader was opened."""
        self._reader.refresh()

    def read_at(self, pointer: LogPointer) -> LogRecord:
        """Decode the record at ``pointer`` (one random DFS read)."""
        raw = self._reader.read(pointer.offset, pointer.size)
        record, _ = LogRecord.decode(raw)
        return record

    def read_range(self, offset: int, length: int) -> bytes:
        """Raw bytes of ``[offset, offset+length)`` — one DFS read.  The
        repository's coalesced batch reads decode multiple records out of
        one such span."""
        return self._reader.read(offset, length)

    def scan(self, *, start: int = 0) -> Iterator[tuple[LogPointer, LogRecord]]:
        """Sequentially decode every record in the segment from ``start``.

        With a prefetch window configured, the segment is read in
        consecutive windows (sequential on the disk model: only the first
        window pays a seek per block) and records straddling a window
        boundary are carried over.  A torn final record (crash mid-append)
        terminates the scan cleanly, matching recovery semantics: bytes
        after the last complete frame are ignored.

        ``start`` must be a record boundary (a pointer's ``offset + size``
        from a previous scan); a log tailer resumes mid-segment with it and
        pays only for the bytes past its cursor.
        """
        length = self._reader.length
        window = self._prefetch_bytes if self._prefetch_bytes > 0 else length - start
        counting = self._prefetch_bytes > 0
        buf = b""
        base = start  # file offset of buf[0]
        fetched = start  # file offset up to which the segment has been read
        offset = start  # file offset of the next record
        while offset < length:
            try:
                record, rel_next = LogRecord.decode(buf, offset - base)
            except CorruptLogRecord:
                if fetched >= length:
                    return  # torn final record (or trailing corruption)
                take = min(window, length - fetched)
                buf = buf[offset - base :] + self._reader.read(fetched, take)
                base = offset
                fetched += take
                if counting:
                    self._reader.machine.counters.add(SCAN_PREFETCH_WINDOWS)
                continue
            next_offset = base + rel_next
            yield LogPointer(self.file_no, offset, next_offset - offset), record
            offset = next_offset


def open_segment_reader(
    dfs: DFS, path: str, file_no: int, machine: Machine, prefetch_bytes: int = 0
) -> LogSegmentReader:
    """Open ``path`` as a segment reader on behalf of ``machine``."""
    return LogSegmentReader(file_no, dfs.open(path, machine), prefetch_bytes)
