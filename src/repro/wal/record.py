"""Log record codec.

A log record is ``<LogKey, Data>`` (§3.4):

* LogKey — log sequence number (LSN), table name, tablet name.
* Data — ``<RowKey, Value>`` where RowKey concatenates the record's
  primary key, the column group updated, and the write timestamp; Value is
  the payload or null for an invalidated (delete) entry.

Commit records (§3.7.2) reuse the same framing with a COMMIT type: they
carry the transaction id and commit timestamp and gate the visibility of
that transaction's writes during recovery and compaction.

Wire format (all integers uvarint unless noted)::

    frame   := length(u32 LE) crc32c(u32 LE) payload
    payload := type(1B) lsn txn_id table_len table tablet_len tablet
               key_len key group_len group timestamp value_flag(1B)
               [value_len value]

Sorted segments produced by compaction omit table/tablet/group per entry
(they are constant per segment); the ``SLIM`` flag bit marks that layout.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.errors import CorruptLogRecord
from repro.util.crc import crc32c
from repro.util.varint import decode_uvarint, encode_uvarint

_FRAME_HEADER = struct.Struct("<II")  # length, crc


class RecordType(enum.IntEnum):
    """Discriminates log entry kinds."""

    WRITE = 1        # insert/update of one (key, group) version
    INVALIDATE = 2   # delete marker (null Data per §3.6.3)
    COMMIT = 3       # transaction commit record
    ABORT = 4        # explicit abort marker (optional, aids diagnostics)
    CHECKPOINT = 5   # checkpoint marker written at checkpoint time


@dataclass(frozen=True, slots=True)
class LogPointer:
    """Location of a record in the log: file number, offset, record size.

    This is exactly the ``Ptr`` the paper stores in index entries (§3.5).
    """

    file_no: int
    offset: int
    size: int

    def __lt__(self, other: "LogPointer") -> bool:
        return (self.file_no, self.offset) < (other.file_no, other.offset)


@dataclass(frozen=True, slots=True)
class LogRecord:
    """One decoded log entry.

    Attributes:
        record_type: entry kind.
        lsn: log sequence number, assigned by the repository at append.
        txn_id: owning transaction (0 for auto-committed single writes).
        table: table name ("" in slim/sorted segments).
        tablet: tablet name ("" in slim/sorted segments).
        key: record primary key bytes.
        group: column group name ("" in slim segments).
        timestamp: version timestamp of the write (commit timestamp for
            COMMIT records).
        value: payload bytes, or None for INVALIDATE/COMMIT/ABORT.
    """

    record_type: RecordType
    lsn: int = 0
    txn_id: int = 0
    table: str = ""
    tablet: str = ""
    key: bytes = b""
    group: str = ""
    timestamp: int = 0
    value: bytes | None = None

    @property
    def is_delete(self) -> bool:
        """True for invalidated (delete) entries."""
        return self.record_type is RecordType.INVALIDATE

    def with_lsn(self, lsn: int) -> "LogRecord":
        """Copy of this record with the LSN the repository assigned."""
        return LogRecord(
            record_type=self.record_type,
            lsn=lsn,
            txn_id=self.txn_id,
            table=self.table,
            tablet=self.tablet,
            key=self.key,
            group=self.group,
            timestamp=self.timestamp,
            value=self.value,
        )

    # -- encoding ----------------------------------------------------------------

    def encode(self, *, slim: bool = False) -> bytes:
        """Encode to a framed byte string.

        Args:
            slim: omit table/tablet/group (sorted-segment layout, §3.6.5).
        """
        body = bytearray()
        type_byte = int(self.record_type)
        if slim:
            type_byte |= 0x80
        body.append(type_byte)
        body += encode_uvarint(self.lsn)
        body += encode_uvarint(self.txn_id)
        if not slim:
            for text in (self.table, self.tablet):
                raw = text.encode()
                body += encode_uvarint(len(raw))
                body += raw
        body += encode_uvarint(len(self.key))
        body += self.key
        if not slim:
            raw = self.group.encode()
            body += encode_uvarint(len(raw))
            body += raw
        body += encode_uvarint(self.timestamp)
        if self.value is None:
            body.append(0)
        else:
            body.append(1)
            body += encode_uvarint(len(self.value))
            body += self.value
        frame = _FRAME_HEADER.pack(len(body), crc32c(bytes(body)))
        return frame + bytes(body)

    @classmethod
    def decode(cls, buf: bytes, offset: int = 0) -> tuple["LogRecord", int]:
        """Decode one framed record from ``buf`` at ``offset``.

        Returns:
            ``(record, next_offset)``.

        Raises:
            CorruptLogRecord: on truncation or checksum mismatch.
        """
        header_end = offset + _FRAME_HEADER.size
        if header_end > len(buf):
            raise CorruptLogRecord("truncated frame header")
        length, crc = _FRAME_HEADER.unpack_from(buf, offset)
        body_end = header_end + length
        if body_end > len(buf):
            raise CorruptLogRecord("truncated frame body")
        body = bytes(buf[header_end:body_end])
        if crc32c(body) != crc:
            raise CorruptLogRecord("checksum mismatch")
        return cls._decode_body(body), body_end

    @classmethod
    def _decode_body(cls, body: bytes) -> "LogRecord":
        pos = 0
        type_byte = body[pos]
        pos += 1
        slim = bool(type_byte & 0x80)
        record_type = RecordType(type_byte & 0x7F)
        lsn, pos = decode_uvarint(body, pos)
        txn_id, pos = decode_uvarint(body, pos)
        table = tablet = group = ""
        if not slim:
            n, pos = decode_uvarint(body, pos)
            table = body[pos : pos + n].decode()
            pos += n
            n, pos = decode_uvarint(body, pos)
            tablet = body[pos : pos + n].decode()
            pos += n
        n, pos = decode_uvarint(body, pos)
        key = body[pos : pos + n]
        pos += n
        if not slim:
            n, pos = decode_uvarint(body, pos)
            group = body[pos : pos + n].decode()
            pos += n
        timestamp, pos = decode_uvarint(body, pos)
        has_value = body[pos]
        pos += 1
        value: bytes | None = None
        if has_value:
            n, pos = decode_uvarint(body, pos)
            value = body[pos : pos + n]
            pos += n
        return cls(
            record_type=record_type,
            lsn=lsn,
            txn_id=txn_id,
            table=table,
            tablet=tablet,
            key=key,
            group=group,
            timestamp=timestamp,
            value=value,
        )

    def encoded_size(self, *, slim: bool = False) -> int:
        """Framed size in bytes (what the log charges for this entry)."""
        return len(self.encode(slim=slim))


def commit_record(txn_id: int, commit_ts: int) -> LogRecord:
    """Build a COMMIT record for ``txn_id`` at ``commit_ts``."""
    return LogRecord(record_type=RecordType.COMMIT, txn_id=txn_id, timestamp=commit_ts)


def abort_record(txn_id: int) -> LogRecord:
    """Build an ABORT record for ``txn_id``."""
    return LogRecord(record_type=RecordType.ABORT, txn_id=txn_id)
