"""Archival tier for aged log segments (LHAM-inspired, §2.3).

The paper cites LHAM — "an extension of LSM-tree for hierarchical storage
systems that store a large number of components ... on archival media".
LogBase's multiversion history grows without bound when compaction keeps
every version; this module lets a deployment move *sorted* segments whose
newest record is older than a cutoff onto a cold-storage tier: separate
machines with slower, cheaper disks and lower replication.  Reads through
archived pointers keep working transparently — they just pay cold-tier
I/O plus a network hop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dfs.filesystem import DFS
from repro.sim.disk import DiskModel
from repro.sim.machine import Machine
from repro.sim.network import NetworkModel
from repro.wal.record import RecordType
from repro.wal.repository import LogRepository

#: Archival media: slower seeks and half the bandwidth of the hot tier.
ARCHIVE_DISK = DiskModel(seek_time=0.016, rotational_latency=0.00834, bandwidth=50e6)


class ColdStorage:
    """A small cluster of archival machines with their own DFS.

    Args:
        n_nodes: cold machines (archives usually replicate less).
        replication: replica count on the cold tier (default 2).
        network: share the cluster's network model so hot<->cold hops are
            charged consistently.
    """

    def __init__(
        self,
        n_nodes: int = 2,
        replication: int = 2,
        network: NetworkModel | None = None,
    ) -> None:
        self.machines = [
            Machine(
                f"cold-{i}",
                rack=f"cold-rack-{i}",
                disk_model=ARCHIVE_DISK,
                network=network if network is not None else NetworkModel(),
            )
            for i in range(n_nodes)
        ]
        self.dfs = DFS(self.machines, replication=replication)

    def stored_bytes(self) -> int:
        """Total bytes currently on the cold tier."""
        return sum(
            self.dfs.file_length(path) for path in self.dfs.list_files("/")
        )


@dataclass
class ArchiveReport:
    """What one archival pass moved."""

    segments_moved: int = 0
    bytes_moved: int = 0
    segments_examined: int = 0


class LogArchiver:
    """Moves aged sorted segments from a repository to cold storage.

    Only *sorted* (compaction-produced) segments are candidates: active
    segments still receive appends, and unsorted segments may hold
    current versions of anything.  A sorted segment qualifies when every
    record in it is older than the cutoff timestamp.
    """

    def __init__(self, repository: LogRepository, cold: ColdStorage) -> None:
        self._repo = repository
        self._cold = cold

    def archive_older_than(self, cutoff_timestamp: int) -> ArchiveReport:
        """Move qualifying sorted segments to the cold tier.

        The segment's bytes are copied to the cold DFS, the hot copy is
        deleted, and the repository records the new location so pointer
        reads and scans keep working (at cold-tier cost).
        """
        report = ArchiveReport()
        for file_no in list(self._repo.segments()):
            if not self._repo.is_sorted_segment(file_no):
                continue
            if self._repo.is_archived(file_no):
                continue
            report.segments_examined += 1
            newest = 0
            for _, record in self._repo.scan_segment(file_no):
                if record.record_type is RecordType.WRITE:
                    newest = max(newest, record.timestamp)
            if newest >= cutoff_timestamp:
                continue
            report.bytes_moved += self._move(file_no)
            report.segments_moved += 1
        return report

    def _move(self, file_no: int) -> int:
        hot_path = self._repo.segment_path(file_no)
        payload = self._repo.read_segment_bytes(file_no)
        cold_path = f"/archive{hot_path}"
        if self._cold.dfs.exists(cold_path):
            self._cold.dfs.delete(cold_path)
        writer = self._cold.dfs.create(cold_path, self._repo.machine)
        writer.append(payload)
        writer.close()
        self._repo.mark_archived(file_no, self._cold.dfs, cold_path)
        return len(payload)
