"""Log compaction (§3.6.5): the MapReduce-like vacuum/sort job.

The job takes the current log segments as input, removes obsolete
versions, invalidated records and uncommitted updates, sorts the remaining
data by (table name, column group, record id, timestamp) — the paper's
priority order — and writes one run of *sorted* segments per
(table, column group) so related records are clustered for range scans.

Structure mirrors the paper's MapReduce framing:

* **map** — scan each input segment, classifying entries and collecting
  the set of committed transactions;
* **shuffle** — group surviving versions by (table, group);
* **reduce** — per group, drop deleted/obsolete versions, sort by
  (key, timestamp), and emit slim records into a new sorted segment.

The caller (tablet server) keeps serving reads and writes from the old
segments while the job runs and swaps indexes atomically afterwards.

Two executions of that structure live here:

* :class:`CompactionJob` — the monolithic one-shot job over the whole
  log (the seed behaviour, still the default);
* :class:`IncrementalCompactionJob` — executes one planner-produced
  :class:`~repro.wal.planner.CompactionPlan`: tail plans reuse the
  map/shuffle/reduce over the (small) unsorted tail, while merge plans
  stream a k-way heap merge over already-sorted runs of one
  (table, group), so memory is bounded by one key's versions instead of
  the whole log.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterator

from repro.sim.failure import CP_COMPACTION_MID, crash_point
from repro.sim.metrics import (
    COMPACTION_BYTES_READ,
    COMPACTION_BYTES_WRITTEN,
    COMPACTION_PLANS,
    COMPACTION_TOMBSTONES_CARRIED,
)
from repro.wal.planner import CompactionPlan
from repro.wal.record import LogPointer, LogRecord, RecordType
from repro.wal.repository import LogRepository
from repro.wal.segment import LogSegmentWriter


@dataclass
class CompactionStats:
    """What the job dropped and kept (reported by benchmarks/tests)."""

    input_records: int = 0
    kept_versions: int = 0
    dropped_obsolete: int = 0
    dropped_deleted: int = 0
    dropped_uncommitted: int = 0
    dropped_unowned: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    tombstones_carried: int = 0

    def merge(self, other: "CompactionStats") -> None:
        """Accumulate another run's accounting into this one."""
        self.input_records += other.input_records
        self.kept_versions += other.kept_versions
        self.dropped_obsolete += other.dropped_obsolete
        self.dropped_deleted += other.dropped_deleted
        self.dropped_uncommitted += other.dropped_uncommitted
        self.dropped_unowned += other.dropped_unowned
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.tombstones_carried += other.tombstones_carried


@dataclass
class CompactionResult:
    """Output of one compaction run.

    Attributes:
        new_segments: file numbers of the sorted segments written.
        index_entries: ``(table, group, key, timestamp, pointer)`` for
            every surviving version, in sorted order — the tablet server
            rebuilds its in-memory indexes from this.
        retired_segments: input file numbers now safe to discard.
        touched_scopes: the (table, group) scopes whose data this run
            rewrote — the tablet server swaps only these scopes' indexes
            on an incremental run, leaving the rest alive.
        stats: drop/keep accounting.
    """

    new_segments: list[int] = field(default_factory=list)
    index_entries: list[tuple[str, str, bytes, int, LogPointer]] = field(
        default_factory=list
    )
    retired_segments: list[int] = field(default_factory=list)
    touched_scopes: set[tuple[str, str]] = field(default_factory=set)
    stats: CompactionStats = field(default_factory=CompactionStats)

    def merge(self, other: "CompactionResult") -> None:
        """Fold another plan's result in (plans have disjoint inputs)."""
        self.new_segments.extend(other.new_segments)
        self.index_entries.extend(other.index_entries)
        self.retired_segments.extend(other.retired_segments)
        self.touched_scopes.update(other.touched_scopes)
        self.stats.merge(other.stats)


def _trim_versions(
    live: list[LogRecord],
    stats: CompactionStats,
    max_versions: int | None,
    retain_after: int | None,
) -> list[LogRecord]:
    """Apply the retention policies to one key's surviving versions.

    ``retain_after`` expires history older than the cutoff but always
    keeps the key's newest version; ``max_versions`` caps the count.
    """
    if retain_after is not None and live:
        retained = [r for r in live[:-1] if r.timestamp >= retain_after] + [live[-1]]
        stats.dropped_obsolete += len(live) - len(retained)
        live = retained
    if max_versions is not None and len(live) > max_versions:
        stats.dropped_obsolete += len(live) - max_versions
        live = live[-max_versions:]
    return live


def _as_committed(record: LogRecord) -> LogRecord:
    """A copy of ``record`` stamped auto-committed (txn_id 0).

    Survivors are committed by construction, and their COMMIT records do
    not survive compaction — emitting them as auto-committed means a
    later redo scan or log split does not hold them hostage to a commit
    marker that no longer exists.
    """
    return LogRecord(
        record_type=record.record_type,
        lsn=record.lsn,
        txn_id=0,
        table=record.table,
        tablet=record.tablet,
        key=record.key,
        group=record.group,
        timestamp=record.timestamp,
        value=record.value,
    )


class CompactionJob:
    """One monolithic compaction run over a log repository.

    Args:
        repository: the log to compact.
        max_versions: keep at most this many newest committed versions per
            (table, group, key); ``None`` keeps every committed version
            (full multiversion history).
    """

    def __init__(
        self,
        repository: LogRepository,
        max_versions: int | None = None,
        owned=None,
        retain_after: int | None = None,
    ) -> None:
        """Args:
            owned: optional ``(table, key) -> bool``; records failing it
                are discarded — they belong to tablets this server no
                longer hosts (moved by rebalance/failover), whose new
                owner already re-homed the data during adoption.
            retain_after: optional timestamp; historical versions older
                than it are dropped — except each key's newest version,
                which survives regardless (a time-based retention policy,
                composable with ``max_versions``).
        """
        if max_versions is not None and max_versions < 1:
            raise ValueError("max_versions must be >= 1 or None")
        self._repo = repository
        self._max_versions = max_versions
        self._owned = owned
        self._retain_after = retain_after

    def run(self, input_segments: list[int] | None = None) -> CompactionResult:
        """Execute the job and install its output in the repository.

        Args:
            input_segments: segment file numbers to compact; defaults to
                every segment currently in the repository.  Updates that
                arrive in segments created after the job starts are left
                for the next round, as §3.6.5 describes.
        """
        inputs = input_segments if input_segments is not None else self._repo.segments()
        stats = CompactionStats()

        # ---- map: scan segments, classify entries -------------------------
        committed: set[int] = set()
        writes: list[LogRecord] = []
        deletes: list[LogRecord] = []
        for file_no in inputs:
            for pointer, record in self._repo.scan_segment(file_no):
                stats.input_records += 1
                stats.bytes_read += pointer.size
                if record.record_type is RecordType.COMMIT:
                    committed.add(record.txn_id)
                elif record.record_type is RecordType.WRITE:
                    writes.append(record)
                elif record.record_type is RecordType.INVALIDATE:
                    deletes.append(record)
                # ABORT and CHECKPOINT markers carry no data; dropped.

        # ---- shuffle: group surviving versions by (table, group) ----------
        grouped: dict[tuple[str, str], dict[bytes, list[LogRecord]]] = defaultdict(
            lambda: defaultdict(list)
        )
        for record in writes:
            if record.txn_id != 0 and record.txn_id not in committed:
                stats.dropped_uncommitted += 1
                continue
            if self._owned is not None and not self._owned(record.table, record.key):
                stats.dropped_unowned += 1
                continue
            grouped[(record.table, record.group)][record.key].append(record)

        delete_high_water: dict[tuple[str, str, bytes], int] = {}
        for record in deletes:
            if record.txn_id != 0 and record.txn_id not in committed:
                stats.dropped_uncommitted += 1
                continue
            slot = (record.table, record.group, record.key)
            delete_high_water[slot] = max(
                delete_high_water.get(slot, 0), record.timestamp
            )

        # ---- reduce: per group, drop obsolete, sort, write sorted runs ----
        result = CompactionResult(stats=stats, retired_segments=list(inputs))
        result.touched_scopes.update(grouped)
        result.touched_scopes.update((t, g) for t, g, _ in delete_high_water)
        for (table, group), per_key in sorted(grouped.items()):
            segment = self._repo.create_sorted_segment(table, group)
            for key in sorted(per_key):
                versions = sorted(per_key[key], key=lambda r: r.timestamp)
                cutoff = delete_high_water.get((table, group, key), -1)
                live = [r for r in versions if r.timestamp > cutoff]
                stats.dropped_deleted += len(versions) - len(live)
                live = _trim_versions(
                    live, stats, self._max_versions, self._retain_after
                )
                for record in live:
                    pointer = segment.append(_as_committed(record).encode(slim=True))
                    stats.bytes_written += pointer.size
                    result.index_entries.append(
                        (table, group, record.key, record.timestamp, pointer)
                    )
                    stats.kept_versions += 1
            segment.close()
            result.new_segments.append(segment.file_no)
        counters = self._repo.machine.counters
        counters.add(COMPACTION_PLANS)
        counters.add(COMPACTION_BYTES_READ, stats.bytes_read)
        counters.add(COMPACTION_BYTES_WRITTEN, stats.bytes_written)

        # ---- install: retire inputs, persist slim metadata ----------------
        # A crash before the install below leaves the sorted runs written
        # but the input segments still live: every record remains readable
        # through the old segments and the half-written runs are garbage
        # the next compaction overwrites — compaction is crash-safe.
        crash_point(CP_COMPACTION_MID, machine=self._repo.machine.name)
        self._repo.retire_segments(result.retired_segments)
        self._repo.persist_meta()
        return result


class IncrementalCompactionJob:
    """Execute one :class:`~repro.wal.planner.CompactionPlan`.

    Deletions need care that the monolithic job never did: a full
    compaction may drop INVALIDATE markers because its output provably
    covers the whole log, but an incremental plan's does not.  Each plan
    therefore re-emits a slim tombstone at a key's delete high-water mark
    whenever any live segment *outside* the plan could still hold that
    (table, group)'s versions — otherwise a later redo scan over the
    retained runs would resurrect deleted data.  Tombstones are emitted
    before the key's surviving versions (their timestamp is lower), so
    scan order within and across runs keeps redo correct.

    A budget-capped tail plan can also split a transaction from its
    commit marker (writes inside the plan, COMMIT past the cut).  Such
    writes must not be classified uncommitted: segments holding writes of
    a transaction with no COMMIT/ABORT inside the plan are deferred to a
    later round whenever the plan does not cover the whole tail.
    """

    def __init__(
        self,
        repository: LogRepository,
        plan: CompactionPlan,
        max_versions: int | None = None,
        owned=None,
        retain_after: int | None = None,
    ) -> None:
        if max_versions is not None and max_versions < 1:
            raise ValueError("max_versions must be >= 1 or None")
        if plan.kind not in ("tail", "merge"):
            raise ValueError(f"unknown plan kind {plan.kind!r}")
        if plan.kind == "merge" and plan.scope is None:
            raise ValueError("merge plans need a scope")
        self._repo = repository
        self._plan = plan
        self._max_versions = max_versions
        self._owned = owned
        self._retain_after = retain_after

    def run(self) -> CompactionResult:
        """Execute the plan and install its output in the repository."""
        if self._plan.kind == "merge":
            result = self._run_merge()
        else:
            result = self._run_tail()
        counters = self._repo.machine.counters
        counters.add(COMPACTION_PLANS)
        counters.add(COMPACTION_BYTES_READ, result.stats.bytes_read)
        counters.add(COMPACTION_BYTES_WRITTEN, result.stats.bytes_written)
        counters.add(COMPACTION_TOMBSTONES_CARRIED, result.stats.tombstones_carried)
        # Each plan installs independently; a crash here leaves this
        # plan's new runs written but unreferenced while every record
        # stays readable through the plan's inputs.  Earlier plans in the
        # same round are already fully installed.
        crash_point(CP_COMPACTION_MID, machine=self._repo.machine.name)
        self._repo.retire_segments(result.retired_segments)
        self._repo.persist_meta()
        return result

    # -- shared helpers -----------------------------------------------------

    def _scope_covered(self, scope: tuple[str, str], input_set: set[int]) -> bool:
        """Whether no live segment outside the plan can hold ``scope``'s
        versions — only then may the scope's delete markers be dropped."""
        for file_no in self._repo.segments():
            if file_no in input_set:
                continue
            other = self._repo.segment_scope(file_no)
            if other is None or other == scope:
                return False
        return True

    def _emit_tombstone(
        self,
        segment: LogSegmentWriter,
        table: str,
        group: str,
        key: bytes,
        cutoff: int,
        lsn: int,
        stats: CompactionStats,
    ) -> None:
        marker = LogRecord(
            record_type=RecordType.INVALIDATE,
            lsn=lsn,
            txn_id=0,
            table=table,
            tablet="",
            key=key,
            group=group,
            timestamp=cutoff,
            value=None,
        )
        pointer = segment.append(marker.encode(slim=True))
        stats.bytes_written += pointer.size
        stats.tombstones_carried += 1

    def _emit_live(
        self,
        segment: LogSegmentWriter,
        table: str,
        group: str,
        live: list[LogRecord],
        result: CompactionResult,
    ) -> None:
        for record in live:
            pointer = segment.append(_as_committed(record).encode(slim=True))
            result.stats.bytes_written += pointer.size
            result.index_entries.append(
                (table, group, record.key, record.timestamp, pointer)
            )
            result.stats.kept_versions += 1

    # -- tail plans ---------------------------------------------------------

    def _run_tail(self) -> CompactionResult:
        stats = CompactionStats()
        inputs = list(self._plan.inputs)
        committed: set[int] = set()
        resolved: set[int] = set()  # txns with a COMMIT or ABORT in the plan
        data: list[tuple[int, LogRecord]] = []  # (file_no, WRITE/INVALIDATE)
        txns_by_segment: dict[int, set[int]] = defaultdict(set)
        for file_no in inputs:
            for pointer, record in self._repo.scan_segment(file_no):
                stats.input_records += 1
                stats.bytes_read += pointer.size
                if record.record_type is RecordType.COMMIT:
                    committed.add(record.txn_id)
                    resolved.add(record.txn_id)
                elif record.record_type is RecordType.ABORT:
                    resolved.add(record.txn_id)
                elif record.record_type in (RecordType.WRITE, RecordType.INVALIDATE):
                    if record.txn_id != 0:
                        txns_by_segment[file_no].add(record.txn_id)
                    data.append((file_no, record))

        # Budget-capped plans must not treat a transaction whose COMMIT
        # lies past the cut as uncommitted: defer its segments instead.
        deferred: set[int] = set()
        unsorted_live = {
            f for f in self._repo.segments() if self._repo.segment_scope(f) is None
        }
        if not unsorted_live <= set(inputs):
            dangling = set().union(*txns_by_segment.values(), set()) - resolved
            if dangling:
                deferred = {
                    f for f, txns in txns_by_segment.items() if txns & dangling
                }

        grouped: dict[tuple[str, str], dict[bytes, list[LogRecord]]] = defaultdict(
            lambda: defaultdict(list)
        )
        delete_high_water: dict[tuple[str, str, bytes], tuple[int, int]] = {}
        for file_no, record in data:
            if file_no in deferred:
                continue
            if record.txn_id != 0 and record.txn_id not in committed:
                stats.dropped_uncommitted += 1
                continue
            if self._owned is not None and not self._owned(record.table, record.key):
                stats.dropped_unowned += 1
                continue
            if record.record_type is RecordType.WRITE:
                grouped[(record.table, record.group)][record.key].append(record)
            else:
                slot = (record.table, record.group, record.key)
                mark = delete_high_water.get(slot)
                if mark is None or record.timestamp > mark[0]:
                    delete_high_water[slot] = (record.timestamp, record.lsn)

        retired = [f for f in inputs if f not in deferred]
        result = CompactionResult(stats=stats, retired_segments=retired)
        scopes = set(grouped) | {(t, g) for t, g, _ in delete_high_water}
        result.touched_scopes.update(scopes)
        # Coverage must be decided before any output segment is created
        # (a new run of the same scope must not count as "outside").
        input_set = set(retired)
        covered = {s: self._scope_covered(s, input_set) for s in scopes}
        for scope in sorted(scopes):
            table, group = scope
            per_key = grouped.get(scope, {})
            keys = set(per_key) | {
                k for t, g, k in delete_high_water if (t, g) == scope
            }
            segment: LogSegmentWriter | None = None
            for key in sorted(keys):
                versions = sorted(per_key.get(key, []), key=lambda r: r.timestamp)
                cutoff, cutoff_lsn = delete_high_water.get(
                    (table, group, key), (-1, 0)
                )
                live = [r for r in versions if r.timestamp > cutoff]
                stats.dropped_deleted += len(versions) - len(live)
                live = _trim_versions(
                    live, stats, self._max_versions, self._retain_after
                )
                carry = cutoff >= 0 and not covered[scope]
                if segment is None and (live or carry):
                    segment = self._repo.create_sorted_segment(table, group)
                if carry:
                    self._emit_tombstone(
                        segment, table, group, key, cutoff, cutoff_lsn, stats
                    )
                self._emit_live(segment, table, group, live, result)
            if segment is not None:
                segment.close()
                result.new_segments.append(segment.file_no)
        return result

    # -- merge plans --------------------------------------------------------

    def _run_merge(self) -> CompactionResult:
        table, group = self._plan.scope
        stats = CompactionStats()
        inputs = list(self._plan.inputs)
        result = CompactionResult(stats=stats, retired_segments=inputs)
        result.touched_scopes.add((table, group))
        covered = self._scope_covered((table, group), set(inputs))
        segment: LogSegmentWriter | None = None
        for key, records in self._merge_by_key(inputs, stats):
            # records arrive in timestamp order and may include carried
            # tombstones from earlier incremental rounds.
            cutoff, cutoff_lsn = -1, 0
            versions: list[LogRecord] = []
            seen_ts: set[int] = set()
            for record in records:
                if record.record_type is RecordType.INVALIDATE:
                    if record.timestamp > cutoff:
                        cutoff, cutoff_lsn = record.timestamp, record.lsn
                elif record.record_type is RecordType.WRITE:
                    if record.timestamp in seen_ts:
                        continue  # duplicate copy across runs
                    seen_ts.add(record.timestamp)
                    versions.append(record)
            if self._owned is not None and not self._owned(table, key):
                stats.dropped_unowned += len(versions)
                continue
            live = [r for r in versions if r.timestamp > cutoff]
            stats.dropped_deleted += len(versions) - len(live)
            live = _trim_versions(live, stats, self._max_versions, self._retain_after)
            carry = cutoff >= 0 and not covered
            if segment is None and (live or carry):
                segment = self._repo.create_sorted_segment(table, group)
            if carry:
                self._emit_tombstone(
                    segment, table, group, key, cutoff, cutoff_lsn, stats
                )
            self._emit_live(segment, table, group, live, result)
        if segment is not None:
            segment.close()
            result.new_segments.append(segment.file_no)
        return result

    def _merge_by_key(
        self, inputs: list[int], stats: CompactionStats
    ) -> Iterator[tuple[bytes, list[LogRecord]]]:
        """K-way heap merge over sorted runs, yielding one key's records
        at a time in (key, timestamp) order — the streaming core that
        keeps merge memory bounded by versions-per-key, not log size."""
        streams = [self._scan_counted(file_no, stats) for file_no in inputs]
        heap: list[tuple[bytes, int, int, LogRecord]] = []
        for idx, stream in enumerate(streams):
            first = next(stream, None)
            if first is not None:
                heapq.heappush(heap, (first.key, first.timestamp, idx, first))
        current_key: bytes | None = None
        bucket: list[LogRecord] = []
        while heap:
            key, _, idx, record = heapq.heappop(heap)
            nxt = next(streams[idx], None)
            if nxt is not None:
                heapq.heappush(heap, (nxt.key, nxt.timestamp, idx, nxt))
            if current_key is not None and key != current_key:
                yield current_key, bucket
                bucket = []
            current_key = key
            bucket.append(record)
        if current_key is not None:
            yield current_key, bucket

    def _scan_counted(
        self, file_no: int, stats: CompactionStats
    ) -> Iterator[LogRecord]:
        for pointer, record in self._repo.scan_segment(file_no):
            stats.input_records += 1
            stats.bytes_read += pointer.size
            yield record
