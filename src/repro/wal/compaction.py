"""Log compaction (§3.6.5): the MapReduce-like vacuum/sort job.

The job takes the current log segments as input, removes obsolete
versions, invalidated records and uncommitted updates, sorts the remaining
data by (table name, column group, record id, timestamp) — the paper's
priority order — and writes one run of *sorted* segments per
(table, column group) so related records are clustered for range scans.

Structure mirrors the paper's MapReduce framing:

* **map** — scan each input segment, classifying entries and collecting
  the set of committed transactions;
* **shuffle** — group surviving versions by (table, group);
* **reduce** — per group, drop deleted/obsolete versions, sort by
  (key, timestamp), and emit slim records into a new sorted segment.

The caller (tablet server) keeps serving reads and writes from the old
segments while the job runs and swaps indexes atomically afterwards.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.sim.failure import CP_COMPACTION_MID, crash_point
from repro.wal.record import LogPointer, LogRecord, RecordType
from repro.wal.repository import LogRepository


@dataclass
class CompactionStats:
    """What the job dropped and kept (reported by benchmarks/tests)."""

    input_records: int = 0
    kept_versions: int = 0
    dropped_obsolete: int = 0
    dropped_deleted: int = 0
    dropped_uncommitted: int = 0
    dropped_unowned: int = 0


@dataclass
class CompactionResult:
    """Output of one compaction run.

    Attributes:
        new_segments: file numbers of the sorted segments written.
        index_entries: ``(table, group, key, timestamp, pointer)`` for
            every surviving version, in sorted order — the tablet server
            rebuilds its in-memory indexes from this.
        retired_segments: input file numbers now safe to discard.
        stats: drop/keep accounting.
    """

    new_segments: list[int] = field(default_factory=list)
    index_entries: list[tuple[str, str, bytes, int, LogPointer]] = field(
        default_factory=list
    )
    retired_segments: list[int] = field(default_factory=list)
    stats: CompactionStats = field(default_factory=CompactionStats)


class CompactionJob:
    """One compaction run over a log repository.

    Args:
        repository: the log to compact.
        max_versions: keep at most this many newest committed versions per
            (table, group, key); ``None`` keeps every committed version
            (full multiversion history).
    """

    def __init__(
        self,
        repository: LogRepository,
        max_versions: int | None = None,
        owned=None,
        retain_after: int | None = None,
    ) -> None:
        """Args:
            owned: optional ``(table, key) -> bool``; records failing it
                are discarded — they belong to tablets this server no
                longer hosts (moved by rebalance/failover), whose new
                owner already re-homed the data during adoption.
            retain_after: optional timestamp; historical versions older
                than it are dropped — except each key's newest version,
                which survives regardless (a time-based retention policy,
                composable with ``max_versions``).
        """
        if max_versions is not None and max_versions < 1:
            raise ValueError("max_versions must be >= 1 or None")
        self._repo = repository
        self._max_versions = max_versions
        self._owned = owned
        self._retain_after = retain_after

    def run(self, input_segments: list[int] | None = None) -> CompactionResult:
        """Execute the job and install its output in the repository.

        Args:
            input_segments: segment file numbers to compact; defaults to
                every segment currently in the repository.  Updates that
                arrive in segments created after the job starts are left
                for the next round, as §3.6.5 describes.
        """
        inputs = input_segments if input_segments is not None else self._repo.segments()
        stats = CompactionStats()

        # ---- map: scan segments, classify entries -------------------------
        committed: set[int] = set()
        writes: list[LogRecord] = []
        deletes: list[LogRecord] = []
        for file_no in inputs:
            for _, record in self._repo.scan_segment(file_no):
                stats.input_records += 1
                if record.record_type is RecordType.COMMIT:
                    committed.add(record.txn_id)
                elif record.record_type is RecordType.WRITE:
                    writes.append(record)
                elif record.record_type is RecordType.INVALIDATE:
                    deletes.append(record)
                # ABORT and CHECKPOINT markers carry no data; dropped.

        # ---- shuffle: group surviving versions by (table, group) ----------
        grouped: dict[tuple[str, str], dict[bytes, list[LogRecord]]] = defaultdict(
            lambda: defaultdict(list)
        )
        for record in writes:
            if record.txn_id != 0 and record.txn_id not in committed:
                stats.dropped_uncommitted += 1
                continue
            if self._owned is not None and not self._owned(record.table, record.key):
                stats.dropped_unowned += 1
                continue
            grouped[(record.table, record.group)][record.key].append(record)

        delete_high_water: dict[tuple[str, str, bytes], int] = {}
        for record in deletes:
            if record.txn_id != 0 and record.txn_id not in committed:
                stats.dropped_uncommitted += 1
                continue
            slot = (record.table, record.group, record.key)
            delete_high_water[slot] = max(
                delete_high_water.get(slot, 0), record.timestamp
            )

        # ---- reduce: per group, drop obsolete, sort, write sorted runs ----
        result = CompactionResult(stats=stats, retired_segments=list(inputs))
        for (table, group), per_key in sorted(grouped.items()):
            segment = self._repo.create_sorted_segment(table, group)
            for key in sorted(per_key):
                versions = sorted(per_key[key], key=lambda r: r.timestamp)
                cutoff = delete_high_water.get((table, group, key), -1)
                live = [r for r in versions if r.timestamp > cutoff]
                stats.dropped_deleted += len(versions) - len(live)
                if self._retain_after is not None and live:
                    # Time-based retention: expire old history but always
                    # keep the key's newest version.
                    retained = [
                        r for r in live[:-1] if r.timestamp >= self._retain_after
                    ] + [live[-1]]
                    stats.dropped_obsolete += len(live) - len(retained)
                    live = retained
                if self._max_versions is not None and len(live) > self._max_versions:
                    stats.dropped_obsolete += len(live) - self._max_versions
                    live = live[-self._max_versions :]
                for record in live:
                    # Survivors are committed by construction, and their
                    # COMMIT records do not survive compaction — emit them
                    # as auto-committed so a later redo scan or log split
                    # does not hold them hostage to a commit marker that
                    # no longer exists.
                    committed_record = LogRecord(
                        record_type=record.record_type,
                        lsn=record.lsn,
                        txn_id=0,
                        table=record.table,
                        tablet=record.tablet,
                        key=record.key,
                        group=record.group,
                        timestamp=record.timestamp,
                        value=record.value,
                    )
                    pointer = segment.append(committed_record.encode(slim=True))
                    result.index_entries.append(
                        (table, group, record.key, record.timestamp, pointer)
                    )
                    stats.kept_versions += 1
            segment.close()
            result.new_segments.append(segment.file_no)

        # ---- install: retire inputs, persist slim metadata ----------------
        # A crash before the install below leaves the sorted runs written
        # but the input segments still live: every record remains readable
        # through the old segments and the half-written runs are garbage
        # the next compaction overwrites — compaction is crash-safe.
        crash_point(CP_COMPACTION_MID, machine=self._repo.machine.name)
        self._repo.retire_segments(result.retired_segments)
        self._repo.persist_meta()
        return result
