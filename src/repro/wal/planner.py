"""Size-tiered compaction planning (§3.6.5, incremental flavour).

The monolithic job re-reads and rewrites *every* segment — including the
sorted runs earlier compactions already produced — so steady-state write
amplification grows with log age.  The planner splits one compaction round
into independent per-run plans instead, following standard size-tiered
LSM practice:

* **tail plans** — unsorted tail segments are always eligible: they hold
  uncommitted garbage and unclustered data, and vacuuming them is the
  point of §3.6.5.  One plan covers the tail, oldest segments first.
* **merge plans** — sorted runs of one (table, group) only join a plan
  when a size tier has accumulated at least ``tier_fanout`` similar-sized
  runs; merging then folds the tier into one bigger run.  Runs outside a
  full tier are left alone, which is what bounds rewrite amplification.

Every plan honours an optional I/O budget (``max_input_bytes``): input
segments past the budget are deferred to a later round, keeping each
round's read cost bounded.

The planner only *selects* inputs; executing a plan is
:class:`repro.wal.compaction.IncrementalCompactionJob`'s job, and the
tablet server installs plans one at a time so a crash between plans
leaves the log in a consistent intermediate state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wal.repository import LogRepository


@dataclass(frozen=True)
class CompactionPlan:
    """One unit of compaction work.

    Attributes:
        kind: ``"tail"`` (unsorted tail segments) or ``"merge"``
            (same-scope sorted runs).
        inputs: input segment file numbers, ascending.
        input_bytes: total on-DFS size of the inputs.
        scope: the (table, group) a merge plan's runs hold; None for
            tail plans, whose segments may hold anything.
    """

    kind: str
    inputs: tuple[int, ...]
    input_bytes: int
    scope: tuple[str, str] | None = None


class CompactionPlanner:
    """Builds the per-round plan list for one log repository.

    Args:
        repository: the log to plan over.
        tier_fanout: sorted runs merge only when a size tier holds at
            least this many similar-sized runs ("similar-sized" means
            within ``tier_fanout``× of the tier's smallest member).
        max_input_bytes: per-plan I/O budget; None removes the cap.
    """

    def __init__(
        self,
        repository: LogRepository,
        *,
        tier_fanout: int = 4,
        max_input_bytes: int | None = None,
    ) -> None:
        if tier_fanout < 2:
            raise ValueError("tier_fanout must be >= 2")
        if max_input_bytes is not None and max_input_bytes < 1:
            raise ValueError("max_input_bytes must be >= 1 or None")
        self._repo = repository
        self._tier_fanout = tier_fanout
        self._max_input_bytes = max_input_bytes

    def plan(self, segments: list[int] | None = None) -> list[CompactionPlan]:
        """The plans for one compaction round, merge plans first.

        Args:
            segments: candidate segment file numbers; defaults to every
                segment currently in the repository.  The tablet server
                passes the set frozen before its pre-compaction roll.
        """
        candidates = self._repo.segments() if segments is None else list(segments)
        unsorted: list[tuple[int, int]] = []
        runs_by_scope: dict[tuple[str, str], list[tuple[int, int]]] = {}
        for file_no in candidates:
            size = self._repo.segment_bytes(file_no)
            scope = self._repo.segment_scope(file_no)
            if scope is None:
                unsorted.append((file_no, size))
            else:
                runs_by_scope.setdefault(scope, []).append((file_no, size))
        plans: list[CompactionPlan] = []
        for scope in sorted(runs_by_scope):
            plans.extend(self._merge_plans(scope, runs_by_scope[scope]))
        tail = self._tail_plan(unsorted)
        if tail is not None:
            plans.append(tail)
        return plans

    def _tail_plan(self, unsorted: list[tuple[int, int]]) -> CompactionPlan | None:
        if not unsorted:
            return None
        take: list[int] = []
        total = 0
        for file_no, size in unsorted:  # ascending file_no: oldest first
            if (
                take
                and self._max_input_bytes is not None
                and total + size > self._max_input_bytes
            ):
                break
            take.append(file_no)
            total += size
        return CompactionPlan("tail", tuple(take), total)

    def _merge_plans(
        self, scope: tuple[str, str], runs: list[tuple[int, int]]
    ) -> list[CompactionPlan]:
        """Bucket one scope's runs into size tiers; full tiers become plans."""
        runs = sorted(runs, key=lambda fs: (fs[1], fs[0]))  # size ascending
        plans: list[CompactionPlan] = []
        bucket: list[tuple[int, int]] = []
        for file_no, size in runs:
            if not bucket or size <= max(bucket[0][1], 1) * self._tier_fanout:
                bucket.append((file_no, size))
            else:
                plans.extend(self._bucket_plan(scope, bucket))
                bucket = [(file_no, size)]
        plans.extend(self._bucket_plan(scope, bucket))
        return plans

    def _bucket_plan(
        self, scope: tuple[str, str], bucket: list[tuple[int, int]]
    ) -> list[CompactionPlan]:
        if len(bucket) < self._tier_fanout:
            return []
        take: list[int] = []
        total = 0
        for file_no, size in bucket:  # smallest runs first under the budget
            if (
                len(take) >= 2
                and self._max_input_bytes is not None
                and total + size > self._max_input_bytes
            ):
                break
            take.append(file_no)
            total += size
        return [CompactionPlan("merge", tuple(sorted(take)), total, scope)]
