"""The log repository: LogBase's unique data store (§3.4).

All writes are appended to a single per-server log made of sequential
segments stored in the DFS.  Log records carry ``<LogKey, Data>`` where
LogKey is (LSN, table, tablet) and Data is (row key, column group, write
timestamp, value); a null value marks an invalidated (deleted) entry.
Compaction (§3.6.5) rewrites the log into segments sorted by
(table, column group, key, timestamp) with obsolete versions removed.
"""

from repro.wal.record import LogRecord, LogPointer, RecordType
from repro.wal.segment import LogSegmentWriter, LogSegmentReader
from repro.wal.repository import LogRepository
from repro.wal.compaction import (
    CompactionJob,
    CompactionResult,
    IncrementalCompactionJob,
)
from repro.wal.planner import CompactionPlan, CompactionPlanner
from repro.wal.archive import ArchiveReport, ColdStorage, LogArchiver

__all__ = [
    "LogRecord",
    "LogPointer",
    "RecordType",
    "LogSegmentWriter",
    "LogSegmentReader",
    "LogRepository",
    "CompactionJob",
    "CompactionResult",
    "IncrementalCompactionJob",
    "CompactionPlan",
    "CompactionPlanner",
    "ArchiveReport",
    "ColdStorage",
    "LogArchiver",
]
