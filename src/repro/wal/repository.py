"""The per-server log repository (§3.4).

Each tablet server uses a *single log instance* for all tablets it
maintains (the paper's design choice 1): one sequence of segment files in
the DFS.  The repository assigns LSNs, rolls segments at the configured
size, serves random reads by :class:`LogPointer`, and atomically installs
the sorted segments produced by compaction.

Sorted segments use the slim record layout (table/tablet/group omitted per
entry); the repository keeps a metadata map ``file_no -> (table, group)``
persisted in the DFS so reads can reconstitute full records — the §3.6.5
storage optimization.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Iterator

from repro.dfs.filesystem import DFS
from repro.errors import InvalidLogPointer
from repro.obs.trace import span
from repro.sim.deadline import check_deadline
from repro.sim.failure import CP_LOG_APPEND, CP_META_PERSIST, crash_point
from repro.sim.machine import Machine
from repro.sim.metrics import (
    LOG_INGEST_BYTES,
    READ_MANY_CALLS,
    READ_MANY_RECORDS,
    READ_MANY_SPANS,
    SPAN_LOG_APPEND,
    SPAN_LOG_READ,
    SPAN_LOG_READ_MANY,
)
from repro.wal.record import LogPointer, LogRecord
from repro.wal.segment import LogSegmentReader, LogSegmentWriter, open_segment_reader

DEFAULT_SEGMENT_SIZE = 64 * 1024 * 1024


class LogRepository:
    """Segmented, append-only log for one tablet server.

    Args:
        dfs: the shared file system the segments live in.
        machine: the machine whose clock pays for log I/O.
        root: DFS directory prefix for this repository's files.
        segment_size: roll threshold in bytes.
        coalesce_gap: ``None`` disables batch-read coalescing —
            :meth:`read_many` then issues one DFS read per pointer in
            input order, the seed cost model.  A value ``>= 0`` makes
            :meth:`read_many` sort pointers per segment and merge reads
            whose gap is at most this many bytes into a single span read.
        scan_prefetch: read-ahead window (bytes) for sequential segment
            scans; 0 reads each segment in one request.
    """

    def __init__(
        self,
        dfs: DFS,
        machine: Machine,
        root: str,
        segment_size: int = DEFAULT_SEGMENT_SIZE,
        coalesce_gap: int | None = None,
        scan_prefetch: int = 0,
    ) -> None:
        self._dfs = dfs
        self._machine = machine
        self._root = root.rstrip("/")
        self._segment_size = segment_size
        self._coalesce_gap = coalesce_gap
        self._scan_prefetch = scan_prefetch
        self._next_file_no = 1
        self._next_lsn = 1
        self._paths: dict[int, str] = {}
        # file_no -> (table, group) for slim (sorted) segments
        self._slim_meta: dict[int, tuple[str, str]] = {}
        # file_no -> (cold DFS handle, cold path) for archived segments
        self._archived: dict[int, tuple[DFS, str]] = {}
        self._current: LogSegmentWriter | None = None
        self._readers: dict[int, LogSegmentReader] = {}

    # -- properties -------------------------------------------------------------

    @property
    def root(self) -> str:
        """DFS directory prefix of this repository."""
        return self._root

    @property
    def next_lsn(self) -> int:
        """LSN that the next append will receive."""
        return self._next_lsn

    @property
    def machine(self) -> Machine:
        """The machine whose clock pays for log I/O."""
        return self._machine

    def set_next_lsn(self, lsn: int) -> None:
        """Fast-forward the LSN counter (recovery restores it from the log)."""
        self._next_lsn = max(self._next_lsn, lsn)

    # -- segment management -------------------------------------------------------

    def _segment_path(self, file_no: int, *, sorted_segment: bool = False) -> str:
        kind = "sorted" if sorted_segment else "segment"
        return f"{self._root}/{kind}-{file_no:08d}.log"

    def _roll_if_needed(self, incoming: int) -> LogSegmentWriter:
        if self._current is not None and self._current.size + incoming <= self._segment_size:
            return self._current
        if self._current is not None:
            self._current.close()
        file_no = self._next_file_no
        self._next_file_no += 1
        path = self._segment_path(file_no)
        writer = self._dfs.create(path, self._machine)
        self._current = LogSegmentWriter(file_no, writer)
        self._paths[file_no] = path
        return self._current

    def segments(self) -> list[int]:
        """All live segment file numbers in order."""
        return sorted(self._paths)

    def segment_path(self, file_no: int) -> str:
        """DFS path of segment ``file_no``."""
        return self._paths[file_no]

    def segment_bytes(self, file_no: int) -> int:
        """On-DFS size of one live segment (a namenode metadata lookup;
        the compaction planner sizes its tiers with this)."""
        archived = self._archived.get(file_no)
        if archived is not None:
            cold_dfs, cold_path = archived
            return cold_dfs.file_length(cold_path)
        return self._dfs.file_length(self._paths[file_no])

    def is_sorted_segment(self, file_no: int) -> bool:
        """Whether ``file_no`` is a compaction-produced sorted segment."""
        return file_no in self._slim_meta

    def segment_scope(self, file_no: int) -> tuple[str, str] | None:
        """(table, group) a sorted segment holds, or None for unsorted
        segments (which may hold anything).  This is the §3.6.5 metadata
        map that lets group scans skip unrelated segments entirely."""
        return self._slim_meta.get(file_no)

    # -- archival tier (LHAM-inspired; see repro.wal.archive) ---------------

    def is_archived(self, file_no: int) -> bool:
        """Whether ``file_no`` lives on the cold tier."""
        return file_no in self._archived

    def read_segment_bytes(self, file_no: int) -> bytes:
        """The raw bytes of one segment (used when copying to cold
        storage)."""
        path = self._paths[file_no]
        return self._dfs.open(path, self._machine).read_all()

    def mark_archived(self, file_no: int, cold_dfs: "DFS", cold_path: str) -> None:
        """Record that ``file_no`` now lives at ``cold_path`` on the cold
        tier and delete the hot copy; reads fall through transparently."""
        hot_path = self._paths[file_no]
        self._archived[file_no] = (cold_dfs, cold_path)
        self._readers.pop(file_no, None)
        self._dfs.delete(hot_path)

    def total_bytes(self) -> int:
        """Total size of all live segments on the HOT tier (archived
        segments no longer count against hot storage)."""
        return sum(
            self._dfs.file_length(path)
            for file_no, path in self._paths.items()
            if file_no not in self._archived
        )

    # -- appends -------------------------------------------------------------------

    def append(self, record: LogRecord) -> tuple[LogPointer, LogRecord]:
        """Assign an LSN, durably append, and return (pointer, stamped record).

        A one-record batch: the segment-roll/oversize-split logic lives
        only in :meth:`append_batch`, and a single record pays exactly the
        same cost either way (same crash point, one DFS append).
        """
        [(pointer, stamped)] = self.append_batch([record])
        return pointer, stamped

    def append_batch(self, records: list[LogRecord]) -> list[tuple[LogPointer, LogRecord]]:
        """Group-commit append: one DFS round trip per segment touched.

        A batch that fits the active segment (or any batch no larger than
        ``segment_size``) lands with a single ``append_many``.  A batch
        bigger than one segment is split across rolls instead of blowing
        a single segment arbitrarily past the roll threshold; each
        resulting segment still receives its records in one DFS write.
        """
        if not records:
            return []
        crash_point(CP_LOG_APPEND, machine=self._machine.name, root=self._root)
        stamped = []
        encoded = []
        for record in records:
            rec = record.with_lsn(self._next_lsn)
            self._next_lsn += 1
            stamped.append(rec)
            encoded.append(rec.encode())
        total = sum(len(e) for e in encoded)
        self._machine.counters.add(LOG_INGEST_BYTES, total)
        with span(SPAN_LOG_APPEND, self._machine, bytes=total, records=len(records)):
            writer = self._roll_if_needed(total)
            pointers: list[LogPointer] = []
            start = 0
            while start < len(encoded):
                # Greedy chunk: everything that fits the segment's remaining
                # capacity; a single record larger than a whole segment goes
                # alone.
                end = start + 1
                size = len(encoded[start])
                while (
                    end < len(encoded)
                    and writer.size + size + len(encoded[end]) <= self._segment_size
                ):
                    size += len(encoded[end])
                    end += 1
                pointers.extend(writer.append_many(encoded[start:end]))
                self._refresh_reader(writer.file_no)
                start = end
                if start < len(encoded):
                    writer = self._roll_if_needed(len(encoded[start]))
        return list(zip(pointers, stamped))

    def _refresh_reader(self, file_no: int) -> None:
        # An append extends the file the cached reader sees; refreshing
        # its length metadata (instead of discarding the reader, as this
        # used to) keeps the active segment's reader — and the block-cache
        # state behind it — warm across appends.
        reader = self._readers.get(file_no)
        if reader is not None:
            reader.refresh()

    # -- reads ----------------------------------------------------------------------

    def _reader(self, file_no: int) -> LogSegmentReader:
        reader = self._readers.get(file_no)
        if reader is None:
            archived = self._archived.get(file_no)
            if archived is not None:
                cold_dfs, cold_path = archived
                reader = open_segment_reader(
                    cold_dfs, cold_path, file_no, self._machine, self._scan_prefetch
                )
            else:
                path = self._paths.get(file_no)
                if path is None:
                    raise InvalidLogPointer(f"segment {file_no} does not exist")
                reader = open_segment_reader(
                    self._dfs, path, file_no, self._machine, self._scan_prefetch
                )
            self._readers[file_no] = reader
        return reader

    def read(self, pointer: LogPointer) -> LogRecord:
        """Random read of one record (a single disk seek, §3.5)."""
        check_deadline("log read")
        with span(SPAN_LOG_READ, self._machine, bytes=pointer.size):
            record = self._reader(pointer.file_no).read_at(pointer)
        return self._fill_slim(pointer.file_no, record)

    def read_many(self, pointers: list[LogPointer]) -> list[LogRecord]:
        """Batch random reads; returns records in input pointer order.

        With coalescing enabled (``coalesce_gap`` is not None), pointers
        are grouped by segment, sorted by offset, and runs whose
        inter-record gap is at most the configured threshold are fetched
        with a single DFS span read — one seek amortized over the run
        instead of one per record.  After compaction clusters a range's
        records, a Fig. 10-style scan collapses to a handful of spans.

        With coalescing disabled this degenerates to per-pointer
        :meth:`read` calls in input order (identical cost accounting to
        the seed read path).
        """
        if not pointers:
            return []
        check_deadline("log batch read")
        if self._coalesce_gap is None:
            return [self.read(pointer) for pointer in pointers]
        counters = self._machine.counters
        counters.add(READ_MANY_CALLS)
        counters.add(READ_MANY_RECORDS, len(pointers))
        with span(SPAN_LOG_READ_MANY, self._machine, records=len(pointers)):
            results: list[LogRecord | None] = [None] * len(pointers)
            by_segment: dict[int, list[int]] = defaultdict(list)
            for position, pointer in enumerate(pointers):
                by_segment[pointer.file_no].append(position)
            for file_no, positions in by_segment.items():
                reader = self._reader(file_no)
                positions.sort(key=lambda i: pointers[i].offset)
                run: list[int] = []
                run_start = run_end = 0
                for position in positions:
                    pointer = pointers[position]
                    if run and pointer.offset <= run_end + self._coalesce_gap:
                        run.append(position)
                        run_end = max(run_end, pointer.offset + pointer.size)
                    else:
                        if run:
                            self._read_span(reader, file_no, run, run_start, run_end,
                                            pointers, results)
                        run = [position]
                        run_start = pointer.offset
                        run_end = pointer.offset + pointer.size
                if run:
                    self._read_span(reader, file_no, run, run_start, run_end,
                                    pointers, results)
        return results  # type: ignore[return-value]

    def _read_span(
        self,
        reader: LogSegmentReader,
        file_no: int,
        run: list[int],
        start: int,
        end: int,
        pointers: list[LogPointer],
        results: list[LogRecord | None],
    ) -> None:
        """Fetch one coalesced span and decode each run member out of it."""
        self._machine.counters.add(READ_MANY_SPANS)
        raw = reader.read_range(start, end - start)
        for position in run:
            pointer = pointers[position]
            record, _ = LogRecord.decode(raw, pointer.offset - start)
            results[position] = self._fill_slim(file_no, record)

    def _fill_slim(self, file_no: int, record: LogRecord) -> LogRecord:
        meta = self._slim_meta.get(file_no)
        if meta is None or record.table:
            return record
        table, group = meta
        return LogRecord(
            record_type=record.record_type,
            lsn=record.lsn,
            txn_id=record.txn_id,
            table=table,
            tablet=record.tablet,
            key=record.key,
            group=group,
            timestamp=record.timestamp,
            value=record.value,
        )

    def scan_segment(
        self, file_no: int, *, start_offset: int = 0
    ) -> Iterator[tuple[LogPointer, LogRecord]]:
        """Sequential scan of one segment, optionally from a byte offset.

        ``start_offset`` must be a record boundary (``offset + size`` of a
        previously scanned pointer); a follower's log tailer resumes from
        its cursor with it, reading only the segment's unseen suffix.
        """
        for pointer, record in self._reader(file_no).scan(start=start_offset):
            check_deadline("log segment scan")
            yield pointer, self._fill_slim(file_no, record)

    def scan_all(
        self, *, start: LogPointer | None = None
    ) -> Iterator[tuple[LogPointer, LogRecord]]:
        """Scan every segment in file order, optionally from ``start``.

        Recovery uses ``start`` to resume from the last checkpoint position
        instead of scanning the whole log (§3.8).
        """
        for file_no in self.segments():
            if start is not None and file_no < start.file_no:
                continue
            for pointer, record in self.scan_segment(file_no):
                if start is not None and file_no == start.file_no and pointer.offset < start.offset:
                    continue
                yield pointer, record

    def end_pointer(self) -> LogPointer:
        """Pointer just past the last appended byte (checkpoint position)."""
        if self._current is None:
            if not self._paths:
                return LogPointer(0, 0, 0)
            # After a roll, the resume point is the start of the segment
            # that the next append will create.
            return LogPointer(self._next_file_no, 0, 0)
        return LogPointer(self._current.file_no, self._current.size, 0)

    def roll(self) -> None:
        """Close the active segment so the next append opens a fresh one.

        The tablet server rolls before compaction so the job's input set is
        frozen while new writes land in segments outside it (§3.6.5).
        """
        if self._current is not None:
            self._current.close()
            self._current = None

    # -- compaction support --------------------------------------------------------

    def create_sorted_segment(self, table: str, group: str) -> LogSegmentWriter:
        """Open a writer for a new sorted segment holding one (table, group)."""
        file_no = self._next_file_no
        self._next_file_no += 1
        path = self._segment_path(file_no, sorted_segment=True)
        writer = self._dfs.create(path, self._machine)
        segment = LogSegmentWriter(file_no, writer)
        self._paths[file_no] = path
        self._slim_meta[file_no] = (table, group)
        return segment

    def retire_segments(self, file_nos: list[int]) -> None:
        """Delete old segments after compaction has installed their
        replacements (§3.6.5: "the old log segments ... can be safely
        discarded")."""
        for file_no in file_nos:
            if self._current is not None and self._current.file_no == file_no:
                # The active segment was compacted away; the next append
                # starts a fresh one.
                self._current = None
            path = self._paths.pop(file_no, None)
            self._slim_meta.pop(file_no, None)
            self._readers.pop(file_no, None)
            archived = self._archived.pop(file_no, None)
            if archived is not None:
                cold_dfs, cold_path = archived
                if cold_dfs.exists(cold_path):
                    cold_dfs.delete(cold_path)
            elif path is not None:
                self._dfs.delete(path)
        self._persist_meta()

    def _meta_path(self) -> str:
        return f"{self._root}/segments.meta"

    def _meta_tmp_path(self) -> str:
        return f"{self._root}/segments.meta.tmp"

    def _persist_meta(self) -> None:
        """Persist the slim-segment metadata map to the DFS atomically.

        The map is written to a temp path first and swapped in with an
        atomic rename, so a crash at any point leaves either the old map
        or the complete new one on the DFS — never a window with neither
        (``reattach`` prefers a complete temp file, which is always the
        newer state when one exists).
        """
        payload = json.dumps(
            {str(no): list(meta) for no, meta in self._slim_meta.items()}
        ).encode()
        path = self._meta_path()
        tmp = self._meta_tmp_path()
        if self._dfs.exists(tmp):
            self._dfs.delete(tmp)
        writer = self._dfs.create(tmp, self._machine)
        writer.append(payload)
        writer.close()
        crash_point(CP_META_PERSIST, machine=self._machine.name, root=self._root)
        if self._dfs.exists(path):
            self._dfs.delete(path)
        self._dfs.rename(tmp, path)

    def persist_meta(self) -> None:
        """Public hook used after compaction installs sorted segments."""
        self._persist_meta()

    # -- recovery support -------------------------------------------------------------

    @classmethod
    def reattach(
        cls,
        dfs: DFS,
        machine: Machine,
        root: str,
        segment_size: int = DEFAULT_SEGMENT_SIZE,
        coalesce_gap: int | None = None,
        scan_prefetch: int = 0,
    ) -> "LogRepository":
        """Rebuild a repository handle over segments already in the DFS.

        Used when a restarted or replacement server takes over a failed
        server's log (§3.8).  The LSN counter is restored lazily by the
        recovery scan.
        """
        repo = cls(dfs, machine, root, segment_size, coalesce_gap, scan_prefetch)
        # A complete temp file is always the newest state: the swap in
        # ``_persist_meta`` only deletes the old map after the temp is
        # fully written.  An unparseable temp is a crash mid-write — fall
        # back to the old map it never replaced.
        for meta_path in (repo._meta_tmp_path(), repo._meta_path()):
            if not dfs.exists(meta_path):
                continue
            raw = dfs.open(meta_path, machine).read_all()
            try:
                parsed = json.loads(raw.decode())
            except ValueError:
                continue
            repo._slim_meta = {
                int(no): (meta[0], meta[1]) for no, meta in parsed.items()
            }
            break
        for path in dfs.list_files(repo._root + "/"):
            name = path.rsplit("/", 1)[-1]
            if name.startswith("segments.meta"):
                continue
            stem = name.rsplit(".", 1)[0]
            try:
                file_no = int(stem.split("-")[-1])
            except ValueError:
                # Not a segment file — e.g. a split writer's leftover
                # ``segment-*.log.tmp`` from a crash mid-persist, or a
                # fence token.  Skip rather than refuse to reattach.
                continue
            repo._paths[file_no] = path
            repo._next_file_no = max(repo._next_file_no, file_no + 1)
        return repo

    def refresh_from_dfs(self) -> None:
        """Re-sync this handle with the segment files currently in the DFS.

        A follower's tailer holds a read-only ``reattach``-ed handle over
        the owner's log directory while the owner keeps rolling, compacting,
        and retiring segments underneath it.  Each tail pass calls this
        first so the handle (a) picks up newly rolled segments, (b) drops
        segments the owner retired (their readers would otherwise serve
        reads of deleted files), (c) reloads the slim-segment metadata map
        when compaction installed new sorted segments, and (d) refreshes
        cached readers so they observe appends past their opened length.
        Cost: one namenode listing plus a small metadata read when the map
        changed — no data I/O.
        """
        listed: dict[int, str] = {}
        for path in self._dfs.list_files(self._root + "/"):
            name = path.rsplit("/", 1)[-1]
            if name.startswith("segments.meta"):
                continue
            stem = name.rsplit(".", 1)[0]
            try:
                file_no = int(stem.split("-")[-1])
            except ValueError:
                continue
            listed[file_no] = path
        for file_no in list(self._paths):
            if file_no in listed or file_no in self._archived:
                continue
            self._paths.pop(file_no, None)
            self._readers.pop(file_no, None)
            self._slim_meta.pop(file_no, None)
        new_sorted = False
        for file_no, path in listed.items():
            if file_no not in self._paths:
                self._paths[file_no] = path
                self._next_file_no = max(self._next_file_no, file_no + 1)
                if "sorted-" in path.rsplit("/", 1)[-1]:
                    new_sorted = True
        if new_sorted:
            # Prefer the committed map: unlike ``reattach`` (crash
            # recovery, where a complete temp is always the newest
            # state), a live refresh can observe a temp file orphaned by
            # an owner crash long since superseded — parseable but
            # stale.  Fall back to the temp only when the committed map
            # is absent (crash between delete and rename) or torn.
            for meta_path in (self._meta_path(), self._meta_tmp_path()):
                if not self._dfs.exists(meta_path):
                    continue
                raw = self._dfs.open(meta_path, self._machine).read_all()
                try:
                    parsed = json.loads(raw.decode())
                except ValueError:
                    continue
                self._slim_meta = {
                    int(no): (meta[0], meta[1]) for no, meta in parsed.items()
                }
                break
        for reader in self._readers.values():
            reader.refresh()
