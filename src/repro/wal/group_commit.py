"""Group commit: coalesce concurrent WAL appends into one replication
round trip (BtrLog-style; the ROADMAP's "Concurrent clients + group
commit" item).

The seed write path pays one DFS append — one synchronous replication
round trip — per committed write.  With concurrent clients the commit
coordinator amortizes that: the first submission to an idle coordinator
becomes a group *leader* and waits ``max_delay`` for followers; every
submission arriving inside that window joins the open group until the
record/byte budget fills.  A sealed group lands with a single
:meth:`~repro.wal.repository.LogRepository.append_batch` — one DFS
replication round trip for the whole group — and every member is acked
only once the group is durable.

With pipelining on, the coordinator defers the replication-ack drain
(:func:`repro.dfs.filesystem.defer_replication_acks`): the next group's
data starts streaming as soon as the previous group's data is on the
replicas, while the previous group's acks travel back up the pipeline.
Members are still acked at their own group's ack-drain time, so
durability semantics are unchanged — only the pipeline idle time between
groups is removed.

The coordinator is event-driven in virtual time: it never blocks.
Callers either poll it through the scheduler protocol
(:meth:`CommitCoordinator.next_due` / :meth:`CommitCoordinator.run_due`,
what :class:`repro.sim.scheduler.ConcurrentScheduler` does) or call
:meth:`CommitCoordinator.drain` to flush everything pending.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.dfs.filesystem import defer_replication_acks
from repro.errors import ServerDownError
from repro.obs.hist import Histogram
from repro.obs.trace import root_span, span
from repro.sim.machine import Machine
from repro.sim.metrics import (
    COMMIT_ACKS_DEFERRED,
    COMMIT_GROUP_FANIN,
    COMMIT_GROUPS,
    HIST_COMMIT_FANIN,
    HIST_COMMIT_LATENCY,
    SPAN_COMMIT_FLUSH,
)
from repro.wal.record import LogPointer, LogRecord
from repro.wal.repository import LogRepository

# Framing overhead assumed per record when enforcing the byte budget; the
# budget gates group growth, so an estimate (encoding happens only at
# flush, after LSN assignment) is sufficient.
_RECORD_OVERHEAD = 32


def _estimated_size(record: LogRecord) -> int:
    return (
        len(record.key)
        + len(record.value or b"")
        + len(record.group)
        + len(record.table)
        + _RECORD_OVERHEAD
    )


class CommitFuture:
    """The outcome of one submission to the commit coordinator.

    Resolved when the member's group flushes: ``appended`` holds the
    member's (pointer, stamped record) pairs and ``completion_time`` the
    virtual time its durability ack reached the coordinator.  A crash
    mid-flush resolves the future with ``error`` instead — no member of a
    group that did not replicate is ever acked.
    """

    __slots__ = ("arrival", "records", "token", "appended", "completion_time", "error", "_on_durable")

    def __init__(
        self,
        arrival: float,
        records: list[LogRecord],
        on_durable: Callable[[list[tuple[LogPointer, LogRecord]]], None] | None,
        token,
    ) -> None:
        self.arrival = arrival
        self.records = records
        self.token = token
        self.appended: list[tuple[LogPointer, LogRecord]] | None = None
        self.completion_time: float | None = None
        self.error: BaseException | None = None
        self._on_durable = on_durable

    @property
    def done(self) -> bool:
        """Whether the future is resolved (acked or failed)."""
        return self.appended is not None or self.error is not None

    @property
    def acked(self) -> bool:
        """Whether the member's group reached durability."""
        return self.appended is not None

    def result(self) -> list[tuple[LogPointer, LogRecord]]:
        """The member's appended (pointer, record) pairs.

        Raises the member's failure, or RuntimeError if the group has not
        flushed yet (drain the coordinator first).
        """
        if self.error is not None:
            raise self.error
        if self.appended is None:
            raise RuntimeError("commit future unresolved: drain the coordinator")
        return self.appended


class _Group:
    """One open or sealed commit group."""

    __slots__ = ("futures", "records", "bytes", "opened_at", "seal_time")

    def __init__(self, opened_at: float, seal_time: float) -> None:
        self.futures: list[CommitFuture] = []
        self.records = 0
        self.bytes = 0
        self.opened_at = opened_at
        self.seal_time = seal_time


class CommitCoordinator:
    """Leader/follower group commit over one server's log repository.

    Args:
        log: the server's log repository (flush target).
        machine: the server's machine; flushes charge its clock.
        max_delay: seconds a group leader waits for followers before the
            group seals (a full group seals immediately).
        max_records: record budget per group.
        max_bytes: estimated-byte budget per group (None = uncapped).
        pipeline: overlap the next group's data stream with the previous
            group's ack drain.
        traced: open each flush as a root span (set on traced clusters so
            group flushes show up as their own traces, mirroring
            ``TabletServer._maint_span``).
    """

    def __init__(
        self,
        log: LogRepository,
        machine: Machine,
        *,
        max_delay: float = 0.002,
        max_records: int = 16,
        max_bytes: int | None = None,
        pipeline: bool = True,
        traced: bool = False,
    ) -> None:
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        self._log = log
        self._machine = machine
        self._max_delay = max_delay
        self._max_records = max_records
        self._max_bytes = max_bytes
        self._pipeline = pipeline
        self._traced = traced
        self._open: _Group | None = None
        self._sealed: deque[_Group] = deque()
        # Virtual time at which the replication pipeline can take the
        # next group's data stream.
        self._pipe_free_at = 0.0
        self.groups_flushed = 0
        self.latency = Histogram(HIST_COMMIT_LATENCY)
        self.fanin = Histogram(HIST_COMMIT_FANIN)

    # -- submission ----------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Unflushed member submissions (open + sealed groups)."""
        total = sum(len(g.futures) for g in self._sealed)
        if self._open is not None:
            total += len(self._open.futures)
        return total

    def submit(
        self,
        arrival: float,
        records: list[LogRecord],
        *,
        on_durable: Callable[[list[tuple[LogPointer, LogRecord]]], None] | None = None,
        token=None,
    ) -> CommitFuture:
        """Join the open group (or lead a new one); returns the member's
        future.

        ``arrival`` is the submission's virtual time — it must be
        non-decreasing across calls (the scheduler delivers submissions in
        virtual-time order).  ``on_durable`` runs at flush time, before
        the future resolves; the tablet server uses it to install index
        entries only once the group is durable.
        """
        future = CommitFuture(arrival, list(records), on_durable, token)
        size = sum(_estimated_size(r) for r in future.records)
        group = self._open
        if group is not None and not self._joinable(group, arrival, len(future.records), size):
            # The leader's window closed (or the budget is full) before
            # this submission arrived: seal, and lead a new group.
            self._sealed.append(group)
            group = None
        if group is None:
            group = _Group(arrival, arrival + self._max_delay)
            self._open = group
        group.futures.append(future)
        group.records += len(future.records)
        group.bytes += size
        if group.records >= self._max_records or (
            self._max_bytes is not None and group.bytes >= self._max_bytes
        ):
            # Budget full: no point waiting out the window.
            group.seal_time = arrival
            self._sealed.append(group)
            self._open = None
        return future

    def _joinable(self, group: _Group, arrival: float, records: int, size: int) -> bool:
        if arrival > group.seal_time:
            return False
        if group.records + records > self._max_records:
            return False
        if self._max_bytes is not None and group.bytes + size > self._max_bytes:
            return False
        return True

    # -- scheduler protocol --------------------------------------------------------

    def next_due(self) -> float | None:
        """The next virtual time at which :meth:`run_due` makes progress,
        or None when nothing is pending."""
        if self._sealed:
            return max(self._sealed[0].seal_time, self._pipe_free_at)
        if self._open is not None:
            return max(self._open.seal_time, self._pipe_free_at)
        return None

    def run_due(self, now: float) -> list[CommitFuture]:
        """Seal and flush every group due by ``now``; returns the futures
        resolved (acked or failed) by those flushes."""
        resolved: list[CommitFuture] = []
        while True:
            if self._open is not None and self._open.seal_time <= now:
                self._sealed.append(self._open)
                self._open = None
            if not self._sealed:
                break
            start = max(self._sealed[0].seal_time, self._pipe_free_at)
            if start > now:
                break
            resolved.extend(self._flush(self._sealed.popleft(), start))
        return resolved

    def drain(self) -> list[CommitFuture]:
        """Flush everything pending regardless of due times (end of a
        run, or synchronous callers that want their ack now)."""
        resolved: list[CommitFuture] = []
        if self._open is not None:
            self._sealed.append(self._open)
            self._open = None
        while self._sealed:
            group = self._sealed.popleft()
            resolved.extend(self._flush(group, max(group.seal_time, self._pipe_free_at)))
        return resolved

    def abandon(self, error: BaseException | None = None) -> list[CommitFuture]:
        """Fail every pending submission (server crash: un-flushed groups
        lived only in memory and are lost)."""
        if error is None:
            error = ServerDownError(
                f"server {self._machine.name} crashed with commit groups pending"
            )
        failed: list[CommitFuture] = []
        if self._open is not None:
            self._sealed.append(self._open)
            self._open = None
        while self._sealed:
            failed.extend(self._fail(self._sealed.popleft(), error))
        return failed

    # -- flush ---------------------------------------------------------------------

    def _flush_span(self, **attrs):
        if self._traced:
            return root_span(SPAN_COMMIT_FLUSH, self._machine, **attrs)
        return span(SPAN_COMMIT_FLUSH, self._machine, **attrs)

    def _flush(self, group: _Group, start: float) -> list[CommitFuture]:
        machine = self._machine
        if not machine.alive:
            return self._fail(
                group, ServerDownError(f"server {machine.name} is down")
            )
        records = [r for f in group.futures for r in f.records]
        machine.clock.advance_to(start)
        deferred = 0.0
        try:
            with self._flush_span(records=len(records), members=len(group.futures)):
                if self._pipeline:
                    with defer_replication_acks() as acks:
                        appended = self._log.append_batch(records)
                    deferred = acks.seconds
                else:
                    appended = self._log.append_batch(records)
        except BaseException as exc:
            # A crash mid-flush (crash point, dead datanodes, partition)
            # means the group's durability is unknown at best: never ack
            # any member of it.
            return self._fail(group, exc)
        data_done = machine.clock.now
        completion = data_done + deferred
        # With pipelining the data stream frees up as soon as the payload
        # is on the replicas; the acks drain while the next group streams.
        # Without it the pipeline is held until the ack returns (and the
        # clock already paid the wait inside append_batch).
        self._pipe_free_at = data_done if self._pipeline else completion
        counters = machine.counters
        counters.add(COMMIT_GROUPS)
        counters.add(COMMIT_GROUP_FANIN, len(group.futures))
        if deferred > 0.0:
            counters.add(COMMIT_ACKS_DEFERRED, len(group.futures))
        self.groups_flushed += 1
        self.fanin.record(float(len(group.futures)))
        offset = 0
        for future in group.futures:
            future.appended = appended[offset : offset + len(future.records)]
            offset += len(future.records)
            future.completion_time = completion
            if future._on_durable is not None:
                future._on_durable(future.appended)
            self.latency.record(completion - future.arrival)
        return list(group.futures)

    def _fail(self, group: _Group, error: BaseException) -> list[CommitFuture]:
        now = self._machine.clock.now
        for future in group.futures:
            future.error = error
            future.completion_time = now
        return list(group.futures)
