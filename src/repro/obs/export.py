"""Chrome ``trace_event`` JSON export for real inspection.

The output loads in ``chrome://tracing`` / Perfetto: one complete event
(``ph: "X"``) per span, processes (``pid``) keyed by machine name so each
machine gets its own track, threads (``tid``) keyed by trace id so the
spans of one operation line up on one row.  Simulated seconds become
microseconds, the unit the trace viewer expects.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import Span, Tracer


def _span_events(root: "Span") -> Iterable[dict]:
    for node in root.walk():
        end = node.end if node.end is not None else node.start
        args: dict = {
            "span_id": node.span_id,
            "self_us": round(node.self_seconds * 1e6, 3),
        }
        if node.background:
            args["background"] = True
        if node.attrs:
            args.update(node.attrs)
        yield {
            "name": node.name,
            "ph": "X",
            "ts": round(node.start * 1e6, 3),
            "dur": round((end - node.start) * 1e6, 3),
            "pid": node.machine,
            "tid": f"trace-{node.trace_id}",
            "cat": "sim",
            "args": args,
        }


def chrome_trace(traces: Iterable["Span"]) -> dict:
    """The ``trace_event`` document for the given root spans."""
    events: list[dict] = []
    for root in traces:
        events.extend(_span_events(root))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs", "time_base": "simulated seconds"},
    }


def export_chrome_trace(tracer: "Tracer", path: str) -> int:
    """Write the tracer's retained traces to ``path``; returns event count."""
    document = chrome_trace(tracer.trace_log.traces())
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=1)
        fh.write("\n")
    return len(document["traceEvents"])
