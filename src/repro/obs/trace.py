"""Spans over the simulated clock.

A :class:`Span` is anchored to exactly one machine's
:class:`~repro.sim.clock.SimClock`; its *duration* is the time that clock
advanced while the span was open.  The installed :class:`Tracer` registers
itself as the clock observer (:func:`repro.sim.clock.set_clock_observer`),
so every ``clock.advance`` anywhere in the simulator is credited to the
innermost open span *anchored on that clock* (walking up the ancestor
chain), accumulating as its *self seconds* (exclusive time).  A charge
on a clock no open span owns is *background seconds* of the innermost
span: parallel work — secondary replica disks, cancelled hedge reads —
that does not extend the operation's latency.  The walk matters when a
machine plays two roles at once: a DFS replica write hosted on the
client's own machine extends the client op's duration, so it must land
in the client root span's self time, not in the background of the
``dfs.append`` span open on the primary.

Clock attribution rules (see DESIGN.md "Observability"):

* end-to-end latency of a trace is ``duration`` plus, recursively, the
  ``end_to_end`` of children anchored on a *different* clock.  Cross-clock
  children exist only where the simulator does not mirror-charge the
  waiter — the client->server RPC boundary — so the tree metric matches
  the client-observed latency.  DFS reads anchor on the *reader* machine
  because remote waits are mirror-charged to the reader already.
* spans marked ``background`` (hedge losers) never contribute to
  end-to-end latency; their time is reported separately.

Propagation uses ambient context in the same style as
:mod:`repro.sim.deadline`: :func:`span` is a no-op context manager unless
a tracer is installed *and* an enclosing span exists, so untraced
clusters — even in a process that traced another cluster earlier — never
record anything.  Trace/span ids flow across machines implicitly: the
child span created on the server's clock inherits the ambient parent's
``trace_id``, which is exactly the id a real RPC would carry in its
headers.
"""

from __future__ import annotations

from contextvars import ContextVar
from typing import TYPE_CHECKING

from repro.sim import clock as _clock_module
from repro.sim.metrics import HIST_SPAN_LATENCY_PREFIX

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.clock import SimClock
    from repro.sim.machine import Machine


class Span:
    """One timed unit of work anchored to a single simulated clock."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "machine",
        "background",
        "root",
        "parent",
        "start",
        "end",
        "self_seconds",
        "background_seconds",
        "children",
        "attrs",
        "_clock",
    )

    def __init__(
        self,
        name: str,
        trace_id: int,
        span_id: int,
        machine: "Machine",
        *,
        background: bool = False,
        attrs: dict | None = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.machine = machine.name
        self.background = background
        self.root = False
        self.parent: "Span | None" = None
        self._clock = machine.clock
        self.start = machine.clock.now
        self.end: float | None = None
        self.self_seconds = 0.0
        self.background_seconds = 0.0
        self.children: list["Span"] = []
        self.attrs: dict = attrs if attrs is not None else {}

    @property
    def closed(self) -> bool:
        """Whether the span has ended."""
        return self.end is not None

    @property
    def duration(self) -> float:
        """Time the span's own clock advanced while it was open."""
        end = self.end if self.end is not None else self._clock.now
        return end - self.start

    def end_to_end(self) -> float:
        """The latency this span explains: own-clock duration plus the
        end-to-end time of children that ran on a *different* clock (RPC
        hops the anchor clock never paid for).  Background children are
        parallel work and contribute nothing."""
        total = self.duration
        for child in self.children:
            if child.background or child._clock is self._clock:
                continue
            total += child.end_to_end()
        return total

    def walk(self):
        """Yield this span and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """Every span in this subtree named ``name``."""
        return [s for s in self.walk() if s.name == name]

    def __repr__(self) -> str:
        state = f"{self.duration:.6f}s" if self.closed else "open"
        return (
            f"Span({self.name}, trace={self.trace_id}, span={self.span_id}, "
            f"machine={self.machine}, {state})"
        )


_TRACER: "Tracer | None" = None
_CURRENT: ContextVar[Span | None] = ContextVar("repro_obs_span", default=None)


class _NullScope:
    """Shared no-op context manager: the cost of tracing-off is one
    ``is None`` check plus returning this singleton."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL = _NullScope()


class _SpanScope:
    """Context manager that opens a span on enter and closes it on exit."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        machine: "Machine",
        parent: Span | None,
        background: bool,
        attrs: dict,
    ) -> None:
        self._tracer = tracer
        self._span = tracer._start(name, machine, parent, background, attrs)
        self._token = None

    def __enter__(self) -> Span:
        self._token = _CURRENT.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        _CURRENT.reset(self._token)
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self._span)
        return False


def span(name: str, machine: "Machine", *, background: bool = False, **attrs):
    """A child span: records only inside an already-open trace.

    No-op (returns a shared null context manager) unless a tracer is
    installed and an enclosing span is current — shared infrastructure
    (WAL, DFS) calls this unconditionally and pays nothing when the
    calling cluster is untraced.
    """
    tracer = _TRACER
    if tracer is None:
        return _NULL
    parent = _CURRENT.get()
    if parent is None:
        return _NULL
    return _SpanScope(tracer, name, machine, parent, background, attrs)


def root_span(name: str, machine: "Machine", **attrs):
    """A span that may start a new trace.

    Only config-gated entry points (client ops, tablet-server calls and
    maintenance on a ``config.tracing`` cluster) call this; inside an
    already-open trace it degrades to a child span, so e.g. a server-side
    compaction triggered within a traced client op nests correctly.
    """
    tracer = _TRACER
    if tracer is None:
        return _NULL
    return _SpanScope(tracer, name, machine, _CURRENT.get(), False, attrs)


def current_span() -> Span | None:
    """The innermost open span, if any."""
    return _CURRENT.get()


def current_tracer() -> "Tracer | None":
    """The installed tracer, if any."""
    return _TRACER


def install_tracer(tracer: "Tracer") -> None:
    """Make ``tracer`` the process-wide tracer and hook it into every
    simulated clock's advance path."""
    global _TRACER
    _TRACER = tracer
    _clock_module.set_clock_observer(tracer._on_clock_advance)


def uninstall_tracer(tracer: "Tracer | None" = None) -> None:
    """Remove the installed tracer (and the clock observer with it).

    Passing a tracer uninstalls only if it is still the installed one, so
    tearing down an old cluster cannot unhook a newer cluster's tracer.
    """
    global _TRACER
    if tracer is not None and _TRACER is not tracer:
        return
    _TRACER = None
    _clock_module.set_clock_observer(None)


class Tracer:
    """Collects spans into traces, histograms and the slow-op sampler.

    Args:
        ring: closed root spans kept in the :class:`~repro.obs.analyze.TraceLog`
            ring buffer (oldest evicted first).
        slow_samples: worst traces kept per operation type.
    """

    def __init__(self, ring: int = 512, slow_samples: int = 4) -> None:
        # Imported here: analyze/hist import nothing from trace at module
        # scope, but keeping the dependency one-way at import time avoids
        # a cycle through the package __init__.
        from repro.obs.analyze import SlowOpSampler, TraceLog
        from repro.obs.hist import HistogramRegistry

        self.trace_log = TraceLog(ring)
        self.histograms = HistogramRegistry()
        self.slow_ops = SlowOpSampler(slow_samples)
        self.spans_started = 0
        self.spans_closed = 0
        self.open_spans = 0
        self._next_trace_id = 1
        self._next_span_id = 1

    # -- span lifecycle (driven by _SpanScope) -----------------------------

    def _start(
        self,
        name: str,
        machine: "Machine",
        parent: Span | None,
        background: bool,
        attrs: dict,
    ) -> Span:
        trace_id = parent.trace_id if parent is not None else self._next_trace_id
        if parent is None:
            self._next_trace_id += 1
        created = Span(
            name,
            trace_id,
            self._next_span_id,
            machine,
            background=background,
            attrs=attrs,
        )
        self._next_span_id += 1
        created.parent = parent
        if parent is not None:
            parent.children.append(created)
        else:
            created.root = True
        self.spans_started += 1
        self.open_spans += 1
        return created

    def _finish(self, finished: Span) -> None:
        finished.end = finished._clock.now
        self.spans_closed += 1
        self.open_spans -= 1
        # Only roots carry a whole trace: they are recorded into the ring,
        # histogrammed by operation type, and offered to the slow sampler.
        if finished.root:
            latency = finished.end_to_end()
            self.histograms.histogram(
                HIST_SPAN_LATENCY_PREFIX + finished.name
            ).record(latency)
            self.trace_log.append(finished)
            self.slow_ops.offer(finished.name, latency, finished)

    # -- clock observer ----------------------------------------------------

    def _on_clock_advance(self, clock: "SimClock", seconds: float) -> None:
        active = _CURRENT.get()
        if active is None:
            return
        # Credit the innermost *open* span anchored on the advanced clock:
        # the charge extends that span's duration even when a descendant
        # on another machine is innermost (e.g. a DFS replica write hosted
        # on the client's own machine while dfs.append is open on the
        # primary).  A clock no open span owns is parallel work the
        # operation never waits for — book it as the innermost span's
        # background time.
        node: Span | None = active
        while node is not None:
            if clock is node._clock:
                node.self_seconds += seconds
                return
            node = node.parent
        active.background_seconds += seconds
