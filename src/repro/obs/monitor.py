"""The cluster monitoring plane (``config.monitoring`` gate).

One :class:`ClusterMonitor` per monitored cluster ties the pieces
together: on every ``cluster.heartbeat()`` it scrapes per-machine counter
deltas and the derived health gauges into the ring-buffer
:class:`~repro.obs.timeseries.MetricStore`, evaluates the
:class:`~repro.obs.alerts.AlertEngine` rules in simulated time, and —
on alert fire or any observed fault (injected kill/degradation, fired
``CP_*`` crash point) — has the
:class:`~repro.obs.recorder.FlightRecorder` snapshot a post-mortem
bundle.

Everything here *reads* simulator state; nothing advances a clock,
touches an RNG, or charges simulated cost.  With the gate off the
cluster never constructs a monitor and the seed figures are reproduced
byte-identically; with it on, behavior is identical too — only
bookkeeping is added — which is what the <5% wall-clock overhead bound
in ``bench_monitoring`` measures.

:func:`collect_health_gauges` is the *one* schema for derived health
state.  Both the scraper and the stats report (``repro.core.stats``)
call it, so a dashboard line and a time-series sample can never disagree
about what "replica lag" or "recovery queue depth" means.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.alerts import AlertEngine, SloRule, ThresholdRule
from repro.obs.recorder import FlightRecorder
from repro.obs.timeseries import MetricStore
from repro.sim.failure import clear_fault_observer, set_fault_observer
from repro.sim.metrics import (
    DFS_HEDGE_FIRED,
    GAUGE_ADMISSION_BACKLOG,
    GAUGE_BLOCKCACHE_HIT_RATE,
    GAUGE_BREAKER_OPEN,
    GAUGE_COMPACTION_DEBT,
    GAUGE_LEASE_HEALTH,
    GAUGE_RECOVERY_QUEUE,
    GAUGE_REPLICA_LAG,
    GAUGE_SERVER_UP,
    GAUGE_TABLET_HEAT,
    MIGRATION_LEASE_REJECTS,
)

#: per-scrape ``net.messages`` delta above which a node is seeing a
#: traffic burst.  One workload op (plus a checkpoint or compaction
#: tick) costs a node at most ~22 messages between scrapes; a burst
#: client jamming tens of ops between two heartbeats costs 60+.
TRAFFIC_BURST_MESSAGES = 40.0

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import LogBaseConfig
    from repro.core.cluster import LogBaseCluster

#: circuit-breaker states as gauge values.
_BREAKER_VALUES = {"closed": 0.0, "half-open": 0.5, "open": 1.0}


def collect_health_gauges(cluster: "LogBaseCluster") -> dict[tuple[str, str], float]:
    """The canonical ``(entity, gauge) -> value`` health snapshot.

    Shared by the monitoring scraper and ``core.stats`` so the two can
    never drift.  Entities are tablet-server names (``ts-node-0``),
    datanode/machine names (``node-0``, for breaker and block-cache
    gauges), and tablet ids (heat and replica lag).  Pure state reads —
    no simulated cost.
    """
    gauges: dict[tuple[str, str], float] = {}
    config = cluster.config
    assignments = cluster.master.catalog.assignments
    for master in cluster.masters:
        # A master is "up" while its coordination session lives; a deposed
        # or crashed master reads 0 and trips the same server-down rule.
        gauges[(master.name, GAUGE_SERVER_UP)] = (
            0.0 if master.session.expired else 1.0
        )
    for server in cluster.servers:
        up = server.machine.alive and server.serving
        gauges[(server.name, GAUGE_SERVER_UP)] = 1.0 if up else 0.0
        if not server.machine.alive:
            continue
        gauges[(server.name, GAUGE_RECOVERY_QUEUE)] = float(
            len(server.recovering_tablets)
        )
        if server.admission is not None:
            gauges[(server.name, GAUGE_ADMISSION_BACKLOG)] = server.admission.last_depth
        if config.live_migration and up:
            owned = [t for t, owner in assignments.items() if owner == server.name]
            if owned:
                valid = sum(1 for t in owned if server.lease_valid(t))
                gauges[(server.name, GAUGE_LEASE_HEALTH)] = valid / len(owned)
            else:
                gauges[(server.name, GAUGE_LEASE_HEALTH)] = 1.0
        if up:
            gauges[(server.name, GAUGE_COMPACTION_DEBT)] = _compaction_debt(
                server, config
            )
            # Replica lag per tablet: worst follower staleness, read the
            # same way the heartbeat's lag histogram defines it (time
            # since the follower last drained to its owner's log tail).
            for tablet_id, follower in server.followers.items():
                lag = follower.lag(server.machine.clock.now)
                if lag == float("inf"):
                    continue  # never caught up yet: no sample, not a spike
                key = (tablet_id, GAUGE_REPLICA_LAG)
                if lag > gauges.get(key, 0.0):
                    gauges[key] = lag
        cache = cluster.dfs.block_cache_for(server.machine)
        if cache is not None and (cache.hits + cache.misses) > 0:
            gauges[(server.machine.name, GAUGE_BLOCKCACHE_HIT_RATE)] = cache.hits / (
                cache.hits + cache.misses
            )
    if cluster.dfs.health is not None:
        for node_name, state in cluster.dfs.health.breaker_states().items():
            gauges[(node_name, GAUGE_BREAKER_OPEN)] = _BREAKER_VALUES.get(state, 1.0)
    for tablet_id, heat in cluster.tablet_heat.items():
        gauges[(tablet_id, GAUGE_TABLET_HEAT)] = heat
    return gauges


def _compaction_debt(server, config: "LogBaseConfig") -> float:
    """Planner-eligible bytes in the server's log (namenode metadata
    only; the planner simulates no cost)."""
    from repro.wal.planner import CompactionPlanner

    try:
        planner = CompactionPlanner(
            server.log,
            tier_fanout=config.compaction_tier_fanout,
            max_input_bytes=config.compaction_max_input_bytes,
        )
        return float(sum(plan.input_bytes for plan in planner.plan()))
    except Exception:
        return 0.0


def gauges_by_entity(cluster: "LogBaseCluster") -> dict[str, dict[str, float]]:
    """:func:`collect_health_gauges` nested ``{entity: {gauge: value}}``
    (the JSON-friendly shape stats reports embed)."""
    nested: dict[str, dict[str, float]] = {}
    for (entity, metric), value in sorted(collect_health_gauges(cluster).items()):
        nested.setdefault(entity, {})[metric] = value
    return nested


def default_rules(config: "LogBaseConfig") -> list:
    """The standing alert rules for a monitored cluster.

    Thresholds derive from the same config knobs that drive the guarded
    behavior (admission depth, staleness bound), so the alert and the
    enforcement can't disagree about what "too much" means.
    """
    rules: list = [
        ThresholdRule(
            "server-down", GAUGE_SERVER_UP, "<", 0.5, absent_value=1.0
        ),
        ThresholdRule(
            "breaker-open", GAUGE_BREAKER_OPEN, ">", 0.75, severity="warn"
        ),
        ThresholdRule(
            "replica-lag-high",
            GAUGE_REPLICA_LAG,
            ">",
            config.replica_max_staleness,
        ),
        ThresholdRule(
            "recovery-backlog", GAUGE_RECOVERY_QUEUE, ">", 0.5, severity="warn"
        ),
        ThresholdRule(
            "lease-unhealthy",
            GAUGE_LEASE_HEALTH,
            "<",
            0.5,
            severity="warn",
            absent_value=1.0,
        ),
        ThresholdRule(
            "lease-fence-rejects", MIGRATION_LEASE_REJECTS, ">", 0.0
        ),
    ]
    if config.admission_queue_depth is not None:
        rules.append(
            ThresholdRule(
                "admission-backlog",
                GAUGE_ADMISSION_BACKLOG,
                ">",
                float(config.admission_queue_depth),
            )
        )
        # Overload symptom the shed-clamped backlog gauge cannot show: a
        # traffic spike between two scrapes.  Only meaningful where
        # admission control bounds the per-tick op flow (the gray chaos
        # topology); bulk-seeded clusters would trip it on the seed tick.
        rules.append(
            ThresholdRule(
                "traffic-burst",
                "net.messages",
                ">",
                TRAFFIC_BURST_MESSAGES,
                severity="warn",
            )
        )
    if config.hedge_reads:
        # A healthy cluster hedges never (the primary replica beats the
        # hedge trigger); any hedge firing means some replica limps.
        rules.append(
            ThresholdRule(
                "hedge-storm", DFS_HEDGE_FIRED, ">", 0.5, severity="warn"
            )
        )
    for op_class, target in sorted(config.slo_op_p99.items()):
        rules.append(
            SloRule(
                f"slo-burn-{op_class}",
                op_class,
                target,
                objective=config.slo_objective,
                burn_threshold=config.slo_burn_threshold,
                window=config.slo_window,
                min_samples=config.slo_min_samples,
            )
        )
    return rules


class ClusterMonitor:
    """Scrape + alert + flight-recorder plane for one cluster.

    Construction installs this monitor as the process-wide fault
    observer (latest-wins, same pattern as the tracer) so injected
    kills, degradations, and fired crash points stamp fault times and
    trigger post-mortem snapshots.  Call :meth:`close` (or let a newer
    monitor replace it) when the cluster is torn down.
    """

    def __init__(self, cluster: "LogBaseCluster") -> None:
        self.cluster = cluster
        config = cluster.config
        self.store = MetricStore(config.monitor_ring)
        self.engine = AlertEngine(rules=default_rules(config))
        self.recorder = FlightRecorder(
            ring_capacity=config.monitor_recorder_ring,
            max_postmortems=config.monitor_postmortems,
            series_tail=config.monitor_series_tail,
        )
        #: every observed fault, in order: {"time", "kind", "detail"}.
        self.fault_log: list[dict] = []
        self.scrapes = 0
        self._counter_snapshots: dict[str, dict[str, float]] = {}
        self._last_now = 0.0
        self._scrape_interval = config.monitor_scrape_interval
        self._last_scrape = float("-inf")
        # Bind once: ``self._on_fault`` makes a fresh bound-method object
        # per access, and the identity-guarded clear below needs the very
        # object that was installed.
        self._observer = self._on_fault
        set_fault_observer(self._observer)

    def close(self) -> None:
        """Unhook from the fault observer (guarded: never unhooks a
        newer cluster's monitor)."""
        clear_fault_observer(self._observer)

    # -- time ------------------------------------------------------------

    def now(self) -> float:
        """Monitor time: cluster makespan, clamped monotonic so a
        ``reset_clocks()`` between benchmark phases cannot run the series
        backwards."""
        now = self.cluster.elapsed_makespan()
        if now < self._last_now:
            now = self._last_now
        self._last_now = now
        return now

    # -- fault observation ----------------------------------------------

    def _on_fault(self, kind: str, detail: dict) -> None:
        self.note_fault(kind, detail)

    def note_fault(self, kind: str, detail: dict | None = None) -> None:
        """Stamp a fault at the current simulated time and snapshot a
        post-mortem.  Chaos runners call this for schedule events the
        injector cannot see (e.g. an overload burst); the fault observer
        routes injected kills/degradations and crash-point fires here."""
        t = self.now()
        clean = {
            k: (v if isinstance(v, (int, float, bool)) else str(v)[:80])
            for k, v in (detail or {}).items()
        }
        node = str(clean.get("node", "cluster"))
        self.fault_log.append({"time": t, "kind": kind, "detail": clean})
        self.recorder.record_event(node, t, kind, str(clean))
        self.recorder.snapshot(
            f"fault:{kind}",
            t,
            store=self.store,
            engine=self.engine,
            tracer=self.cluster.tracer,
        )

    # -- the scrape tick -------------------------------------------------

    def tick(self, *, force: bool = False) -> list[dict]:
        """One scrape + alert evaluation pass.

        Every ``cluster.heartbeat()`` calls this, but a scrape only runs
        once per ``config.monitor_scrape_interval`` of simulated time
        (the production cadence that bounds wall-clock overhead; 0
        scrapes every call).  ``force`` bypasses the cadence — chaos
        scenarios use it to scrape a window the next heartbeat would
        close.  Returns the alerts that newly fired.
        """
        now = self.now()
        if not force and now - self._last_scrape < self._scrape_interval:
            return []
        self._last_scrape = now
        for machine in self.cluster.machines:
            prev = self._counter_snapshots.get(machine.name, {})
            for name, change in machine.counters.delta_since(prev).items():
                self.store.record(machine.name, name, now, change)
            self._counter_snapshots[machine.name] = machine.counters.snapshot()
        for (entity, metric), value in collect_health_gauges(self.cluster).items():
            self.store.record(entity, metric, now, value)
        self._record_slo_counts(now)
        fired = self.engine.evaluate(self.store, now)
        for record in fired:
            self.recorder.record_event(
                record["entity"],
                now,
                "alert",
                f"{record['alert']} firing ({record['detail']})",
            )
            self.recorder.snapshot(
                f"alert:{record['alert']}:{record['entity']}",
                now,
                store=self.store,
                engine=self.engine,
                tracer=self.cluster.tracer,
            )
        self.scrapes += 1
        return fired

    def _record_slo_counts(self, now: float) -> None:
        """Publish cumulative good/bad op counts per configured SLO from
        the tracer's latency histograms (present only when tracing)."""
        tracer = self.cluster.tracer
        if tracer is None:
            return
        for op_class, target in sorted(self.cluster.config.slo_op_p99.items()):
            hist = tracer.histograms.get(f"latency.{op_class}")
            if hist is None:
                continue
            self.store.record(
                "cluster", f"slo.{op_class}.count", now, float(hist.count)
            )
            self.store.record(
                "cluster", f"slo.{op_class}.bad", now, float(hist.count_above(target))
            )

    # -- report surface --------------------------------------------------

    def alert_log(self) -> list[dict]:
        """Copy of the structured alert log (firing/resolved records)."""
        return [dict(r) for r in self.engine.log]

    def postmortem_dicts(self) -> list[dict]:
        """Every retained post-mortem bundle as a plain dict."""
        return [pm.to_dict() for pm in self.recorder.postmortems]

    def fault_times(self) -> list[float]:
        """Simulated times of every observed fault, in order."""
        return [f["time"] for f in self.fault_log]

    def first_fault_time(self) -> float | None:
        return self.fault_log[0]["time"] if self.fault_log else None

    def detection_latency(self, alert_name: str) -> float | None:
        """Simulated seconds from the first observed fault to the first
        firing of ``alert_name`` at or after it; None if it never fired."""
        first_fault = self.first_fault_time()
        if first_fault is None:
            return None
        for record in self.engine.log:
            if (
                record["state"] == "firing"
                and record["alert"] == alert_name
                and record["time"] >= first_fault
            ):
                return record["time"] - first_fault
        return None
