"""Flight recorder: bounded per-node event rings and post-mortem bundles.

The recorder keeps, per node, a small ring of recent events (faults
observed at crash points and the failure injector, alert transitions,
heartbeat summaries).  When an alert fires or a seeded ``CP_*`` crash
point trips, it snapshots a :class:`PostMortem` bundle — the recent time
series, the event rings, the most recent spans from the tracer (when
tracing is enabled), and the alert context — so every chaos schedule
produces a self-explaining artifact without re-running anything.

Bundles are plain dicts underneath, exportable as JSON or rendered as a
markdown post-mortem (see EXPERIMENTS.md for how to read one).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass


@dataclass
class PostMortem:
    """One snapshot: why it was taken and what the cluster looked like."""

    reason: str  # "alert:<name>:<entity>" or "fault:<kind>"
    time: float  # simulated seconds at snapshot
    bundle: dict  # series tails + events + spans + alert context

    def to_dict(self) -> dict:
        return {"reason": self.reason, "time": self.time, **self.bundle}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True, default=str)

    def to_markdown(self) -> str:
        """Human-readable post-mortem: what fired, what led up to it."""
        lines = [
            f"# Post-mortem: {self.reason}",
            "",
            f"*Snapshot at t={self.time:.3f}s (simulated).*",
            "",
            "## Active alerts",
        ]
        active = self.bundle.get("alerts", {}).get("active", [])
        if active:
            for alert in active:
                lines.append(
                    f"- **{alert['alert']}** on `{alert['entity']}` since "
                    f"t={alert['time']:.3f}s (value {alert['value']:g}; "
                    f"{alert['detail']})"
                )
        else:
            lines.append("- none")
        lines += ["", "## Recent events"]
        events = self.bundle.get("events", {})
        rows = [
            (event["time"], node, event)
            for node, ring in sorted(events.items())
            for event in ring
        ]
        if rows:
            for t, node, event in sorted(rows, key=lambda r: r[0]):
                lines.append(
                    f"- t={t:.3f}s `{node}`: {event['kind']} {event['detail']}"
                )
        else:
            lines.append("- none")
        lines += ["", "## Series tails (newest samples)"]
        series = self.bundle.get("series", {})
        for entity in sorted(series):
            for metric, samples in sorted(series[entity].items()):
                if not samples:
                    continue
                shown = ", ".join(f"{v:g}" for _t, v in samples[-8:])
                lines.append(f"- `{entity}` {metric}: {shown}")
        spans = self.bundle.get("spans", [])
        if spans:
            lines += ["", "## Recent spans (slowest last)"]
            for span in spans:
                lines.append(
                    f"- {span['name']} on `{span['machine']}`: "
                    f"{span['latency']:.6f}s"
                )
        lines.append("")
        return "\n".join(lines)


class FlightRecorder:
    """Per-node bounded event rings plus the post-mortem snapshot logic."""

    def __init__(
        self,
        *,
        ring_capacity: int = 64,
        max_postmortems: int = 8,
        series_tail: int = 32,
        span_tail: int = 16,
    ) -> None:
        self.ring_capacity = ring_capacity
        self.max_postmortems = max_postmortems
        self.series_tail = series_tail
        self.span_tail = span_tail
        self._rings: dict[str, deque] = {}
        #: post-mortems taken, oldest first; bounded — the first snapshot
        #: for an incident is usually the interesting one, so overflow
        #: drops the newest, not the oldest.
        self.postmortems: list[PostMortem] = []
        self.dropped_postmortems = 0

    def record_event(self, node: str, t: float, kind: str, detail: str) -> None:
        """Append one event to ``node``'s ring (oldest evicted)."""
        ring = self._rings.get(node)
        if ring is None:
            ring = deque(maxlen=self.ring_capacity)
            self._rings[node] = ring
        ring.append({"time": t, "kind": kind, "detail": detail})

    def events(self) -> dict[str, list[dict]]:
        """``{node: [events...]}``, each ring oldest first."""
        return {node: list(ring) for node, ring in sorted(self._rings.items())}

    def snapshot(
        self,
        reason: str,
        t: float,
        *,
        store,
        engine,
        tracer=None,
    ) -> PostMortem | None:
        """Take a post-mortem bundle now; returns None past the cap."""
        if len(self.postmortems) >= self.max_postmortems:
            self.dropped_postmortems += 1
            return None
        bundle = {
            "alerts": {
                "active": [dict(r) for r in engine.firing()],
                "recent": [dict(r) for r in engine.log[-16:]],
            },
            "events": self.events(),
            "series": store.tails(self.series_tail),
            "spans": self._recent_spans(tracer),
        }
        pm = PostMortem(reason=reason, time=t, bundle=bundle)
        self.postmortems.append(pm)
        return pm

    def _recent_spans(self, tracer) -> list[dict]:
        """Newest root spans from the tracer's trace ring, when present."""
        if tracer is None:
            return []
        roots = tracer.trace_log.traces()[-self.span_tail :]
        return [
            {"name": r.name, "machine": r.machine, "latency": r.end_to_end()}
            for r in roots
        ]
