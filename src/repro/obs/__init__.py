"""Observability over the simulated clock: spans, histograms, analysis.

Everything here is gated behind ``LogBaseConfig.with_tracing()``: with the
gate off no tracer is installed, every span helper is an ``is None`` check,
and the seed cost model runs byte-identically.  With it on, every simulated
second charged to any machine clock is attributed to the innermost open
span, so a trace tree explains where an operation's latency went —
client RPC, tablet server, WAL, DFS replication, disk — without storing
per-sample data (histograms keep fixed geometric buckets).
"""

from repro.obs.alerts import AlertEngine, SloRule, ThresholdRule
from repro.obs.analyze import (
    TraceLog,
    coverage,
    critical_path,
    format_time_report,
    layer_breakdown,
    where_did_time_go,
)
from repro.obs.export import chrome_trace, export_chrome_trace
from repro.obs.hist import Histogram, HistogramRegistry
from repro.obs.monitor import ClusterMonitor, collect_health_gauges, default_rules
from repro.obs.recorder import FlightRecorder, PostMortem
from repro.obs.timeseries import MetricStore, TimeSeries
from repro.obs.trace import (
    Span,
    Tracer,
    current_span,
    current_tracer,
    install_tracer,
    root_span,
    span,
    uninstall_tracer,
)

__all__ = [
    "AlertEngine",
    "ClusterMonitor",
    "FlightRecorder",
    "Histogram",
    "HistogramRegistry",
    "MetricStore",
    "PostMortem",
    "SloRule",
    "Span",
    "ThresholdRule",
    "TimeSeries",
    "TraceLog",
    "Tracer",
    "collect_health_gauges",
    "default_rules",
    "chrome_trace",
    "coverage",
    "critical_path",
    "current_span",
    "current_tracer",
    "export_chrome_trace",
    "format_time_report",
    "install_tracer",
    "layer_breakdown",
    "root_span",
    "span",
    "uninstall_tracer",
    "where_did_time_go",
]
