"""Fixed-capacity time series for the cluster monitoring plane.

The scraper (``repro.obs.monitor``) samples counters and health gauges on
every cluster heartbeat and records them here, keyed ``(entity, metric)``
where the entity is a node name, a tablet id, or the pseudo-entity
``"cluster"``.  Each series is a ring buffer of ``(t, value)`` samples in
simulated seconds: memory is bounded by ``capacity`` per series no matter
how long a run heartbeats, and the most recent window is always
available for alert evaluation and flight-recorder post-mortems.

Series names are validated against the frozen metric-name registry
(:func:`repro.sim.metrics.validate_metric_name`) on first use, so the
monitoring plane cannot mint spellings the rest of the repo doesn't know.
"""

from __future__ import annotations

from typing import Iterator

from repro.sim.metrics import validate_metric_name


class TimeSeries:
    """One metric stream: a ring of the most recent ``capacity`` samples."""

    __slots__ = ("entity", "metric", "capacity", "_ring", "_start", "_len")

    def __init__(self, entity: str, metric: str, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("time-series capacity must be >= 1")
        self.entity = entity
        self.metric = metric
        self.capacity = capacity
        self._ring: list[tuple[float, float]] = [(0.0, 0.0)] * capacity
        self._start = 0  # index of the oldest sample
        self._len = 0

    def record(self, t: float, value: float) -> None:
        """Append one sample, evicting the oldest past capacity."""
        if self._len < self.capacity:
            self._ring[(self._start + self._len) % self.capacity] = (t, value)
            self._len += 1
        else:
            self._ring[self._start] = (t, value)
            self._start = (self._start + 1) % self.capacity

    def __len__(self) -> int:
        return self._len

    def samples(self) -> list[tuple[float, float]]:
        """All retained samples, oldest first."""
        return [
            self._ring[(self._start + i) % self.capacity] for i in range(self._len)
        ]

    def latest(self) -> tuple[float, float] | None:
        """The newest ``(t, value)`` sample, or None when empty."""
        if self._len == 0:
            return None
        return self._ring[(self._start + self._len - 1) % self.capacity]

    def window(self, since: float) -> list[tuple[float, float]]:
        """Samples with ``t >= since``, oldest first."""
        return [sample for sample in self.samples() if sample[0] >= since]

    def tail(self, n: int) -> list[tuple[float, float]]:
        """The newest ``n`` samples, oldest first."""
        if n >= self._len:
            return self.samples()
        return [
            self._ring[(self._start + self._len - n + i) % self.capacity]
            for i in range(n)
        ]

    def __repr__(self) -> str:
        last = self.latest()
        shown = f"{last[1]:g}@{last[0]:.3f}" if last else "empty"
        return f"TimeSeries({self.entity}/{self.metric}, n={self._len}, last={shown})"


class MetricStore:
    """All scraped series, keyed ``(entity, metric)``.

    Series are created lazily on first record; every distinct metric name
    is validated once against the frozen registry.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("metric-store capacity must be >= 1")
        self.capacity = capacity
        self._series: dict[tuple[str, str], TimeSeries] = {}
        self._known_names: set[str] = set()

    def record(self, entity: str, metric: str, t: float, value: float) -> None:
        """Record one sample into the ``(entity, metric)`` series."""
        key = (entity, metric)
        series = self._series.get(key)
        if series is None:
            if metric not in self._known_names:
                validate_metric_name(metric)
                self._known_names.add(metric)
            series = TimeSeries(entity, metric, self.capacity)
            self._series[key] = series
        series.record(t, value)

    def series(self, entity: str, metric: str) -> TimeSeries | None:
        """The series under ``(entity, metric)``, or None if never recorded."""
        return self._series.get((entity, metric))

    def latest(self, entity: str, metric: str) -> float | None:
        """Newest value of ``(entity, metric)``, or None."""
        series = self._series.get((entity, metric))
        if series is None:
            return None
        last = series.latest()
        return None if last is None else last[1]

    def entities_for(self, metric: str) -> list[str]:
        """All entities that have recorded ``metric``, sorted."""
        return sorted(e for (e, m) in self._series if m == metric)

    def metric_names(self) -> set[str]:
        """Every distinct metric name recorded so far."""
        return {m for (_e, m) in self._series}

    def keys(self) -> list[tuple[str, str]]:
        """All ``(entity, metric)`` keys, sorted."""
        return sorted(self._series)

    def tails(self, n: int) -> dict[str, dict[str, list[tuple[float, float]]]]:
        """``{entity: {metric: newest-n samples}}`` for post-mortem bundles."""
        out: dict[str, dict[str, list[tuple[float, float]]]] = {}
        for (entity, metric), series in sorted(self._series.items()):
            out.setdefault(entity, {})[metric] = series.tail(n)
        return out

    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self) -> Iterator[TimeSeries]:
        return iter(self._series.values())
