"""Declarative SLO/alert rules over the scraped time series.

Two rule shapes cover the monitoring plane:

* :class:`ThresholdRule` — compare the newest sample of one metric (a
  health gauge, or a per-interval counter delta) against a threshold,
  optionally requiring the breach to be *sustained* for a window of
  simulated seconds before firing.  Evaluated independently per entity,
  so ``gauge.server_up < 0.5`` fires one alert per down node.
* :class:`SloRule` — burn-rate against a latency objective: the scraper
  publishes cumulative good/bad op counts per op class (bad = slower
  than the SLO target, counted from the PR 6 histograms via
  ``Histogram.count_above``), and the rule fires when the bad fraction
  over a lookback window burns error budget faster than
  ``burn_threshold`` times the allowed rate.  An availability-style
  objective is the same rule with more nines (0.999 leaves a 0.1%
  budget).

The engine fires and resolves alerts in simulated time and keeps a
structured, append-only alert log — the artifact chaos reports and
post-mortems attach.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.timeseries import MetricStore

#: tolerance when deciding whether a sample belongs to the current scrape
#: tick (scrapes stamp every sample with the same ``now``).
_STALE_EPSILON = 1e-9

#: pseudo-entity for cluster-wide series (SLO counts, aggregate deltas).
CLUSTER_ENTITY = "cluster"


@dataclass(frozen=True)
class ThresholdRule:
    """Fire when ``metric`` breaches ``threshold`` (per entity).

    Args:
        name: alert name, e.g. ``"server-down"``.
        metric: series name to watch (gauge or counter-delta series).
        op: ``">"`` or ``"<"`` — direction of the breach.
        threshold: breach boundary (strict comparison).
        sustained_for: simulated seconds the breach must hold before the
            alert fires (0 fires on the first breaching sample).
        severity: ``"page"`` or ``"warn"`` — carried into the alert log.
        absent_value: value assumed when the entity's series has no
            sample for the current tick (counter-delta series are only
            written when the counter moved; a quiet interval means 0).
    """

    name: str
    metric: str
    op: str
    threshold: float
    sustained_for: float = 0.0
    severity: str = "page"
    absent_value: float = 0.0

    def breached(self, value: float) -> bool:
        if self.op == ">":
            return value > self.threshold
        if self.op == "<":
            return value < self.threshold
        raise ValueError(f"unknown threshold op {self.op!r}")


@dataclass(frozen=True)
class SloRule:
    """Burn-rate alert against a per-op-class latency objective.

    The scraper records two cumulative cluster-wide series per op class:
    ``slo.<op_class>.count`` (all ops) and ``slo.<op_class>.bad`` (ops
    slower than ``target_seconds``).  Burn rate over the lookback window
    is ``(bad_delta / count_delta) / (1 - objective)`` — 1.0 means the
    error budget is burning exactly at the allowed rate, 10 means ten
    times too fast.
    """

    name: str
    op_class: str  # root-span name, e.g. "op.put"
    target_seconds: float
    objective: float = 0.99
    burn_threshold: float = 10.0
    window: float = 30.0
    min_samples: int = 5
    severity: str = "page"

    @property
    def count_series(self) -> str:
        return f"slo.{self.op_class}.count"

    @property
    def bad_series(self) -> str:
        return f"slo.{self.op_class}.bad"

    def burn(self, store: "MetricStore", now: float) -> tuple[float, float]:
        """``(burn_rate, sample_count)`` over the lookback window."""
        counts = store.series(CLUSTER_ENTITY, self.count_series)
        bads = store.series(CLUSTER_ENTITY, self.bad_series)
        if counts is None or bads is None:
            return 0.0, 0.0

        def window_delta(series) -> float:
            samples = series.samples()
            if not samples:
                return 0.0
            newest = samples[-1][1]
            oldest = samples[0][1]
            for t, value in samples:
                if t >= now - self.window:
                    break
                oldest = value
            return newest - oldest

        count_delta = window_delta(counts)
        bad_delta = window_delta(bads)
        if count_delta <= 0.0:
            return 0.0, 0.0
        bad_fraction = bad_delta / count_delta
        budget = max(1.0 - self.objective, 1e-9)
        return bad_fraction / budget, count_delta


@dataclass
class AlertEngine:
    """Evaluates rules each scrape tick; fires/resolves in simulated time."""

    rules: list = field(default_factory=list)
    max_log: int = 4096

    def __post_init__(self) -> None:
        #: structured alert log: every firing/resolved transition, in order.
        self.log: list[dict] = []
        #: currently-firing alerts: (alert name, entity) -> fire record.
        self.active: dict[tuple[str, str], dict] = {}
        # (alert name, entity) -> simulated time the breach started.
        self._breach_since: dict[tuple[str, str], float] = {}

    def evaluate(self, store: "MetricStore", now: float) -> list[dict]:
        """Run every rule against ``store`` at simulated time ``now``.

        Returns the alerts that *newly fired* this tick (the flight
        recorder snapshots a post-mortem for each).  Resolutions are
        appended to :attr:`log` but not returned.
        """
        fired: list[dict] = []
        for rule in self.rules:
            if isinstance(rule, SloRule):
                fired.extend(self._eval_slo(rule, store, now))
            else:
                fired.extend(self._eval_threshold(rule, store, now))
        return fired

    # -- rule evaluation ------------------------------------------------

    def _eval_threshold(
        self, rule: ThresholdRule, store: "MetricStore", now: float
    ) -> list[dict]:
        fired: list[dict] = []
        entities = set(store.entities_for(rule.metric))
        # Re-check entities that are firing even if their series vanished
        # (value decays to absent_value, which resolves them).
        entities.update(e for (name, e) in self.active if name == rule.name)
        for entity in sorted(entities):
            series = store.series(entity, rule.metric)
            value = rule.absent_value
            if series is not None:
                last = series.latest()
                if last is not None and last[0] >= now - _STALE_EPSILON:
                    value = last[1]
            fired.extend(
                self._transition(
                    rule.name,
                    entity,
                    breached=rule.breached(value),
                    sustained_for=rule.sustained_for,
                    severity=rule.severity,
                    value=value,
                    now=now,
                    detail=f"{rule.metric} {rule.op} {rule.threshold:g}",
                )
            )
        return fired

    def _eval_slo(self, rule: SloRule, store: "MetricStore", now: float) -> list[dict]:
        burn, samples = rule.burn(store, now)
        breached = burn > rule.burn_threshold and samples >= rule.min_samples
        return self._transition(
            rule.name,
            CLUSTER_ENTITY,
            breached=breached,
            sustained_for=0.0,
            severity=rule.severity,
            value=burn,
            now=now,
            detail=(
                f"{rule.op_class} p{rule.objective * 100:g} > "
                f"{rule.target_seconds:g}s burn x{rule.burn_threshold:g}"
            ),
        )

    # -- state machine --------------------------------------------------

    def _transition(
        self,
        name: str,
        entity: str,
        *,
        breached: bool,
        sustained_for: float,
        severity: str,
        value: float,
        now: float,
        detail: str,
    ) -> list[dict]:
        key = (name, entity)
        if breached:
            since = self._breach_since.setdefault(key, now)
            if key not in self.active and now - since >= sustained_for:
                record = {
                    "time": now,
                    "alert": name,
                    "entity": entity,
                    "state": "firing",
                    "severity": severity,
                    "value": value,
                    "detail": detail,
                }
                self.active[key] = record
                self._append(record)
                return [record]
            return []
        self._breach_since.pop(key, None)
        if key in self.active:
            fire_record = self.active.pop(key)
            self._append(
                {
                    "time": now,
                    "alert": name,
                    "entity": entity,
                    "state": "resolved",
                    "severity": severity,
                    "value": value,
                    "duration": now - fire_record["time"],
                    "detail": detail,
                }
            )
        return []

    def _append(self, record: dict) -> None:
        self.log.append(record)
        if len(self.log) > self.max_log:
            del self.log[: len(self.log) - self.max_log]

    # -- reporting ------------------------------------------------------

    def firing(self) -> list[dict]:
        """Currently-active alerts, ordered by fire time."""
        return sorted(self.active.values(), key=lambda r: (r["time"], r["alert"]))

    def fired_names(self) -> set[str]:
        """Every alert name that has fired at least once."""
        return {r["alert"] for r in self.log if r["state"] == "firing"}
