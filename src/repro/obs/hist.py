"""Fixed-boundary histograms: tail percentiles without storing samples.

Buckets are geometric — boundary ``i`` is ``floor * growth**i`` — so
relative resolution is constant across nine decades of simulated seconds
(a 10 µs cache hit and a 40 s limped read land with the same ~0.5%
precision).  Each occupied bucket keeps ``(count, min, max)`` plus — up
to :data:`BUCKET_EXACT_CAP` distinct values — an exact value->count map;
past the cap the bucket collapses to its summary.  Memory is bounded by
occupied buckets times the cap, never by the sample count.

``percentile`` follows the nearest-rank convention the chaos runner has
always used (``rank = round(q * (n - 1))``).  In a deterministic
simulator a bucket rarely sees more than a handful of distinct latencies
(repeated identical operations cost identical seconds), so ranks resolve
through the exact per-bucket counts and the histogram reproduces the
list-based computation bit-for-bit — the chaos control-arm test asserts
exactly this.  Only a collapsed bucket approximates: its first sample
answers with the bucket minimum, its last with the maximum, anything
between with the midpoint (within the bucket's relative width).
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.sim.metrics import validate_metric_name

#: default relative bucket width: ~0.5% — fine enough that distinct
#: latencies produced by the cost model almost never share a bucket.
DEFAULT_GROWTH = 1.005

#: smallest non-zero value with its own bucket; anything below (including
#: exact zeros, e.g. failed reads recorded at 0 s) shares bucket 0.
DEFAULT_FLOOR = 1e-7

#: distinct values a bucket counts exactly before collapsing to its
#: (count, min, max) summary.
BUCKET_EXACT_CAP = 64


class Histogram:
    """Geometric-bucket histogram with per-bucket min/max."""

    __slots__ = (
        "name",
        "count",
        "total",
        "min",
        "max",
        "_floor",
        "_log_growth",
        "_exact_cap",
        "_buckets",
    )

    def __init__(
        self,
        name: str,
        *,
        growth: float = DEFAULT_GROWTH,
        floor: float = DEFAULT_FLOOR,
        exact_cap: int = BUCKET_EXACT_CAP,
    ) -> None:
        if growth <= 1.0:
            raise ValueError("histogram growth factor must be > 1")
        if floor <= 0.0:
            raise ValueError("histogram floor must be > 0")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0
        self._floor = floor
        self._log_growth = math.log(growth)
        self._exact_cap = exact_cap
        # bucket index -> [count, min, max, value->count | None]; the map
        # is dropped (None) once a bucket exceeds exact_cap distinct
        # values.  Sparse, sorted on demand.
        self._buckets: dict[int, list] = {}

    def _index(self, value: float) -> int:
        if value <= self._floor:
            return 0
        return 1 + int(math.log(value / self._floor) / self._log_growth)

    def record(self, value: float) -> None:
        """Add one observation (negative values are clamped to 0)."""
        if value < 0.0:
            value = 0.0
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = self._index(value)
        bucket = self._buckets.get(index)
        if bucket is None:
            self._buckets[index] = [1, value, value, {value: 1}]
        else:
            bucket[0] += 1
            if value < bucket[1]:
                bucket[1] = value
            if value > bucket[2]:
                bucket[2] = value
            values = bucket[3]
            if values is not None:
                values[value] = values.get(value, 0) + 1
                if len(values) > self._exact_cap:
                    bucket[3] = None

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile ``q`` in [0, 1] (0 when empty)."""
        if self.count == 0:
            return 0.0
        rank = min(self.count - 1, max(0, int(round(q * (self.count - 1)))))
        cumulative = 0
        for index in sorted(self._buckets):
            count, low, high, values = self._buckets[index]
            if rank < cumulative + count:
                if values is not None:
                    offset = rank - cumulative
                    for value in sorted(values):
                        if offset < values[value]:
                            return value
                        offset -= values[value]
                # Collapsed bucket: mirror the edges, approximate between.
                if low == high:
                    return low
                if rank == cumulative:
                    return low
                if rank == cumulative + count - 1:
                    return high
                return (low + high) / 2.0
            cumulative += count
        return self.max  # unreachable; defensive

    def count_above(self, threshold: float) -> int:
        """Observations strictly greater than ``threshold``.

        Feeds SLO burn-rate math: with a latency target of ``t`` seconds,
        ``count_above(t)`` is the running count of objective-violating
        ops.  Exact for buckets that still carry their value map; a
        collapsed bucket straddling the threshold contributes all of its
        samples when its recorded minimum exceeds the threshold, none
        when its maximum does not, and a count-weighted half otherwise
        (within the bucket's ~0.5% relative width).
        """
        above = 0
        for bucket in self._buckets.values():
            count, low, high, values = bucket
            if low > threshold:
                above += count
            elif high <= threshold:
                continue
            elif values is not None:
                above += sum(n for v, n in values.items() if v > threshold)
            else:
                above += count // 2
        return above

    def fraction_above(self, threshold: float) -> float:
        """``count_above(threshold) / count`` (0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.count_above(threshold) / self.count

    def snapshot(self) -> dict:
        """Summary dict for reports and trajectory files."""
        return {
            "name": self.name,
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}, n={self.count}, "
            f"p50={self.percentile(0.5):.6g}, p99={self.percentile(0.99):.6g})"
        )


class HistogramRegistry:
    """Named histograms, created on first use.

    Names are checked against the frozen metric-name registry
    (:func:`repro.sim.metrics.validate_metric_name`) so histogram names
    cannot drift from the canonical spelling the dashboards use.
    """

    def __init__(self) -> None:
        self._histograms: dict[str, Histogram] = {}

    def histogram(
        self,
        name: str,
        *,
        growth: float = DEFAULT_GROWTH,
        floor: float = DEFAULT_FLOOR,
    ) -> Histogram:
        """The histogram registered under ``name``, created if absent."""
        existing = self._histograms.get(name)
        if existing is None:
            validate_metric_name(name)
            existing = Histogram(name, growth=growth, floor=floor)
            self._histograms[name] = existing
        return existing

    def get(self, name: str) -> Histogram | None:
        """The histogram under ``name``, or None if never recorded."""
        return self._histograms.get(name)

    def snapshot(self) -> dict[str, dict]:
        """``{name: summary}`` for every registered histogram."""
        return {
            name: hist.snapshot() for name, hist in sorted(self._histograms.items())
        }

    def __iter__(self) -> Iterator[Histogram]:
        return iter(self._histograms.values())

    def __len__(self) -> int:
        return len(self._histograms)
