"""Trace analysis: ring buffer, slow-op sampling, critical paths.

All analysis runs over closed root spans kept in the :class:`TraceLog`
ring buffer — the tracer never stores per-operation sample lists, so the
memory cost of a traced run is bounded by ``ring`` root spans plus the
worst ``slow_samples`` traces per operation type.

The *critical path* of a trace is the chain of spans that determined its
latency: starting at the root, repeatedly descend into the child that
contributed the most end-to-end time (cross-clock children only — same-
clock children overlap the parent's own duration and are already counted).
The *layer breakdown* maps every span's exclusive (self) seconds onto a
small fixed set of layers — client, rpc, server, txn, wal, dfs,
compaction, recovery — which is the "where did the time go" axis the
paper's §6 I/O-shape arguments use.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import Span, Tracer

#: span-name prefix -> report layer.  Longest prefix wins; names with no
#: match fall into "other" (which the coverage tests keep at ~0).
LAYER_PREFIXES: tuple[tuple[str, str], ...] = (
    ("op.", "client"),
    ("client.", "client"),
    ("rpc.", "rpc"),
    ("ts.", "server"),
    ("txn.", "txn"),
    ("log.", "wal"),
    ("dfs.", "dfs"),
    ("compaction.", "compaction"),
    ("recovery.", "recovery"),
)


def span_layer(name: str) -> str:
    """The report layer a span name belongs to."""
    for prefix, layer in LAYER_PREFIXES:
        if name.startswith(prefix):
            return layer
    return "other"


class TraceLog:
    """Ring buffer of the most recent closed root spans."""

    def __init__(self, ring: int = 512) -> None:
        if ring < 1:
            raise ValueError("trace ring must hold at least one trace")
        self._ring: deque["Span"] = deque(maxlen=ring)
        self.appended = 0

    def append(self, root: "Span") -> None:
        """Record a closed root span (oldest trace evicted when full)."""
        self._ring.append(root)
        self.appended += 1

    def traces(self, name: str | None = None) -> list["Span"]:
        """Retained traces, oldest first, optionally filtered by root name."""
        if name is None:
            return list(self._ring)
        return [root for root in self._ring if root.name == name]

    def op_names(self) -> list[str]:
        """Distinct root-span names currently retained, sorted."""
        return sorted({root.name for root in self._ring})

    def __iter__(self) -> Iterator["Span"]:
        return iter(self._ring)

    def __len__(self) -> int:
        return len(self._ring)


class SlowOpSampler:
    """Keeps the N slowest traces per operation type.

    A bounded insertion-sorted list per op name: ``offer`` is O(N) with
    N = ``per_op`` (small), which beats a heap for the read-mostly access
    pattern of reports.
    """

    def __init__(self, per_op: int = 4) -> None:
        self.per_op = per_op
        self._worst: dict[str, list[tuple[float, "Span"]]] = {}

    def offer(self, name: str, latency: float, root: "Span") -> None:
        """Consider one closed trace for the per-op worst list."""
        if self.per_op <= 0:
            return
        worst = self._worst.setdefault(name, [])
        if len(worst) >= self.per_op and latency <= worst[-1][0]:
            return
        worst.append((latency, root))
        worst.sort(key=lambda item: -item[0])
        del worst[self.per_op :]

    def worst(self, name: str) -> list["Span"]:
        """The slowest retained traces for ``name``, slowest first."""
        return [root for _, root in self._worst.get(name, [])]

    def op_names(self) -> list[str]:
        """Op names with at least one retained trace, sorted."""
        return sorted(self._worst)


def coverage(root: "Span") -> float:
    """Fraction of a trace's end-to-end latency explained by span self time.

    Sums exclusive seconds over every non-background span in the tree and
    divides by the root's end-to-end latency.  1.0 means every charged
    simulated second while the operation ran was inside some span; the
    acceptance bar is >= 0.99 for every traced op.
    """
    total = root.end_to_end()
    if total <= 0.0:
        return 1.0
    explained = sum(s.self_seconds for s in root.walk() if not s.background)
    return explained / total


def critical_path(root: "Span") -> list["Span"]:
    """The chain of spans that determined this trace's latency.

    Descends from the root into the cross-clock child with the largest
    end-to-end contribution at each level.  Same-clock children overlap
    the parent's own duration, so the path only crosses clock boundaries —
    each hop is a real RPC the anchor clock waited out.
    """
    path = [root]
    node = root
    while True:
        candidates = [
            child
            for child in node.children
            if not child.background and child._clock is not node._clock
        ]
        if not candidates:
            return path
        node = max(candidates, key=lambda child: child.end_to_end())
        path.append(node)


def layer_breakdown(roots: Iterable["Span"]) -> dict[str, float]:
    """Exclusive simulated seconds per layer across the given traces.

    Background spans (hedge losers) are reported under their own
    ``background.<layer>`` key so parallel work is visible without
    inflating the foreground total.
    """
    seconds: dict[str, float] = {}
    for root in roots:
        for node in root.walk():
            layer = span_layer(node.name)
            if node.background:
                layer = "background." + layer
            seconds[layer] = seconds.get(layer, 0.0) + node.self_seconds
    return seconds


def where_did_time_go(roots: Iterable["Span"]) -> dict:
    """Aggregate report over a set of traces.

    Returns totals, the per-layer breakdown with foreground percentages
    (these sum to ~100% of the summed end-to-end latency when coverage is
    complete), and mean coverage — the shape BENCH_obs.json stores.
    """
    roots = list(roots)
    total_latency = sum(root.end_to_end() for root in roots)
    layers = layer_breakdown(roots)
    foreground = {k: v for k, v in layers.items() if not k.startswith("background.")}
    percents = {
        layer: (100.0 * secs / total_latency if total_latency else 0.0)
        for layer, secs in foreground.items()
    }
    return {
        "traces": len(roots),
        "total_seconds": total_latency,
        "layer_seconds": layers,
        "layer_percent": percents,
        "percent_sum": sum(percents.values()),
        "coverage": (
            sum(coverage(root) for root in roots) / len(roots) if roots else 1.0
        ),
    }


def format_time_report(tracer: "Tracer") -> str:
    """The text "where did the time go" report for a tracer's trace log."""
    from repro.bench.report import format_table

    roots = tracer.trace_log.traces()
    lines: list[str] = []
    if not roots:
        return "trace log empty: no closed traces"

    report = where_did_time_go(roots)
    rows = [
        (layer, f"{secs:.6f}", f"{report['layer_percent'].get(layer, 0.0):.1f}%")
        for layer, secs in sorted(
            report["layer_seconds"].items(), key=lambda item: -item[1]
        )
    ]
    lines.append(
        format_table(
            f"where did the time go ({report['traces']} traces, "
            f"{report['total_seconds']:.3f}s, "
            f"coverage {100.0 * report['coverage']:.1f}%)",
            ("layer", "seconds", "% of latency"),
            rows,
        )
    )

    hist_rows = []
    for hist in sorted(tracer.histograms, key=lambda h: h.name):
        snap = hist.snapshot()
        hist_rows.append(
            (
                snap["name"],
                str(snap["count"]),
                f"{snap['p50']:.6f}",
                f"{snap['p99']:.6f}",
                f"{snap['max']:.6f}",
            )
        )
    if hist_rows:
        lines.append("")
        lines.append(
            format_table(
                "latency histograms (simulated seconds)",
                ("series", "n", "p50", "p99", "max"),
                hist_rows,
            )
        )

    slow_lines = []
    for name in tracer.slow_ops.op_names():
        for root in tracer.slow_ops.worst(name):
            path = " > ".join(node.name for node in critical_path(root))
            slow_lines.append(f"  {name}: {root.end_to_end():.6f}s via {path}")
    if slow_lines:
        lines.append("")
        lines.append("slowest traces (critical path):")
        lines.extend(slow_lines)

    return "\n".join(lines)
