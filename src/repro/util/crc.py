"""CRC-32C (Castagnoli) checksum, the polynomial used by HDFS and LevelDB.

Implemented with a precomputed 256-entry table; fast enough in pure Python
for the block and record sizes this reproduction handles.
"""

from __future__ import annotations

_POLY = 0x82F63B78  # reversed Castagnoli polynomial


def _build_table() -> tuple[int, ...]:
    table = []
    for i in range(256):
        crc = i
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY
            else:
                crc >>= 1
        table.append(crc)
    return tuple(table)


_TABLE = _build_table()


def crc32c(data: bytes, crc: int = 0) -> int:
    """Compute the CRC-32C checksum of ``data``.

    Args:
        data: bytes to checksum.
        crc: starting value, for incremental checksumming over chunks.

    Returns:
        The 32-bit checksum as an unsigned integer.
    """
    crc ^= 0xFFFFFFFF
    for byte in data:
        crc = _TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF
