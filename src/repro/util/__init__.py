"""Shared low-level utilities: varint codec, checksums, caches, filters."""

from repro.util.varint import encode_uvarint, decode_uvarint
from repro.util.crc import crc32c
from repro.util.lru import LRUCache, ReplacementPolicy, LRUPolicy, FIFOPolicy
from repro.util.bloom import BloomFilter

__all__ = [
    "encode_uvarint",
    "decode_uvarint",
    "crc32c",
    "LRUCache",
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "BloomFilter",
]
