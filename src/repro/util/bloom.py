"""A Bloom filter over byte-string keys.

Used by SSTables in the HBase baseline and by LSM-tree runs (as in bLSM and
LevelDB) to skip disk probes for absent keys.  Hashing uses the standard
double-hashing scheme g_i(x) = h1(x) + i * h2(x) over two independent
64-bit FNV-1a variants, which matches how LevelDB derives its probe set.
"""

from __future__ import annotations

import math

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def _fnv1a(data: bytes, seed: int) -> int:
    h = (_FNV_OFFSET ^ seed) & _MASK64
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    return h


class BloomFilter:
    """Fixed-size Bloom filter sized for a target false-positive rate.

    Args:
        expected_items: number of keys the filter is sized for.
        fp_rate: target false-positive probability at that load.
    """

    def __init__(self, expected_items: int, fp_rate: float = 0.01) -> None:
        if expected_items <= 0:
            raise ValueError("expected_items must be positive")
        if not 0.0 < fp_rate < 1.0:
            raise ValueError("fp_rate must be in (0, 1)")
        ln2 = math.log(2)
        bits = max(8, int(-expected_items * math.log(fp_rate) / (ln2 * ln2)))
        # Round up to a whole byte so to_bytes/from_bytes keep the same
        # modulus (probe positions depend on num_bits).
        self._num_bits = (bits + 7) // 8 * 8
        self._num_hashes = max(1, round(self._num_bits / expected_items * ln2))
        self._bits = bytearray((self._num_bits + 7) // 8)
        self._count = 0

    @property
    def num_bits(self) -> int:
        """Size of the bit array."""
        return self._num_bits

    @property
    def num_hashes(self) -> int:
        """Number of hash probes per key."""
        return self._num_hashes

    @property
    def size_bytes(self) -> int:
        """Storage footprint of the bit array."""
        return len(self._bits)

    def __len__(self) -> int:
        return self._count

    def _probes(self, key: bytes):
        h1 = _fnv1a(key, 0x9E3779B97F4A7C15)
        h2 = _fnv1a(key, 0xC2B2AE3D27D4EB4F) | 1
        for i in range(self._num_hashes):
            yield ((h1 + i * h2) & _MASK64) % self._num_bits

    def add(self, key: bytes) -> None:
        """Insert ``key`` into the filter."""
        for bit in self._probes(key):
            self._bits[bit >> 3] |= 1 << (bit & 7)
        self._count += 1

    def might_contain(self, key: bytes) -> bool:
        """Return False if ``key`` is definitely absent, True if it may be
        present (subject to the false-positive rate)."""
        return all(self._bits[bit >> 3] & (1 << (bit & 7)) for bit in self._probes(key))

    def to_bytes(self) -> bytes:
        """Serialize the bit array (used when persisting SSTable metadata)."""
        return bytes(self._bits)

    @classmethod
    def from_bytes(cls, payload: bytes, num_hashes: int, count: int = 0) -> "BloomFilter":
        """Rebuild a filter from :meth:`to_bytes` output."""
        filt = cls.__new__(cls)
        filt._bits = bytearray(payload)
        filt._num_bits = len(payload) * 8
        filt._num_hashes = num_hashes
        filt._count = count
        return filt
