"""Bounded caches with pluggable replacement policies.

Section 3.6.2 of the paper describes the read buffer's replacement strategy
as "an abstracted interface so that users can plug in new strategies".
:class:`ReplacementPolicy` is that interface; :class:`LRUPolicy` is the
default the paper uses and :class:`FIFOPolicy` is a second implementation
used by the ablation benchmarks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Generic, Hashable, Iterator, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class ReplacementPolicy(ABC, Generic[K]):
    """Decides which key to evict when a bounded cache is full."""

    @abstractmethod
    def on_insert(self, key: K) -> None:
        """Record that ``key`` was inserted into the cache."""

    @abstractmethod
    def on_access(self, key: K) -> None:
        """Record that ``key`` was read from the cache."""

    @abstractmethod
    def on_remove(self, key: K) -> None:
        """Record that ``key`` was explicitly removed."""

    @abstractmethod
    def victim(self) -> K:
        """Return the key to evict next.  The cache removes it and then
        calls :meth:`on_remove`."""


class LRUPolicy(ReplacementPolicy[K]):
    """Evict the least recently used key."""

    def __init__(self) -> None:
        self._order: OrderedDict[K, None] = OrderedDict()

    def on_insert(self, key: K) -> None:
        self._order[key] = None
        self._order.move_to_end(key)

    def on_access(self, key: K) -> None:
        self._order.move_to_end(key)

    def on_remove(self, key: K) -> None:
        self._order.pop(key, None)

    def victim(self) -> K:
        return next(iter(self._order))


class FIFOPolicy(ReplacementPolicy[K]):
    """Evict the oldest-inserted key regardless of access recency."""

    def __init__(self) -> None:
        self._order: OrderedDict[K, None] = OrderedDict()

    def on_insert(self, key: K) -> None:
        if key not in self._order:
            self._order[key] = None

    def on_access(self, key: K) -> None:
        pass

    def on_remove(self, key: K) -> None:
        self._order.pop(key, None)

    def victim(self) -> K:
        return next(iter(self._order))


class LRUCache(Generic[K, V]):
    """A bounded mapping that evicts via a :class:`ReplacementPolicy`.

    Capacity may be expressed either in entry count (``capacity``) or in
    bytes (``byte_capacity`` with a ``sizer`` callable); the read buffer
    uses byte capacity so that 1 KB records and small records are charged
    fairly.
    """

    def __init__(
        self,
        capacity: int | None = None,
        *,
        byte_capacity: int | None = None,
        sizer=None,
        policy: ReplacementPolicy[K] | None = None,
    ) -> None:
        if capacity is None and byte_capacity is None:
            raise ValueError("one of capacity or byte_capacity is required")
        if byte_capacity is not None and sizer is None:
            raise ValueError("byte_capacity requires a sizer callable")
        self._capacity = capacity
        self._byte_capacity = byte_capacity
        self._sizer = sizer
        self._policy: ReplacementPolicy[K] = policy if policy is not None else LRUPolicy()
        self._data: dict[K, V] = {}
        self._bytes_used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[K]:
        return iter(self._data)

    @property
    def bytes_used(self) -> int:
        """Total size of cached values, per the configured sizer."""
        return self._bytes_used

    def get(self, key: K, default: V | None = None) -> V | None:
        """Return the cached value, updating recency; counts hit/miss."""
        if key in self._data:
            self.hits += 1
            self._policy.on_access(key)
            return self._data[key]
        self.misses += 1
        return default

    def peek(self, key: K, default: V | None = None) -> V | None:
        """Return the cached value without touching recency or counters."""
        return self._data.get(key, default)

    def put(self, key: K, value: V) -> None:
        """Insert or replace ``key``; evicts until capacity is respected."""
        if key in self._data:
            self._remove(key)
        self._data[key] = value
        self._policy.on_insert(key)
        if self._sizer is not None:
            self._bytes_used += self._sizer(value)
        self._evict_to_capacity()

    def remove(self, key: K) -> None:
        """Remove ``key`` if present."""
        if key in self._data:
            self._remove(key)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        for key in list(self._data):
            self._remove(key)

    def _remove(self, key: K) -> None:
        value = self._data.pop(key)
        self._policy.on_remove(key)
        if self._sizer is not None:
            self._bytes_used -= self._sizer(value)

    def _over_capacity(self) -> bool:
        if self._capacity is not None and len(self._data) > self._capacity:
            return True
        if self._byte_capacity is not None and self._bytes_used > self._byte_capacity:
            return True
        return False

    def _evict_to_capacity(self) -> None:
        while self._data and self._over_capacity():
            self._remove(self._policy.victim())
            self.evictions += 1
