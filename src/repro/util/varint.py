"""Unsigned variable-length integer codec (LEB128, protobuf-compatible).

Log records, index snapshots and SSTable blocks frame their fields with
uvarints so that small values (lengths, sequence numbers near a checkpoint)
cost one byte instead of eight.
"""

from __future__ import annotations


def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128 uvarint.

    Args:
        value: integer >= 0.

    Returns:
        The encoded bytes (1 byte per 7 bits of payload).

    Raises:
        ValueError: if ``value`` is negative.
    """
    if value < 0:
        raise ValueError(f"uvarint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(buf: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a LEB128 uvarint from ``buf`` starting at ``offset``.

    Args:
        buf: source buffer.
        offset: position of the first byte of the varint.

    Returns:
        ``(value, next_offset)`` where ``next_offset`` is the position just
        past the varint.

    Raises:
        ValueError: if the buffer ends mid-varint or the varint is longer
            than 10 bytes (would overflow 64 bits of payload).
    """
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(buf):
            raise ValueError("truncated uvarint")
        if shift > 63:
            raise ValueError("uvarint too long")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
