"""Query planner and executor over a LogBase cluster.

Access-path selection, cheapest first:

1. **primary lookup** — an Eq on the primary key column;
2. **secondary lookup** — an Eq/Range on a column with a secondary index;
3. **primary range scan** — a Range on the primary key column;
4. **full scan** — everything else (filtered table scan).

The executor reads only the column groups a query needs (projection +
predicate columns), merging groups per primary key when more than one is
touched — the §3.2 tuple-reconstruction path.  Residual predicates are
applied to the merged row.  Simple aggregation (count/sum/min/max with
optional group-by) runs over the row stream.

Usage::

    engine = QueryEngine(db)
    rows = (engine.query("users")
                  .select("name", "email")
                  .where(Eq("country", b"SG"))
                  .run())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.schema import decode_group_value
from repro.query.expressions import And, Eq, Predicate, Range, conjuncts

Row = dict[str, bytes]


@dataclass(frozen=True)
class QueryPlan:
    """The chosen access path (returned by :meth:`Query.explain`)."""

    access_path: str             # primary-lookup | secondary-lookup |
                                 # primary-range | full-scan
    driving_column: str | None   # column the access path uses
    groups_read: tuple[str, ...]  # column groups fetched
    residual: int                # predicates applied after the access path

    def describe(self) -> str:
        driving = f" on {self.driving_column}" if self.driving_column else ""
        return (
            f"{self.access_path}{driving}, groups={list(self.groups_read)}, "
            f"{self.residual} residual predicate(s)"
        )


@dataclass
class Query:
    """A buildable query against one table."""

    engine: "QueryEngine"
    table: str
    projection: tuple[str, ...] = ()
    predicate: Predicate | None = None
    snapshot: int | None = None
    order_column: str | None = None
    descending: bool = False
    max_rows: int | None = None

    def select(self, *columns: str) -> "Query":
        """Project to ``columns`` (default: every column)."""
        self.projection = columns
        return self

    def where(self, predicate: Predicate) -> "Query":
        """Filter rows (And with any existing predicate)."""
        if self.predicate is None:
            self.predicate = predicate
        else:
            self.predicate = And(self.predicate, predicate)
        return self

    def as_of(self, timestamp: int) -> "Query":
        """Read from the snapshot at ``timestamp`` (multiversion access).

        Note: secondary indexes are current-state, so snapshot queries
        never use them (the planner falls back to scans)."""
        self.snapshot = timestamp
        return self

    def order_by(self, column: str, *, descending: bool = False) -> "Query":
        """Sort results by a column's value (bytes ordering); the default
        result order is primary-key order."""
        self.order_column = column
        self.descending = descending
        return self

    def limit(self, n: int) -> "Query":
        """Return at most ``n`` rows (applied after ordering)."""
        if n < 0:
            raise ValueError("limit must be non-negative")
        self.max_rows = n
        return self

    def explain(self) -> QueryPlan:
        """The plan that :meth:`run` would execute."""
        return self.engine.plan(self)

    def run(self) -> list[tuple[bytes, Row]]:
        """Execute; returns (primary key, projected row) in key order."""
        return self.engine.execute(self)

    def count(self) -> int:
        """Number of matching rows."""
        return len(self.engine.execute(self))

    def aggregate(
        self, column: str, *, group_by: str | None = None
    ) -> dict[str, dict[bytes, float] | float]:
        """Sum/min/max/count over an integer-encoded column, optionally
        grouped by another column's value."""
        return self.engine.aggregate(self, column, group_by=group_by)


class QueryEngine:
    """Plans and executes queries over a :class:`~repro.core.database.LogBase`."""

    def __init__(self, db) -> None:
        self._db = db
        self._master = db.cluster.master

    def query(self, table: str) -> Query:
        """Start building a query on ``table``."""
        self._master.schema(table)  # validates the table exists
        return Query(self, table)

    # -- secondary index DDL -------------------------------------------------------

    def create_secondary_index(self, table: str, column: str) -> None:
        """Create (and backfill) a secondary index on every server that
        hosts tablets of ``table``."""
        schema = self._master.schema(table)
        group = schema.group_of_column(column).name
        for server_name in {name for name, _ in self._master.locations(table)}:
            self._master.server(server_name).create_secondary_index(
                table, group, column
            )

    def has_secondary_index(self, table: str, column: str) -> bool:
        """Whether a secondary index exists on ``table.column``."""
        for server_name, _ in self._master.locations(table):
            if self._master.server(server_name).secondary.get(table, column) is not None:
                return True
        return False

    # -- planning -------------------------------------------------------------------

    def plan(self, query: Query) -> QueryPlan:
        schema = self._master.schema(query.table)
        parts = conjuncts(query.predicate)
        needed = set(query.projection) or {
            column for group in schema.groups for column in group.columns
        }
        needed |= {column for part in parts for column in part.columns()}
        if query.order_column is not None:
            needed.add(query.order_column)
        needed.discard(schema.key_column)
        groups = tuple(g.name for g in schema.groups_for_columns(needed)) or (
            schema.group_names[0],
        )

        key_eq = next(
            (p for p in parts if isinstance(p, Eq) and p.column == schema.key_column),
            None,
        )
        if key_eq is not None:
            return QueryPlan("primary-lookup", schema.key_column, groups, len(parts) - 1)
        if query.snapshot is None:  # secondary indexes are current-state only
            for part in parts:
                if isinstance(part, (Eq, Range)) and self.has_secondary_index(
                    query.table, part.column
                ):
                    return QueryPlan(
                        "secondary-lookup", part.column, groups, len(parts) - 1
                    )
        key_range = next(
            (p for p in parts if isinstance(p, Range) and p.column == schema.key_column),
            None,
        )
        if key_range is not None:
            return QueryPlan("primary-range", schema.key_column, groups, len(parts) - 1)
        return QueryPlan("full-scan", None, groups, len(parts))

    # -- execution -------------------------------------------------------------------

    def execute(self, query: Query) -> list[tuple[bytes, Row]]:
        plan = self.plan(query)
        schema = self._master.schema(query.table)
        parts = conjuncts(query.predicate)

        if plan.access_path == "primary-lookup":
            key_eq = next(
                p for p in parts if isinstance(p, Eq) and p.column == schema.key_column
            )
            candidates: Iterator[bytes] = iter([key_eq.value])
        elif plan.access_path == "secondary-lookup":
            candidates = iter(sorted(self._secondary_candidates(query, plan, parts)))
        elif plan.access_path == "primary-range":
            key_range = next(
                p
                for p in parts
                if isinstance(p, Range) and p.column == schema.key_column
            )
            candidates = self._range_keys(query, plan, key_range.low, key_range.high)
        else:
            candidates = self._range_keys(query, plan, b"", b"\xff" * 64)

        results: list[tuple[bytes, Row]] = []
        order_rows: list[Row] = []
        for key in candidates:
            row = self._fetch_row(query, plan, key)
            if row is None:
                continue
            row[schema.key_column] = key
            if all(part.matches(row) for part in parts):
                results.append((key, self._project(query, row)))
                order_rows.append(row)
            # Without ordering, results stream in key order, so a limit
            # can stop candidate fetching early.
            if (
                query.order_column is None
                and query.max_rows is not None
                and len(results) >= query.max_rows
            ):
                break
        if query.order_column is not None:
            paired = sorted(
                zip(results, order_rows),
                key=lambda pair: pair[1].get(query.order_column, b""),
                reverse=query.descending,
            )
            results = [result for result, _ in paired]
        if query.max_rows is not None:
            results = results[: query.max_rows]
        return results

    def _secondary_candidates(
        self, query: Query, plan: QueryPlan, parts: list[Predicate]
    ) -> set[bytes]:
        driving = next(p for p in parts if p.columns() == {plan.driving_column})
        keys: set[bytes] = set()
        for server_name in {name for name, _ in self._master.locations(query.table)}:
            index = self._master.server(server_name).secondary.get(
                query.table, plan.driving_column
            )
            if index is None:
                continue
            if isinstance(driving, Eq):
                keys.update(index.lookup_equal(driving.value))
            else:
                keys.update(
                    key for _, key in index.lookup_range(driving.low, driving.high)
                )
        return keys

    def _range_keys(
        self, query: Query, plan: QueryPlan, low: bytes, high: bytes
    ) -> Iterator[bytes]:
        """Distinct primary keys in [low, high), from the first group read.

        A server's range_scan covers every tablet it hosts, so each
        *server* is visited exactly once regardless of tablet count."""
        first_group = plan.groups_read[0]
        seen: set[bytes] = set()
        visited: set[str] = set()
        for server_name, tablet in self._master.locations(query.table):
            if server_name in visited:
                continue
            if high <= tablet.key_range.start:
                continue
            if tablet.key_range.end is not None and tablet.key_range.end <= low:
                continue
            visited.add(server_name)
            server = self._master.server(server_name)
            for key, _, _ in server.range_scan(
                query.table, first_group, low, high, as_of=query.snapshot
            ):
                if key not in seen:
                    seen.add(key)
                    yield key

    def _fetch_row(self, query: Query, plan: QueryPlan, key: bytes) -> Row | None:
        server_name, _ = self._master.locate(query.table, key)
        server = self._master.server(server_name)
        row: Row = {}
        found = False
        for group in plan.groups_read:
            result = server.read(query.table, key, group, as_of=query.snapshot)
            if result is None:
                continue
            found = True
            try:
                row.update(decode_group_value(result[1]))
            except (ValueError, IndexError, UnicodeDecodeError):
                continue
        return row if found else None

    def _project(self, query: Query, row: Row) -> Row:
        if not query.projection:
            return dict(row)
        return {column: row[column] for column in query.projection if column in row}

    # -- aggregation -------------------------------------------------------------------

    def aggregate(
        self, query: Query, column: str, *, group_by: str | None = None
    ) -> dict:
        """count/sum/min/max over integer-encoded ``column`` values."""
        wanted = [column] + ([group_by] if group_by else [])
        inner = Query(
            self, query.table, tuple(wanted), query.predicate, query.snapshot
        )
        inner.max_rows = query.max_rows
        rows = self.execute(inner)
        if group_by is None:
            values = [int(row[column]) for _, row in rows if column in row]
            return {
                "count": len(values),
                "sum": float(sum(values)),
                "min": float(min(values)) if values else 0.0,
                "max": float(max(values)) if values else 0.0,
            }
        grouped: dict[bytes, list[int]] = {}
        for _, row in rows:
            if column in row and group_by in row:
                grouped.setdefault(row[group_by], []).append(int(row[column]))
        return {
            "count": {k: float(len(v)) for k, v in grouped.items()},
            "sum": {k: float(sum(v)) for k, v in grouped.items()},
        }
