"""Secondary indexes over column values.

A secondary index maps the *current* value of one column to the set of
primary keys holding it, per tablet server.  Semantics:

* maintained synchronously on the write path (insert/update/delete and
  transactional applies), so lookups are always consistent with the
  primary index's latest versions;
* current-state only — historical secondary queries would require
  multiversion postings, which the paper leaves as future work alongside
  the index itself;
* memory-resident like the primary indexes, and rebuilt after recovery
  from the primary indexes plus the log.

Postings are kept in sorted order by value so the index serves both
equality and value-range lookups.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Iterator

from repro.core.schema import decode_group_value


class SecondaryIndex:
    """Value -> primary keys index for one (table, group, column)."""

    def __init__(self, table: str, group: str, column: str) -> None:
        self.table = table
        self.group = group
        self.column = column
        # sorted list of distinct values, for range lookups
        self._values: list[bytes] = []
        # value -> set of primary keys currently holding it
        self._postings: dict[bytes, set[bytes]] = defaultdict(set)
        # primary key -> (version ts, current value), for update/delete
        self._current: dict[bytes, tuple[int, bytes]] = {}

    def __len__(self) -> int:
        return len(self._current)

    @property
    def distinct_values(self) -> int:
        """Number of distinct column values indexed."""
        return len(self._values)

    # -- maintenance -----------------------------------------------------------

    def apply_write(self, key: bytes, timestamp: int, value: bytes) -> None:
        """Reflect a new version of ``key`` whose column value is ``value``.

        Stale applies (older than the indexed version, e.g. during redo
        replays) are ignored.
        """
        existing = self._current.get(key)
        if existing is not None:
            if existing[0] > timestamp:
                return
            self._unlink(key, existing[1])
        self._current[key] = (timestamp, value)
        if not self._postings[value]:
            bisect.insort(self._values, value)
        self._postings[value].add(key)

    def apply_delete(self, key: bytes) -> None:
        """Remove ``key`` from the index entirely."""
        existing = self._current.pop(key, None)
        if existing is not None:
            self._unlink(key, existing[1])

    def _unlink(self, key: bytes, value: bytes) -> None:
        postings = self._postings.get(value)
        if postings is None:
            return
        postings.discard(key)
        if not postings:
            del self._postings[value]
            idx = bisect.bisect_left(self._values, value)
            if idx < len(self._values) and self._values[idx] == value:
                self._values.pop(idx)

    def clear(self) -> None:
        """Drop all entries (crash simulation / rebuild)."""
        self._values.clear()
        self._postings.clear()
        self._current.clear()

    # -- lookups -----------------------------------------------------------------

    def lookup_equal(self, value: bytes) -> list[bytes]:
        """Primary keys whose current column value equals ``value``."""
        return sorted(self._postings.get(value, ()))

    def lookup_range(self, low: bytes, high: bytes) -> Iterator[tuple[bytes, bytes]]:
        """(value, key) pairs with low <= value < high, value-ordered."""
        start = bisect.bisect_left(self._values, low)
        for i in range(start, len(self._values)):
            value = self._values[i]
            if value >= high:
                return
            for key in sorted(self._postings[value]):
                yield value, key

    def memory_bytes(self) -> int:
        """Approximate resident size (values + postings + back-map)."""
        values = sum(len(v) + 48 for v in self._values)
        postings = sum(len(k) + 16 for keys in self._postings.values() for k in keys)
        current = sum(len(k) + len(v) + 24 for k, (_, v) in self._current.items())
        return values + postings + current


class SecondaryIndexManager:
    """All secondary indexes of one tablet server.

    The tablet server calls :meth:`on_write` / :meth:`on_delete` from its
    apply paths; the manager decodes the group payload and feeds every
    index registered on a column of that group.  Payloads that are not
    column-encoded (opaque benchmark blobs) are skipped silently.
    """

    def __init__(self) -> None:
        # (table, group) -> list of indexes on that group's columns
        self._by_group: dict[tuple[str, str], list[SecondaryIndex]] = defaultdict(list)

    def create(self, table: str, group: str, column: str) -> SecondaryIndex:
        """Register an index on ``table.column`` (stored in ``group``)."""
        for index in self._by_group[(table, group)]:
            if index.column == column:
                return index
        index = SecondaryIndex(table, group, column)
        self._by_group[(table, group)].append(index)
        return index

    def get(self, table: str, column: str) -> SecondaryIndex | None:
        """The index on ``table.column``, if one exists."""
        for indexes in self._by_group.values():
            for index in indexes:
                if index.table == table and index.column == column:
                    return index
        return None

    def indexes(self) -> list[SecondaryIndex]:
        """Every registered index."""
        return [index for indexes in self._by_group.values() for index in indexes]

    def has_any(self) -> bool:
        """Whether any index is registered (fast write-path guard)."""
        return any(self._by_group.values())

    # -- write-path hooks -------------------------------------------------------

    def on_write(
        self, table: str, group: str, key: bytes, timestamp: int, payload: bytes
    ) -> None:
        """Feed a new version into the affected indexes."""
        indexes = self._by_group.get((table, group))
        if not indexes:
            return
        try:
            columns = decode_group_value(payload)
        except (ValueError, IndexError, UnicodeDecodeError):
            return  # opaque payload: nothing to index
        for index in indexes:
            if index.column in columns:
                index.apply_write(key, timestamp, columns[index.column])

    def on_delete(self, table: str, group: str, key: bytes) -> None:
        """Remove ``key`` from the affected indexes."""
        for index in self._by_group.get((table, group), ()):
            index.apply_delete(key)

    def clear(self) -> None:
        """Drop every index's contents (server crash)."""
        for index in self.indexes():
            index.clear()
