"""Predicate expressions for the query engine.

Predicates evaluate over a decoded row (``{column: value bytes}``).
Values compare as bytes — the convention throughout this reproduction
(zero-padded numerics sort correctly).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

Row = dict[str, bytes]


class Predicate(ABC):
    """A boolean condition over one row."""

    @abstractmethod
    def matches(self, row: Row) -> bool:
        """Whether ``row`` satisfies the predicate."""

    @abstractmethod
    def columns(self) -> set[str]:
        """Columns the predicate reads."""


@dataclass(frozen=True)
class Eq(Predicate):
    """``column == value``."""

    column: str
    value: bytes

    def matches(self, row: Row) -> bool:
        return row.get(self.column) == self.value

    def columns(self) -> set[str]:
        return {self.column}


@dataclass(frozen=True)
class Range(Predicate):
    """``low <= column < high`` (bytes ordering)."""

    column: str
    low: bytes
    high: bytes

    def matches(self, row: Row) -> bool:
        value = row.get(self.column)
        return value is not None and self.low <= value < self.high

    def columns(self) -> set[str]:
        return {self.column}


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of predicates."""

    parts: tuple[Predicate, ...]

    def __init__(self, *parts: Predicate) -> None:
        object.__setattr__(self, "parts", tuple(parts))

    def matches(self, row: Row) -> bool:
        return all(part.matches(row) for part in self.parts)

    def columns(self) -> set[str]:
        return {column for part in self.parts for column in part.columns()}

    def flattened(self) -> list[Predicate]:
        """The conjunct list with nested Ands unnested."""
        out: list[Predicate] = []
        for part in self.parts:
            if isinstance(part, And):
                out.extend(part.flattened())
            else:
                out.append(part)
        return out


def conjuncts(predicate: Predicate | None) -> list[Predicate]:
    """Normalize a predicate into a flat conjunct list ([] for None)."""
    if predicate is None:
        return []
    if isinstance(predicate, And):
        return predicate.flattened()
    return [predicate]
