"""Query processing and secondary indexes — the paper's stated future work.

§5: "Our future works include the design and implementation of efficient
secondary indexes and query processing for LogBase."  This package
implements both on top of the core system:

* :mod:`repro.query.secondary` — in-memory secondary indexes over column
  values, maintained on the write path and rebuilt on recovery;
* :mod:`repro.query.expressions` — predicate expressions over columns;
* :mod:`repro.query.engine` — a planner/executor that picks primary-key
  lookups, secondary-index lookups, range scans or filtered full scans,
  with projection and simple aggregation.
"""

from repro.query.secondary import SecondaryIndex, SecondaryIndexManager
from repro.query.expressions import Eq, Range, And, Predicate
from repro.query.engine import Query, QueryEngine, QueryPlan

__all__ = [
    "SecondaryIndex",
    "SecondaryIndexManager",
    "Eq",
    "Range",
    "And",
    "Predicate",
    "Query",
    "QueryEngine",
    "QueryPlan",
]
