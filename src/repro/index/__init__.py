"""Multiversion indexes over the log (§3.5).

Tablet servers build one index per column group per tablet, mapping the
composite key (record primary key, write timestamp) to the record's
:class:`~repro.wal.record.LogPointer`.  Two implementations are provided:

* :class:`~repro.index.blink.BLinkTreeIndex` — the in-memory B-link tree
  the paper describes (efficient key-range search, link pointers for
  concurrent splits);
* :class:`~repro.index.lsm.LSMTreeIndex` — a log-structured merge tree
  that spills sorted runs to the DFS, used by the LRS baseline and by
  LogBase's index-beyond-memory mode (§4.6).
"""

from repro.index.interface import MultiversionIndex, IndexEntry
from repro.index.blink import BLinkTreeIndex
from repro.index.lsm import LSMTreeIndex
from repro.index.persist import write_index_file, load_index_file

__all__ = [
    "MultiversionIndex",
    "IndexEntry",
    "BLinkTreeIndex",
    "LSMTreeIndex",
    "write_index_file",
    "load_index_file",
]
