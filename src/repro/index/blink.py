"""In-memory B-link tree index (§3.5).

"The indexes resemble B-link trees [17] to provide efficient key range
search and concurrency support."  Nodes carry a high key and a right-link
to their split sibling (Lehman & Yao); a traversal that lands on a node
whose high key is below its search key simply follows the link.  In this
single-process simulation the link protocol is exercised structurally
(splits always leave correct links) rather than under true parallelism.

Composite keys are ``(key: bytes, timestamp: int)`` tuples; Python's tuple
ordering gives exactly the prefix-clustered layout the paper describes:
all versions of one record are adjacent, oldest to newest.
"""

from __future__ import annotations

import bisect
from typing import Iterator

from repro.index.interface import IndexEntry, MultiversionIndex
from repro.wal.record import LogPointer

_MAX_TS = 1 << 62  # sentinel above any real timestamp

Composite = tuple[bytes, int]


class _Node:
    """One tree node.  Leaves map composite keys to pointers; internal
    nodes map separator keys to children."""

    __slots__ = ("leaf", "keys", "values", "children", "right", "high_key")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.keys: list[Composite] = []
        self.values: list[LogPointer] = []     # leaves only
        self.children: list[_Node] = []        # internal only
        self.right: _Node | None = None        # B-link right sibling
        self.high_key: Composite | None = None  # None = +infinity


class BLinkTreeIndex(MultiversionIndex):
    """B-link tree over (key, timestamp) composites.

    Args:
        order: maximum keys per node before it splits.
    """

    def __init__(self, order: int = 64) -> None:
        if order < 4:
            raise ValueError("order must be >= 4")
        self._order = order
        self._root: _Node = _Node(leaf=True)
        self._size = 0
        self._height = 1

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Levels in the tree (1 = a single leaf)."""
        return self._height

    # -- descent helpers ------------------------------------------------------

    def _move_right(self, node: _Node, composite: Composite) -> _Node:
        """Follow right-links while the search key exceeds the node's
        high key — the Lehman-Yao step that makes splits safe."""
        while node.high_key is not None and composite >= node.high_key:
            if node.right is None:
                break
            node = node.right
        return node

    def _descend(self, composite: Composite) -> tuple[_Node, list[_Node]]:
        """Find the leaf for ``composite``; returns (leaf, ancestor stack)."""
        stack: list[_Node] = []
        node = self._root
        while not node.leaf:
            node = self._move_right(node, composite)
            stack.append(node)
            idx = bisect.bisect_right(node.keys, composite)
            node = node.children[idx]
        return self._move_right(node, composite), stack

    # -- mutation ---------------------------------------------------------------

    def insert(self, key: bytes, timestamp: int, pointer: LogPointer) -> None:
        composite = (key, timestamp)
        leaf, stack = self._descend(composite)
        idx = bisect.bisect_left(leaf.keys, composite)
        if idx < len(leaf.keys) and leaf.keys[idx] == composite:
            leaf.values[idx] = pointer  # redo replaces (§3.8)
            return
        leaf.keys.insert(idx, composite)
        leaf.values.insert(idx, pointer)
        self._size += 1
        self._split_upwards(leaf, stack)

    def _split_upwards(self, node: _Node, stack: list[_Node]) -> None:
        while len(node.keys) > self._order:
            separator, sibling = self._split(node)
            if stack:
                parent = stack.pop()
                idx = bisect.bisect_right(parent.keys, separator)
                parent.keys.insert(idx, separator)
                parent.children.insert(idx + 1, sibling)
                node = parent
            else:
                root = _Node(leaf=False)
                root.keys = [separator]
                root.children = [node, sibling]
                self._root = root
                self._height += 1
                return

    def _split(self, node: _Node) -> tuple[Composite, _Node]:
        """Split ``node``, returning (separator, new right sibling)."""
        mid = len(node.keys) // 2
        sibling = _Node(leaf=node.leaf)
        sibling.right = node.right
        sibling.high_key = node.high_key
        if node.leaf:
            sibling.keys = node.keys[mid:]
            sibling.values = node.values[mid:]
            node.keys = node.keys[:mid]
            node.values = node.values[:mid]
            separator = sibling.keys[0]
        else:
            # The middle key moves up; it separates node from sibling.
            separator = node.keys[mid]
            sibling.keys = node.keys[mid + 1 :]
            sibling.children = node.children[mid + 1 :]
            node.keys = node.keys[:mid]
            node.children = node.children[: mid + 1]
        node.right = sibling
        node.high_key = separator
        return separator, sibling

    def delete_key(self, key: bytes) -> int:
        """Remove every version of ``key`` (no node merging — B-link trees
        commonly delete lazily; space is reclaimed on compaction rebuild)."""
        removed = 0
        leaf, _ = self._descend((key, 0))
        while leaf is not None:
            idx = bisect.bisect_left(leaf.keys, (key, 0))
            while idx < len(leaf.keys) and leaf.keys[idx][0] == key:
                leaf.keys.pop(idx)
                leaf.values.pop(idx)
                removed += 1
            if leaf.keys and leaf.keys[-1][0] > key:
                break
            if idx < len(leaf.keys):
                break
            leaf = leaf.right
        self._size -= removed
        return removed

    # -- queries -------------------------------------------------------------------

    def _iterate_from(self, composite: Composite) -> Iterator[tuple[Composite, LogPointer]]:
        leaf, _ = self._descend(composite)
        idx = bisect.bisect_left(leaf.keys, composite)
        while leaf is not None:
            while idx < len(leaf.keys):
                yield leaf.keys[idx], leaf.values[idx]
                idx += 1
            leaf = leaf.right
            idx = 0

    def lookup_latest(self, key: bytes) -> IndexEntry | None:
        best: IndexEntry | None = None
        for (entry_key, ts), pointer in self._iterate_from((key, 0)):
            if entry_key != key:
                break
            best = IndexEntry(entry_key, ts, pointer)
        return best

    def lookup_asof(self, key: bytes, timestamp: int) -> IndexEntry | None:
        best: IndexEntry | None = None
        for (entry_key, ts), pointer in self._iterate_from((key, 0)):
            if entry_key != key or ts > timestamp:
                break
            best = IndexEntry(entry_key, ts, pointer)
        return best

    def versions(self, key: bytes) -> list[IndexEntry]:
        found = []
        for (entry_key, ts), pointer in self._iterate_from((key, 0)):
            if entry_key != key:
                break
            found.append(IndexEntry(entry_key, ts, pointer))
        return found

    def range_scan(self, start_key: bytes, end_key: bytes) -> Iterator[IndexEntry]:
        for (entry_key, ts), pointer in self._iterate_from((start_key, 0)):
            if entry_key >= end_key:
                break
            yield IndexEntry(entry_key, ts, pointer)

    def entries(self) -> Iterator[IndexEntry]:
        for (entry_key, ts), pointer in self._iterate_from((b"", 0)):
            yield IndexEntry(entry_key, ts, pointer)

    # -- structural checks (used by property tests) ----------------------------------

    def check_invariants(self) -> None:
        """Validate ordering, fanout and link invariants; raises AssertionError."""
        self._check_node(self._root, None, None)
        flat = [entry.key + entry.timestamp.to_bytes(8, "big") for entry in self.entries()]
        assert flat == sorted(flat), "leaf chain out of order"

    def _check_node(self, node: _Node, low: Composite | None, high: Composite | None) -> None:
        assert node.keys == sorted(node.keys), "node keys unsorted"
        assert len(node.keys) <= self._order, "node over capacity"
        if low is not None and node.keys:
            assert node.keys[0] >= low, "key below subtree bound"
        if high is not None and node.keys:
            assert node.keys[-1] < high, "key above subtree bound"
        if node.high_key is not None and node.keys:
            assert node.keys[-1] < node.high_key or node.leaf, "high key violated"
        if not node.leaf:
            assert len(node.children) == len(node.keys) + 1, "fanout mismatch"
            bounds = [low, *node.keys, high]
            for i, child in enumerate(node.children):
                self._check_node(child, bounds[i], bounds[i + 1])
