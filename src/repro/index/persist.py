"""Index persistence: flush in-memory indexes to DFS index files (§3.6.1).

"If the number of updates reaches a threshold, the index can be merged out
into an index file stored in the underlying DFS" — checkpoints persist the
whole index so a restarted server reloads it instead of rescanning the
log.  The file layout is a framed, checksummed sequence of entries::

    header  := magic(4B) count(uvarint)
    entry   := key_len key timestamp file_no offset size   (uvarints)
    trailer := crc32c(u32 LE) over header+entries
"""

from __future__ import annotations

import struct

from repro.dfs.filesystem import DFS
from repro.errors import CorruptLogRecord
from repro.index.interface import IndexEntry, MultiversionIndex
from repro.sim.machine import Machine
from repro.util.crc import crc32c
from repro.util.varint import decode_uvarint, encode_uvarint
from repro.wal.record import LogPointer

_MAGIC = b"LBIX"


def encode_entries(entries: list[IndexEntry]) -> bytes:
    """Serialize entries into the index-file byte layout."""
    body = bytearray(_MAGIC)
    body += encode_uvarint(len(entries))
    for entry in entries:
        body += encode_uvarint(len(entry.key))
        body += entry.key
        body += encode_uvarint(entry.timestamp)
        body += encode_uvarint(entry.pointer.file_no)
        body += encode_uvarint(entry.pointer.offset)
        body += encode_uvarint(entry.pointer.size)
    body += struct.pack("<I", crc32c(bytes(body)))
    return bytes(body)


def decode_entries(payload: bytes) -> list[IndexEntry]:
    """Parse an index file produced by :func:`encode_entries`.

    Raises:
        CorruptLogRecord: on bad magic or checksum mismatch.
    """
    if len(payload) < len(_MAGIC) + 4 or payload[:4] != _MAGIC:
        raise CorruptLogRecord("bad index file magic")
    body, (crc,) = payload[:-4], struct.unpack("<I", payload[-4:])
    if crc32c(body) != crc:
        raise CorruptLogRecord("index file checksum mismatch")
    pos = len(_MAGIC)
    count, pos = decode_uvarint(body, pos)
    entries = []
    for _ in range(count):
        n, pos = decode_uvarint(body, pos)
        key = body[pos : pos + n]
        pos += n
        timestamp, pos = decode_uvarint(body, pos)
        file_no, pos = decode_uvarint(body, pos)
        offset, pos = decode_uvarint(body, pos)
        size, pos = decode_uvarint(body, pos)
        entries.append(IndexEntry(key, timestamp, LogPointer(file_no, offset, size)))
    return entries


def write_index_file(
    dfs: DFS, path: str, machine: Machine, index: MultiversionIndex
) -> int:
    """Persist every entry of ``index`` to ``path``; returns bytes written.

    Overwrites any existing file at ``path`` (checkpoints replace their
    predecessor)."""
    payload = encode_entries(list(index.entries()))
    if dfs.exists(path):
        dfs.delete(path)
    writer = dfs.create(path, machine)
    writer.append(payload)
    writer.close()
    return len(payload)


def load_index_file(
    dfs: DFS, path: str, machine: Machine, index: MultiversionIndex
) -> int:
    """Load ``path`` into ``index``; returns the number of entries loaded."""
    payload = dfs.open(path, machine).read_all()
    entries = decode_entries(payload)
    for entry in entries:
        index.insert(entry.key, entry.timestamp, entry.pointer)
    return len(entries)
