"""The multiversion index contract shared by B-link and LSM implementations.

An index entry is ``<IdxKey, Ptr>`` where IdxKey is the record's primary
key (prefix) concatenated with the write timestamp (suffix) and Ptr is the
(file number, offset, size) log pointer (§3.5).  Entries for one key are
therefore clustered, and the entry with the greatest timestamp points at
the current version.

Per the paper's sizing argument, an entry costs about 24 bytes (16 for the
composite key, 8 for the pointer); ``memory_bytes`` accounts with that
figure so capacity experiments match the paper's arithmetic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator

from repro.wal.record import LogPointer

ENTRY_BYTES = 24  # paper's estimate: 16-byte IdxKey + 8-byte Ptr


@dataclass(frozen=True)
class IndexEntry:
    """One (key, timestamp) -> pointer mapping."""

    key: bytes
    timestamp: int
    pointer: LogPointer


class MultiversionIndex(ABC):
    """Maps (primary key, timestamp) to log pointers."""

    @abstractmethod
    def insert(self, key: bytes, timestamp: int, pointer: LogPointer) -> None:
        """Add a version.  Re-inserting the same (key, timestamp) replaces
        the pointer (recovery redo relies on this, §3.8)."""

    @abstractmethod
    def delete_key(self, key: bytes) -> int:
        """Remove *all* versions of ``key`` (Delete step 1, §3.6.3).

        Returns the number of entries removed."""

    @abstractmethod
    def lookup_latest(self, key: bytes) -> IndexEntry | None:
        """Entry with the greatest timestamp for ``key``, or None."""

    @abstractmethod
    def lookup_asof(self, key: bytes, timestamp: int) -> IndexEntry | None:
        """Entry with the greatest timestamp <= ``timestamp``, or None.

        This is the historical-read path: "LogBase fetches all index
        entries with the requested key as the prefix and follows the
        pointer of the index entry that has the latest timestamp before
        t_q" (§3.6.2)."""

    @abstractmethod
    def versions(self, key: bytes) -> list[IndexEntry]:
        """All versions of ``key``, oldest first."""

    @abstractmethod
    def range_scan(
        self, start_key: bytes, end_key: bytes
    ) -> Iterator[IndexEntry]:
        """Every entry with start_key <= key < end_key, in (key, timestamp)
        order (all versions; the caller filters to the snapshot it wants)."""

    @abstractmethod
    def entries(self) -> Iterator[IndexEntry]:
        """Every entry in (key, timestamp) order (checkpointing, scans)."""

    @abstractmethod
    def __len__(self) -> int:
        """Total number of entries."""

    def memory_bytes(self) -> int:
        """Approximate resident memory of the index, paper accounting."""
        return len(self) * ENTRY_BYTES

    def latest_in_range(
        self, start_key: bytes, end_key: bytes, *, as_of: int | None = None
    ) -> Iterator[IndexEntry]:
        """Latest visible version of each key in [start_key, end_key).

        Args:
            as_of: snapshot timestamp; None means "latest committed".
        """
        current_key: bytes | None = None
        best: IndexEntry | None = None
        for entry in self.range_scan(start_key, end_key):
            if as_of is not None and entry.timestamp > as_of:
                continue
            if entry.key != current_key:
                if best is not None:
                    yield best
                current_key = entry.key
                best = entry
            elif best is None or entry.timestamp > best.timestamp:
                best = entry
        if best is not None:
            yield best
