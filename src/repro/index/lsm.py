"""LSM-tree index: memtable + sorted runs in the DFS, LevelDB-style.

Used two ways in the paper's evaluation (§4.6):

* the **LRS** baseline indexes its on-disk log with LevelDB; and
* LogBase "can employ a similar method to LSM-tree for merging out part of
  the in-memory indexes into disks" when tablet-server memory is scarce.

Entries enter a memtable (bounded, default 4 MB as in the paper's LevelDB
write buffer).  A full memtable flushes to an immutable sorted *run* file
in the DFS: a sequence of ~4 KB blocks, with a sparse block index and a
Bloom filter kept in memory.  When enough level-0 runs accumulate they are
merged into a single run (a two-level simplification of LevelDB's leveled
compaction that preserves its read/write amplification shape).  Lookups
probe the memtable, then runs newest-to-oldest — each probe costs a block
read from the DFS unless the 8 MB block cache (paper's read buffer) hits
or the Bloom filter rules the run out.

Because write timestamps are globally monotonic, all versions of a key in
a newer run are strictly newer than those in older runs, so point lookups
stop at the first run that yields a match.

Re-inserting a (key, timestamp) that already sits in a run (recovery redo
replays do this) shadows the run copy with the memtable copy: lookups and
iteration always see the newest pointer, and the next merge removes the
duplicate.  Between such a re-insert and the merge, ``len()`` is an upper
bound rather than an exact count.
"""

from __future__ import annotations

import itertools
import json
from typing import Iterator

from repro.dfs.filesystem import DFS
from repro.index.interface import ENTRY_BYTES, IndexEntry, MultiversionIndex
from repro.index.persist import decode_entries, encode_entries
from repro.sim.machine import Machine
from repro.util.bloom import BloomFilter
from repro.util.lru import LRUCache
from repro.util.varint import decode_uvarint, encode_uvarint
from repro.wal.record import LogPointer

Composite = tuple[bytes, int]

_BLOCK_TARGET = 4096


class _Run:
    """One immutable sorted run file with its in-memory metadata."""

    def __init__(
        self,
        run_id: int,
        path: str,
        block_index: list[tuple[Composite, int, int]],
        bloom: BloomFilter,
        entry_count: int,
        max_ts: int = 0,
    ) -> None:
        self.run_id = run_id
        self.path = path
        # (first composite of block, byte offset, byte length), ascending
        self.block_index = block_index
        self.bloom = bloom
        self.entry_count = entry_count
        # Newest timestamp in the run: lets point lookups prune runs that
        # cannot improve on the best version found so far.
        self.max_ts = max_ts

    def blocks_for_range(self, start: Composite, end_key: bytes | None) -> list[int]:
        """Indexes of blocks that may hold composites in [start, end)."""
        chosen = []
        for i, (first, _, _) in enumerate(self.block_index):
            next_first = (
                self.block_index[i + 1][0] if i + 1 < len(self.block_index) else None
            )
            if next_first is not None and next_first <= start:
                continue
            if end_key is not None and first[0] >= end_key:
                break
            chosen.append(i)
        return chosen


def _encode_block(entries: list[IndexEntry]) -> bytes:
    out = bytearray()
    out += encode_uvarint(len(entries))
    for entry in entries:
        out += encode_uvarint(len(entry.key))
        out += entry.key
        out += encode_uvarint(entry.timestamp)
        out += encode_uvarint(entry.pointer.file_no)
        out += encode_uvarint(entry.pointer.offset)
        out += encode_uvarint(entry.pointer.size)
    return bytes(out)


def _decode_block(payload: bytes) -> list[IndexEntry]:
    pos = 0
    count, pos = decode_uvarint(payload, pos)
    entries = []
    for _ in range(count):
        n, pos = decode_uvarint(payload, pos)
        key = payload[pos : pos + n]
        pos += n
        ts, pos = decode_uvarint(payload, pos)
        file_no, pos = decode_uvarint(payload, pos)
        offset, pos = decode_uvarint(payload, pos)
        size, pos = decode_uvarint(payload, pos)
        entries.append(IndexEntry(key, ts, LogPointer(file_no, offset, size)))
    return entries


class LSMTreeIndex(MultiversionIndex):
    """Multiversion index that spills sorted runs to the DFS.

    Args:
        dfs: file system for run files.
        machine: host whose clock pays for flush/probe I/O.
        root: DFS directory for this index's runs.
        memtable_bytes: flush threshold (paper/LevelDB default 4 MB).
        block_cache_bytes: read cache over run blocks (paper default 8 MB).
        level0_limit: level-0 run count that triggers a merge (LevelDB: 4).
    """

    def __init__(
        self,
        dfs: DFS,
        machine: Machine,
        root: str,
        *,
        memtable_bytes: int = 4 * 1024 * 1024,
        block_cache_bytes: int = 8 * 1024 * 1024,
        level0_limit: int = 4,
    ) -> None:
        self._dfs = dfs
        self._machine = machine
        self._root = root.rstrip("/")
        self._memtable_limit = memtable_bytes
        self._level0_limit = level0_limit
        # memtable: key -> sorted list of (timestamp, pointer)
        self._memtable: dict[bytes, list[tuple[int, LogPointer]]] = {}
        self._memtable_entries = 0
        self._runs: list[_Run] = []  # newest first
        self._run_ids = itertools.count(1)
        # key -> watermark: on-disk versions with timestamp <= watermark are
        # dead.  A watermark (not a set) keeps delete-then-reinsert correct:
        # a later insert carries a newer timestamp and survives the filter.
        self._deleted_below: dict[bytes, int] = {}
        # Explicitly re-inserted versions at/below a watermark (possible
        # through the raw index API, though system timestamps are
        # monotonic): exceptions to the watermark until the next merge.
        self._resurrected: set[Composite] = set()
        self._size = 0
        self._block_cache: LRUCache[tuple[int, int], list[IndexEntry]] = LRUCache(
            byte_capacity=block_cache_bytes,
            sizer=lambda block: len(block) * ENTRY_BYTES,
        )
        self.flushes = 0
        self.merges = 0

    def __len__(self) -> int:
        return self._size

    @property
    def run_count(self) -> int:
        """Number of on-DFS runs (diagnostics)."""
        return len(self._runs)

    def memory_bytes(self) -> int:
        """Resident bytes: memtable entries + run metadata + block cache."""
        meta = sum(
            run.bloom.size_bytes + len(run.block_index) * 48 for run in self._runs
        )
        return self._memtable_entries * ENTRY_BYTES + meta + self._block_cache.bytes_used

    # -- writes -----------------------------------------------------------------

    def insert(self, key: bytes, timestamp: int, pointer: LogPointer) -> None:
        if timestamp <= self._deleted_below.get(key, -1):
            self._resurrected.add((key, timestamp))
        versions = self._memtable.setdefault(key, [])
        for i, (ts, _) in enumerate(versions):
            if ts == timestamp:
                versions[i] = (timestamp, pointer)
                return
        versions.append((timestamp, pointer))
        versions.sort()
        self._memtable_entries += 1
        self._size += 1
        if self._memtable_entries * ENTRY_BYTES >= self._memtable_limit:
            self.flush()

    def delete_key(self, key: bytes) -> int:
        mem_versions = self._memtable.pop(key, [])
        self._memtable_entries -= len(mem_versions)
        on_disk = list(self._run_versions(key))
        if on_disk:
            self._deleted_below[key] = max(
                self._deleted_below.get(key, -1),
                max(e.timestamp for e in on_disk),
            )
        self._resurrected = {c for c in self._resurrected if c[0] != key}
        # A memtable copy may shadow the same logical version in a run
        # (redo re-inserts): count each removed version once.
        distinct = {ts for ts, _ in mem_versions} | {e.timestamp for e in on_disk}
        self._size -= len(distinct)
        return len(distinct)

    def _dead(self, entry: IndexEntry) -> bool:
        if entry.timestamp > self._deleted_below.get(entry.key, -1):
            return False
        return (entry.key, entry.timestamp) not in self._resurrected

    # -- flush & merge -------------------------------------------------------------

    def flush(self) -> None:
        """Write the memtable out as a new level-0 run."""
        if not self._memtable:
            return
        entries = [
            IndexEntry(key, ts, ptr)
            for key in sorted(self._memtable)
            for ts, ptr in self._memtable[key]
        ]
        self._memtable.clear()
        self._memtable_entries = 0
        self._runs.insert(0, self._write_run(entries))
        self.flushes += 1
        if len(self._runs) > self._level0_limit:
            self._merge_all()
        # The manifest is persisted at merges, not per flush (as real LSM
        # engines sync their MANIFEST lazily): a crash between merges
        # recovers the un-manifested runs' entries from the log redo.

    def _write_run(self, entries: list[IndexEntry]) -> _Run:
        run_id = next(self._run_ids)
        path = f"{self._root}/run-{run_id:08d}.sst"
        if self._dfs.exists(path):
            # An orphaned run from before a restart (flushed after the
            # last manifest sync): its entries were re-recovered from the
            # log, so the stale file is garbage — reclaim the slot.
            self._dfs.delete(path)
        bloom = BloomFilter(max(len(entries), 1))
        block_index: list[tuple[Composite, int, int]] = []
        writer = self._dfs.create(path, self._machine)
        block: list[IndexEntry] = []
        block_bytes = 0
        offset = 0
        for entry in entries:
            bloom.add(entry.key)
            block.append(entry)
            block_bytes += len(entry.key) + 24
            if block_bytes >= _BLOCK_TARGET:
                offset = self._emit_block(writer, block, block_index, offset)
                block, block_bytes = [], 0
        if block:
            self._emit_block(writer, block, block_index, offset)
        writer.close()
        max_ts = max((e.timestamp for e in entries), default=0)
        return _Run(run_id, path, block_index, bloom, len(entries), max_ts)

    @staticmethod
    def _emit_block(writer, block, block_index, offset) -> int:
        payload = _encode_block(block)
        writer.append(payload)
        block_index.append(((block[0].key, block[0].timestamp), offset, len(payload)))
        return offset + len(payload)

    def _merge_all(self) -> None:
        """Merge every run into one (the two-level compaction step).

        Duplicate composites (from redo re-inserts) collapse to the copy
        from the newest run, and the size counter re-converges to the
        exact entry count."""
        by_composite: dict[Composite, IndexEntry] = {}
        for run in reversed(self._runs):  # oldest first; newer overwrite
            for entry in self._scan_run(run):
                if not self._dead(entry):
                    by_composite[(entry.key, entry.timestamp)] = entry
        merged = [by_composite[c] for c in sorted(by_composite)]
        old = self._runs
        self._runs = [self._write_run(merged)] if merged else []
        for run in old:
            self._dfs.delete(run.path)
        self._deleted_below.clear()
        self._resurrected.clear()
        self._size = len(merged) + self._memtable_entries
        self.merges += 1
        self._persist_manifest()

    # -- manifest: run metadata surviving restarts (LevelDB's MANIFEST) --------------

    def _manifest_path(self) -> str:
        return f"{self._root}/MANIFEST"

    def _persist_manifest(self) -> None:
        """Record the live run set durably so a restarted index can reopen
        its runs instead of losing (and leaking) them."""
        doc = [
            {
                "run_id": run.run_id,
                "path": run.path,
                "entry_count": run.entry_count,
                "max_ts": run.max_ts,
                "num_hashes": run.bloom.num_hashes,
                "index": [
                    [key.hex(), ts, offset, length]
                    for (key, ts), offset, length in run.block_index
                ],
                "bloom": run.bloom.to_bytes().hex(),
            }
            for run in self._runs
        ]
        path = self._manifest_path()
        if self._dfs.exists(path):
            self._dfs.delete(path)
        writer = self._dfs.create(path, self._machine)
        writer.append(json.dumps(doc).encode())
        writer.close()

    def destroy(self) -> None:
        """Delete every run file and the manifest (the index was replaced,
        e.g. by a compaction rebuild)."""
        for run in self._runs:
            if self._dfs.exists(run.path):
                self._dfs.delete(run.path)
        self._runs = []
        if self._dfs.exists(self._manifest_path()):
            self._dfs.delete(self._manifest_path())

    def reopen(self) -> int:
        """Reload the run set from the manifest after a restart.

        The memtable's contents are gone (they are recovered by the redo
        scan, like every in-memory index); what the manifest restores is
        the flushed runs, so they are neither lost nor leaked.  Returns
        the number of runs reopened."""
        path = self._manifest_path()
        if not self._dfs.exists(path):
            return 0
        doc = json.loads(self._dfs.open(path, self._machine).read_all().decode())
        self._runs = []
        max_run_id = 0
        total = 0
        for entry in doc:
            bloom = BloomFilter.from_bytes(
                bytes.fromhex(entry["bloom"]), entry["num_hashes"], entry["entry_count"]
            )
            block_index = [
                ((bytes.fromhex(key_hex), ts), offset, length)
                for key_hex, ts, offset, length in entry["index"]
            ]
            self._runs.append(
                _Run(
                    entry["run_id"],
                    entry["path"],
                    block_index,
                    bloom,
                    entry["entry_count"],
                    entry.get("max_ts", 0),
                )
            )
            max_run_id = max(max_run_id, entry["run_id"])
            total += entry["entry_count"]
        self._run_ids = itertools.count(max_run_id + 1)
        self._size = total + self._memtable_entries
        return len(self._runs)

    # -- run reads -------------------------------------------------------------------

    def _read_block(self, run: _Run, block_idx: int) -> list[IndexEntry]:
        cache_key = (run.run_id, block_idx)
        cached = self._block_cache.get(cache_key)
        if cached is not None:
            return cached
        _, offset, length = run.block_index[block_idx]
        payload = self._dfs.open(run.path, self._machine).read(offset, length)
        block = _decode_block(payload)
        self._block_cache.put(cache_key, block)
        return block

    def _scan_run(self, run: _Run) -> Iterator[IndexEntry]:
        for block_idx in range(len(run.block_index)):
            yield from self._read_block(run, block_idx)

    def _run_versions(self, key: bytes) -> Iterator[IndexEntry]:
        """All live on-disk versions of ``key``, newest run first."""
        for run in self._runs:
            if not run.bloom.might_contain(key):
                continue
            for block_idx in run.blocks_for_range((key, 0), key + b"\x00"):
                for entry in self._read_block(run, block_idx):
                    if entry.key == key and not self._dead(entry):
                        yield entry

    # -- queries -----------------------------------------------------------------------

    def _memtable_versions(self, key: bytes) -> list[IndexEntry]:
        return [
            IndexEntry(key, ts, ptr) for ts, ptr in self._memtable.get(key, [])
        ]

    def lookup_latest(self, key: bytes) -> IndexEntry | None:
        mem = self._memtable_versions(key)
        best = mem[-1] if mem else None
        for run in self._runs:  # newest first
            # A run whose newest timestamp cannot beat the best so far is
            # skipped; with the system's monotonic timestamps this prunes
            # every older run after the first hit.
            if best is not None and run.max_ts <= best.timestamp:
                continue
            if not run.bloom.might_contain(key):
                continue
            hits = [
                entry
                for block_idx in run.blocks_for_range((key, 0), key + b"\x00")
                for entry in self._read_block(run, block_idx)
                if entry.key == key and not self._dead(entry)
            ]
            if hits:
                candidate = max(hits, key=lambda e: e.timestamp)
                if best is None or candidate.timestamp > best.timestamp:
                    best = candidate
        return best

    def lookup_asof(self, key: bytes, timestamp: int) -> IndexEntry | None:
        candidates = [
            entry for entry in self._memtable_versions(key) if entry.timestamp <= timestamp
        ]
        best = candidates[-1] if candidates else None
        for run in self._runs:
            if best is not None and run.max_ts <= best.timestamp:
                continue
            if not run.bloom.might_contain(key):
                continue
            hits = [
                entry
                for block_idx in run.blocks_for_range((key, 0), key + b"\x00")
                for entry in self._read_block(run, block_idx)
                if entry.key == key and entry.timestamp <= timestamp and not self._dead(entry)
            ]
            if hits:
                candidate = max(hits, key=lambda e: e.timestamp)
                if best is None or candidate.timestamp > best.timestamp:
                    best = candidate
        return best

    def versions(self, key: bytes) -> list[IndexEntry]:
        found = list(self._run_versions(key)) + self._memtable_versions(key)
        return sorted(found, key=lambda e: e.timestamp)

    def range_scan(self, start_key: bytes, end_key: bytes) -> Iterator[IndexEntry]:
        streams: list[Iterator[IndexEntry]] = [
            iter(
                IndexEntry(key, ts, ptr)
                for key in sorted(self._memtable)
                if start_key <= key < end_key
                for ts, ptr in self._memtable[key]
            )
        ]
        for run in self._runs:
            streams.append(self._run_range(run, start_key, end_key))
        yield from self._merge_streams(streams)

    def _run_range(
        self, run: _Run, start_key: bytes, end_key: bytes
    ) -> Iterator[IndexEntry]:
        for block_idx in run.blocks_for_range((start_key, 0), end_key):
            for entry in self._read_block(run, block_idx):
                if self._dead(entry):
                    continue
                if start_key <= entry.key < end_key:
                    yield entry

    @staticmethod
    def _merge_streams(streams: list[Iterator[IndexEntry]]) -> Iterator[IndexEntry]:
        import heapq

        heap: list[tuple[Composite, int, IndexEntry, Iterator[IndexEntry]]] = []
        for i, stream in enumerate(streams):
            first = next(stream, None)
            if first is not None:
                heapq.heappush(heap, ((first.key, first.timestamp), i, first, stream))
        seen: set[Composite] = set()
        while heap:
            composite, i, entry, stream = heapq.heappop(heap)
            if composite not in seen:
                seen.add(composite)
                yield entry
            nxt = next(stream, None)
            if nxt is not None:
                heapq.heappush(heap, ((nxt.key, nxt.timestamp), i, nxt, stream))

    def entries(self) -> Iterator[IndexEntry]:
        yield from self.range_scan(b"", b"\xff" * 64)

    # -- persistence hooks used by checkpointing --------------------------------------

    def snapshot_payload(self) -> bytes:
        """Serialized full contents (memtable + runs) for checkpointing."""
        return encode_entries(list(self.entries()))

    @classmethod
    def restore(
        cls, payload: bytes, dfs: DFS, machine: Machine, root: str, **kwargs
    ) -> "LSMTreeIndex":
        """Rebuild an index from :meth:`snapshot_payload` output."""
        index = cls(dfs, machine, root, **kwargs)
        for entry in decode_entries(payload):
            index.insert(entry.key, entry.timestamp, entry.pointer)
        return index
